// Tests for the instance-discrimination (pixel-NN) retrieval baseline:
// exact self-retrieval, pair consistency, incremental ingest, and the
// rotation fragility the paper calls out.
#include <gtest/gtest.h>

#include "datagen/bragg.hpp"
#include "embed/augment.hpp"
#include "fairds/pixel_baseline.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

nn::Batchset bragg(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.noise_sd = 0.01;
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

TEST(PixelBaseline, ExactQueryRetrievesItself) {
  const nn::Batchset history = bragg(32, 1);
  fairds::PixelNnBaseline baseline(15);
  baseline.ingest(history.xs, history.ys);
  EXPECT_EQ(baseline.stored_count(), 32u);

  const nn::Batchset result = baseline.lookup(history.xs);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(result.ys.at(i, j), history.ys.at(i, j)) << "row " << i;
    }
  }
}

TEST(PixelBaseline, ReturnedPairsAreConsistent) {
  const nn::Batchset history = bragg(64, 2);
  fairds::PixelNnBaseline baseline(15);
  baseline.ingest(history.xs, history.ys);
  const nn::Batchset queries = bragg(16, 3);
  const nn::Batchset result = baseline.lookup(queries.xs);
  // Every returned image must be one of the stored ones, with its label.
  for (std::size_t q = 0; q < 16; ++q) {
    bool found = false;
    for (std::size_t i = 0; i < 64 && !found; ++i) {
      bool same = true;
      for (std::size_t j = 0; j < 225 && same; ++j) {
        same = result.xs[q * 225 + j] == history.xs[i * 225 + j];
      }
      if (same) {
        found = true;
        EXPECT_EQ(result.ys.at(q, 0), history.ys.at(i, 0));
      }
    }
    EXPECT_TRUE(found) << "query " << q;
  }
}

TEST(PixelBaseline, IncrementalIngestGrowsStore) {
  fairds::PixelNnBaseline baseline(15);
  const nn::Batchset a = bragg(10, 4);
  const nn::Batchset b = bragg(14, 5);
  baseline.ingest(a.xs, a.ys);
  baseline.ingest(b.xs, b.ys);
  EXPECT_EQ(baseline.stored_count(), 24u);
}

TEST(PixelBaseline, RotationBreaksPixelRetrieval) {
  // The paper's fragility argument: rotate the query 90 degrees and pixel-NN
  // usually no longer retrieves the original sample.
  const nn::Batchset history = bragg(48, 6);
  fairds::PixelNnBaseline baseline(15);
  baseline.ingest(history.xs, history.ys);

  nn::Tensor rotated(history.xs.shape());
  for (std::size_t i = 0; i < 48; ++i) {
    const auto rot =
        embed::rotate90({history.xs.data() + i * 225, 225}, 15, 1);
    std::copy(rot.begin(), rot.end(), rotated.data() + i * 225);
  }
  const nn::Batchset result = baseline.lookup(rotated);
  std::size_t self_hits = 0;
  for (std::size_t i = 0; i < 48; ++i) {
    if (result.ys.at(i, 0) == history.ys.at(i, 0) &&
        result.ys.at(i, 1) == history.ys.at(i, 1)) {
      ++self_hits;
    }
  }
  // Most rotated queries miss their own original (centers move under
  // rotation, so pixel distance to unrelated samples is often smaller).
  EXPECT_LT(self_hits, 24u) << self_hits << "/48 survived rotation";
}

}  // namespace
}  // namespace fairdms
