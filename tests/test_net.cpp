// Wire serving front-end tests: codec round-trips over randomized DTOs
// (bit-exact floats), frame-header validation, the malformed-frame
// hardening suite driven over real sockets against a live server
// (truncated header, bad magic, oversized declared length, unknown op,
// garbage payload, wrong version, invalid tensor shape — the server
// answers kMalformedRequest or closes cleanly, never crashes), wire-level
// admission shedding (kShedOverload with an empty payload, answered in
// O(1) while the workers are wedged), out-of-order responses matched by
// correlation id, and the graceful drain protocol (in-flight requests
// complete, new user-plane frames get kShuttingDown, stats stays up).
// Carries the `service` label: the TSan CI job and the Release
// `--repeat until-fail:3` stress step run exactly this kind of suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/data_service.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

Tensor random_tensor(util::Rng& rng, std::vector<std::size_t> shape) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(-10.0, 10.0));
  }
  return t;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank() || a.numel() != b.numel()) return false;
  for (std::size_t i = 0; i < a.rank(); ++i) {
    if (a.dim(i) != b.dim(i)) return false;
  }
  return a.numel() == 0 ||
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

// --- codec round trips ------------------------------------------------------

TEST(WireCodec, PrimitiveRoundTripIsBitExact) {
  util::Rng rng(7);
  net::WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f32(-0.0f);
  w.f64(1e-308);  // subnormal-adjacent: survives only as a bit pattern
  w.str("fairdms");
  const Tensor t = random_tensor(rng, {2, 1, 3, 3});
  w.tensor(t);
  w.pdf({0.25, 0.5, 0.25});
  const net::Bytes bytes = w.take();

  net::WireReader r(bytes);
  std::uint8_t v8;
  std::uint16_t v16;
  std::uint32_t v32;
  std::uint64_t v64;
  float vf;
  double vd;
  std::string s;
  Tensor t2;
  std::vector<double> pdf;
  ASSERT_TRUE(r.u8(&v8));
  ASSERT_TRUE(r.u16(&v16));
  ASSERT_TRUE(r.u32(&v32));
  ASSERT_TRUE(r.u64(&v64));
  ASSERT_TRUE(r.f32(&vf));
  ASSERT_TRUE(r.f64(&vd));
  ASSERT_TRUE(r.str(&s));
  ASSERT_TRUE(r.tensor(&t2));
  ASSERT_TRUE(r.pdf(&pdf));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(v8, 0xab);
  EXPECT_EQ(v16, 0xbeef);
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(std::signbit(vf) && vf == 0.0f);
  EXPECT_EQ(vd, 1e-308);
  EXPECT_EQ(s, "fairdms");
  EXPECT_TRUE(bit_equal(t, t2));
  EXPECT_EQ(pdf, (std::vector<double>{0.25, 0.5, 0.25}));
}

TEST(WireCodec, RandomizedDtoRoundTrips) {
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(6);

    service::LabelRequest label_req{random_tensor(rng, {n, 1, 15, 15}),
                                    rng.uniform(0.0, 2.0), nullptr};
    service::LabelRequest label_req2;
    ASSERT_TRUE(net::decode_label_request(net::encode_label_request(label_req),
                                          &label_req2));
    EXPECT_TRUE(bit_equal(label_req.xs, label_req2.xs));
    EXPECT_EQ(label_req.threshold, label_req2.threshold);

    service::LabelResponse label_resp;
    label_resp.batch.xs = random_tensor(rng, {n, 1, 15, 15});
    label_resp.batch.ys = random_tensor(rng, {n, 2});
    label_resp.reuse = {rng.uniform_index(100), rng.uniform_index(100)};
    label_resp.snapshot_version = rng.uniform_index(1000);
    label_resp.seconds = rng.uniform(0.0, 1.0);
    service::LabelResponse label_resp2;
    ASSERT_TRUE(net::decode_label_response(
        net::encode_label_response(label_resp), &label_resp2));
    EXPECT_TRUE(bit_equal(label_resp.batch.xs, label_resp2.batch.xs));
    EXPECT_TRUE(bit_equal(label_resp.batch.ys, label_resp2.batch.ys));
    EXPECT_EQ(label_resp.reuse.reused, label_resp2.reuse.reused);
    EXPECT_EQ(label_resp.reuse.computed, label_resp2.reuse.computed);
    EXPECT_EQ(label_resp.snapshot_version, label_resp2.snapshot_version);
    EXPECT_EQ(label_resp.seconds, label_resp2.seconds);

    service::LookupRequest lookup_req{random_tensor(rng, {n, 1, 15, 15}),
                                      rng.uniform_index(1u << 30)};
    service::LookupRequest lookup_req2;
    ASSERT_TRUE(net::decode_lookup_request(
        net::encode_lookup_request(lookup_req), &lookup_req2));
    EXPECT_TRUE(bit_equal(lookup_req.xs, lookup_req2.xs));
    EXPECT_EQ(lookup_req.seed, lookup_req2.seed);

    service::RecommendRequest rec_req{"braggnn_" + std::to_string(trial),
                                      random_tensor(rng, {n, 1, 15, 15})};
    service::RecommendRequest rec_req2;
    ASSERT_TRUE(net::decode_recommend_request(
        net::encode_recommend_request(rec_req), &rec_req2));
    EXPECT_EQ(rec_req.architecture, rec_req2.architecture);
    EXPECT_TRUE(bit_equal(rec_req.xs, rec_req2.xs));

    service::RecommendResponse rec_resp;
    if (trial % 2 == 0) {
      rec_resp.pick = fairms::Ranked{rng.uniform_index(1u << 20),
                                     rng.uniform(0.0, 1.0)};
    }
    rec_resp.pdf = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    rec_resp.snapshot_version = rng.uniform_index(1000);
    rec_resp.seconds = rng.uniform(0.0, 1.0);
    service::RecommendResponse rec_resp2;
    ASSERT_TRUE(net::decode_recommend_response(
        net::encode_recommend_response(rec_resp), &rec_resp2));
    EXPECT_EQ(rec_resp.pick.has_value(), rec_resp2.pick.has_value());
    if (rec_resp.pick) {
      EXPECT_EQ(rec_resp.pick->model_id, rec_resp2.pick->model_id);
      EXPECT_EQ(rec_resp.pick->distance, rec_resp2.pick->distance);
    }
    EXPECT_EQ(rec_resp.pdf, rec_resp2.pdf);
  }
}

TEST(WireCodec, StatsResponseRoundTripsEveryField) {
  util::Rng rng(9);
  service::ServiceStats s;
  // Fill every counter with a distinct value so a swapped field pair in
  // either codec half cannot cancel out.
  std::uint64_t next = 1000;
  for (std::uint64_t* field :
       {&s.label_requests, &s.lookup_requests, &s.recommend_requests,
        &s.label_answered, &s.lookup_answered, &s.recommend_answered,
        &s.label_shed, &s.lookup_shed, &s.recommend_shed, &s.queue_depth,
        &s.max_queue_depth, &s.max_pending, &s.samples_labeled,
        &s.labels_reused, &s.labels_computed, &s.retrain_checks, &s.retrains,
        &s.retrains_coalesced, &s.store_shards, &s.model_cache_hits,
        &s.model_cache_misses, &s.model_cache_evictions,
        &s.model_cache_bytes}) {
    *field = next++;
  }
  s.busy_seconds = rng.uniform(0.0, 100.0);
  s.max_request_seconds = rng.uniform(0.0, 10.0);

  service::ServiceStats s2;
  ASSERT_TRUE(net::decode_stats_response(net::encode_stats_response(s), &s2));
  EXPECT_EQ(s.label_requests, s2.label_requests);
  EXPECT_EQ(s.lookup_requests, s2.lookup_requests);
  EXPECT_EQ(s.recommend_requests, s2.recommend_requests);
  EXPECT_EQ(s.label_answered, s2.label_answered);
  EXPECT_EQ(s.lookup_answered, s2.lookup_answered);
  EXPECT_EQ(s.recommend_answered, s2.recommend_answered);
  EXPECT_EQ(s.label_shed, s2.label_shed);
  EXPECT_EQ(s.lookup_shed, s2.lookup_shed);
  EXPECT_EQ(s.recommend_shed, s2.recommend_shed);
  EXPECT_EQ(s.queue_depth, s2.queue_depth);
  EXPECT_EQ(s.max_queue_depth, s2.max_queue_depth);
  EXPECT_EQ(s.max_pending, s2.max_pending);
  EXPECT_EQ(s.samples_labeled, s2.samples_labeled);
  EXPECT_EQ(s.labels_reused, s2.labels_reused);
  EXPECT_EQ(s.labels_computed, s2.labels_computed);
  EXPECT_EQ(s.busy_seconds, s2.busy_seconds);
  EXPECT_EQ(s.max_request_seconds, s2.max_request_seconds);
  EXPECT_EQ(s.retrain_checks, s2.retrain_checks);
  EXPECT_EQ(s.retrains, s2.retrains);
  EXPECT_EQ(s.retrains_coalesced, s2.retrains_coalesced);
  EXPECT_EQ(s.store_shards, s2.store_shards);
  EXPECT_EQ(s.model_cache_hits, s2.model_cache_hits);
  EXPECT_EQ(s.model_cache_misses, s2.model_cache_misses);
  EXPECT_EQ(s.model_cache_evictions, s2.model_cache_evictions);
  EXPECT_EQ(s.model_cache_bytes, s2.model_cache_bytes);
}

TEST(WireCodec, FrameHeaderRoundTripAndRejection) {
  const net::Bytes payload = {1, 2, 3};
  const net::Bytes frame = net::encode_frame(
      net::Op::kLookup, service::ServeStatus::kShedOverload, 0xfeedface, payload);
  ASSERT_EQ(frame.size(), net::kHeaderSize + payload.size());
  const auto header = net::decode_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->version, net::kProtocolVersion);
  EXPECT_EQ(header->op, static_cast<std::uint8_t>(net::Op::kLookup));
  EXPECT_EQ(header->status, service::ServeStatus::kShedOverload);
  EXPECT_EQ(header->correlation_id, 0xfeedfaceu);
  EXPECT_EQ(header->payload_len, payload.size());

  // Too short.
  EXPECT_FALSE(net::decode_header(
                   std::span<const std::uint8_t>(frame.data(), 7))
                   .has_value());
  // Bad magic.
  net::Bytes bad_magic = frame;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(net::decode_header(bad_magic).has_value());
  // Status byte outside the ServeStatus range.
  net::Bytes bad_status = frame;
  bad_status[7] = 200;
  EXPECT_FALSE(net::decode_header(bad_status).has_value());
}

TEST(WireCodec, DecodersRejectTruncationAndTrailingGarbage) {
  util::Rng rng(5);
  const service::LabelRequest req{random_tensor(rng, {2, 1, 15, 15}), 0.5,
                                  nullptr};
  const net::Bytes good = net::encode_label_request(req);
  service::LabelRequest out;
  // Every proper prefix must be rejected (bounds-checked, never crash).
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(net::decode_label_request(
        std::span<const std::uint8_t>(good.data(), len), &out))
        << "prefix length " << len;
  }
  // Full consumption required: one trailing byte is malformed.
  net::Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(net::decode_label_request(trailing, &out));
}

TEST(WireCodec, TensorDecodeRejectsAbsurdShapes) {
  service::RetrainRequest out;
  {
    net::WireWriter w;  // rank over the cap
    w.u32(9);
    EXPECT_FALSE(net::decode_retrain_request(w.take(), &out));
  }
  {
    net::WireWriter w;  // dims whose product overflows / exceeds the payload
    w.u32(2);
    w.u64(0xffffffffffffull);
    w.u64(0xffffffffffffull);
    EXPECT_FALSE(net::decode_retrain_request(w.take(), &out));
  }
  {
    net::WireWriter w;  // declared elements not backed by payload bytes
    w.u32(1);
    w.u64(1000);
    w.f32(1.0f);
    EXPECT_FALSE(net::decode_retrain_request(w.take(), &out));
  }
}

TEST(WireCodec, V2StreamFieldRoundTripsAndV1StaysByteIdentical) {
  util::Rng rng(13);
  service::LabelRequest req{random_tensor(rng, {3, 1, 15, 15}), 0.7, nullptr,
                            "cookiebox"};

  // v2 carries the stream id...
  service::LabelRequest out;
  ASSERT_TRUE(net::decode_label_request(net::encode_label_request(req, 2),
                                        &out, 2));
  EXPECT_EQ(out.stream, "cookiebox");

  // ...v1 encodes without it (and decodes to the default-stream alias), and
  // the v1 body is a byte-identical prefix of the v2 body.
  const net::Bytes v1 = net::encode_label_request(req, 1);
  const net::Bytes v2 = net::encode_label_request(req, 2);
  ASSERT_LT(v1.size(), v2.size());
  EXPECT_EQ(0, std::memcmp(v1.data(), v2.data(), v1.size()));
  ASSERT_TRUE(net::decode_label_request(v1, &out, 1));
  EXPECT_TRUE(out.stream.empty());

  // Version mismatches between codec halves are malformed, not misread:
  // a v1 decoder must not accept the longer v2 body, and a v2 decoder must
  // not accept the stream-less v1 body.
  EXPECT_FALSE(net::decode_label_request(v2, &out, 1));
  EXPECT_FALSE(net::decode_label_request(v1, &out, 2));

  service::LookupRequest lookup{random_tensor(rng, {2, 1, 15, 15}), 9,
                                "tomo"};
  service::LookupRequest lookup_out;
  ASSERT_TRUE(net::decode_lookup_request(
      net::encode_lookup_request(lookup, 2), &lookup_out, 2));
  EXPECT_EQ(lookup_out.stream, "tomo");

  service::RecommendRequest rec{"braggnn", random_tensor(rng, {2, 1, 15, 15}),
                                "bragg"};
  service::RecommendRequest rec_out;
  ASSERT_TRUE(net::decode_recommend_request(
      net::encode_recommend_request(rec, 2), &rec_out, 2));
  EXPECT_EQ(rec_out.architecture, "braggnn");
  EXPECT_EQ(rec_out.stream, "bragg");

  service::RetrainRequest retrain{random_tensor(rng, {2, 1, 15, 15}),
                                  "bragg"};
  service::RetrainRequest retrain_out;
  ASSERT_TRUE(net::decode_retrain_request(
      net::encode_retrain_request(retrain, 2), &retrain_out, 2));
  EXPECT_EQ(retrain_out.stream, "bragg");
}

TEST(WireCodec, StatsV2CarriesPerStreamBlocksV1AggregatesOnly) {
  service::ServiceStats s;
  s.label_requests = 10;
  s.label_answered = 8;
  s.label_shed = 2;
  s.retrains_capped = 3;
  s.policy_cooldown_skips = 4;
  s.unknown_stream_requests = 5;
  for (const char* name : {"bragg", "cookiebox"}) {
    service::StreamStats ss;
    ss.stream = name;
    std::uint64_t next = name[0];  // distinct per stream and field
    for (std::uint64_t* field :
         {&ss.label_requests, &ss.lookup_requests, &ss.recommend_requests,
          &ss.label_answered, &ss.lookup_answered, &ss.recommend_answered,
          &ss.label_shed, &ss.lookup_shed, &ss.recommend_shed,
          &ss.queue_depth, &ss.max_queue_depth, &ss.max_pending,
          &ss.samples_labeled, &ss.labels_reused, &ss.labels_computed,
          &ss.retrain_checks, &ss.retrains, &ss.retrains_coalesced,
          &ss.retrains_capped, &ss.policy_cooldown_skips,
          &ss.snapshot_version, &ss.store_shards}) {
      *field = next++;
    }
    ss.busy_seconds = 1.5;
    ss.max_request_seconds = 0.25;
    s.streams.push_back(std::move(ss));
  }

  service::ServiceStats v2;
  ASSERT_TRUE(net::decode_stats_response(net::encode_stats_response(s, 2),
                                         &v2, 2));
  EXPECT_EQ(v2.retrains_capped, 3u);
  EXPECT_EQ(v2.policy_cooldown_skips, 4u);
  EXPECT_EQ(v2.unknown_stream_requests, 5u);
  ASSERT_EQ(v2.streams.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const service::StreamStats& a = s.streams[i];
    const service::StreamStats& b = v2.streams[i];
    EXPECT_EQ(a.stream, b.stream);
    EXPECT_EQ(a.label_requests, b.label_requests);
    EXPECT_EQ(a.lookup_answered, b.lookup_answered);
    EXPECT_EQ(a.recommend_shed, b.recommend_shed);
    EXPECT_EQ(a.max_pending, b.max_pending);
    EXPECT_EQ(a.labels_computed, b.labels_computed);
    EXPECT_EQ(a.busy_seconds, b.busy_seconds);
    EXPECT_EQ(a.max_request_seconds, b.max_request_seconds);
    EXPECT_EQ(a.retrains_capped, b.retrains_capped);
    EXPECT_EQ(a.policy_cooldown_skips, b.policy_cooldown_skips);
    EXPECT_EQ(a.snapshot_version, b.snapshot_version);
    EXPECT_EQ(a.store_shards, b.store_shards);
  }

  // A v1 peer gets the 25-field aggregate body: decodes cleanly, carries no
  // per-stream blocks, and is a byte-identical prefix of the v2 body.
  const net::Bytes v1_bytes = net::encode_stats_response(s, 1);
  const net::Bytes v2_bytes = net::encode_stats_response(s, 2);
  ASSERT_LT(v1_bytes.size(), v2_bytes.size());
  EXPECT_EQ(0, std::memcmp(v1_bytes.data(), v2_bytes.data(), v1_bytes.size()));
  service::ServiceStats v1_stats;
  ASSERT_TRUE(net::decode_stats_response(v1_bytes, &v1_stats, 1));
  EXPECT_EQ(v1_stats.label_requests, 10u);
  EXPECT_TRUE(v1_stats.streams.empty());
  EXPECT_EQ(v1_stats.unknown_stream_requests, 0u);
}

TEST(WireCodec, StatusAndOpNamesAreExhaustive) {
  EXPECT_STREQ(service::to_string(service::ServeStatus::kOk), "ok");
  EXPECT_STREQ(service::to_string(service::ServeStatus::kShedOverload),
               "shed_overload");
  EXPECT_STREQ(service::to_string(service::ServeStatus::kMalformedRequest),
               "malformed_request");
  EXPECT_STREQ(service::to_string(service::ServeStatus::kShuttingDown),
               "shutting_down");
  EXPECT_STREQ(service::to_string(service::ServeStatus::kUnknownStream),
               "unknown_stream");
  EXPECT_STREQ(net::to_string(net::Op::kHello), "hello");
  EXPECT_STREQ(net::to_string(net::Op::kStats), "stats");
  EXPECT_STREQ(net::to_string(static_cast<net::Op>(250)), "unknown");
}

// --- live-server fixture ----------------------------------------------------

fairds::FairDSConfig small_config() {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = 4;
  config.embed_train.epochs = 3;
  config.embed_train.batch_size = 24;
  config.certainty_threshold = 0.55;
  config.seed = 91;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  regime.eta_mean = std::min(0.95, regime.eta_mean + drift * 0.5);
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

Tensor zero_labeler(const Tensor& xs) { return Tensor({xs.dim(0), 2}); }

/// Wedges the service's fallback-labeler path until released, so tests can
/// hold a worker busy deterministically (the WorkerGate idiom, applied to
/// the server-side labeler policy).
struct LabelerGate {
  std::promise<void> release;
  std::shared_future<void> opened = release.get_future().share();
  std::atomic<int> entered{0};

  std::function<Tensor(const Tensor&)> labeler() {
    return [this](const Tensor& xs) {
      ++entered;
      opened.wait();
      return Tensor({xs.dim(0), 2});
    };
  }
  void wait_entered(int n = 1) {
    while (entered.load() < n) std::this_thread::yield();
  }
  void open() { release.set_value(); }
};

class NetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = regime_data(0.0, 96, 101);
    ds_ = std::make_unique<fairds::FairDS>(small_config(), db_);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history_0");
    zoo_ = std::make_unique<fairms::ModelZoo>(db_);
    for (int m = 0; m < 2; ++m) {
      zoo_->publish("braggnn", "seed_" + std::to_string(m),
                    ds_->distribution(regime_data(0.0, 16, 200 + m).xs),
                    std::vector<std::uint8_t>(64, 0x42));
    }
    manager_ = std::make_unique<fairms::ModelManager>(*zoo_, 1.0);
  }

  /// A served DataService + Server pair. Small max_payload so the
  /// oversized-frame test does not need to ship megabytes.
  struct Served {
    std::unique_ptr<service::DataService> service;
    std::unique_ptr<net::Server> server;
  };
  Served serve(service::DataServiceConfig config,
               std::function<Tensor(const Tensor&)> labeler = zero_labeler) {
    Served s;
    s.service = std::make_unique<service::DataService>(*ds_, config,
                                                       manager_.get());
    net::ServerConfig server_config;
    server_config.max_payload = 1u << 20;
    server_config.fallback_labeler = std::move(labeler);
    s.server = std::make_unique<net::Server>(*s.service, server_config);
    EXPECT_TRUE(s.server->ok());
    EXPECT_NE(s.server->port(), 0);
    return s;
  }

  store::DocStore db_;
  nn::Batchset history_;
  std::unique_ptr<fairds::FairDS> ds_;
  std::unique_ptr<fairms::ModelZoo> zoo_;
  std::unique_ptr<fairms::ModelManager> manager_;
};

TEST_F(NetFixture, EndToEndRoundTripsMatchInProcessResults) {
  auto served = serve({.workers = 2});
  net::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", served.server->port()));
  EXPECT_EQ(client.server_limits().version, net::kProtocolVersion);

  const nn::Batchset query = regime_data(0.0, 8, 102);

  const auto label = client.label({query.xs, 1e9, nullptr});
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->status, service::ServeStatus::kOk);
  fairds::ReuseStats direct_stats;
  (void)ds_->lookup_or_label(query.xs, 1e9, zero_labeler, &direct_stats);
  EXPECT_EQ(label->reuse.reused, direct_stats.reused);
  EXPECT_EQ(label->reuse.computed, direct_stats.computed);
  EXPECT_EQ(label->snapshot_version, ds_->snapshot()->version());
  EXPECT_EQ(label->batch.ys.dim(0), query.xs.dim(0));

  const auto lookup = client.lookup({query.xs, 7});
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->status, service::ServeStatus::kOk);
  EXPECT_EQ(lookup->batch.xs.dim(0), query.xs.dim(0));

  const auto recommend = client.recommend({"braggnn", query.xs});
  ASSERT_TRUE(recommend.has_value());
  EXPECT_EQ(recommend->status, service::ServeStatus::kOk);
  EXPECT_FALSE(recommend->pdf.empty());

  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->label_requests, 1u);
  EXPECT_EQ(stats->lookup_requests, 1u);
  EXPECT_EQ(stats->recommend_requests, 1u);
  EXPECT_EQ(stats->label_answered, 1u);

  // request_retrain over the wire: accepted, then observable in stats.
  const auto accepted = client.request_retrain(query.xs);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_TRUE(*accepted);
  served.service->wait_idle();
  const auto stats2 = client.stats();
  ASSERT_TRUE(stats2.has_value());
  EXPECT_EQ(stats2->retrain_checks, 1u);

  const auto counters = served.server->counters();
  EXPECT_GE(counters.accepted_connections, 1u);
  EXPECT_EQ(counters.malformed_frames, 0u);
  EXPECT_EQ(counters.frames_in, counters.frames_out);
}

TEST_F(NetFixture, MalformedFramesAreAnsweredOrClosedNeverFatal) {
  auto served = serve({.workers = 2});
  const std::uint16_t port = served.server->port();

  const auto expect_server_alive = [&] {
    net::Client probe;
    ASSERT_TRUE(probe.connect("127.0.0.1", port));
    EXPECT_TRUE(probe.stats().has_value());
  };

  {  // Truncated header, then EOF: connection dropped, server unharmed.
    const int fd = net::connect_to("127.0.0.1", port);
    ASSERT_GE(fd, 0);
    const std::uint8_t partial[7] = {0x46, 0x44, 0x4d, 0x53, 1, 0, 0};
    EXPECT_TRUE(net::write_all(fd, partial, sizeof(partial)));
    ::close(fd);
    expect_server_alive();
  }

  {  // Bad magic: the stream is unsynced — server closes the connection.
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::Bytes junk(net::kHeaderSize, 0x5a);
    ASSERT_TRUE(client.send_raw(junk));
    EXPECT_FALSE(client.recv_reply().has_value());  // clean EOF, no reply
    expect_server_alive();
  }

  {  // Declared payload over the server's cap: error reply, then close —
     // the server never buffers a byte of it.
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::WireWriter w;
    w.u32(net::kMagic);
    w.u16(net::kProtocolVersion);
    w.u8(static_cast<std::uint8_t>(net::Op::kLabel));
    w.u8(0);
    w.u64(77);
    w.u32((1u << 20) + 1);
    ASSERT_TRUE(client.send_raw(w.take()));
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.status, service::ServeStatus::kMalformedRequest);
    EXPECT_EQ(reply->header.correlation_id, 77u);
    EXPECT_EQ(reply->payload.size(), 0u);
    EXPECT_FALSE(client.recv_reply().has_value());  // then EOF
    expect_server_alive();
  }

  {  // Wrong protocol version: error reply, then close.
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    net::WireWriter w;
    w.u32(net::kMagic);
    w.u16(net::kProtocolVersion + 1);
    w.u8(static_cast<std::uint8_t>(net::Op::kStats));
    w.u8(0);
    w.u64(78);
    w.u32(0);
    ASSERT_TRUE(client.send_raw(w.take()));
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.status, service::ServeStatus::kMalformedRequest);
    EXPECT_FALSE(client.recv_reply().has_value());
    expect_server_alive();
  }

  {  // Unknown op with intact framing: answered, connection stays usable.
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    ASSERT_TRUE(client.send_raw(net::encode_frame(
        static_cast<net::Op>(99), service::ServeStatus::kOk, 79, {})));
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.status, service::ServeStatus::kMalformedRequest);
    EXPECT_EQ(reply->header.op, 99);
    EXPECT_EQ(reply->header.correlation_id, 79u);
    EXPECT_TRUE(client.stats().has_value());  // same connection still works
  }

  {  // Garbage payload on a known op: answered, connection stays usable.
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    const net::Bytes garbage = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11};
    ASSERT_TRUE(client.send_raw(net::encode_frame(
        net::Op::kLabel, service::ServeStatus::kOk, 80, garbage)));
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.status, service::ServeStatus::kMalformedRequest);
    EXPECT_TRUE(client.stats().has_value());
  }

  {  // Well-encoded tensor with a shape the service must never see
     // (rank 2, not [N,1,S,S]): rejected before dispatch.
    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", port));
    util::Rng rng(3);
    const auto reply =
        client.request_retrain(random_tensor(rng, {4, 4}));
    ASSERT_TRUE(reply.has_value());
    EXPECT_FALSE(*reply);
    EXPECT_TRUE(client.stats().has_value());
  }

  const auto counters = served.server->counters();
  EXPECT_GE(counters.malformed_frames, 6u);
  // Nothing malformed ever reached the service.
  const auto stats = served.service->stats();
  EXPECT_EQ(stats.label_requests, 0u);
  EXPECT_EQ(stats.recommend_requests, 0u);
}

TEST_F(NetFixture, AdmissionShedMapsToWireStatusInO1) {
  LabelerGate gate;
  auto served = serve({.workers = 1, .max_pending = 1}, gate.labeler());
  net::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", served.server->port()));

  const nn::Batchset query = regime_data(0.0, 4, 103);
  // threshold < 0: nothing can reuse, every request runs the gated labeler.
  const std::uint64_t wedge_cid =
      client.send_label({query.xs, -1.0, nullptr});
  ASSERT_NE(wedge_cid, 0u);
  gate.wait_entered();  // the only worker is now wedged

  // One more fits the pending queue; the rest must shed at the wire level
  // with an immediately-ready empty response.
  const std::uint64_t queued_cid =
      client.send_label({query.xs, -1.0, nullptr});
  std::vector<std::uint64_t> shed_cids;
  for (int i = 0; i < 5; ++i) {
    shed_cids.push_back(client.send_label({query.xs, -1.0, nullptr}));
  }
  for (int i = 0; i < 5; ++i) {
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.status, service::ServeStatus::kShedOverload);
    // Shed responses ship a default (empty-batch) body — cheap to encode.
    service::LabelResponse body;
    ASSERT_TRUE(net::decode_label_response(reply->payload, &body));
    EXPECT_EQ(body.batch.xs.numel(), 0u);
    EXPECT_TRUE(std::find(shed_cids.begin(), shed_cids.end(),
                          reply->header.correlation_id) != shed_cids.end());
  }

  gate.open();
  // The wedged and the queued request now complete with kOk.
  std::vector<std::uint64_t> ok_cids;
  for (int i = 0; i < 2; ++i) {
    const auto reply = client.recv_reply();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.status, service::ServeStatus::kOk);
    ok_cids.push_back(reply->header.correlation_id);
  }
  EXPECT_TRUE(std::find(ok_cids.begin(), ok_cids.end(), wedge_cid) !=
              ok_cids.end());
  EXPECT_TRUE(std::find(ok_cids.begin(), ok_cids.end(), queued_cid) !=
              ok_cids.end());

  served.service->wait_idle();
  const auto stats = served.service->stats();
  EXPECT_EQ(stats.label_requests, 7u);
  EXPECT_EQ(stats.label_answered, 2u);
  EXPECT_EQ(stats.label_shed, 5u);
  EXPECT_EQ(served.server->counters().shed_responses, 5u);
}

TEST_F(NetFixture, ResponsesReturnOutOfOrderMatchedByCorrelationId) {
  LabelerGate gate;
  auto served = serve({.workers = 1}, gate.labeler());
  net::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", served.server->port()));

  const nn::Batchset query = regime_data(0.0, 4, 104);
  const std::uint64_t slow_cid =
      client.send_label({query.xs, -1.0, nullptr});
  ASSERT_NE(slow_cid, 0u);
  gate.wait_entered();

  // Pipelined behind the wedged label: stats is served inline by the event
  // loop and must overtake it.
  const std::uint64_t fast_cid = client.send_stats();
  const auto first = client.recv_reply();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.correlation_id, fast_cid);
  EXPECT_EQ(first->header.op, static_cast<std::uint8_t>(net::Op::kStats));

  gate.open();
  const auto second = client.recv_reply();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->header.correlation_id, slow_cid);
  EXPECT_EQ(second->header.status, service::ServeStatus::kOk);
}

TEST_F(NetFixture, GracefulDrainCompletesInFlightAndRefusesNewWork) {
  LabelerGate gate;
  auto served = serve({.workers = 1}, gate.labeler());
  net::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", served.server->port()));

  const nn::Batchset query = regime_data(0.0, 4, 105);
  const std::uint64_t inflight_cid =
      client.send_label({query.xs, -1.0, nullptr});
  ASSERT_NE(inflight_cid, 0u);
  gate.wait_entered();

  served.server->begin_drain();

  // New user-plane work is refused with an explicit status...
  const auto refused = client.label({query.xs, 1e9, nullptr});
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->status, service::ServeStatus::kShuttingDown);
  // ...while observability stays up...
  EXPECT_TRUE(client.stats().has_value());
  EXPECT_GE(served.server->counters().shutdown_responses, 1u);

  // ...and the in-flight request still completes and is flushed.
  gate.open();
  const auto reply = client.recv_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->header.correlation_id, inflight_cid);
  EXPECT_EQ(reply->header.status, service::ServeStatus::kOk);

  served.server->stop();  // idempotent with the destructor
  served.server->stop();
}

TEST_F(NetFixture, ConcurrentClientsStressTheFrontEnd) {
  auto served = serve({.workers = 2});
  const std::uint16_t port = served.server->port();
  constexpr int kClients = 4;
  constexpr int kRequests = 8;

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::Client client;
      if (!client.connect("127.0.0.1", port)) return;
      const nn::Batchset query = regime_data(0.0, 4, 300 + c);
      for (int i = 0; i < kRequests; ++i) {
        const auto label = client.label({query.xs, 1e9, nullptr});
        if (label && label->status == service::ServeStatus::kOk) ++ok;
        const auto lookup = client.lookup({query.xs, 11});
        if (lookup && lookup->status == service::ServeStatus::kOk) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests * 2);

  served.service->wait_idle();
  const auto stats = served.service->stats();
  EXPECT_EQ(stats.label_requests, stats.label_answered + stats.label_shed);
  EXPECT_EQ(stats.lookup_requests,
            stats.lookup_answered + stats.lookup_shed);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// --- protocol v2: version negotiation + stream routing ----------------------

TEST_F(NetFixture, V1ClientInteroperatesWithV2Server) {
  auto served = serve({.workers = 2});
  net::Client v1_client(/*version=*/1);
  ASSERT_TRUE(v1_client.connect("127.0.0.1", served.server->port()));
  // The hello ack is min(client, server): the server committed to v1.
  EXPECT_EQ(v1_client.server_limits().version, 1u);

  // Every op round-trips in the v1 layout; stream-less frames route to the
  // default stream, exactly like an in-process request with an empty id.
  const nn::Batchset query = regime_data(0.0, 6, 401);
  const auto label = v1_client.label({query.xs, 1e9, nullptr});
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->status, service::ServeStatus::kOk);
  EXPECT_EQ(label->batch.ys.dim(0), query.xs.dim(0));

  const auto lookup = v1_client.lookup({query.xs, 5});
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->status, service::ServeStatus::kOk);

  const auto recommend = v1_client.recommend({"braggnn", query.xs});
  ASSERT_TRUE(recommend.has_value());
  EXPECT_EQ(recommend->status, service::ServeStatus::kOk);

  const auto accepted = v1_client.request_retrain(query.xs);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_TRUE(*accepted);
  served.service->wait_idle();

  // The v1 stats body carries the aggregates only — and they reflect the
  // work this client just did, proving the requests hit the real service.
  const auto stats = v1_client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->label_requests, 1u);
  EXPECT_EQ(stats->lookup_requests, 1u);
  EXPECT_EQ(stats->recommend_requests, 1u);
  EXPECT_EQ(stats->retrain_checks, 1u);
  EXPECT_TRUE(stats->streams.empty());

  // A v2 client on the same server sees the same ledger with the
  // per-stream breakdown attached (the default stream owns all of it).
  net::Client v2_client;
  ASSERT_TRUE(v2_client.connect("127.0.0.1", served.server->port()));
  const auto stats2 = v2_client.stats();
  ASSERT_TRUE(stats2.has_value());
  ASSERT_EQ(stats2->streams.size(), 1u);
  EXPECT_EQ(stats2->streams[0].stream, service::kDefaultStreamName);
  EXPECT_EQ(stats2->streams[0].label_requests, stats->label_requests);
  EXPECT_EQ(stats2->streams[0].retrain_checks, stats->retrain_checks);
}

TEST_F(NetFixture, UnknownStreamAnsweredStructurallyConnectionUsable) {
  auto served = serve({.workers = 2});
  net::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", served.server->port()));
  const nn::Batchset query = regime_data(0.0, 4, 402);

  // A hostile/stale stream id on every user-plane op: answered with the
  // structured status, never an abort or a dropped connection.
  const auto label = client.label({query.xs, 1e9, nullptr, "no-such"});
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(label->status, service::ServeStatus::kUnknownStream);

  const auto lookup = client.lookup({query.xs, 3, "no-such"});
  ASSERT_TRUE(lookup.has_value());
  EXPECT_EQ(lookup->status, service::ServeStatus::kUnknownStream);

  const auto recommend = client.recommend({"braggnn", query.xs, "no-such"});
  ASSERT_TRUE(recommend.has_value());
  EXPECT_EQ(recommend->status, service::ServeStatus::kUnknownStream);

  service::ServeStatus retrain_status = service::ServeStatus::kOk;
  const auto accepted = client.request_retrain(
      service::RetrainRequest{query.xs, "no-such"}, &retrain_status);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_FALSE(*accepted);
  EXPECT_EQ(retrain_status, service::ServeStatus::kUnknownStream);

  // The same connection keeps serving: stats, then a valid request. The
  // wire front-end resolves the stream before the service ever sees the
  // request, so the unknown-stream ledger lives in the server counters
  // (below), not in ServiceStats (that one counts in-process submits).
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->unknown_stream_requests, 0u);
  const auto ok = client.label({query.xs, 1e9, nullptr});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, service::ServeStatus::kOk);

  EXPECT_GE(served.server->counters().unknown_stream_responses, 4u);
  EXPECT_EQ(served.server->counters().malformed_frames, 0u);
}

}  // namespace
}  // namespace fairdms
