// Clustering tests: k-means recovery on separable blobs, WSS monotonicity,
// elbow knee detection, PDF properties, fuzzy-membership invariants and
// certainty behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "cluster/fuzzy.hpp"
#include "cluster/kmeans.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using cluster::KMeansConfig;
using cluster::KMeansModel;
using tensor::Tensor;

/// n points around each of k well-separated centers in d dims.
Tensor blobs(std::size_t k, std::size_t n_per, std::size_t d, double spread,
             util::Rng& rng, std::vector<std::size_t>* truth = nullptr) {
  Tensor xs({k * n_per, d});
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> center(d);
    for (auto& v : center) v = rng.uniform(-1.0, 1.0) * 20.0;
    for (std::size_t i = 0; i < n_per; ++i) {
      const std::size_t row = c * n_per + i;
      for (std::size_t j = 0; j < d; ++j) {
        xs.at(row, j) =
            static_cast<float>(center[j] + rng.gaussian(0.0, spread));
      }
      if (truth != nullptr) truth->push_back(c);
    }
  }
  return xs;
}

TEST(KMeans, RecoversSeparableBlobs) {
  util::Rng rng(1);
  std::vector<std::size_t> truth;
  const Tensor xs = blobs(4, 50, 3, 0.3, rng, &truth);
  KMeansConfig config;
  config.k = 4;
  config.seed = 2;
  const KMeansModel model = cluster::kmeans_fit(xs, config);

  // Every ground-truth blob must map to exactly one k-means cluster.
  const auto assign = model.assign_batch(xs);
  for (std::size_t c = 0; c < 4; ++c) {
    std::set<std::size_t> mapped;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth[i] == c) mapped.insert(assign[i]);
    }
    EXPECT_EQ(mapped.size(), 1u) << "blob " << c << " split across clusters";
  }
}

TEST(KMeans, WssDecreasesWithK) {
  util::Rng rng(3);
  const Tensor xs = blobs(5, 40, 2, 1.0, rng);
  double prev = 1e300;
  for (std::size_t k = 1; k <= 8; k += 2) {
    KMeansConfig config;
    config.k = k;
    config.seed = 5;
    const double wss = cluster::kmeans_fit(xs, config).wss(xs);
    EXPECT_LE(wss, prev * 1.02) << "k=" << k;  // small slack for local optima
    prev = wss;
  }
}

TEST(KMeans, AssignMatchesDistances) {
  util::Rng rng(4);
  const Tensor xs = blobs(3, 30, 4, 0.5, rng);
  KMeansConfig config;
  config.k = 3;
  const KMeansModel model = cluster::kmeans_fit(xs, config);
  const float* px = xs.data();
  for (std::size_t i = 0; i < 10; ++i) {
    const std::span<const float> x(px + i * 4, 4);
    const auto d = model.distances(x);
    const std::size_t a = model.assign(x);
    EXPECT_EQ(a, static_cast<std::size_t>(
                     std::min_element(d.begin(), d.end()) - d.begin()));
  }
}

TEST(KMeans, ClusterPdfSumsToOneAndMatchesBlobShares) {
  util::Rng rng(5);
  const Tensor xs = blobs(2, 100, 2, 0.2, rng);
  KMeansConfig config;
  config.k = 2;
  const KMeansModel model = cluster::kmeans_fit(xs, config);
  const auto pdf = model.cluster_pdf(xs);
  EXPECT_EQ(pdf.size(), 2u);
  EXPECT_NEAR(pdf[0] + pdf[1], 1.0, 1e-12);
  EXPECT_NEAR(pdf[0], 0.5, 0.02);  // equal-sized blobs
}

TEST(KMeans, SingletonClustersAndEmptyReseeding) {
  // k == n: every point is its own centroid, WSS == 0.
  util::Rng rng(6);
  const Tensor xs = blobs(1, 6, 2, 3.0, rng);
  KMeansConfig config;
  config.k = 6;
  const KMeansModel model = cluster::kmeans_fit(xs, config);
  EXPECT_NEAR(model.wss(xs), 0.0, 1e-6);
}

TEST(Elbow, FindsTrueBlobCount) {
  util::Rng rng(7);
  const Tensor xs = blobs(5, 60, 3, 0.25, rng);
  const auto result = cluster::elbow_k(xs, 2, 10, 11);
  EXPECT_EQ(result.wss_curve.size(), 9u);
  // The knee should land on (or right next to) the true count of 5.
  EXPECT_GE(result.best_k, 4u);
  EXPECT_LE(result.best_k, 6u);
}

TEST(Fuzzy, MembershipsSumToOne) {
  util::Rng rng(8);
  const Tensor xs = blobs(3, 20, 2, 0.5, rng);
  KMeansConfig config;
  config.k = 3;
  const KMeansModel model = cluster::kmeans_fit(xs, config);
  const float* px = xs.data();
  for (std::size_t i = 0; i < 20; ++i) {
    const auto u = cluster::fuzzy_memberships(model, {px + i * 2, 2});
    double sum = 0.0;
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Fuzzy, ExactCentroidHitHasFullMembership) {
  const Tensor centroids = Tensor::from_vector({2, 2}, {0, 0, 10, 10});
  const KMeansModel model(centroids);
  const std::vector<float> x{10.0f, 10.0f};
  const auto u = cluster::fuzzy_memberships(model, x);
  EXPECT_DOUBLE_EQ(u[1], 1.0);
  EXPECT_DOUBLE_EQ(u[0], 0.0);
}

TEST(Fuzzy, CertaintyHighForTightBlobsLowForDiffuseData) {
  util::Rng rng(9);
  const Tensor tight = blobs(3, 50, 2, 0.1, rng);
  KMeansConfig config;
  config.k = 3;
  const KMeansModel tight_model = cluster::kmeans_fit(tight, config);
  EXPECT_GT(cluster::dataset_certainty(tight_model, tight), 0.95);

  // Same model applied to data halfway between its centroids: ambiguous.
  const Tensor& c = tight_model.centroids();
  Tensor midpoints({40, 2});
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      midpoints.at(i, j) =
          0.5f * (c.at(0, j) + c.at(1, j)) +
          static_cast<float>(rng.gaussian(0.0, 0.05));
    }
  }
  EXPECT_LT(cluster::dataset_certainty(tight_model, midpoints), 0.5);
}

TEST(Fuzzy, ConfidenceThresholdIsRespected) {
  util::Rng rng(10);
  const Tensor xs = blobs(2, 40, 2, 0.3, rng);
  KMeansConfig config;
  config.k = 2;
  const KMeansModel model = cluster::kmeans_fit(xs, config);
  cluster::FuzzyConfig strict;
  strict.confidence_threshold = 0.999;
  cluster::FuzzyConfig lax;
  lax.confidence_threshold = 0.5;
  EXPECT_LE(cluster::dataset_certainty(model, xs, strict),
            cluster::dataset_certainty(model, xs, lax));
}

}  // namespace
}  // namespace fairdms
