// Storage-engine semantics: randomized mem-vs-log parity (every query
// result, approx_bytes, and every charged byte must agree across engines,
// at shard counts 1/2/8), log-engine durability — reopen replay, tombstone
// persistence, compaction, byte-by-byte torn-tail truncation, and a child
// process SIGKILLed mid-ingest losing at most the tail record — plus the
// engine-selection plumbing through DocStoreConfig / FairDSConfig /
// DataServiceConfig.
//
// The crash tests fork() and run single-threaded insert loops in the
// child, staying under the store's per-shard fan-out threshold so no
// thread pool is ever spun on either side of the fork. They are declared
// first so they run before any test that starts service worker threads.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fairds/fairds.hpp"
#include "service/data_service.hpp"
#include "store/docstore.hpp"
#include "store/log_engine.hpp"
#include "store/persist.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

namespace fs = std::filesystem;

using store::Binary;
using store::Collection;
using store::DocId;
using store::EngineKind;
using store::LogEngine;
using store::Object;
using store::RemoteLink;
using store::RemoteLinkConfig;
using store::StorageEngineConfig;
using store::Value;

/// Counts requests/bytes without sleeping (latency 0 skips the wire model
/// but still accounts), so tests can compare charge accounting exactly.
RemoteLink accounting_link() {
  return RemoteLink(RemoteLinkConfig{.latency_seconds = 0.0,
                                     .bandwidth_bytes_per_s = 1e12});
}

/// A fresh per-test scratch directory (removed on destruction).
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(::testing::TempDir() + "fairdms_engines_" + tag + "_" +
             std::to_string(::getpid())) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

StorageEngineConfig log_config(const std::string& directory) {
  StorageEngineConfig config;
  config.kind = EngineKind::kLog;
  config.directory = directory;
  return config;
}

Value random_doc(util::Rng& rng) {
  Object doc;
  doc["cluster"] = Value(static_cast<std::int64_t>(rng.uniform_index(8)));
  doc["tag"] = Value(static_cast<std::int64_t>(rng.uniform_index(5)));
  Binary blob(rng.uniform_index(48));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  doc["blob"] = Value(std::move(blob));
  return Value(std::move(doc));
}

/// Deterministic document for crash tests: the parent can regenerate
/// exactly what the killed child inserted for any id.
Value doc_for(DocId id) {
  util::Rng rng(1000 + id);
  Object doc;
  doc["seq"] = Value(static_cast<std::int64_t>(id));
  Binary blob(16 + rng.uniform_index(48));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  doc["blob"] = Value(std::move(blob));
  return Value(std::move(doc));
}

Value expected_stored_doc(DocId id) {
  Value doc = doc_for(id);
  doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
  return doc;
}

void expect_same_docs(const std::optional<Value>& a,
                      const std::optional<Value>& b, std::size_t op) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
  if (a.has_value()) {
    EXPECT_EQ(a->compare(*b), 0) << "op " << op;
  }
}

// --- crash recovery (declared first: forks must precede worker threads) -----

/// SIGKILLs a child mid-ingest and asserts the reopened collection holds a
/// contiguous prefix per shard: the acked documents all survive, every
/// recovered document is byte-exact, and at most the in-flight tail is
/// gone.
void run_sigkill_recovery(std::size_t shards) {
  TempDir dir("sigkill_" + std::to_string(shards));
  constexpr std::size_t kAckAfter = 40;

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: ack after kAckAfter single-threaded inserts, then keep
    // appending until the parent kills us mid-write. No gtest, no threads,
    // no exit handlers — _exit only on the (unexpected) fall-through.
    ::close(pipefd[0]);
    Collection col("crash", nullptr, shards, log_config(dir.path));
    for (DocId i = 1; i <= 100000; ++i) {
      col.insert_one(doc_for(i));
      if (i == kAckAfter) {
        const char byte = 'a';
        if (::write(pipefd[1], &byte, 1) != 1) ::_exit(3);
      }
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);
  char byte = 0;
  ASSERT_EQ(::read(pipefd[0], &byte, 1), 1);
  ::close(pipefd[0]);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Reopen: replay must recover every acked record (completed write()s
  // survive process death in the page cache) and truncate any torn tail.
  Collection col("crash", nullptr, shards, log_config(dir.path));
  const std::vector<DocId> ids = col.all_ids();
  ASSERT_GE(ids.size(), kAckAfter);
  // Ids are issued 1, 2, 3, ... and routed to shard id % shards; a crash
  // can only lose each shard's own tail, so the recovered ids of every
  // residue class must be that class's full prefix 1..max with no holes:
  // every id below the class maximum whose residue matches is present.
  std::vector<bool> present(ids.back() + 1, false);
  std::vector<DocId> class_max(shards, 0);
  for (const DocId id : ids) {
    present[id] = true;
    class_max[id % shards] = std::max(class_max[id % shards], id);
  }
  for (DocId id = 1; id <= ids.back(); ++id) {
    if (id <= class_max[id % shards]) {
      EXPECT_TRUE(present[id]) << "hole: id " << id << " lost but shard "
                               << id % shards << " kept later records";
    }
  }
  // Every recovered document is byte-exact, and the id counter resumed
  // past the highest survivor.
  for (const DocId id : ids) {
    const auto doc = col.find_by_id(id);
    ASSERT_TRUE(doc.has_value()) << "id " << id;
    EXPECT_EQ(doc->compare(expected_stored_doc(id)), 0) << "id " << id;
  }
  EXPECT_EQ(col.next_id(), ids.back() + 1);
  const DocId fresh = col.insert_one(doc_for(999999));
  EXPECT_GT(fresh, ids.back());
}

TEST(LogCrash, SigkillMidIngestLosesAtMostTailRecordOneShard) {
  run_sigkill_recovery(1);
}

TEST(LogCrash, SigkillMidIngestLosesAtMostTailRecordTwoShards) {
  run_sigkill_recovery(2);
}

TEST(LogCrash, TruncationSweepRecoversLongestValidPrefix) {
  TempDir dir("truncsweep");
  const std::string seg = dir.path + "/shard-0.log";
  std::vector<std::size_t> doc_ends;  // segment size after each insert
  {
    LogEngine engine(seg);
    for (DocId id = 1; id <= 6; ++id) {
      Value doc = expected_stored_doc(id);
      const std::size_t bytes = doc.encoded_size();
      engine.insert(id, std::move(doc), bytes);
      doc_ends.push_back(engine.segment_bytes());
    }
  }
  Binary original;
  {
    std::ifstream in(seg, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(original.size(), doc_ends.back());

  // Cut the segment at every byte offset; reopen must never crash and must
  // recover exactly the records whose bytes fully survived the cut.
  const std::string cut_path = dir.path + "/cut.log";
  for (std::size_t cut = 0; cut <= original.size(); ++cut) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(original.data()),
                static_cast<std::streamsize>(cut));
    }
    LogEngine engine(cut_path);
    const std::size_t expect_docs =
        static_cast<std::size_t>(std::count_if(
            doc_ends.begin(), doc_ends.end(),
            [cut](std::size_t end) { return end <= cut; }));
    ASSERT_EQ(engine.size(), expect_docs) << "cut at byte " << cut;
    std::size_t ignored = 0;
    for (DocId id = 1; id <= expect_docs; ++id) {
      const auto doc = engine.fetch(id, {}, ignored);
      ASSERT_TRUE(doc.has_value()) << "cut " << cut << " id " << id;
      EXPECT_EQ(doc->compare(expected_stored_doc(id)), 0);
    }
  }
}

TEST(LogCrash, CorruptTailRecordIsDroppedOnReopen) {
  TempDir dir("corrupt");
  const std::string seg = dir.path + "/shard-0.log";
  std::size_t second_doc_end = 0;
  {
    LogEngine engine(seg);
    for (DocId id = 1; id <= 3; ++id) {
      Value doc = expected_stored_doc(id);
      const std::size_t bytes = doc.encoded_size();
      engine.insert(id, std::move(doc), bytes);
      if (id == 2) second_doc_end = engine.segment_bytes();
    }
  }
  // Flip one payload byte inside the third record: its checksum fails, so
  // replay keeps records 1-2 and truncates the corrupt tail away.
  {
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(second_doc_end + 20));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(second_doc_end + 20));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(second_doc_end + 20));
    f.write(&byte, 1);
  }
  LogEngine engine(seg);
  EXPECT_EQ(engine.size(), 2u);
  EXPECT_EQ(engine.segment_bytes(), second_doc_end);
  std::size_t ignored = 0;
  EXPECT_TRUE(engine.fetch(1, {}, ignored).has_value());
  EXPECT_TRUE(engine.fetch(2, {}, ignored).has_value());
  EXPECT_FALSE(engine.fetch(3, {}, ignored).has_value());
}

// --- randomized engine parity -----------------------------------------------

/// Drives identical randomized op sequences against a MemEngine and a
/// LogEngine collection (same shard count); every query result and both
/// links' byte accounting must agree at every step.
void run_engine_parity(std::size_t shards, std::uint64_t seed) {
  TempDir dir("parity_" + std::to_string(shards));
  const RemoteLink link_a = accounting_link();
  const RemoteLink link_b = accounting_link();
  Collection a("parity", &link_a, shards);
  Collection b("parity", &link_b, shards, log_config(dir.path));
  ASSERT_STREQ(a.engine_name(), "mem");
  ASSERT_STREQ(b.engine_name(), "log");
  a.create_index("cluster");
  b.create_index("cluster");

  util::Rng rng(seed);
  std::vector<DocId> live;
  const auto any_id = [&](util::Rng& r) -> DocId {
    if (!live.empty() && r.uniform() < 0.85) {
      return live[r.uniform_index(live.size())];
    }
    return a.next_id() + r.uniform_index(4);
  };

  constexpr std::size_t kOps = 1000;
  for (std::size_t op = 0; op < kOps; ++op) {
    util::Rng op_rng = rng.fork(op);
    switch (op_rng.uniform_index(13)) {
      case 0: {  // insert_one
        Value doc = random_doc(op_rng);
        Value copy = doc;
        const DocId ia = a.insert_one(std::move(doc));
        const DocId ib = b.insert_one(std::move(copy));
        ASSERT_EQ(ia, ib) << "op " << op;
        live.push_back(ia);
        break;
      }
      case 1: {  // insert_many
        const std::size_t n = 1 + op_rng.uniform_index(6);
        std::vector<Value> docs;
        std::vector<Value> copies;
        for (std::size_t i = 0; i < n; ++i) {
          docs.push_back(random_doc(op_rng));
          copies.push_back(docs.back());
        }
        const auto ia = a.insert_many(std::move(docs));
        const auto ib = b.insert_many(std::move(copies));
        ASSERT_EQ(ia, ib) << "op " << op;
        live.insert(live.end(), ia.begin(), ia.end());
        break;
      }
      case 2: {  // update_field (sometimes on a missing id)
        const DocId id = any_id(op_rng);
        Value v(static_cast<std::int64_t>(op_rng.uniform_index(8)));
        EXPECT_EQ(a.update_field(id, "cluster", v),
                  b.update_field(id, "cluster", v))
            << "op " << op;
        break;
      }
      case 3: {  // update_fields, multi-field
        const DocId id = any_id(op_rng);
        Object fields;
        fields["tag"] =
            Value(static_cast<std::int64_t>(op_rng.uniform_index(5)));
        Binary blob(op_rng.uniform_index(32));
        for (auto& byte : blob) {
          byte = static_cast<std::uint8_t>(op_rng.uniform_index(256));
        }
        fields["blob"] = Value(std::move(blob));
        Object copy = fields;
        EXPECT_EQ(a.update_fields(id, std::move(fields)),
                  b.update_fields(id, std::move(copy)))
            << "op " << op;
        break;
      }
      case 4: {  // update_many with duplicate and missing ids
        std::vector<std::pair<DocId, Object>> updates;
        const std::size_t n = 1 + op_rng.uniform_index(5);
        for (std::size_t i = 0; i < n; ++i) {
          Object fields;
          fields["tag"] =
              Value(static_cast<std::int64_t>(op_rng.uniform_index(5)));
          updates.emplace_back(any_id(op_rng), std::move(fields));
        }
        auto copy = updates;
        EXPECT_EQ(a.update_many(std::move(updates)),
                  b.update_many(std::move(copy)))
            << "op " << op;
        break;
      }
      case 5: {  // replace_one
        const DocId id = any_id(op_rng);
        Value doc = random_doc(op_rng);
        Value copy = doc;
        EXPECT_EQ(a.replace_one(id, std::move(doc)),
                  b.replace_one(id, std::move(copy)))
            << "op " << op;
        break;
      }
      case 6: {  // remove_one
        const DocId id = any_id(op_rng);
        EXPECT_EQ(a.remove_one(id), b.remove_one(id)) << "op " << op;
        std::erase(live, id);
        break;
      }
      case 7: {  // find_by_id
        const DocId id = any_id(op_rng);
        expect_same_docs(a.find_by_id(id), b.find_by_id(id), op);
        break;
      }
      case 8: {  // find_many with duplicates/missing, sometimes projected
        std::vector<DocId> ids;
        const std::size_t n = 1 + op_rng.uniform_index(8);
        for (std::size_t i = 0; i < n; ++i) ids.push_back(any_id(op_rng));
        if (n > 1) ids.push_back(ids.front());
        std::vector<std::string> fields;
        if (op_rng.uniform() < 0.5) fields = {"cluster", "blob"};
        const auto ra = a.find_many(ids, fields);
        const auto rb = b.find_many(ids, fields);
        ASSERT_EQ(ra.size(), rb.size()) << "op " << op;
        for (std::size_t i = 0; i < ra.size(); ++i) {
          expect_same_docs(ra[i], rb[i], op);
        }
        break;
      }
      case 9: {  // find_eq: indexed field and scanned field
        const Value c(static_cast<std::int64_t>(op_rng.uniform_index(8)));
        EXPECT_EQ(a.find_eq("cluster", c), b.find_eq("cluster", c))
            << "op " << op;
        const Value t(static_cast<std::int64_t>(op_rng.uniform_index(5)));
        EXPECT_EQ(a.find_eq("tag", t), b.find_eq("tag", t)) << "op " << op;
        break;
      }
      case 10: {  // find_range on the indexed field
        const std::int64_t lo =
            static_cast<std::int64_t>(op_rng.uniform_index(6));
        const std::int64_t hi =
            lo + 1 + static_cast<std::int64_t>(op_rng.uniform_index(3));
        EXPECT_EQ(a.find_range("cluster", Value(lo), Value(hi)),
                  b.find_range("cluster", Value(lo), Value(hi)))
            << "op " << op;
        break;
      }
      case 11: {  // bulk introspection
        EXPECT_EQ(a.all_ids(), b.all_ids()) << "op " << op;
        EXPECT_EQ(a.size(), b.size()) << "op " << op;
        break;
      }
      case 12: {  // compaction is transparent to every later op
        a.compact();
        b.compact();
        break;
      }
    }
    ASSERT_EQ(a.approx_bytes(), b.approx_bytes()) << "op " << op;
    ASSERT_EQ(a.next_id(), b.next_id()) << "op " << op;
    ASSERT_EQ(link_a.bytes_moved(), link_b.bytes_moved()) << "op " << op;
    ASSERT_EQ(link_a.requests(), link_b.requests()) << "op " << op;
  }
  EXPECT_GT(a.size(), 0u);
  EXPECT_GT(link_a.bytes_moved(), 0u);
}

TEST(EngineParity, LogMatchesMemOneShard) { run_engine_parity(1, 44); }
TEST(EngineParity, LogMatchesMemTwoShards) { run_engine_parity(2, 55); }
TEST(EngineParity, LogMatchesMemEightShards) { run_engine_parity(8, 66); }

// --- durability & compaction ------------------------------------------------

TEST(LogDurability, ReopenRecoversDocumentsTombstonesAndIdCounter) {
  TempDir dir("reopen");
  util::Rng rng(77);
  std::vector<DocId> ids;
  std::size_t bytes_before = 0;
  DocId next_before = 0;
  {
    Collection col("samples", nullptr, 2, log_config(dir.path));
    for (int i = 0; i < 40; ++i) ids.push_back(col.insert_one(random_doc(rng)));
    col.update_field(ids[3], "cluster", Value(std::int64_t{42}));
    col.replace_one(ids[5], random_doc(rng));
    ASSERT_TRUE(col.remove_one(ids[7]));
    ASSERT_TRUE(col.remove_one(ids[8]));
    bytes_before = col.approx_bytes();
    next_before = col.next_id();
  }  // destructor closes the segments

  Collection col("samples", nullptr, 2, log_config(dir.path));
  EXPECT_EQ(col.size(), ids.size() - 2);
  EXPECT_EQ(col.approx_bytes(), bytes_before);
  EXPECT_EQ(col.next_id(), next_before);
  EXPECT_FALSE(col.find_by_id(ids[7]).has_value());  // tombstones held
  EXPECT_FALSE(col.find_by_id(ids[8]).has_value());
  const auto updated = col.find_by_id(ids[3]);
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(updated->at("cluster").as_int(), 42);
  // Indexes are in-memory: a reopened collection starts index-less and
  // re-creating them backfills from the replayed documents.
  EXPECT_FALSE(col.has_index("cluster"));
  col.create_index("cluster");
  EXPECT_EQ(col.find_eq("cluster", Value(std::int64_t{42})),
            std::vector<DocId>{ids[3]});
}

TEST(LogDurability, CompactionShrinksSegmentsAndSurvivesReopen) {
  TempDir dir("compact");
  util::Rng rng(88);
  std::vector<DocId> ids;
  {
    Collection col("samples", nullptr, 1, log_config(dir.path));
    for (int i = 0; i < 30; ++i) ids.push_back(col.insert_one(random_doc(rng)));
    for (int round = 0; round < 5; ++round) {
      for (const DocId id : ids) {
        col.update_field(id, "cluster",
                         Value(static_cast<std::int64_t>(round)));
      }
    }
    for (int i = 20; i < 30; ++i) col.remove_one(ids[i]);

    const auto before = fs::file_size(dir.path + "/shard-0.log");
    col.compact();
    const auto after = fs::file_size(dir.path + "/shard-0.log");
    EXPECT_LT(after, before / 3);  // 6 versions + tombstones -> 1 version
    EXPECT_EQ(col.size(), 20u);
  }

  Collection col("samples", nullptr, 1, log_config(dir.path));
  EXPECT_EQ(col.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    const auto doc = col.find_by_id(ids[i]);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->at("cluster").as_int(), 4);
  }
}

TEST(LogDurability, SnapshotsRoundTripAcrossEngines) {
  TempDir dir("xengine");
  const std::string snap = dir.path + "/snap";
  // Write with a log-engine store, load into a mem store, and back.
  store::DocStoreConfig src_config;
  src_config.engine = log_config(dir.path + "/src_data");
  store::DocStore src(src_config);
  auto& col = src.collection("samples", 2);
  col.create_index("cluster");
  util::Rng rng(99);
  for (int i = 0; i < 32; ++i) col.insert_one(random_doc(rng));
  col.remove_one(3);
  store::save_store(src, snap);

  store::DocStore mem_dst;
  store::load_store(mem_dst, snap);
  auto& mem_col = mem_dst.collection("samples");
  EXPECT_STREQ(mem_col.engine_name(), "mem");
  EXPECT_EQ(mem_col.size(), col.size());
  EXPECT_EQ(mem_col.approx_bytes(), col.approx_bytes());
  EXPECT_EQ(mem_col.all_ids(), col.all_ids());
  EXPECT_EQ(mem_col.index_fields(), col.index_fields());

  store::DocStoreConfig log_dst_config;
  log_dst_config.engine = log_config(dir.path + "/dst_data");
  store::DocStore log_dst(log_dst_config);
  store::load_store(log_dst, snap);
  auto& log_col = log_dst.collection("samples");
  EXPECT_STREQ(log_col.engine_name(), "log");
  EXPECT_EQ(log_col.size(), col.size());
  EXPECT_EQ(log_col.approx_bytes(), col.approx_bytes());
  EXPECT_EQ(log_col.all_ids(), col.all_ids());
  for (const DocId id : col.all_ids()) {
    expect_same_docs(col.find_by_id(id), log_col.find_by_id(id), id);
  }
}

// --- engine-selection plumbing ----------------------------------------------

TEST(EnginePlumbing, ParseAndPrintEngineKinds) {
  EXPECT_EQ(store::parse_engine_kind("mem"), EngineKind::kMem);
  EXPECT_EQ(store::parse_engine_kind("log"), EngineKind::kLog);
  EXPECT_FALSE(store::parse_engine_kind("wiredtiger").has_value());
  EXPECT_STREQ(store::to_string(EngineKind::kMem), "mem");
  EXPECT_STREQ(store::to_string(EngineKind::kLog), "log");
}

TEST(EnginePlumbing, DocStoreAppliesEngineWithPerCollectionDirectories) {
  TempDir dir("plumb_store");
  store::DocStoreConfig config;
  config.engine = log_config(dir.path);
  store::DocStore db(config);
  EXPECT_EQ(db.engine_config().kind, EngineKind::kLog);

  auto& a = db.collection("alpha");
  auto& b = db.collection("beta");
  EXPECT_STREQ(a.engine_name(), "log");
  EXPECT_STREQ(b.engine_name(), "log");
  a.insert_one(doc_for(1));
  b.insert_one(doc_for(2));
  // The store root is shared; each collection owns a subdirectory.
  EXPECT_TRUE(fs::exists(dir.path + "/alpha/engine.meta"));
  EXPECT_TRUE(fs::exists(dir.path + "/beta/engine.meta"));

  // A per-collection override beats the store default.
  StorageEngineConfig mem_engine;
  EXPECT_STREQ(db.collection("scratch", 0, &mem_engine).engine_name(), "mem");
  // Re-getting with a different engine returns the existing collection.
  EXPECT_STREQ(db.collection("alpha", 0, &mem_engine).engine_name(), "log");
}

TEST(EnginePlumbing, FairDSStorageConfigReachesSampleCollection) {
  TempDir dir("plumb_fairds");
  store::DocStore db;
  fairds::FairDSConfig config;
  config.storage = log_config(dir.path + "/samples");
  fairds::FairDS ds(config, db);
  EXPECT_STREQ(ds.storage_engine(), "log");
  EXPECT_TRUE(fs::exists(dir.path + "/samples/engine.meta"));

  service::DataServiceConfig svc;
  svc.workers = 1;
  svc.storage_engine = "log";
  service::DataService service(ds, svc);  // matching declaration passes
  (void)service;
}

TEST(EnginePlumbingDeathTest, DataServiceRejectsEngineMismatch) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  store::DocStore db;
  fairds::FairDS ds(fairds::FairDSConfig{}, db);  // mem-backed samples
  service::DataServiceConfig svc;
  svc.workers = 1;
  svc.storage_engine = "log";
  EXPECT_DEATH(service::DataService(ds, svc), "storage_engine");
}

TEST(EnginePlumbingDeathTest, LogDirectoryPinsShardCount) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  TempDir dir("reshard");
  { Collection col("samples", nullptr, 2, log_config(dir.path)); }
  EXPECT_DEATH(Collection("samples", nullptr, 4, log_config(dir.path)),
               "resharding");
}

}  // namespace
}  // namespace fairdms
