// Deterministic multi-thread stress suite for the sharded document store:
// N writers x M readers over one collection, seeded per-thread op
// schedules, invariant checks on approx_bytes / doc counts / per-document
// atomicity, and mid-stream find_many consistency. Carries the `service`
// ctest label so it runs under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "store/docstore.hpp"
#include "store/persist.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using store::Binary;
using store::Collection;
using store::DocId;
using store::Object;
using store::Value;

/// approx_bytes must always equal the sum of the stored documents' encoded
/// sizes (the accounting invariant every write op maintains).
void expect_bytes_consistent(const Collection& col) {
  std::size_t recomputed = 0;
  col.scan([&](DocId, const Value& doc) { recomputed += doc.encoded_size(); });
  EXPECT_EQ(col.approx_bytes(), recomputed);
}

Value fixed_size_doc(std::int64_t key, std::int64_t payload) {
  Object doc;
  doc["k"] = Value(key);
  doc["payload"] = Value(payload);
  return Value(std::move(doc));
}

TEST(StoreConcurrency, ParallelInsertersProduceContiguousConsistentStore) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 400;
  Collection col("ingest", nullptr, 8);
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      util::Rng rng(1000 + w);
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        col.insert_one(fixed_size_doc(
            static_cast<std::int64_t>(rng.uniform_index(4)),
            static_cast<std::int64_t>(rng.uniform_index(1 << 20))));
      }
    });
  }
  for (auto& t : writers) t.join();

  constexpr std::size_t kTotal = kWriters * kPerWriter;
  EXPECT_EQ(col.size(), kTotal);
  EXPECT_EQ(col.next_id(), kTotal + 1);
  const auto ids = col.all_ids();
  ASSERT_EQ(ids.size(), kTotal);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1);  // contiguous ascending block, no id lost
  }
  expect_bytes_consistent(col);
}

TEST(StoreConcurrency, ReadersSeeAtomicMultiFieldUpdates) {
  // Writers keep the invariant b == 2a inside every update_fields call; a
  // reader observing a torn document (mixed generations of a and b) means
  // per-document atomicity broke.
  constexpr std::size_t kDocs = 256;
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kReaders = 2;
  constexpr std::size_t kWritesPerWriter = 1200;
  constexpr std::size_t kReadsPerReader = 600;
  Collection col("atomic", nullptr, 8);
  std::vector<DocId> ids;
  for (std::size_t i = 0; i < kDocs; ++i) {
    Object doc;
    doc["a"] = Value(static_cast<std::int64_t>(i));
    doc["b"] = Value(static_cast<std::int64_t>(2 * i));
    ids.push_back(col.insert_one(Value(std::move(doc))));
  }

  std::atomic<std::size_t> torn{0};
  const auto check_doc = [&](const Value& doc) {
    if (doc.at("b").as_int() != 2 * doc.at("a").as_int()) {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(2000 + w);
      for (std::size_t i = 0; i < kWritesPerWriter; ++i) {
        const DocId id = ids[rng.uniform_index(ids.size())];
        const auto v = static_cast<std::int64_t>(rng.uniform_index(1 << 16));
        Object fields;
        fields["a"] = Value(v);
        fields["b"] = Value(2 * v);
        EXPECT_TRUE(col.update_fields(id, std::move(fields)));
      }
    });
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      util::Rng rng(3000 + r);
      for (std::size_t i = 0; i < kReadsPerReader; ++i) {
        // Mid-stream find_many: every element of the batch must be an
        // internally consistent document (whole-batch atomicity across
        // shards is explicitly not promised).
        std::vector<DocId> batch;
        for (std::size_t j = 0; j < 16; ++j) {
          batch.push_back(ids[rng.uniform_index(ids.size())]);
        }
        const auto docs = col.find_many(batch);
        for (const auto& doc : docs) {
          ASSERT_TRUE(doc.has_value());
          check_doc(*doc);
        }
        const auto one = col.find_by_id(ids[rng.uniform_index(ids.size())]);
        ASSERT_TRUE(one.has_value());
        check_doc(*one);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(col.size(), kDocs);
  expect_bytes_consistent(col);
}

TEST(StoreConcurrency, IndexedQueriesStayConsistentDuringIngest) {
  // Insert-only workload: any id find_eq returns must exist and match the
  // queried value, and results must be ascending. Readers race the index
  // maintenance inside each shard.
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kPerWriter = 500;
  Collection col("indexed", nullptr, 8);
  col.create_index("k");

  std::atomic<bool> done{false};
  std::atomic<std::size_t> violations{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(4000 + r);
      while (!done.load(std::memory_order_acquire)) {
        const auto key = static_cast<std::int64_t>(rng.uniform_index(4));
        const auto hits = col.find_eq("k", Value(key));
        if (!std::is_sorted(hits.begin(), hits.end())) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        for (const DocId id : hits) {
          const auto doc = col.find_by_id(id);
          if (!doc.has_value() || doc->at("k").as_int() != key) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Exercised concurrently; content is racy by design, order is not.
        const auto snapshot_ids = col.all_ids();
        if (!std::is_sorted(snapshot_ids.begin(), snapshot_ids.end())) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      util::Rng rng(5000 + w);
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        if (rng.uniform() < 0.2) {
          std::vector<Value> batch;
          for (std::size_t j = 0; j < 4; ++j) {
            batch.push_back(fixed_size_doc(
                static_cast<std::int64_t>(rng.uniform_index(4)),
                static_cast<std::int64_t>(i)));
          }
          col.insert_many(std::move(batch));
        } else {
          col.insert_one(fixed_size_doc(
              static_cast<std::int64_t>(rng.uniform_index(4)),
              static_cast<std::int64_t>(i)));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  std::size_t indexed = 0;
  for (std::int64_t key = 0; key < 4; ++key) {
    indexed += col.find_eq("k", Value(key)).size();
  }
  EXPECT_EQ(indexed, col.size());  // every document is indexed exactly once
  expect_bytes_consistent(col);
}

TEST(StoreConcurrency, BatchedFanoutRacesSingleDocWrites) {
  // Batched ops large enough to fan out onto the thread pool (>= the
  // internal threshold) race per-document writers; per-document results
  // must still be consistent.
  constexpr std::size_t kBatch = 600;  // above the fan-out threshold
  Collection col("fanout", nullptr, 4);
  std::vector<Value> seed_docs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    seed_docs.push_back(fixed_size_doc(0, 0));
  }
  const auto ids = col.insert_many(std::move(seed_docs));

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // batched updater (fans out per shard)
    for (int round = 0; round < 6; ++round) {
      std::vector<std::pair<DocId, Object>> updates;
      for (const DocId id : ids) {
        Object fields;
        fields["payload"] = Value(std::int64_t{round});
        updates.emplace_back(id, std::move(fields));
      }
      EXPECT_EQ(col.update_many(std::move(updates)), ids.size());
    }
  });
  threads.emplace_back([&] {  // batched reader (fans out per shard)
    for (int round = 0; round < 12; ++round) {
      const auto docs = col.find_many(ids);
      for (const auto& doc : docs) {
        ASSERT_TRUE(doc.has_value());
        const auto v = doc->at("payload").as_int();
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 6);
      }
    }
  });
  threads.emplace_back([&] {  // single-doc writer racing the batches
    util::Rng rng(7000);
    for (std::size_t i = 0; i < 300; ++i) {
      col.update_field(ids[rng.uniform_index(ids.size())], "k",
                       Value(std::int64_t{1}));
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(col.size(), kBatch);
  const auto final_docs = col.find_many(ids);
  for (const auto& doc : final_docs) {
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->at("payload").as_int(), 5);
  }
  expect_bytes_consistent(col);
}

TEST(StoreConcurrency, SaveStoreDuringIngestProducesLoadableSnapshot) {
  // save_store on a live collection is a fuzzy snapshot, but it must
  // always be internally consistent: the captured doc count frames the
  // file and next_id bounds every captured id, so loading never trips the
  // restore checks regardless of how the scan raced the writers.
  const std::string dir =
      ::testing::TempDir() + "/fairdms_concurrent_save";
  store::DocStore db(store::DocStoreConfig{.shards = 8});
  auto& col = db.collection("live");
  col.create_index("k");
  col.insert_one(fixed_size_doc(0, 0));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    util::Rng rng(9000);
    while (!stop.load(std::memory_order_acquire)) {
      col.insert_one(fixed_size_doc(
          static_cast<std::int64_t>(rng.uniform_index(4)), 1));
    }
  });
  for (int round = 0; round < 5; ++round) {
    store::save_store(db, dir);
    store::DocStore loaded;
    store::load_store(loaded, dir);  // restore aborts on any inconsistency
    auto& lcol = loaded.collection("live");
    EXPECT_GE(lcol.size(), 1u);
    EXPECT_LE(lcol.next_id(), col.next_id());
    const auto ids = lcol.all_ids();
    EXPECT_LT(ids.back(), lcol.next_id());
    expect_bytes_consistent(lcol);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(StoreConcurrency, MixedScheduleMatchesSerialReplay) {
  // Each thread runs a deterministic schedule over documents it owns
  // (insert / update / remove), so the final multiset of document payloads
  // and the total byte accounting are interleaving-independent. Replaying
  // the same schedules serially into a 1-shard collection must yield the
  // same aggregate state (ids differ; contents must not).
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 500;

  const auto run_schedule = [](Collection& col, std::size_t thread_id) {
    util::Rng rng(8000 + thread_id);
    std::vector<DocId> mine;
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      util::Rng op_rng = rng.fork(i);
      const double pick = op_rng.uniform();
      if (mine.empty() || pick < 0.5) {
        Object doc;
        doc["owner"] = Value(static_cast<std::int64_t>(thread_id));
        Binary blob(op_rng.uniform_index(40));
        for (auto& b : blob) {
          b = static_cast<std::uint8_t>(op_rng.uniform_index(256));
        }
        doc["payload"] = Value(std::move(blob));
        mine.push_back(col.insert_one(Value(std::move(doc))));
      } else if (pick < 0.85) {
        const DocId id = mine[op_rng.uniform_index(mine.size())];
        Binary blob(op_rng.uniform_index(40));
        for (auto& b : blob) {
          b = static_cast<std::uint8_t>(op_rng.uniform_index(256));
        }
        EXPECT_TRUE(col.update_field(id, "payload", Value(std::move(blob))));
      } else {
        const std::size_t at = op_rng.uniform_index(mine.size());
        EXPECT_TRUE(col.remove_one(mine[at]));
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(at));
      }
    }
  };

  // Documents' contents are id-independent (int64s and binaries encode at
  // fixed width per value), so aggregate payload bytes are deterministic.
  Collection concurrent("mixed", nullptr, 8);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] { run_schedule(concurrent, t); });
    }
    for (auto& t : threads) t.join();
  }
  Collection serial("mixed-serial", nullptr, 1);
  for (std::size_t t = 0; t < kThreads; ++t) run_schedule(serial, t);

  EXPECT_EQ(concurrent.size(), serial.size());
  EXPECT_EQ(concurrent.approx_bytes(), serial.approx_bytes());
  expect_bytes_consistent(concurrent);

  // The multiset of (owner, payload) documents must match exactly.
  const auto fingerprint = [](const Collection& col) {
    std::vector<std::string> prints;
    col.scan([&](DocId, const Value& doc) {
      std::string p = std::to_string(doc.at("owner").as_int());
      p.push_back(':');
      const Binary& blob = doc.at("payload").as_binary();
      p.append(blob.begin(), blob.end());
      prints.push_back(std::move(p));
    });
    std::sort(prints.begin(), prints.end());
    return prints;
  };
  EXPECT_EQ(fingerprint(concurrent), fingerprint(serial));
}

}  // namespace
}  // namespace fairdms
