// Multi-stream DataService tests: cross-stream isolation (labels from one
// stream never answer another's queries), per-stream snapshot version
// monotonicity under concurrent ingest/lookup/retrain, per-stream shed
// accounting (one saturated tenant sheds without touching the others),
// unknown-stream structured answers, and the RetrainPolicy gates
// (min-new-samples, cooldown, forced threshold). Carries the `service`
// label, so the TSan CI job and the Release `--repeat until-fail:3` stress
// step cover the concurrent paths.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "service/data_service.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

fairds::FairDSConfig small_config(std::uint64_t seed,
                                  const std::string& collection) {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = 4;
  config.embed_train.epochs = 2;
  config.embed_train.batch_size = 24;
  config.seed = seed;
  config.collection = collection;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

/// Overwrites every label with a constant tag so reuse provenance is
/// observable: a query answered from stream k's collection returns labels
/// that are all exactly `tag`.
nn::Batchset tagged_history(float tag, std::size_t n, std::uint64_t seed) {
  nn::Batchset batch = regime_data(0.0, n, seed);
  for (std::size_t i = 0; i < batch.ys.numel(); ++i) {
    batch.ys.data()[i] = tag;
  }
  return batch;
}

/// Three same-shape streams ("s0", "s1", "s2") over one shared store, each
/// trained on the same world but ingesting its own tagged history — the
/// tags make cross-stream label leakage directly assertable.
class MultiStreamFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kStreams = 3;

  void SetUp() override {
    for (std::size_t s = 0; s < kStreams; ++s) {
      histories_.push_back(tagged_history(tag(s), 72, 500 + s));
      streams_.push_back(std::make_unique<fairds::FairDS>(
          small_config(600 + s, "stream_" + name(s)), db_));
      streams_.back()->train_system(histories_.back().xs);
      streams_.back()->ingest(histories_.back().xs, histories_.back().ys,
                              "history_" + name(s));
    }
    label_width_ = streams_[0]->snapshot()->label_width();
  }

  static float tag(std::size_t s) { return static_cast<float>(s + 1); }
  static std::string name(std::size_t s) { return "s" + std::to_string(s); }

  std::function<Tensor(const Tensor&)> fast_labeler() {
    const std::size_t width = label_width_;
    return [width](const Tensor& xs) { return Tensor({xs.dim(0), width}); };
  }

  void add_all(service::DataService& service,
               service::StreamConfig config = {}) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      ASSERT_TRUE(service.add_stream(name(s), *streams_[s], config));
    }
  }

  store::DocStore db_;
  std::vector<nn::Batchset> histories_;
  std::vector<std::unique_ptr<fairds::FairDS>> streams_;
  std::size_t label_width_ = 0;
};

// Reuse-everything queries against each stream must come back with that
// stream's tag on every label: stream routing reaches the right collection
// and never crosses tenants.
TEST_F(MultiStreamFixture, LabelsNeverLeakAcrossStreams) {
  service::DataService service({.workers = 2});
  add_all(service);

  const nn::Batchset query = regime_data(0.0, 8, 700);
  for (std::size_t s = 0; s < kStreams; ++s) {
    auto future = service.submit(
        service::LabelRequest{query.xs, 1e9, fast_labeler(), name(s)});
    const auto response = future.get();
    ASSERT_EQ(response.status, service::ServeStatus::kOk);
    EXPECT_EQ(response.reuse.reused, query.xs.dim(0));
    EXPECT_EQ(response.reuse.computed, 0u);
    for (std::size_t i = 0; i < response.batch.ys.numel(); ++i) {
      ASSERT_EQ(response.batch.ys.data()[i], tag(s))
          << "stream " << name(s) << " answered with another stream's label";
    }
  }
}

// The TSan-run stress: concurrent label/lookup/ingest/retrain across all
// three streams. Asserts per-stream snapshot version monotonicity (as seen
// by each client thread), zero cross-stream label leakage under load, and
// the per-stream admission ledger once idle.
TEST_F(MultiStreamFixture, ConcurrentTenantsStayIsolatedUnderLoad) {
  service::DataService service({.workers = 3});
  service::StreamConfig tenant;
  tenant.retrain.certainty_threshold = 1.01;  // every retrain check trains
  service::DataService* svc = &service;
  add_all(service, tenant);

  constexpr int kRounds = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t s = 0; s < kStreams; ++s) {
    clients.emplace_back([&, s] {
      std::uint64_t last_version = 0;
      for (int r = 0; r < kRounds; ++r) {
        const nn::Batchset query = regime_data(0.0, 4, 800 + 10 * s + r);
        // Mid-stream system-plane churn: ingest more tagged samples + a
        // forced retrain on this stream's own executor.
        const nn::Batchset extra =
            tagged_history(tag(s), 4, 1000 + 10 * s + r);
        streams_[s]->ingest(extra.xs, extra.ys,
                            name(s) + "_r" + std::to_string(r));
        if (r == 2) (void)svc->request_retrain(name(s), query.xs);

        auto label = svc->submit(
            service::LabelRequest{query.xs, 1e9, fast_labeler(), name(s)});
        auto lookup = svc->submit(
            service::LookupRequest{query.xs,
                                   static_cast<std::uint64_t>(7 + r),
                                   name(s)});
        const auto label_response = label.get();
        const auto lookup_response = lookup.get();
        if (label_response.status != service::ServeStatus::kOk ||
            lookup_response.status != service::ServeStatus::kOk) {
          ++failures;  // unbounded queue: nothing may shed
          continue;
        }
        // Per-stream snapshot versions only ever move forward.
        if (label_response.snapshot_version < last_version) ++failures;
        last_version = label_response.snapshot_version;
        // Labels answered from this stream always carry this stream's tag.
        for (std::size_t i = 0; i < label_response.batch.ys.numel(); ++i) {
          if (label_response.batch.ys.data()[i] != tag(s)) ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.wait_idle();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = service.stats();
  ASSERT_EQ(stats.streams.size(), kStreams);
  std::uint64_t sum_label = 0, sum_lookup = 0, sum_checks = 0;
  for (const auto& s : stats.streams) {
    EXPECT_EQ(s.label_requests, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(s.label_requests, s.label_answered + s.label_shed);
    EXPECT_EQ(s.lookup_requests, s.lookup_answered + s.lookup_shed);
    // r == 2 forced one retrain per stream; threshold > 1 made it train.
    EXPECT_GE(s.retrains, 1u);
    sum_label += s.label_requests;
    sum_lookup += s.lookup_requests;
    sum_checks += s.retrain_checks;
  }
  EXPECT_EQ(stats.label_requests, sum_label);
  EXPECT_EQ(stats.lookup_requests, sum_lookup);
  EXPECT_EQ(stats.retrain_checks, sum_checks);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// One saturated tenant sheds on its own per-stream bound while another
// tenant's requests keep being admitted through the same worker pool.
TEST_F(MultiStreamFixture, PerStreamBoundShedsOnlyTheSaturatedTenant) {
  service::DataService service({.workers = 1});
  service::StreamConfig bounded;
  bounded.max_pending = 1;
  ASSERT_TRUE(service.add_stream(name(0), *streams_[0], bounded));
  ASSERT_TRUE(service.add_stream(name(1), *streams_[1], {}));

  // Wedge the single worker inside a stream-0 request (executing requests
  // do not count against the pending bound).
  std::promise<void> release;
  std::shared_future<void> opened = release.get_future().share();
  std::atomic<bool> entered{false};
  const std::size_t width = label_width_;
  const auto gated = [&entered, opened, width](const Tensor& xs) {
    entered.store(true);
    opened.wait();
    return Tensor({xs.dim(0), width});
  };
  const nn::Batchset query = regime_data(0.0, 4, 900);
  auto wedge =
      service.submit(service::LabelRequest{query.xs, -1.0, gated, name(0)});
  while (!entered.load()) std::this_thread::yield();

  // Stream 0: one admitted (fills its bound), the next shed in O(1).
  auto queued = service.submit(
      service::LabelRequest{query.xs, 1e9, fast_labeler(), name(0)});
  auto shed = service.submit(
      service::LabelRequest{query.xs, 1e9, fast_labeler(), name(0)});
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(shed.get().status, service::ServeStatus::kShedOverload);

  // Stream 1 is not saturated: its request is admitted despite sharing the
  // wedged worker pool.
  auto other = service.submit(
      service::LabelRequest{query.xs, 1e9, fast_labeler(), name(1)});
  EXPECT_NE(other.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);

  release.set_value();
  EXPECT_EQ(wedge.get().status, service::ServeStatus::kOk);
  EXPECT_EQ(queued.get().status, service::ServeStatus::kOk);
  EXPECT_EQ(other.get().status, service::ServeStatus::kOk);
  service.wait_idle();

  const auto stats = service.stats();
  ASSERT_EQ(stats.streams.size(), 2u);
  const auto& s0 = stats.streams[0];
  const auto& s1 = stats.streams[1];
  EXPECT_EQ(s0.label_requests, 3u);
  EXPECT_EQ(s0.label_answered, 2u);
  EXPECT_EQ(s0.label_shed, 1u);
  EXPECT_EQ(s0.max_pending, 1u);
  EXPECT_EQ(s1.label_requests, 1u);
  EXPECT_EQ(s1.label_answered, 1u);
  EXPECT_EQ(s1.label_shed, 0u);
  EXPECT_EQ(stats.label_shed, s0.label_shed + s1.label_shed);
}

// An unregistered stream id gets an immediately-ready structured answer on
// every op; the service keeps serving registered streams afterwards.
TEST_F(MultiStreamFixture, UnknownStreamIsAStructuredAnswerNotAnAbort) {
  service::DataService service({.workers = 1});
  add_all(service);

  const nn::Batchset query = regime_data(0.0, 4, 901);
  auto label = service.submit(
      service::LabelRequest{query.xs, 1e9, fast_labeler(), "never-added"});
  ASSERT_EQ(label.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(label.get().status, service::ServeStatus::kUnknownStream);

  auto lookup = service.submit(
      service::LookupRequest{query.xs, 1, "never-added"});
  EXPECT_EQ(lookup.get().status, service::ServeStatus::kUnknownStream);
  auto recommend = service.submit(
      service::RecommendRequest{"braggnn", query.xs, "never-added"});
  EXPECT_EQ(recommend.get().status, service::ServeStatus::kUnknownStream);
  EXPECT_FALSE(service.request_retrain("never-added", query.xs));

  const auto stats = service.stats();
  EXPECT_EQ(stats.unknown_stream_requests, 4u);
  // Unknown requests belong to no stream: the per-op ledgers still
  // reconcile with the per-stream sums.
  std::uint64_t sum_requests = 0;
  for (const auto& s : stats.streams) {
    sum_requests += s.label_requests + s.lookup_requests +
                    s.recommend_requests;
  }
  EXPECT_EQ(sum_requests, stats.label_requests + stats.lookup_requests +
                              stats.recommend_requests);

  auto ok = service.submit(
      service::LabelRequest{query.xs, 1e9, fast_labeler(), name(1)});
  EXPECT_EQ(ok.get().status, service::ServeStatus::kOk);
}

// RetrainPolicy gates: min-new-samples accumulates before the first check
// fires; a long cooldown suppresses (and counts) later triggers.
TEST_F(MultiStreamFixture, RetrainPolicyGatesTriggerAndCooldown) {
  service::DataService service({.workers = 1});
  service::StreamConfig tenant;
  tenant.retrain.auto_trigger = true;
  tenant.retrain.certainty_threshold = 1.01;  // always retrains when checked
  tenant.retrain.min_new_samples = 8;
  tenant.retrain.cooldown_seconds = 3600.0;
  ASSERT_TRUE(service.add_stream(name(0), *streams_[0], tenant));

  const auto labeled = [&](std::size_t n, std::uint64_t seed) {
    const nn::Batchset query = regime_data(0.0, n, seed);
    auto future = service.submit(
        service::LabelRequest{query.xs, 1e9, fast_labeler(), name(0)});
    EXPECT_EQ(future.get().status, service::ServeStatus::kOk);
    service.wait_idle();
  };

  // 4 samples: below the min-new-samples gate, no check enqueued.
  labeled(4, 910);
  service::StreamStats s0 = service.stream_stats(name(0));
  EXPECT_EQ(s0.retrain_checks, 0u);

  // 4 more: the budget (8) is met, the check runs, threshold > 1 retrains.
  labeled(4, 911);
  s0 = service.stream_stats(name(0));
  EXPECT_EQ(s0.retrain_checks, 1u);
  EXPECT_EQ(s0.retrains, 1u);
  EXPECT_EQ(s0.policy_cooldown_skips, 0u);

  // Another full budget: the hour-long cooldown suppresses the trigger and
  // counts it; no second check runs.
  labeled(8, 912);
  s0 = service.stream_stats(name(0));
  EXPECT_EQ(s0.retrain_checks, 1u);
  EXPECT_GE(s0.policy_cooldown_skips, 1u);
}

}  // namespace
}  // namespace fairdms
