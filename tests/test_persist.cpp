// Snapshot persistence tests: store round trips, index rebuild, zoo
// survival across a simulated service restart.
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "fairms/zoo.hpp"
#include "nn/linear.hpp"
#include "nn/serialize.hpp"
#include "store/persist.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using store::Object;
using store::Value;

TEST(Persist, StoreRoundTripPreservesDocumentsAndIds) {
  const std::string dir = ::testing::TempDir() + "/fairdms_snap_roundtrip";
  store::DocStore original;
  auto& col = original.collection("samples");
  col.create_index("cluster");
  std::vector<store::DocId> ids;
  for (int i = 0; i < 50; ++i) {
    Object doc;
    doc["cluster"] = Value(static_cast<std::int64_t>(i % 5));
    doc["payload"] = Value(store::Binary(static_cast<std::size_t>(i), 0xAB));
    ids.push_back(col.insert_one(Value(std::move(doc))));
  }
  // A second collection, un-indexed.
  original.collection("notes").insert_one(Value(Object{
      {"text", Value("hello")}}));
  store::save_store(original, dir);

  store::DocStore restored;
  store::load_store(restored, dir);
  auto& rcol = restored.collection("samples");
  EXPECT_EQ(rcol.size(), 50u);
  EXPECT_TRUE(rcol.has_index("cluster"));
  // Ids and contents survive.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto doc = rcol.find_by_id(ids[i]);
    ASSERT_TRUE(doc.has_value()) << "id " << ids[i];
    EXPECT_EQ(doc->at("cluster").as_int(),
              static_cast<std::int64_t>(i % 5));
    EXPECT_EQ(doc->at("payload").as_binary().size(), i);
  }
  // Rebuilt index answers queries identically.
  for (std::int64_t c = 0; c < 5; ++c) {
    EXPECT_EQ(rcol.find_eq("cluster", Value(c)).size(), 10u);
  }
  // Id counter continues after the last persisted id.
  const auto new_id = rcol.insert_one(Value(Object{}));
  EXPECT_GT(new_id, ids.back());
  // Other collections restored too.
  EXPECT_EQ(restored.collection("notes").size(), 1u);
}

TEST(Persist, SnapshotCollectionsListsManifest) {
  const std::string dir = ::testing::TempDir() + "/fairdms_snap_manifest";
  store::DocStore db;
  db.collection("alpha").insert_one(Value(Object{}));
  db.collection("beta").insert_one(Value(Object{}));
  store::save_store(db, dir);
  const auto names = store::snapshot_collections(dir);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Persist, ModelZooSurvivesRestart) {
  const std::string dir = ::testing::TempDir() + "/fairdms_snap_zoo";
  util::Rng rng(1);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 2, rng);
  store::DocId id;
  {
    store::DocStore db;
    fairms::ModelZoo zoo(db);
    id = zoo.publish("braggnn", "scan_7", {0.25, 0.75},
                     nn::save_parameters(net));
    store::save_store(db, dir);
  }
  // "Restart": fresh process state, reload.
  store::DocStore db;
  store::load_store(db, dir);
  fairms::ModelZoo zoo(db);
  EXPECT_EQ(zoo.size(), 1u);
  const auto record = zoo.fetch(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->dataset_id, "scan_7");
  // Parameters load back into a matching architecture.
  nn::Sequential restored;
  restored.emplace<nn::Linear>(4, 2, rng);
  nn::load_parameters(restored, record->parameters);
  EXPECT_EQ((*restored.params()[0])[0], (*net.params()[0])[0]);
  // And the manager still ranks it.
  fairms::ModelManager manager(zoo, 1.0);
  EXPECT_TRUE(
      manager.recommend("braggnn", std::vector<double>{0.3, 0.7}).has_value());
}

TEST(PersistDeathTest, RestoreIntoNonEmptyCollectionAborts) {
  const std::string dir = ::testing::TempDir() + "/fairdms_snap_nonempty";
  store::DocStore db;
  db.collection("c").insert_one(Value(Object{}));
  store::save_store(db, dir);
  store::DocStore target;
  target.collection("c").insert_one(Value(Object{}));
  EXPECT_DEATH(store::load_store(target, dir), "non-empty");
}

TEST(PersistDeathTest, MissingManifestAborts) {
  EXPECT_DEATH(store::snapshot_collections("/nonexistent/fairdms_dir"),
               "manifest");
}

}  // namespace
}  // namespace fairdms
