// Tests for the synthetic data generators: pseudo-Voigt profile identities,
// Bragg patch/label consistency, HEDM timeline drift + deformation events,
// CookieBox density structure, tomography phantom statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "datagen/bragg.hpp"
#include "datagen/cookiebox.hpp"
#include "datagen/pseudo_voigt.hpp"
#include "datagen/tomography.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using datagen::PeakParams;

TEST(PseudoVoigt, PeakValueAtCenterIsAmplitudePlusBackground) {
  PeakParams p;
  p.center_x = 7.3;
  p.center_y = 6.8;
  p.amplitude = 2.0;
  p.background = 0.25;
  EXPECT_NEAR(datagen::pseudo_voigt(p, 7.3, 6.8), 2.25, 1e-12);
}

TEST(PseudoVoigt, PureGaussianAndPureLorentzianTails) {
  PeakParams p;
  p.center_x = 0.0;
  p.center_y = 0.0;
  p.sigma_major = 1.0;
  p.sigma_minor = 1.0;
  p.amplitude = 1.0;
  p.eta = 0.0;  // pure Gaussian
  const double gauss_far = datagen::pseudo_voigt(p, 5.0, 0.0);
  p.eta = 1.0;  // pure Lorentzian
  const double lorentz_far = datagen::pseudo_voigt(p, 5.0, 0.0);
  EXPECT_NEAR(gauss_far, std::exp(-12.5), 1e-9);
  EXPECT_NEAR(lorentz_far, 1.0 / 26.0, 1e-9);
  EXPECT_GT(lorentz_far, gauss_far);  // heavier tails
}

TEST(PseudoVoigt, RotationMovesTheEllipse) {
  PeakParams p;
  p.center_x = 7.0;
  p.center_y = 7.0;
  p.sigma_major = 3.0;
  p.sigma_minor = 1.0;
  p.theta = 0.0;
  // Along x (major axis): slow decay. Along y (minor): fast decay.
  const double along_major = datagen::pseudo_voigt(p, 10.0, 7.0);
  const double along_minor = datagen::pseudo_voigt(p, 7.0, 10.0);
  EXPECT_GT(along_major, along_minor);
  // After rotating 90 degrees the roles swap.
  p.theta = M_PI / 2.0;
  const double along_major_rot = datagen::pseudo_voigt(p, 7.0, 10.0);
  const double along_minor_rot = datagen::pseudo_voigt(p, 10.0, 7.0);
  EXPECT_GT(along_major_rot, along_minor_rot);
}

TEST(PseudoVoigt, CentroidOfRenderedPeakNearTrueCenter) {
  PeakParams p;
  p.center_x = 8.4;
  p.center_y = 5.9;
  p.sigma_major = 1.8;
  p.sigma_minor = 1.6;
  p.amplitude = 1.0;
  std::vector<float> patch(15 * 15);
  datagen::render_peak(p, 15, patch);
  double cx = 0.0, cy = 0.0;
  datagen::intensity_centroid(patch, 15, cx, cy);
  EXPECT_NEAR(cx, p.center_x, 0.5);
  EXPECT_NEAR(cy, p.center_y, 0.5);
}

TEST(Bragg, BatchsetShapesAndLabelRange) {
  util::Rng rng(1);
  datagen::BraggRegime regime;
  const nn::Batchset data =
      datagen::make_bragg_batchset(regime, {}, 32, rng);
  ASSERT_EQ(data.xs.shape(), (std::vector<std::size_t>{32, 1, 15, 15}));
  ASSERT_EQ(data.ys.shape(), (std::vector<std::size_t>{32, 2}));
  // Labels are offsets from patch center in units of the patch size; jitter
  // of 2.5px over 15px keeps |label| < 0.5.
  for (std::size_t i = 0; i < data.ys.numel(); ++i) {
    EXPECT_LT(std::fabs(data.ys[i]), 0.5f);
  }
}

TEST(Bragg, LabelMatchesGenerativeCenter) {
  util::Rng rng(2);
  datagen::BraggRegime regime;
  regime.noise_sd = 0.0;  // noiseless: centroid must sit on the label
  const nn::Batchset data =
      datagen::make_bragg_batchset(regime, {}, 8, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    double cx = 0.0, cy = 0.0;
    datagen::intensity_centroid(
        {data.xs.data() + i * 225, 225}, 15, cx, cy);
    const double label_x = data.ys.at(i, 0) * 15.0 + 7.0;
    const double label_y = data.ys.at(i, 1) * 15.0 + 7.0;
    EXPECT_NEAR(cx, label_x, 0.8) << "sample " << i;
    EXPECT_NEAR(cy, label_y, 0.8) << "sample " << i;
  }
}

TEST(Bragg, PixelErrorHelper) {
  nn::Tensor pred({1, 2});
  nn::Tensor truth({1, 2});
  pred.at(0, 0) = 0.1f;  // 1.5 px off in x at patch size 15
  const double err = datagen::bragg_pixel_error(pred, truth, 15, 0);
  EXPECT_NEAR(err, 1.5, 1e-5);
}

TEST(HedmTimeline, DriftIsMonotoneBeforeDeformation) {
  datagen::HedmTimelineConfig config;
  config.n_scans = 50;
  config.deformation_scans = {};
  datagen::HedmTimeline timeline(config);
  double prev_sigma = 0.0;
  for (std::size_t scan = 0; scan < 50; scan += 10) {
    const auto regime = timeline.regime_at(scan);
    EXPECT_GT(regime.sigma_major_mean, prev_sigma);
    prev_sigma = regime.sigma_major_mean;
  }
}

TEST(HedmTimeline, DeformationEventJumpsRegime) {
  datagen::HedmTimelineConfig config;
  config.n_scans = 40;
  config.deformation_scans = {20};
  datagen::HedmTimeline timeline(config);
  const auto before = timeline.regime_at(19);
  const auto after = timeline.regime_at(20);
  // The jump dwarfs one scan of drift.
  EXPECT_GT(after.sigma_major_mean / before.sigma_major_mean, 1.2);
  EXPECT_GT(after.eta_mean, before.eta_mean + 0.1);
}

TEST(HedmTimeline, DatasetDeterministicInSeedAndScan) {
  datagen::HedmTimelineConfig config;
  config.n_scans = 10;
  datagen::HedmTimeline timeline(config);
  const auto a = timeline.dataset_at(3, 16, 777);
  const auto b = timeline.dataset_at(3, 16, 777);
  const auto c = timeline.dataset_at(4, 16, 777);
  for (std::size_t i = 0; i < a.xs.numel(); ++i) {
    ASSERT_EQ(a.xs[i], b.xs[i]);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.xs.numel(); ++i) {
    if (a.xs[i] != c.xs[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CookieBox, ShapesAndLabelRowsAreDensities) {
  util::Rng rng(3);
  datagen::CookieBoxConfig config;  // 32 bins, 16 channels x 2 rows
  const auto data =
      datagen::make_cookiebox_batchset({}, config, 4, rng);
  ASSERT_EQ(data.xs.shape(), (std::vector<std::size_t>{4, 1, 32, 32}));
  ASSERT_EQ(data.ys.shape(), (std::vector<std::size_t>{4, 1, 32, 32}));
  // Every label row is a normalized density.
  for (std::size_t row = 0; row < 32; ++row) {
    double sum = 0.0;
    for (std::size_t b = 0; b < 32; ++b) {
      sum += static_cast<double>(data.ys[row * 32 + b]);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5) << "row " << row;
  }
}

TEST(CookieBox, HistogramTracksDensityInExpectation) {
  util::Rng rng(4);
  datagen::CookieBoxConfig config;
  config.counts_per_row = 5000.0;  // high dose: counts ~ density
  const auto data = datagen::make_cookiebox_batchset({}, config, 2, rng);
  double err = 0.0;
  for (std::size_t i = 0; i < data.xs.numel(); ++i) {
    err += std::fabs(static_cast<double>(data.xs[i]) - data.ys[i]);
  }
  err /= static_cast<double>(data.xs.numel());
  EXPECT_LT(err, 0.01);
}

TEST(CookieBox, TimelineShiftsPhotoline) {
  datagen::CookieBoxTimelineConfig config;
  config.n_steps = 20;
  datagen::CookieBoxTimeline timeline(config);
  EXPECT_GT(timeline.regime_at(19).photoline_center,
            timeline.regime_at(0).photoline_center);
}

TEST(Tomography, PhantomInUnitRangeAndNonTrivial) {
  util::Rng rng(5);
  datagen::TomoConfig config;
  config.size = 64;
  std::vector<float> img(64 * 64);
  datagen::render_phantom(config, rng, img);
  float lo = 1e9f, hi = -1e9f;
  for (float v : img) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
  EXPECT_GT(hi, 0.1f);  // something was drawn
}

TEST(Tomography, NoisyFrameApproachesCleanAtHighDose) {
  util::Rng rng(6);
  datagen::TomoConfig low;
  low.size = 48;
  low.dose = 4.0;
  datagen::TomoConfig high = low;
  high.dose = 400.0;
  const auto noisy = datagen::make_tomo_batchset(low, 2, rng);
  const auto clean = datagen::make_tomo_batchset(high, 2, rng);
  auto mse = [](const nn::Batchset& b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < b.xs.numel(); ++i) {
      const double d = static_cast<double>(b.xs[i]) - b.ys[i];
      sum += d * d;
    }
    return sum / static_cast<double>(b.xs.numel());
  };
  EXPECT_LT(mse(clean), mse(noisy));
}

}  // namespace
}  // namespace fairdms
