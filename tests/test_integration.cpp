// End-to-end integration: a miniature version of the paper's Fig. 15 case
// study run through the public API, asserting the paper's *relationships*
// rather than absolute timings:
//   - fairDS lookup is far cheaper than conventional labeling,
//   - fine-tuning the fairMS pick converges in no more epochs than scratch,
//   - both strategies reach the accuracy target,
//   - the updated model lands back in the Zoo with a matching distribution.
#include <gtest/gtest.h>
#include <vector>

#include "core/fairdms.hpp"
#include "datagen/bragg.hpp"
#include "labeling/voigt_fit.hpp"
#include "models/models.hpp"

namespace fairdms {
namespace {

class CaseStudy : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::HedmTimelineConfig timeline_config;
    timeline_config.n_scans = 8;
    // Two distinct regimes (scans 0-1 vs 2-3): makes the ranking assertions
    // decisive instead of sampling-noise-limited.
    timeline_config.deformation_scans = {2};
    timeline_ = std::make_unique<datagen::HedmTimeline>(timeline_config);

    fairds::FairDSConfig ds_config;
    ds_config.n_clusters = 6;
    ds_config.embed_train.epochs = 4;
    ds_config.seed = 404;
    ds_ = std::make_unique<fairds::FairDS>(ds_config, db_);

    // History: scans 0-3 ingested; zoo: one converged model per scan.
    nn::Tensor all({4 * 96, 1, 15, 15});
    for (std::size_t s = 0; s < 4; ++s) {
      history_.push_back(timeline_->dataset_at(s, 96, 404));
      std::copy_n(history_[s].xs.data(), history_[s].xs.numel(),
                  all.data() + s * 96 * 225);
    }
    ds_->train_system(all);
    for (std::size_t s = 0; s < 4; ++s) {
      ds_->ingest(history_[s].xs, history_[s].ys,
                  "scan_" + std::to_string(s));
    }

    core::FairDMSConfig config;
    config.architecture = "braggnn";
    config.train.max_epochs = 40;
    config.train.batch_size = 32;
    config.train.target_val_error = 1.5e-3;
    config.scratch_lr = 1e-3;
    config.fine_tune_lr = 2e-4;
    config.seed = 405;
    system_ = std::make_unique<core::FairDMS>(config, *ds_, db_);
    for (std::size_t s = 0; s < 4; ++s) {
      auto model = models::make_braggnn(500 + s);
      system_->train_and_publish(model, history_[s], history_[s],
                                 "scan_" + std::to_string(s));
    }
  }

  store::DocStore db_;
  std::unique_ptr<datagen::HedmTimeline> timeline_;
  std::vector<nn::Batchset> history_;
  std::unique_ptr<fairds::FairDS> ds_;
  std::unique_ptr<core::FairDMS> system_;
};

TEST_F(CaseStudy, FairDmsBeatsConventionalEndToEnd) {
  // New data from the regime history covers (fresh draws of scan 3).
  const nn::Batchset new_data = timeline_->dataset_at(3, 96, 777);
  const nn::Batchset validation = timeline_->dataset_at(3, 48, 778);

  const auto fairdms = system_->update_model(
      new_data.xs, validation, core::UpdateStrategy::kFairDMS);
  const auto retrain = system_->update_model(
      new_data.xs, validation, core::UpdateStrategy::kRetrain);
  double conventional_label_seconds = 0.0;
  const auto conventional = system_->update_model(
      new_data.xs, validation, core::UpdateStrategy::kConventional,
      [&](const nn::Tensor& xs) {
        return labeling::label_patches(xs, {}, &conventional_label_seconds);
      });

  // Labeling: reuse is at least 3x cheaper than running the physics code
  // (in the paper it is orders of magnitude; patches here are small).
  EXPECT_GT(conventional.label_seconds, 3.0 * fairdms.label_seconds)
      << "conventional=" << conventional.label_seconds
      << " fairdms=" << fairdms.label_seconds;

  // Model reuse: the recommendation engaged and fine-tuning needed no more
  // epochs than training from scratch.
  EXPECT_TRUE(fairdms.fine_tuned);
  EXPECT_LE(fairdms.epochs, retrain.epochs);

  // Both reached the accuracy target.
  EXPECT_LE(fairdms.final_val_error, 1.5e-3 * 1.05);
  EXPECT_LE(retrain.final_val_error, 1.5e-3 * 1.05);

  // The updates were published: 4 seeds + 3 updates.
  EXPECT_EQ(system_->zoo().size(), 7u);
  const auto record = system_->zoo().fetch(fairdms.published_model);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->train_pdf.size(), ds_->n_clusters());
}

TEST_F(CaseStudy, RecommendationPrefersMatchingRegime) {
  // For fresh scan-0 data, the zoo model trained on scan 0 (or its regime
  // neighbour scan 1) must outrank the scan-3 model.
  const nn::Batchset probe = timeline_->dataset_at(0, 96, 900);
  const auto pdf = ds_->distribution(probe.xs);
  const auto ranked = system_->manager().rank("braggnn", pdf);
  ASSERT_EQ(ranked.size(), 4u);
  const auto best = system_->zoo().fetch(ranked.front().model_id);
  const auto worst = system_->zoo().fetch(ranked.back().model_id);
  EXPECT_LT(ranked.front().distance, ranked.back().distance);
  // Dataset ids are "scan_<i>": the best match must be an early scan and
  // the worst a late one.
  EXPECT_TRUE(best->dataset_id == "scan_0" || best->dataset_id == "scan_1")
      << "best=" << best->dataset_id;
  EXPECT_TRUE(worst->dataset_id == "scan_2" || worst->dataset_id == "scan_3")
      << "worst=" << worst->dataset_id;
}

TEST_F(CaseStudy, ThresholdForcesScratchTrainingOnAlienData) {
  // A manager with a near-zero threshold declines every foundation; the
  // pipeline must fall back to scratch training without error.
  core::FairDMSConfig config;
  config.architecture = "braggnn";
  config.train.max_epochs = 5;
  config.distance_threshold = 1e-6;
  config.seed = 42;
  core::FairDMS strict(config, *ds_, db_);
  const nn::Batchset new_data = timeline_->dataset_at(2, 48, 1000);
  const auto report = strict.update_model(new_data.xs, new_data,
                                          core::UpdateStrategy::kFairDMS);
  EXPECT_FALSE(report.fine_tuned);
  EXPECT_GT(report.epochs, 0u);
}

}  // namespace
}  // namespace fairdms
