// Unit tests for util: RNG determinism and distributions, thread pool
// correctness (including nesting), statistics helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace fairdms {
namespace {

TEST(Rng, SameSeedSameSequence) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  const util::Rng parent(7);
  util::Rng c1 = parent.fork(1);
  util::Rng c1_again = parent.fork(1);
  util::Rng c2 = parent.fork(2);
  EXPECT_EQ(c1(), c1_again());
  // Distinct keys give distinct streams.
  util::Rng d1 = parent.fork(1);
  util::Rng d2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (d1() == d2()) ++same;
  }
  EXPECT_LT(same, 2);
  (void)c2;
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  util::Rng rng(42);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
  }
}

TEST(Rng, GaussianMoments) {
  util::Rng rng(7);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, PoissonMeanMatchesLambdaSmallAndLarge) {
  util::Rng rng(11);
  for (double lambda : {0.5, 3.0, 25.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(lambda));
    }
    EXPECT_NEAR(sum / n, lambda, lambda * 0.08 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, ShufflePreservesElements) {
  util::Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  util::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(8, [&](std::size_t b2, std::size_t e2) {
        total += static_cast<int>(e2 - b2);
      });
    }
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ChunkedVariantReportsDenseChunkIds) {
  util::ThreadPool pool(4);
  std::mutex m;
  std::set<std::size_t> chunks;
  pool.parallel_for_chunked(1000, [&](std::size_t c, std::size_t, std::size_t) {
    std::lock_guard lock(m);
    chunks.insert(c);
  });
  // Chunk ids must be dense 0..n-1.
  std::size_t expect = 0;
  for (std::size_t c : chunks) EXPECT_EQ(c, expect++);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(util::mean(xs), 2.5);
  EXPECT_NEAR(util::stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(util::mean(std::span<const double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(util::percentile(std::vector<double>{5.0}, 75), 5.0);
}

TEST(Stats, PearsonSignAndBounds) {
  std::vector<double> xs(50), up(50), down(50);
  for (int i = 0; i < 50; ++i) {
    xs[i] = i;
    up[i] = 2.0 * i + 1.0;
    down[i] = -3.0 * i;
  }
  EXPECT_NEAR(util::pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(util::pearson(xs, down), -1.0, 1e-12);
  const std::vector<double> flat(50, 2.0);
  EXPECT_DOUBLE_EQ(util::pearson(xs, flat), 0.0);
}

TEST(Stats, HistogramPdfSumsToOneAndClamps) {
  const std::vector<double> xs{-10.0, 0.1, 0.5, 0.9, 42.0};
  const auto pdf = util::histogram_pdf(xs, 0.0, 1.0, 4);
  double sum = 0.0;
  for (double v : pdf) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(pdf.front(), 0.0);  // clamped -10
  EXPECT_GT(pdf.back(), 0.0);   // clamped 42
}

TEST(Stats, RunningStatsMatchesBatch) {
  util::Rng rng(5);
  std::vector<double> xs;
  util::RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), util::mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), util::stddev(xs), 1e-9);
}

}  // namespace
}  // namespace fairdms
