// Service-layer tests: future-based submit round-trips matching the direct
// synchronous API, per-request serving metadata and stats, the async
// system-plane retrain (user plane keeps answering mid-retrain), a
// multi-client stress drive (>= 4 concurrent lookup_or_label clients while
// maybe_retrain fires — the TSan acceptance scenario), and the
// ModelZoo/ModelManager edges: reindex of a missing id, rank skipping
// mismatched-length PDFs, metadata-only ranking reads, publish/fetch with
// empty parameters, and concurrent publish from multiple threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "service/data_service.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

fairds::FairDSConfig small_config(std::size_t k = 4) {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = k;
  config.embed_train.epochs = 3;
  config.embed_train.batch_size = 24;
  config.certainty_threshold = 0.55;
  config.seed = 91;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  regime.eta_mean = std::min(0.95, regime.eta_mean + drift * 0.5);
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

Tensor zero_labeler(const Tensor& xs) { return Tensor({xs.dim(0), 2}); }

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = regime_data(0.0, 96, 101);
    ds_ = std::make_unique<fairds::FairDS>(small_config(), db_);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history_0");
  }

  store::DocStore db_;
  nn::Batchset history_;
  std::unique_ptr<fairds::FairDS> ds_;
};

TEST_F(ServiceFixture, LabelSubmitMatchesDirectCall) {
  service::DataService service(*ds_, {.workers = 2});
  const nn::Batchset query = regime_data(0.0, 16, 102);

  auto future = service.submit(
      service::LabelRequest{query.xs, 1e9, zero_labeler});
  const auto response = future.get();

  fairds::ReuseStats direct_stats;
  const auto direct =
      ds_->lookup_or_label(query.xs, 1e9, zero_labeler, &direct_stats);
  EXPECT_EQ(response.reuse.reused, direct_stats.reused);
  EXPECT_EQ(response.reuse.computed, direct_stats.computed);
  ASSERT_EQ(response.batch.ys.shape(), direct.ys.shape());
  for (std::size_t i = 0; i < direct.ys.numel(); ++i) {
    EXPECT_EQ(response.batch.ys[i], direct.ys[i]);
  }
  EXPECT_EQ(response.snapshot_version, ds_->snapshot()->version());
  EXPECT_GT(response.seconds, 0.0);

  const auto stats = service.stats();
  EXPECT_EQ(stats.label_requests, 1u);
  EXPECT_EQ(stats.samples_labeled, 16u);
  EXPECT_EQ(stats.labels_reused + stats.labels_computed, 16u);
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GE(stats.max_request_seconds, response.seconds);
}

TEST_F(ServiceFixture, LookupSubmitIsSeedDeterministic) {
  service::DataService service(*ds_, {.workers = 2});
  const nn::Batchset query = regime_data(0.0, 12, 103);

  auto a = service.submit(service::LookupRequest{query.xs, 55}).get();
  auto b = service.submit(service::LookupRequest{query.xs, 55}).get();
  ASSERT_EQ(a.batch.xs.shape(), b.batch.xs.shape());
  for (std::size_t i = 0; i < a.batch.xs.numel(); ++i) {
    EXPECT_EQ(a.batch.xs[i], b.batch.xs[i]);
  }
  EXPECT_EQ(service.stats().lookup_requests, 2u);
}

TEST_F(ServiceFixture, RecommendSubmitUsesManager) {
  fairms::ModelZoo zoo(db_);
  const auto pdf = ds_->distribution(history_.xs);
  const auto id = zoo.publish("braggnn", "h", pdf, {1, 2, 3});
  fairms::ModelManager manager(zoo, 1.0);
  service::DataService service(*ds_, {.workers = 2}, &manager);

  const auto response =
      service.submit(service::RecommendRequest{"braggnn", history_.xs})
          .get();
  ASSERT_TRUE(response.pick.has_value());
  EXPECT_EQ(response.pick->model_id, id);
  EXPECT_EQ(response.pdf.size(), ds_->n_clusters());
  EXPECT_EQ(service.stats().recommend_requests, 1u);

  const auto miss =
      service.submit(service::RecommendRequest{"tomonet", history_.xs})
          .get();
  EXPECT_FALSE(miss.pick.has_value());
}

TEST_F(ServiceFixture, AsyncRetrainDoesNotBlockQueries) {
  // Threshold > 1 forces the retrain on any probe; the user plane must keep
  // answering (against the old snapshot) while the system plane trains.
  store::DocStore db;
  auto config = small_config();
  config.certainty_threshold = 1.01;
  fairds::FairDS ds(config, db);
  ds.train_system(history_.xs);
  ds.ingest(history_.xs, history_.ys, "h");
  service::DataService service(ds, {.workers = 2});

  const std::uint64_t v1 = ds.snapshot()->version();
  const nn::Batchset probe = regime_data(1.5, 48, 104);
  ASSERT_TRUE(service.request_retrain(probe.xs));
  // Coalescing: a second request while one is in flight is dropped.
  const bool second = service.request_retrain(probe.xs);

  // Queries submitted while the retrain runs must all be answered.
  const nn::Batchset query = regime_data(0.0, 8, 105);
  std::vector<std::future<service::LabelResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        service.submit(service::LabelRequest{query.xs, 1e9, zero_labeler}));
  }
  for (auto& f : futures) {
    const auto response = f.get();
    EXPECT_EQ(response.reuse.reused + response.reuse.computed, 8u);
  }
  service.wait_idle();
  EXPECT_FALSE(service.retrain_in_flight());
  // The second request is normally coalesced while the first trains; if it
  // raced past the first check's completion both may have retrained, so the
  // bounds are >=.
  EXPECT_GE(ds.snapshot()->version(), v1 + 1);
  EXPECT_GE(ds.retrain_count(), 1u);
  const auto stats = service.stats();
  EXPECT_GE(stats.retrain_checks, 1u);
  EXPECT_GE(stats.retrains, 1u);
  (void)second;
}

TEST_F(ServiceFixture, ConcurrentClientsWithRetrainMidStream) {
  // The acceptance scenario: >= 4 concurrent lookup_or_label clients keep
  // submitting while maybe_retrain fires in the background. Run with a
  // forced-trigger threshold so the swap really happens mid-stream.
  store::DocStore db;
  auto config = small_config();
  config.certainty_threshold = 1.01;
  fairds::FairDS ds(config, db);
  ds.train_system(history_.xs);
  ds.ingest(history_.xs, history_.ys, "h");
  service::DataService service(ds, {.workers = 4});

  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 6;
  std::atomic<std::size_t> answered{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const nn::Batchset query = regime_data(0.0, 8, 200 + c);
      for (int b = 0; b < kBatchesPerClient; ++b) {
        auto response =
            service
                .submit(service::LabelRequest{query.xs, 1e9, zero_labeler})
                .get();
        if (response.reuse.reused + response.reuse.computed != 8u) {
          failed.store(true);
        }
        answered.fetch_add(1);
        if (c == 0 && b == 1) {
          // One client doubles as the drift monitor mid-stream.
          const nn::Batchset probe = regime_data(1.5, 48, 210);
          service.request_retrain(probe.xs);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.wait_idle();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(answered.load(),
            static_cast<std::size_t>(kClients * kBatchesPerClient));
  EXPECT_GE(ds.retrain_count(), 1u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.label_requests,
            static_cast<std::size_t>(kClients * kBatchesPerClient));
  EXPECT_EQ(stats.samples_labeled,
            static_cast<std::size_t>(kClients * kBatchesPerClient * 8));
}

TEST_F(ServiceFixture, AutoRetrainPolicyChecksAfterLabelRequests) {
  store::DocStore db;
  auto config = small_config();
  config.certainty_threshold = 1.01;  // every check triggers
  fairds::FairDS ds(config, db);
  ds.train_system(history_.xs);
  ds.ingest(history_.xs, history_.ys, "h");
  service::DataService service(ds, {.workers = 2, .auto_retrain = true});

  const nn::Batchset query = regime_data(0.0, 8, 106);
  const auto response =
      service.submit(service::LabelRequest{query.xs, 1e9, zero_labeler})
          .get();
  EXPECT_EQ(response.reuse.reused + response.reuse.computed, 8u);
  service.wait_idle();
  EXPECT_GE(service.stats().retrain_checks, 1u);
  EXPECT_GE(ds.retrain_count(), 1u);
}

// --- ModelZoo / ModelManager edges ------------------------------------------

TEST(ModelZooEdges, ReindexMissingIdReturnsFalse) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  EXPECT_FALSE(zoo.reindex(424242, {0.5, 0.5}));
  EXPECT_EQ(zoo.size(), 0u);
}

TEST(ModelZooEdges, PublishFetchRoundTripWithEmptyParameters) {
  // Metadata-first publish: a model registered before its weights arrive.
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  const auto id = zoo.publish("braggnn", "pending", {0.25, 0.75}, {});
  const auto rec = zoo.fetch(id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->dataset_id, "pending");
  EXPECT_EQ(rec->train_pdf, (std::vector<double>{0.25, 0.75}));
  EXPECT_TRUE(rec->parameters.empty());

  // A weightless record must never be recommended as a fine-tuning
  // foundation (loading its parameters would abort downstream), even when
  // its PDF is a perfect match.
  fairms::ModelManager manager(zoo, 1.0);
  EXPECT_TRUE(
      manager.rank("braggnn", std::vector<double>{0.25, 0.75}).empty());
  EXPECT_FALSE(manager.recommend("braggnn", std::vector<double>{0.25, 0.75})
                   .has_value());

  // Attaching weights completes the record in place: same id, now
  // fetchable with parameters and eligible for ranking.
  EXPECT_TRUE(zoo.attach_parameters(id, {1, 2, 3}));
  EXPECT_EQ(zoo.fetch(id)->parameters,
            (std::vector<std::uint8_t>{1, 2, 3}));
  const auto ranked = manager.rank("braggnn", std::vector<double>{0.25, 0.75});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked.front().model_id, id);
  EXPECT_FALSE(zoo.attach_parameters(999999, {9}));
}

TEST(ModelZooEdges, RankSkipsMismatchedPdfWidthsAndNeverReadsParameters) {
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 1e-9,
                                             .bandwidth_bytes_per_s = 1e12});
  fairms::ModelZoo zoo(db);
  // Parameter blobs are large on purpose: a full-record read would show up
  // in the byte accounting below.
  const std::vector<std::uint8_t> big_blob(64 * 1024, 0x5a);
  zoo.publish("braggnn", "stale", {0.5, 0.5}, big_blob);
  const auto good =
      zoo.publish("braggnn", "good", {0.3, 0.3, 0.4}, big_blob);
  zoo.publish("braggnn", "also_good", {0.1, 0.1, 0.8}, big_blob);

  fairms::ModelManager manager(zoo, 1.0);
  const auto before = db.link().bytes_moved();
  const auto ranked =
      manager.rank("braggnn", std::vector<double>{0.3, 0.3, 0.4});
  const auto charged = db.link().bytes_moved() - before;
  ASSERT_EQ(ranked.size(), 2u);  // the 2-wide record is skipped
  EXPECT_EQ(ranked.front().model_id, good);
  EXPECT_NEAR(ranked.front().distance, 0.0, 1e-12);
  // Three 64 KiB blobs never travel: the metadata projection stays small.
  EXPECT_LT(charged, 4096u);
}

TEST(ModelZooEdges, MetadataOfMatchesModelsOf) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  zoo.publish("braggnn", "a", {0.5, 0.5}, {1});
  zoo.publish("cookienetae", "b", {1.0}, {2});
  zoo.publish("braggnn", "c", {0.25, 0.75}, {3});

  const auto meta = zoo.metadata_of("braggnn");
  const auto full = zoo.models_of("braggnn");
  ASSERT_EQ(meta.size(), full.size());
  for (std::size_t i = 0; i < meta.size(); ++i) {
    EXPECT_EQ(meta[i].id, full[i].id);
    EXPECT_EQ(meta[i].architecture, full[i].architecture);
    EXPECT_EQ(meta[i].dataset_id, full[i].dataset_id);
    EXPECT_EQ(meta[i].train_pdf, full[i].train_pdf);
    EXPECT_EQ(meta[i].param_bytes, full[i].parameters.size());
  }
  EXPECT_TRUE(zoo.metadata_of("tomonet").empty());
}

TEST(ModelZooEdges, ConcurrentPublishFromMultipleThreads) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> publishers;
  std::vector<std::vector<store::DocId>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&zoo, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double p = static_cast<double>(i + 1) /
                         static_cast<double>(kPerThread + 1);
        ids[static_cast<std::size_t>(t)].push_back(zoo.publish(
            "braggnn", "t" + std::to_string(t) + "_" + std::to_string(i),
            {p, 1.0 - p},
            {static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(i)}));
      }
    });
  }
  for (auto& t : publishers) t.join();

  EXPECT_EQ(zoo.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every publish returned a distinct id and every record is fetchable.
  std::vector<store::DocId> all;
  for (const auto& batch : ids) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  for (const store::DocId id : all) {
    EXPECT_TRUE(zoo.fetch(id).has_value());
  }
  EXPECT_EQ(zoo.metadata_of("braggnn").size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// --- sharded-store plumbing through FairDS and the service layer ------------

TEST(ShardedServing, StoreShardsPlumbThroughConfigAndStats) {
  store::DocStore db;
  const nn::Batchset history = regime_data(0.0, 64, 301);
  auto config = small_config();
  config.store_shards = 4;
  fairds::FairDS ds(config, db);
  EXPECT_EQ(ds.store_shards(), 4u);
  ds.train_system(history.xs);
  ds.ingest(history.xs, history.ys, "history_0");

  // A matching declared shard count is accepted and surfaces in stats.
  service::DataService service(ds, {.workers = 2, .store_shards = 4});
  auto future = service.submit(
      service::LabelRequest{history.xs, 1e9, zero_labeler});
  future.get();
  EXPECT_EQ(service.stats().store_shards, 4u);
}

TEST(ShardedServing, UserPlaneResultsIdenticalAcrossShardCounts) {
  // End-to-end fairDS parity: the shard count is a concurrency knob, never
  // a results knob. Identical training + ingest over 1-shard and 8-shard
  // stores must serve identical distributions, lookups, and reuse labels.
  const nn::Batchset history = regime_data(0.0, 96, 303);
  const nn::Batchset query = regime_data(0.05, 24, 304);

  auto run = [&](std::size_t shards) {
    auto db = std::make_unique<store::DocStore>();
    auto config = small_config();
    config.store_shards = shards;
    fairds::FairDS ds(config, *db);
    ds.train_system(history.xs);
    ds.ingest(history.xs, history.ys, "history_0");
    struct Out {
      std::vector<double> pdf;
      nn::Batchset lookup;
      nn::Batchset labeled;
      fairds::ReuseStats reuse;
    } out;
    out.pdf = ds.distribution(query.xs);
    out.lookup = ds.lookup(query.xs, /*seed=*/7);
    out.labeled = ds.lookup_or_label(query.xs, 0.75, zero_labeler, &out.reuse);
    return out;
  };

  const auto base = run(1);
  const auto sharded = run(8);
  EXPECT_EQ(base.pdf, sharded.pdf);
  EXPECT_EQ(base.reuse.reused, sharded.reuse.reused);
  EXPECT_EQ(base.reuse.computed, sharded.reuse.computed);
  ASSERT_EQ(base.lookup.ys.numel(), sharded.lookup.ys.numel());
  for (std::size_t i = 0; i < base.lookup.ys.numel(); ++i) {
    EXPECT_EQ(base.lookup.ys[i], sharded.lookup.ys[i]) << "lookup ys " << i;
  }
  ASSERT_EQ(base.labeled.ys.numel(), sharded.labeled.ys.numel());
  for (std::size_t i = 0; i < base.labeled.ys.numel(); ++i) {
    EXPECT_EQ(base.labeled.ys[i], sharded.labeled.ys[i]) << "labeled ys " << i;
  }
}

}  // namespace
}  // namespace fairdms
