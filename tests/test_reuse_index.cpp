// ReuseIndex unit tests: per-cluster SoA bookkeeping, nearest-neighbor
// correctness against a brute-force reference (with the partial-pruning
// path exercised), batch/single agreement, and edge cases (empty index,
// empty cluster, out-of-range cluster, single-member cluster).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fairds/reuse_index.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using fairds::ReuseIndex;

/// Brute-force nearest row, replicating the accumulation order the index
/// uses (sequential over dimensions, doubles) so distances compare exactly.
ReuseIndex::Neighbor brute_force(
    const std::vector<std::vector<float>>& rows,
    const std::vector<store::DocId>& ids, const std::vector<float>& query) {
  ReuseIndex::Neighbor best;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double d = 0.0;
    for (std::size_t j = 0; j < query.size(); ++j) {
      const double diff = static_cast<double>(query[j]) -
                          static_cast<double>(rows[r][j]);
      d += diff * diff;
    }
    if (d < best.dist2) {
      best.dist2 = d;
      best.id = ids[r];
    }
  }
  return best;
}

std::vector<float> random_row(util::Rng& rng, std::size_t dim) {
  std::vector<float> row(dim);
  for (auto& v : row) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  return row;
}

TEST(ReuseIndex, StartsEmptyAndResets) {
  ReuseIndex index(4);
  EXPECT_EQ(index.dim(), 4u);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.cluster_count(), 0u);

  index.add(2, 7, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.cluster_count(), 3u);  // grown on demand
  EXPECT_EQ(index.cluster_size(2), 1u);
  EXPECT_EQ(index.cluster_size(0), 0u);
  EXPECT_EQ(index.cluster_size(99), 0u);

  index.reset(6);
  EXPECT_EQ(index.dim(), 6u);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.cluster_count(), 0u);
}

TEST(ReuseIndex, EmptyOrMissingClusterReturnsNotFound) {
  ReuseIndex index(3);
  const std::vector<float> q{0.0f, 0.0f, 0.0f};
  EXPECT_FALSE(index.nearest(0, q).found());

  index.add(1, 5, std::vector<float>{1, 1, 1});
  EXPECT_FALSE(index.nearest(0, q).found());   // existing but empty cluster
  EXPECT_FALSE(index.nearest(42, q).found());  // beyond cluster_count
  EXPECT_TRUE(index.nearest(1, q).found());
}

TEST(ReuseIndex, SingleMemberClusterAlwaysWins) {
  ReuseIndex index(2);
  index.add(0, 9, std::vector<float>{3.0f, -4.0f});
  const auto nb = index.nearest(0, std::vector<float>{0.0f, 0.0f});
  ASSERT_TRUE(nb.found());
  EXPECT_EQ(nb.id, 9u);
  EXPECT_DOUBLE_EQ(nb.dist2, 25.0);
}

TEST(ReuseIndex, NearestMatchesBruteForce) {
  // dim 19 is deliberately not a multiple of the pruning block so the tail
  // path runs; 200 rows per cluster gives the pruner plenty to abandon.
  constexpr std::size_t kDim = 19;
  constexpr std::size_t kClusters = 5;
  constexpr std::size_t kRows = 200;
  util::Rng rng(1234);

  ReuseIndex index(kDim);
  std::vector<std::vector<std::vector<float>>> rows(kClusters);
  std::vector<std::vector<store::DocId>> ids(kClusters);
  store::DocId next_id = 1;
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (std::size_t r = 0; r < kRows; ++r) {
      rows[c].push_back(random_row(rng, kDim));
      ids[c].push_back(next_id);
      index.add(c, next_id, rows[c].back());
      ++next_id;
    }
  }

  for (int trial = 0; trial < 64; ++trial) {
    const auto c = rng.uniform_index(kClusters);
    const auto query = random_row(rng, kDim);
    const auto got = index.nearest(c, query);
    const auto want = brute_force(rows[c], ids[c], query);
    ASSERT_TRUE(got.found());
    EXPECT_EQ(got.id, want.id) << "cluster " << c << " trial " << trial;
    EXPECT_DOUBLE_EQ(got.dist2, want.dist2);
  }

  // A query equal to a stored row must find that exact row at distance 0.
  const auto exact = index.nearest(3, rows[3][17]);
  EXPECT_EQ(exact.id, ids[3][17]);
  EXPECT_DOUBLE_EQ(exact.dist2, 0.0);
}

TEST(ReuseIndex, BatchAgreesWithSingleQueries) {
  constexpr std::size_t kDim = 8;
  util::Rng rng(99);
  ReuseIndex index(kDim);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 50; ++r) {
      index.add(c, c * 50 + r + 1, random_row(rng, kDim));
    }
  }

  constexpr std::size_t kQueries = 37;
  std::vector<float> queries(kQueries * kDim);
  std::vector<std::size_t> clusters(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto row = random_row(rng, kDim);
    std::copy(row.begin(), row.end(), queries.begin() + i * kDim);
    clusters[i] = rng.uniform_index(5);  // includes an empty cluster id 4
  }

  const auto batch = index.nearest_batch(queries, clusters);
  ASSERT_EQ(batch.size(), kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto single = index.nearest(
        clusters[i], std::span<const float>{queries.data() + i * kDim, kDim});
    EXPECT_EQ(batch[i].id, single.id) << "query " << i;
    EXPECT_EQ(batch[i].found(), single.found());
    if (single.found()) {
      EXPECT_DOUBLE_EQ(batch[i].dist2, single.dist2);
    }
  }
}

TEST(ReuseIndex, TiesKeepEarliestAddedRow) {
  ReuseIndex index(2);
  const std::vector<float> same{1.0f, 2.0f};
  index.add(0, 11, same);
  index.add(0, 22, same);
  const auto nb = index.nearest(0, same);
  EXPECT_EQ(nb.id, 11u);
  EXPECT_DOUBLE_EQ(nb.dist2, 0.0);
}

TEST(ReuseIndexDeathTest, MisusedDimensionsAbort) {
  ReuseIndex index(3);
  EXPECT_DEATH(index.add(0, 1, std::vector<float>{1.0f}), "dims");
  index.add(0, 1, std::vector<float>{1, 2, 3});
  EXPECT_DEATH((void)index.nearest(0, std::vector<float>{1.0f, 2.0f}),
               "dims");
  EXPECT_DEATH(index.add(0, 0, std::vector<float>{1, 2, 3}), "sentinel");
}

}  // namespace
}  // namespace fairdms
