// Reuse-path tests: exact parity between the rewritten (reuse-index +
// batched-reads) lookup_or_label and the preserved pre-rewrite baseline,
// the empty-store cold start, single-member/empty clusters, the batched
// find_many read (missing ids, projections, single round trip), and
// approx_bytes invariance across insert/update/replace/remove cycles.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairds/reuse_baseline.hpp"
#include "store/codec.hpp"
#include "store/docstore.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using store::Binary;
using store::Object;
using store::Value;
using tensor::Tensor;

fairds::FairDSConfig small_config(std::size_t k = 4) {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = k;
  config.embed_train.epochs = 3;
  config.embed_train.batch_size = 24;
  config.certainty_threshold = 0.55;
  config.seed = 29;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  regime.eta_mean = std::min(0.95, regime.eta_mean + drift * 0.5);
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

/// Deterministic, input-dependent fallback so parity failures can't hide
/// behind a constant label: ys(i, j) = mean(pixel row i) * (j + 1).
Tensor deterministic_labeler(const Tensor& xs, std::size_t label_w) {
  const std::size_t n = xs.dim(0);
  const std::size_t pixels = xs.numel() / n;
  Tensor ys({n, label_w});
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t p = 0; p < pixels; ++p) {
      sum += static_cast<double>(xs[i * pixels + p]);
    }
    const auto mean = static_cast<float>(sum / static_cast<double>(pixels));
    for (std::size_t j = 0; j < label_w; ++j) {
      ys.data()[i * label_w + j] = mean * static_cast<float>(j + 1);
    }
  }
  return ys;
}

void expect_batchsets_identical(const nn::Batchset& a, const nn::Batchset& b,
                                const std::string& context) {
  ASSERT_EQ(a.xs.shape(), b.xs.shape()) << context;
  ASSERT_EQ(a.ys.shape(), b.ys.shape()) << context;
  for (std::size_t i = 0; i < a.xs.numel(); ++i) {
    ASSERT_EQ(a.xs[i], b.xs[i]) << context << " xs[" << i << "]";
  }
  for (std::size_t i = 0; i < a.ys.numel(); ++i) {
    ASSERT_EQ(a.ys[i], b.ys[i]) << context << " ys[" << i << "]";
  }
}

class RetrievalPathFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = regime_data(0.0, 96, 21);
    ds_ = std::make_unique<fairds::FairDS>(small_config(), db_);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history_0");
  }

  store::DocStore db_;
  nn::Batchset history_;
  std::unique_ptr<fairds::FairDS> ds_;
};

TEST_F(RetrievalPathFixture, IndexMirrorsStoreAfterIngest) {
  EXPECT_EQ(ds_->reuse_index().size(), ds_->stored_count());
  EXPECT_EQ(ds_->reuse_index().dim(), ds_->config().embedding_dim);
  std::size_t from_clusters = 0;
  for (std::size_t c = 0; c < ds_->reuse_index().cluster_count(); ++c) {
    from_clusters += ds_->reuse_index().cluster_size(c);
  }
  EXPECT_EQ(from_clusters, 96u);
}

TEST_F(RetrievalPathFixture, ParityWithLegacyAcrossThresholds) {
  const nn::Batchset query = regime_data(0.01, 32, 22);
  const auto labeler = [](const Tensor& xs) {
    return deterministic_labeler(xs, 2);
  };
  // Spans everything-reused down to everything-computed; the mid values
  // exercise mixed reuse/fallback batches.
  bool saw_mixed = false;
  for (const double threshold : {1e9, 2.0, 0.5, 0.2, 0.05, 1e-12}) {
    fairds::ReuseStats new_stats;
    const auto got =
        ds_->lookup_or_label(query.xs, threshold, labeler, &new_stats);
    fairds::ReuseStats old_stats;
    const auto want = fairds::legacy_lookup_or_label(
        *ds_, db_, query.xs, threshold, labeler, &old_stats);
    const std::string context = "threshold=" + std::to_string(threshold);
    EXPECT_EQ(new_stats.reused, old_stats.reused) << context;
    EXPECT_EQ(new_stats.computed, old_stats.computed) << context;
    expect_batchsets_identical(got, want, context);
    saw_mixed = saw_mixed || (new_stats.reused > 0 && new_stats.computed > 0);
  }
  EXPECT_TRUE(saw_mixed) << "no threshold produced a mixed batch; widen the "
                            "threshold sweep";
}

TEST(RetrievalPath, ParityWithLegacyAfterRetrain) {
  // Certainty is in [0, 1], so a threshold above 1 forces the retrain
  // unconditionally — this test is about the post-retrain index rebuild,
  // not the trigger condition (covered in test_fairds).
  store::DocStore db;
  auto config = small_config();
  config.certainty_threshold = 1.01;
  fairds::FairDS ds(config, db);
  const nn::Batchset history = regime_data(0.0, 96, 21);
  ds.train_system(history.xs);
  ds.ingest(history.xs, history.ys, "history_0");

  const nn::Batchset shifted = regime_data(1.8, 64, 23);
  ASSERT_TRUE(ds.maybe_retrain(shifted.xs));
  EXPECT_EQ(ds.reuse_index().size(), ds.stored_count());
  const nn::Batchset query = regime_data(0.02, 24, 24);
  const auto labeler = [](const Tensor& xs) {
    return deterministic_labeler(xs, 2);
  };
  for (const double threshold : {1e9, 0.5, 1e-12}) {
    fairds::ReuseStats new_stats;
    const auto got =
        ds.lookup_or_label(query.xs, threshold, labeler, &new_stats);
    fairds::ReuseStats old_stats;
    const auto want = fairds::legacy_lookup_or_label(
        ds, db, query.xs, threshold, labeler, &old_stats);
    EXPECT_EQ(new_stats.reused, old_stats.reused);
    EXPECT_EQ(new_stats.computed, old_stats.computed);
    expect_batchsets_identical(got, want,
                               "post-retrain threshold=" +
                                   std::to_string(threshold));
  }
}

TEST(RetrievalColdStart, EmptyStoreRoutesEverythingToFallback) {
  // Pre-rewrite this aborted in label_width() ("no stored samples"); now it
  // must label every sample via the fallback and take its width.
  store::DocStore db;
  fairds::FairDS ds(small_config(), db);
  const nn::Batchset history = regime_data(0.0, 48, 31);
  ds.train_system(history.xs);  // trained, but nothing ingested

  const nn::Batchset query = regime_data(0.0, 12, 32);
  fairds::ReuseStats stats;
  std::size_t labeler_calls = 0;
  const auto labeled = ds.lookup_or_label(
      query.xs, /*threshold=*/1e9,
      [&](const Tensor& xs) {
        ++labeler_calls;
        return deterministic_labeler(xs, 3);
      },
      &stats);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(stats.computed, 12u);
  EXPECT_EQ(labeler_calls, 1u);
  ASSERT_EQ(labeled.ys.shape(), (std::vector<std::size_t>{12, 3}));
  const Tensor want = deterministic_labeler(query.xs, 3);
  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_EQ(labeled.ys[i], want[i]);
  }
}

TEST(RetrievalEdgeCases, SingleMemberAndEmptyClusters) {
  // Train the clustering on a spread of data but ingest only 3 samples
  // with k=4: at least one cluster is empty and the populated ones hold
  // one-ish members. Reuse must work for hits and fall back for misses.
  store::DocStore db;
  fairds::FairDS ds(small_config(4), db);
  const nn::Batchset history = regime_data(0.0, 64, 41);
  ds.train_system(history.xs);

  nn::Batchset tiny;
  tiny.xs = Tensor({3, 1, 15, 15});
  tiny.ys = Tensor({3, 2});
  const std::size_t pixels = 225;
  for (std::size_t i = 0; i < 3; ++i) {
    std::copy_n(history.xs.data() + i * pixels, pixels,
                tiny.xs.data() + i * pixels);
    std::copy_n(history.ys.data() + i * 2, 2, tiny.ys.data() + i * 2);
  }
  ds.ingest(tiny.xs, tiny.ys, "tiny");
  EXPECT_EQ(ds.reuse_index().size(), 3u);

  const nn::Batchset query = regime_data(0.0, 24, 42);
  const auto labeler = [](const Tensor& xs) {
    return deterministic_labeler(xs, 2);
  };
  fairds::ReuseStats new_stats;
  const auto got = ds.lookup_or_label(query.xs, 1e9, labeler, &new_stats);
  EXPECT_EQ(new_stats.reused + new_stats.computed, 24u);

  fairds::ReuseStats old_stats;
  const auto want =
      fairds::legacy_lookup_or_label(ds, db, query.xs, 1e9, labeler,
                                     &old_stats);
  EXPECT_EQ(new_stats.reused, old_stats.reused);
  EXPECT_EQ(new_stats.computed, old_stats.computed);
  expect_batchsets_identical(got, want, "sparse-store");
}

TEST_F(RetrievalPathFixture, VanishedDocumentsFallBackInsteadOfAborting) {
  // Remove half the stored samples directly from the collection: the reuse
  // index still holds their rows, so some winners resolve to vanished
  // documents. Those queries must be served by the fallback labeler.
  auto& col = db_.collection(ds_->config().collection);
  const auto ids = col.all_ids();
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(col.remove_one(ids[i]));
  }
  ASSERT_EQ(ds_->stored_count(), 48u);
  ASSERT_EQ(ds_->reuse_index().size(), 96u);  // stale on purpose

  const nn::Batchset query = regime_data(0.0, 24, 25);
  fairds::ReuseStats stats;
  const auto labeled = ds_->lookup_or_label(
      query.xs, /*threshold=*/1e9,
      [](const Tensor& xs) { return deterministic_labeler(xs, 2); }, &stats);
  EXPECT_EQ(stats.reused + stats.computed, 24u);
  EXPECT_EQ(labeled.ys.shape(), (std::vector<std::size_t>{24, 2}));
}

TEST(RetrievalEdgeCasesDeathTest, CorruptStoredClusterFailsLoudly) {
  // Stored fields are untrusted (snapshots, external writers): a negative
  // cluster id must die with a diagnostic, not index out of bounds.
  store::DocStore db;
  auto config = small_config();
  auto& col = db.collection(config.collection);
  const store::RawCodec codec;
  const std::vector<float> emb(config.embedding_dim, 0.5f);
  Object doc;
  doc["cluster"] = Value(std::int64_t{-1});
  doc["embedding"] = Value(codec.encode(emb));
  doc["x"] = Value(codec.encode(std::vector<float>(225, 0.0f)));
  doc["y"] = Value(codec.encode(std::vector<float>(2, 0.0f)));
  col.insert_one(Value(std::move(doc)));

  fairds::FairDS ds(config, db);
  const nn::Batchset history = regime_data(0.0, 48, 51);
  EXPECT_DEATH(ds.train_system(history.xs), "corrupt cluster");
}

TEST(RetrievalEdgeCases, StaleClusterIdsBeyondKAreTolerated) {
  // Cluster ids assigned under an earlier model can exceed the freshly
  // trained k (e.g. elbow picked a smaller k on retrain-over-history).
  // They are unreachable by queries — which probe clusters < k — but must
  // not abort the rebuild.
  store::DocStore db;
  auto config = small_config(4);
  auto& col = db.collection(config.collection);
  const store::RawCodec codec;
  Object doc;
  doc["cluster"] = Value(std::int64_t{9});  // >= k = 4
  doc["embedding"] =
      Value(codec.encode(std::vector<float>(config.embedding_dim, 0.5f)));
  doc["x"] = Value(codec.encode(std::vector<float>(225, 0.0f)));
  doc["y"] = Value(codec.encode(std::vector<float>(2, 0.0f)));
  col.insert_one(Value(std::move(doc)));

  fairds::FairDS ds(config, db);
  const nn::Batchset history = regime_data(0.0, 48, 52);
  ds.train_system(history.xs);  // must not abort
  EXPECT_EQ(ds.reuse_index().size(), 1u);
  EXPECT_EQ(ds.reuse_index().cluster_size(9), 1u);

  const nn::Batchset query = regime_data(0.0, 8, 53);
  fairds::ReuseStats stats;
  const auto labeled = ds.lookup_or_label(
      query.xs, 1e9,
      [](const Tensor& xs) { return deterministic_labeler(xs, 2); }, &stats);
  // The lone stored sample lives in an unreachable cluster: every query
  // falls back.
  EXPECT_EQ(stats.computed, 8u);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(labeled.ys.dim(1), 2u);
}

// --- batched reads ----------------------------------------------------------

TEST(FindMany, ReturnsDocsAndNulloptsInOrder) {
  store::DocStore db;
  auto& col = db.collection("c");
  std::vector<store::DocId> ids;
  for (int i = 0; i < 5; ++i) {
    Object doc;
    doc["v"] = Value(static_cast<std::int64_t>(i));
    ids.push_back(col.insert_one(Value(std::move(doc))));
  }
  const store::DocId removed = ids[2];
  col.remove_one(removed);

  const std::vector<store::DocId> ask = {ids[4], removed, ids[0], 9999};
  const auto got = col.find_many(ask);
  ASSERT_EQ(got.size(), 4u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ(got[0]->at("v").as_int(), 4);
  EXPECT_FALSE(got[1].has_value());
  ASSERT_TRUE(got[2].has_value());
  EXPECT_EQ(got[2]->at("v").as_int(), 0);
  EXPECT_EQ(got[2]->at("_id").as_int(), static_cast<std::int64_t>(ids[0]));
  EXPECT_FALSE(got[3].has_value());
}

TEST(FindMany, ProjectionReturnsOnlyRequestedFields) {
  store::DocStore db;
  auto& col = db.collection("c");
  Object doc;
  doc["a"] = Value(std::int64_t{1});
  doc["b"] = Value("payload");
  doc["big"] = Value(Binary(4096, 0x7f));
  const store::DocId id = col.insert_one(Value(std::move(doc)));

  const std::vector<store::DocId> ask = {id};
  const std::vector<std::string> fields = {"a", "missing"};
  const auto got = col.find_many(ask, fields);
  ASSERT_TRUE(got[0].has_value());
  const Object& obj = got[0]->as_object();
  EXPECT_EQ(obj.size(), 1u);  // "missing" omitted, "b"/"big"/"_id" excluded
  EXPECT_EQ(got[0]->at("a").as_int(), 1);
}

TEST(FindMany, OneRoundTripAndProjectedBytesOnly) {
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 1e-9,
                                             .bandwidth_bytes_per_s = 1e12});
  auto& col = db.collection("c");
  std::vector<store::DocId> ids;
  for (int i = 0; i < 16; ++i) {
    Object doc;
    doc["small"] = Value(std::int64_t{i});
    doc["big"] = Value(Binary(2048, 0x11));
    ids.push_back(col.insert_one(Value(std::move(doc))));
  }

  const auto before_reqs = db.link().requests();
  const auto before_bytes = db.link().bytes_moved();
  const std::vector<std::string> fields = {"small"};
  const auto got = col.find_many(ids, fields);
  ASSERT_EQ(got.size(), 16u);
  EXPECT_EQ(db.link().requests(), before_reqs + 1);  // one batched trip
  // Projected reads must not pay for the 2 KB binaries.
  EXPECT_LT(db.link().bytes_moved() - before_bytes, 16u * 256u);
}

// --- payload-byte accounting ------------------------------------------------

TEST(PayloadAccounting, EncodedSizeMatchesEncode) {
  Object inner;
  inner["flag"] = Value(true);
  Object obj;
  obj["name"] = Value("bragg");
  obj["count"] = Value(std::int64_t{15});
  obj["ratio"] = Value(0.75);
  obj["none"] = Value(nullptr);
  obj["blob"] = Value(Binary{1, 2, 3, 4, 5});
  obj["pdf"] = Value(store::Array{Value(0.25), Value(0.75)});
  obj["meta"] = Value(std::move(inner));
  const Value doc{std::move(obj)};
  Binary buf;
  doc.encode(buf);
  EXPECT_EQ(doc.encoded_size(), buf.size());
}

/// approx_bytes() must equal the bytes of a freshly built collection with
/// identical contents, no matter the mutation history that produced it.
std::size_t rebuilt_bytes(store::Collection& col) {
  store::DocStore fresh_db;
  auto& fresh = fresh_db.collection("fresh");
  // Buffer during the scan, insert after: the scan callback runs under the
  // source shard's lock, and inserting into another collection from inside
  // it nests two same-rank shard locks (the lock-rank checker aborts, and
  // two threads doing crossed scan/insert could genuinely deadlock).
  std::vector<Value> copies;
  col.scan([&](store::DocId, const Value& doc) {
    Object copy = doc.as_object();
    copy.erase("_id");  // re-assigned on insert; same encoded size
    copies.emplace_back(std::move(copy));
  });
  for (Value& copy : copies) fresh.insert_one(std::move(copy));
  return fresh.approx_bytes();
}

TEST(PayloadAccounting, ApproxBytesInvariantAcrossMutationCycles) {
  store::DocStore db;
  auto& col = db.collection("c");
  col.create_index("cluster");
  std::vector<store::DocId> ids;
  for (int i = 0; i < 12; ++i) {
    Object doc;
    doc["cluster"] = Value(static_cast<std::int64_t>(i % 3));
    doc["embedding"] = Value(Binary(64, static_cast<std::uint8_t>(i)));
    ids.push_back(col.insert_one(Value(std::move(doc))));
  }
  EXPECT_EQ(col.approx_bytes(), rebuilt_bytes(col));

  // update_field with a larger value (the retrain re-embedding pattern —
  // pre-fix this drifted payload_bytes_ by the full value size each pass).
  for (const store::DocId id : ids) {
    EXPECT_TRUE(col.update_field(id, "embedding",
                                 Value(Binary(256, 0x2a))));
    EXPECT_TRUE(col.update_field(id, "cluster", Value(std::int64_t{7})));
  }
  EXPECT_EQ(col.approx_bytes(), rebuilt_bytes(col));

  // update_fields / update_many single-pass updates agree too.
  {
    std::vector<std::pair<store::DocId, Object>> updates;
    for (const store::DocId id : ids) {
      Object fields;
      fields["cluster"] = Value(std::int64_t{1});
      fields["embedding"] = Value(Binary(32, 0x01));
      updates.emplace_back(id, std::move(fields));
    }
    EXPECT_EQ(col.update_many(std::move(updates)), ids.size());
    EXPECT_EQ(col.approx_bytes(), rebuilt_bytes(col));
  }

  // replace + remove cycles drive it back to a consistent state and to
  // exactly zero when emptied.
  Object repl;
  repl["cluster"] = Value(std::int64_t{0});
  EXPECT_TRUE(col.replace_one(ids[0], Value(std::move(repl))));
  EXPECT_EQ(col.approx_bytes(), rebuilt_bytes(col));
  for (const store::DocId id : ids) EXPECT_TRUE(col.remove_one(id));
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(col.approx_bytes(), 0u);
}

TEST(PayloadAccounting, UpdateFieldChargesValueSizeNotFlatConstant) {
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 1e-9,
                                             .bandwidth_bytes_per_s = 1e12});
  auto& col = db.collection("c");
  Object doc;
  doc["payload"] = Value(Binary(16, 0x00));
  const store::DocId id = col.insert_one(Value(std::move(doc)));

  const auto before = db.link().bytes_moved();
  EXPECT_TRUE(col.update_field(id, "payload", Value(Binary(4096, 0x01))));
  const auto charged = db.link().bytes_moved() - before;
  EXPECT_GT(charged, 4096u);       // pre-fix: flat 128 regardless of size
  EXPECT_LT(charged, 4096u + 256); // but not the whole document either
}

TEST(PayloadAccounting, UpdateManyIsOneRoundTrip) {
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 1e-9,
                                             .bandwidth_bytes_per_s = 1e12});
  auto& col = db.collection("c");
  std::vector<store::DocId> ids;
  for (int i = 0; i < 8; ++i) {
    Object doc;
    doc["v"] = Value(std::int64_t{0});
    ids.push_back(col.insert_one(Value(std::move(doc))));
  }
  std::vector<std::pair<store::DocId, Object>> updates;
  for (const store::DocId id : ids) {
    Object fields;
    fields["v"] = Value(std::int64_t{1});
    updates.emplace_back(id, std::move(fields));
  }
  updates.emplace_back(424242, Object{{"v", Value(std::int64_t{1})}});
  const auto before = db.link().requests();
  EXPECT_EQ(col.update_many(std::move(updates)), 8u);  // missing id skipped
  EXPECT_EQ(db.link().requests(), before + 1);
  for (const store::DocId id : ids) {
    EXPECT_EQ(col.find_by_id(id)->at("v").as_int(), 1);
  }
}

}  // namespace
}  // namespace fairdms
