// Snapshot fault tolerance: persist::try_load_store must turn every
// truncated or corrupted snapshot byte stream into a structured
// PersistResult error (never an abort, never an unbounded allocation, and
// never a partially-mutated target collection), and persist::try_save_store
// must leave a loadable directory when the writing process is SIGKILLed at
// any point mid-save (tmp + fsync + rename per file, manifest last).
//
// The fault-injection tests fork() and kill the child, so they are declared
// first and keep collections small enough (< the 512-item fan-out
// threshold) that neither parent nor child ever starts thread-pool workers
// before a fork.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "store/docstore.hpp"
#include "store/persist.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

namespace fs = std::filesystem;

using store::Binary;
using store::DocId;
using store::DocStore;
using store::Object;
using store::Value;

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(::testing::TempDir() + "fairdms_persist_fault_" + tag + "_" +
             std::to_string(::getpid())) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

Value sample_doc(util::Rng& rng) {
  Object doc;
  doc["cluster"] = Value(static_cast<std::int64_t>(rng.uniform_index(8)));
  doc["tag"] = Value("t" + std::to_string(rng.uniform_index(100)));
  Binary blob(rng.uniform_index(40));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  doc["blob"] = Value(std::move(blob));
  return Value(std::move(doc));
}

/// Populates `db` with a deterministic two-collection store (seed selects
/// the content so crash tests can distinguish snapshot generations).
void populate(DocStore& db, std::uint64_t seed, std::size_t docs) {
  util::Rng rng(seed);
  auto& samples = db.collection("samples");
  samples.create_index("cluster");
  for (std::size_t i = 0; i < docs; ++i) samples.insert_one(sample_doc(rng));
  auto& zoo = db.collection("zoo");
  for (std::size_t i = 0; i < docs / 4; ++i) zoo.insert_one(sample_doc(rng));
}

Binary read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Binary(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Binary& bytes,
                std::size_t count) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(count));
}

// --- mid-save SIGKILL fault injection (declared first: forks) ---------------

TEST(PersistFault, KilledSaverNeverLeavesAnUnloadableDirectory) {
  TempDir dir("killsave");
  const std::string snap = dir.path + "/snap";

  // Generation 1 written safely: the directory starts loadable.
  DocStore gen1;
  populate(gen1, 1, 60);
  ASSERT_TRUE(store::try_save_store(gen1, snap).ok());

  // Repeatedly fork a child that overwrites the snapshot with generation 2
  // and kill it after a variable head start. Whatever the kill lands on —
  // tmp write, fsync, rename, or in between files — the directory must
  // load as a complete generation-1 or generation-2 store, per file.
  for (int round = 0; round < 12; ++round) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      DocStore gen2;
      populate(gen2, 2, 80);
      for (;;) {
        if (!store::try_save_store(gen2, snap).ok()) ::_exit(3);
      }
    }
    // A spread of delays lands the SIGKILL at different save phases.
    ::usleep(static_cast<useconds_t>(200 * round * round));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    DocStore loaded;
    const auto r = store::try_load_store(loaded, snap);
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.error;
    ASSERT_TRUE(loaded.has_collection("samples"));
    ASSERT_TRUE(loaded.has_collection("zoo"));
    // Atomicity is per file: each collection is a complete generation-1
    // or generation-2 snapshot, but a kill between the two .col renames
    // legitimately mixes generations across collections.
    auto& samples = loaded.collection("samples");
    const std::size_t n = samples.size();
    ASSERT_TRUE(n == 60 || n == 80)
        << "round " << round << ": torn samples snapshot, " << n << " docs";
    EXPECT_TRUE(samples.has_index("cluster"));
    const std::size_t z = loaded.collection("zoo").size();
    ASSERT_TRUE(z == 15 || z == 20)
        << "round " << round << ": torn zoo snapshot, " << z << " docs";
  }
}

// --- corruption sweeps ------------------------------------------------------

class PersistCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("sweep");
    snap_ = dir_->path + "/snap";
    populate(source_, 7, 24);
    ASSERT_TRUE(store::try_save_store(source_, snap_).ok());
    manifest_ = read_file(snap_ + "/manifest.bin");
    ASSERT_FALSE(manifest_.empty());
    for (const auto& entry : fs::directory_iterator(snap_)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 4 && name.substr(name.size() - 4) == ".col") {
        col_names_.push_back(name);
        col_bytes_.push_back(read_file(entry.path().string()));
        ASSERT_FALSE(col_bytes_.back().empty());
      }
    }
    ASSERT_EQ(col_names_.size(), 2u);
  }

  /// try_load into a fresh store; returns the result (never aborts).
  store::PersistResult load() {
    DocStore target;
    return store::try_load_store(target, snap_);
  }

  DocStore source_;
  std::unique_ptr<TempDir> dir_;
  std::string snap_;
  Binary manifest_;
  std::vector<std::string> col_names_;
  std::vector<Binary> col_bytes_;
};

TEST_F(PersistCorruption, EveryManifestTruncationIsAStructuredError) {
  const std::string path = snap_ + "/manifest.bin";
  for (std::size_t cut = 0; cut < manifest_.size(); ++cut) {
    write_file(path, manifest_, cut);
    const auto r = load();
    EXPECT_FALSE(r.ok()) << "cut at byte " << cut;
    EXPECT_NE(r.error.find("manifest"), std::string::npos)
        << "cut " << cut << ": " << r.error;
  }
  write_file(path, manifest_, manifest_.size());
  EXPECT_TRUE(load().ok());
}

TEST_F(PersistCorruption, EveryCollectionTruncationIsAStructuredError) {
  for (std::size_t c = 0; c < col_names_.size(); ++c) {
    const std::string path = snap_ + "/" + col_names_[c];
    const Binary& original = col_bytes_[c];
    for (std::size_t cut = 0; cut < original.size(); ++cut) {
      write_file(path, original, cut);
      const auto r = load();
      EXPECT_FALSE(r.ok()) << col_names_[c] << " cut at byte " << cut;
      EXPECT_NE(r.error.find(col_names_[c]), std::string::npos)
          << "cut " << cut << ": " << r.error;
    }
    write_file(path, original, original.size());
  }
  EXPECT_TRUE(load().ok());
}

TEST_F(PersistCorruption, ByteFlipsNeverCrashAndFailuresNameTheFile) {
  // Flip each byte of the first collection file through a few patterns.
  // Some flips are semantically invisible (a blob byte); the invariant is
  // "no crash, no unbounded allocation, and any reported error names the
  // file", not that every flip is detected.
  const std::string path = snap_ + "/" + col_names_[0];
  const Binary& original = col_bytes_[0];
  Binary mutated = original;
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (const std::uint8_t pattern : {0xFFu, 0x01u, 0x80u}) {
      mutated[i] = original[i] ^ pattern;
      write_file(path, mutated, mutated.size());
      const auto r = load();
      if (!r.ok()) {
        EXPECT_NE(r.error.find(col_names_[0]), std::string::npos)
            << "byte " << i << ": " << r.error;
      }
    }
    mutated[i] = original[i];
  }
}

TEST_F(PersistCorruption, MissingCollectionFileIsAStructuredError) {
  fs::remove(snap_ + "/" + col_names_[0]);
  const auto r = load();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find(col_names_[0]), std::string::npos) << r.error;
}

TEST_F(PersistCorruption, FailedLoadLeavesTargetCollectionEmpty) {
  // Truncate mid-documents: validation must reject the file before any
  // document lands in the target collection.
  const std::string path = snap_ + "/" + col_names_[0];
  write_file(path, col_bytes_[0], col_bytes_[0].size() - 5);
  DocStore target;
  const auto r = store::try_load_store(target, snap_);
  ASSERT_FALSE(r.ok());
  const std::string col_name =
      col_names_[0].substr(0, col_names_[0].size() - 4);
  if (target.has_collection(col_name)) {
    EXPECT_EQ(target.collection(col_name).size(), 0u);
  }
}

// --- structured-error surface ----------------------------------------------

TEST(PersistErrors, LoadFromMissingDirectoryReportsManifest) {
  DocStore db;
  const auto r =
      store::try_load_store(db, "/nonexistent/fairdms_fault_dir");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("manifest"), std::string::npos) << r.error;
}

TEST(PersistErrors, LoadIntoNonEmptyCollectionReportsError) {
  TempDir dir("nonempty");
  DocStore src;
  populate(src, 3, 12);
  ASSERT_TRUE(store::try_save_store(src, dir.path + "/snap").ok());

  DocStore target;
  util::Rng rng(4);
  target.collection("samples").insert_one(sample_doc(rng));
  const auto r = store::try_load_store(target, dir.path + "/snap");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("non-empty"), std::string::npos) << r.error;
}

TEST(PersistErrors, SnapshotCollectionsListsManifestEntries) {
  TempDir dir("names");
  DocStore src;
  populate(src, 5, 12);
  ASSERT_TRUE(store::try_save_store(src, dir.path + "/snap").ok());
  std::vector<std::string> names;
  const auto r = store::try_snapshot_collections(dir.path + "/snap", names);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(names, (std::vector<std::string>{"samples", "zoo"}));

  names.clear();
  const auto miss =
      store::try_snapshot_collections("/nonexistent/fairdms_fault_dir",
                                      names);
  EXPECT_FALSE(miss.ok());
  EXPECT_TRUE(names.empty());
}

TEST(PersistErrors, SaveToUnwritableDirectoryReportsError) {
  const auto r = store::try_save_store(DocStore{}, "/proc/fairdms_no_such");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

TEST(PersistErrors, RoundTripSurvivesSweepHarness) {
  // Sanity-pin the harness itself: an untouched snapshot round-trips.
  TempDir dir("roundtrip");
  DocStore src;
  populate(src, 9, 40);
  ASSERT_TRUE(store::try_save_store(src, dir.path + "/snap").ok());
  DocStore loaded;
  const auto r = store::try_load_store(loaded, dir.path + "/snap");
  ASSERT_TRUE(r.ok()) << r.error;
  auto& a = src.collection("samples");
  auto& b = loaded.collection("samples");
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.approx_bytes(), b.approx_bytes());
  EXPECT_EQ(a.all_ids(), b.all_ids());
  EXPECT_EQ(a.next_id(), b.next_id());
  EXPECT_EQ(a.index_fields(), b.index_fields());
  for (const DocId id : a.all_ids()) {
    const auto da = a.find_by_id(id);
    const auto db_doc = b.find_by_id(id);
    ASSERT_TRUE(da.has_value() && db_doc.has_value());
    EXPECT_EQ(da->compare(*db_doc), 0) << "id " << id;
  }
}

}  // namespace
}  // namespace fairdms
