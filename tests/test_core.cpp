// Core tests: task-model factories, degradation monitor baseline/trigger
// behaviour, and the FairDMS end-to-end update across all three strategies.
#include <gtest/gtest.h>
#include <vector>

#include "core/degradation.hpp"
#include "core/fairdms.hpp"
#include "datagen/bragg.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

TEST(Models, FactoriesProduceExpectedShapes) {
  util::Rng rng(1);
  auto bragg = models::make_braggnn(1);
  const Tensor patch = Tensor::randn({4, 1, 15, 15}, rng);
  EXPECT_EQ(bragg.net.forward(patch, nn::Mode::kEval).shape(),
            (std::vector<std::size_t>{4, 2}));

  auto cookie = models::make_cookienetae(2);
  const Tensor hist = Tensor::randn({2, 1, 32, 32}, rng);
  EXPECT_EQ(cookie.net.forward(hist, nn::Mode::kEval).shape(),
            (std::vector<std::size_t>{2, 1, 32, 32}));

  auto tomo = models::make_tomonet(3);
  const Tensor frame = Tensor::randn({2, 1, 48, 48}, rng);
  EXPECT_EQ(tomo.net.forward(frame, nn::Mode::kEval).shape(),
            (std::vector<std::size_t>{2, 1, 48, 48}));

  auto named = models::make_model("braggnn", 4);
  EXPECT_EQ(named.architecture, "braggnn");
}

TEST(ModelsDeathTest, UnknownArchitectureAborts) {
  EXPECT_DEATH(models::make_model("resnet", 1), "unknown architecture");
}

TEST(DegradationMonitor, BaselineThenFlagsOutliers) {
  util::Rng rng(5);
  auto model = models::make_braggnn(5);
  const Tensor xs = Tensor::randn({8, 1, 15, 15}, rng);

  core::DegradationConfig config;
  config.baseline_window = 3;
  config.error_factor = 1.5;
  config.mc_samples = 4;
  core::DegradationMonitor monitor(config);

  // Three baseline observations around error 0.1.
  for (double e : {0.1, 0.11, 0.09}) {
    const auto obs = monitor.observe(model.net, xs, e);
    EXPECT_FALSE(obs.degraded);
  }
  EXPECT_NEAR(monitor.baseline_error(), 0.1, 0.01);
  // In-band observation: fine.
  EXPECT_FALSE(monitor.observe(model.net, xs, 0.12).degraded);
  EXPECT_FALSE(monitor.degradation_detected());
  // Out-of-band: flagged.
  EXPECT_TRUE(monitor.observe(model.net, xs, 0.5).degraded);
  EXPECT_TRUE(monitor.degradation_detected());
  EXPECT_EQ(monitor.history().size(), 5u);

  monitor.reset();
  EXPECT_TRUE(monitor.history().empty());
  EXPECT_FALSE(monitor.degradation_detected());
}

class FairDmsEndToEnd : public ::testing::Test {
 protected:
  static nn::Batchset regime_data(double drift, std::size_t n,
                                  std::uint64_t seed) {
    util::Rng rng(seed);
    datagen::BraggRegime regime;
    regime.sigma_major_mean *= 1.0 + drift;
    return datagen::make_bragg_batchset(regime, {}, n, rng);
  }

  void SetUp() override {
    fairds::FairDSConfig ds_config;
    ds_config.embedding_algorithm = "byol";
    ds_config.embedding_dim = 8;
    ds_config.n_clusters = 4;
    ds_config.embed_train.epochs = 3;
    ds_config.seed = 21;
    ds_ = std::make_unique<fairds::FairDS>(ds_config, db_);

    history_ = regime_data(0.0, 96, 31);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history");

    core::FairDMSConfig config;
    config.architecture = "braggnn";
    config.train.max_epochs = 8;
    config.train.batch_size = 24;
    config.distance_threshold = 1.0;
    config.seed = 77;
    system_ = std::make_unique<core::FairDMS>(config, *ds_, db_);
  }

  store::DocStore db_;
  nn::Batchset history_;
  std::unique_ptr<fairds::FairDS> ds_;
  std::unique_ptr<core::FairDMS> system_;
};

TEST_F(FairDmsEndToEnd, TrainAndPublishSeedsZoo) {
  auto model = models::make_braggnn(1);
  const auto id = system_->train_and_publish(model, history_, history_,
                                             "history");
  EXPECT_NE(id, 0u);
  EXPECT_EQ(system_->zoo().size(), 1u);
  const auto rec = system_->zoo().fetch(id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->train_pdf.size(), 4u);
}

TEST_F(FairDmsEndToEnd, UpdateModelFairDmsFineTunesFromZoo) {
  auto seed_model = models::make_braggnn(2);
  system_->train_and_publish(seed_model, history_, history_, "history");

  const nn::Batchset new_data = regime_data(0.05, 48, 32);
  const auto report = system_->update_model(
      new_data.xs, new_data, core::UpdateStrategy::kFairDMS);
  EXPECT_TRUE(report.fine_tuned);
  EXPECT_GE(report.foundation_distance, 0.0);
  EXPECT_GT(report.label_seconds, 0.0);
  EXPECT_GT(report.train_seconds, 0.0);
  EXPECT_GT(report.epochs, 0u);
  EXPECT_NE(report.published_model, 0u);
  EXPECT_NEAR(report.total_seconds,
              report.label_seconds + report.recommend_seconds +
                  report.train_seconds + report.transfer_seconds,
              1e-9);
  // The update itself lands in the zoo (1 seed + 1 update).
  EXPECT_EQ(system_->zoo().size(), 2u);
}

TEST_F(FairDmsEndToEnd, UpdateModelRetrainSkipsRecommendation) {
  auto seed_model = models::make_braggnn(3);
  system_->train_and_publish(seed_model, history_, history_, "history");
  const nn::Batchset new_data = regime_data(0.05, 32, 33);
  const auto report = system_->update_model(
      new_data.xs, new_data, core::UpdateStrategy::kRetrain);
  EXPECT_FALSE(report.fine_tuned);
  EXPECT_DOUBLE_EQ(report.recommend_seconds, 0.0);
}

TEST_F(FairDmsEndToEnd, UpdateModelConventionalUsesLabeler) {
  const nn::Batchset new_data = regime_data(0.05, 32, 34);
  std::size_t labeler_calls = 0;
  const auto report = system_->update_model(
      new_data.xs, new_data, core::UpdateStrategy::kConventional,
      [&](const Tensor& xs) {
        ++labeler_calls;
        return Tensor({xs.dim(0), 2});
      },
      /*label_seconds_override=*/123.0);
  EXPECT_EQ(labeler_calls, 1u);
  EXPECT_DOUBLE_EQ(report.label_seconds, 123.0);
  EXPECT_FALSE(report.fine_tuned);
}

TEST_F(FairDmsEndToEnd, TransferAccountingWhenServiceAttached) {
  workflow::TransferService transfers;
  transfers.set_link("beamline", "compute",
                     {.latency_seconds = 0.01,
                      .bandwidth_bytes_per_s = 1e9});
  transfers.set_link("compute", "beamline",
                     {.latency_seconds = 0.01,
                      .bandwidth_bytes_per_s = 1e9});
  core::FairDMSConfig config;
  config.architecture = "braggnn";
  config.train.max_epochs = 2;
  config.transfers = &transfers;
  config.seed = 5;
  core::FairDMS system(config, *ds_, db_);

  const nn::Batchset new_data = regime_data(0.0, 16, 35);
  const auto report = system.update_model(new_data.xs, new_data,
                                          core::UpdateStrategy::kRetrain);
  EXPECT_GT(report.transfer_seconds, 0.0);
  EXPECT_EQ(transfers.stats("beamline", "compute").transfers, 1u);
  EXPECT_EQ(transfers.stats("compute", "beamline").transfers, 1u);
}

}  // namespace
}  // namespace fairdms
