// Frame-level tests: synthetic detector frames and the MIDAS-analog
// peak-search + fit pipeline that the conventional baseline pays for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "datagen/frame.hpp"
#include "labeling/frame_label.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

datagen::BraggRegime quiet_regime() {
  datagen::BraggRegime regime;
  regime.noise_sd = 0.015;
  return regime;
}

TEST(Frame, RendersRequestedPeaksWithSeparation) {
  util::Rng rng(1);
  datagen::FrameConfig config;
  config.size = 128;
  config.peaks = 12;
  config.min_separation = 14.0;
  const datagen::Frame frame = datagen::render_frame(config, quiet_regime(),
                                                     rng);
  EXPECT_EQ(frame.pixels.size(), 128u * 128u);
  EXPECT_GE(frame.truth.size(), 10u);  // rejection sampling may drop a few
  EXPECT_LE(frame.truth.size(), 12u);
  for (std::size_t i = 0; i < frame.truth.size(); ++i) {
    for (std::size_t j = i + 1; j < frame.truth.size(); ++j) {
      const double dx = frame.truth[i].center_x - frame.truth[j].center_x;
      const double dy = frame.truth[i].center_y - frame.truth[j].center_y;
      EXPECT_GE(std::sqrt(dx * dx + dy * dy), config.min_separation - 1e-9);
    }
  }
}

TEST(FrameLabel, FindsAndLocalizesMostPeaks) {
  util::Rng rng(2);
  datagen::FrameConfig config;
  config.size = 160;
  config.peaks = 14;
  config.min_separation = 18.0;
  const datagen::Frame frame = datagen::render_frame(config, quiet_regime(),
                                                     rng);
  const auto found = labeling::label_frame(frame.pixels, config.size);

  // Recall: most true peaks matched within 1 px by some detection.
  std::size_t matched = 0;
  double total_err = 0.0;
  for (const auto& truth : frame.truth) {
    double best = 1e300;
    for (const auto& peak : found) {
      const double dx = peak.center_x - truth.center_x;
      const double dy = peak.center_y - truth.center_y;
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    if (best < 1.0) {
      ++matched;
      total_err += best;
    }
  }
  EXPECT_GE(matched, frame.truth.size() * 8 / 10)
      << "found " << found.size() << " peaks for " << frame.truth.size()
      << " true ones";
  EXPECT_LT(total_err / static_cast<double>(std::max<std::size_t>(1, matched)),
            0.4);
}

TEST(FrameLabel, EmptyFrameYieldsNoPeaks) {
  std::vector<float> flat(96 * 96, 0.01f);
  const auto found = labeling::label_frame(flat, 96);
  EXPECT_TRUE(found.empty());
}

TEST(FrameLabel, ThresholdControlsDetection) {
  util::Rng rng(3);
  datagen::FrameConfig config;
  config.size = 96;
  config.peaks = 6;
  const datagen::Frame frame = datagen::render_frame(config, quiet_regime(),
                                                     rng);
  labeling::FrameLabelConfig lax;
  lax.threshold = 0.1f;
  labeling::FrameLabelConfig strict;
  strict.threshold = 0.9f;
  EXPECT_GE(labeling::label_frame(frame.pixels, 96, lax).size(),
            labeling::label_frame(frame.pixels, 96, strict).size());
}

TEST(FrameLabel, MeasureFrameCostIsPositive) {
  datagen::FrameConfig config;
  config.size = 96;
  config.peaks = 8;
  const double cost =
      labeling::measure_frame_cost(config, quiet_regime(), 2, 4);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 30.0);  // sanity: well under half a minute per small frame
}

}  // namespace
}  // namespace fairdms
