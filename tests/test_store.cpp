// Store substrate tests: document values (round trips, ordering), the
// MongoDB-analog collection (CRUD, indexes, range queries, concurrency),
// codecs (round-trip property suites, compression behaviour), the NFS store,
// and the remote-link accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "datagen/tomography.hpp"
#include "store/codec.hpp"
#include "store/docstore.hpp"
#include "store/nfs.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using store::Binary;
using store::Object;
using store::Value;

TEST(Document, ScalarRoundTrips) {
  const Value values[] = {Value(nullptr), Value(true),  Value(false),
                          Value(std::int64_t{-42}),     Value(3.5),
                          Value("hello"),               Value(Binary{1, 2, 3})};
  for (const Value& v : values) {
    Binary buf;
    v.encode(buf);
    const Value back = Value::decode(buf);
    EXPECT_EQ(v.compare(back), 0) << v.to_json();
  }
}

TEST(Document, NestedRoundTrip) {
  Object obj;
  obj["name"] = Value("bragg");
  obj["count"] = Value(std::int64_t{15});
  obj["pdf"] = Value(store::Array{Value(0.25), Value(0.75)});
  Object inner;
  inner["flag"] = Value(true);
  obj["meta"] = Value(std::move(inner));
  const Value doc{std::move(obj)};

  Binary buf;
  doc.encode(buf);
  const Value back = Value::decode(buf);
  EXPECT_EQ(doc.compare(back), 0);
  EXPECT_EQ(back.at("name").as_string(), "bragg");
  EXPECT_EQ(back.at("meta").at("flag").as_bool(), true);
  EXPECT_DOUBLE_EQ(back.at("pdf").as_array()[1].as_double(), 0.75);
}

TEST(Document, OrderingIsTotalWithinType) {
  EXPECT_LT(Value(std::int64_t{1}).compare(Value(std::int64_t{2})), 0);
  EXPECT_GT(Value("b").compare(Value("a")), 0);
  EXPECT_EQ(Value(2.5).compare(Value(2.5)), 0);
  // Heterogeneous values order by type tag, consistently.
  const int c = Value(std::int64_t{5}).compare(Value("5"));
  EXPECT_NE(c, 0);
  EXPECT_EQ(-c, Value("5").compare(Value(std::int64_t{5})));
}

TEST(Document, JsonRendering) {
  Object obj;
  obj["x"] = Value(std::int64_t{1});
  obj["b"] = Value(Binary{9, 9});
  const std::string json = Value(std::move(obj)).to_json();
  EXPECT_NE(json.find("\"x\":1"), std::string::npos);
  EXPECT_NE(json.find("<2 bytes>"), std::string::npos);
}

TEST(Collection, InsertFindUpdateRemove) {
  store::DocStore db;
  auto& col = db.collection("samples");
  Object doc;
  doc["cluster"] = Value(std::int64_t{3});
  const store::DocId id = col.insert_one(Value(std::move(doc)));
  EXPECT_EQ(col.size(), 1u);

  auto found = col.find_by_id(id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->at("cluster").as_int(), 3);
  EXPECT_EQ(found->at("_id").as_int(), static_cast<std::int64_t>(id));

  EXPECT_TRUE(col.update_field(id, "cluster", Value(std::int64_t{5})));
  EXPECT_EQ(col.find_by_id(id)->at("cluster").as_int(), 5);

  Object repl;
  repl["cluster"] = Value(std::int64_t{9});
  EXPECT_TRUE(col.replace_one(id, Value(std::move(repl))));
  EXPECT_EQ(col.find_by_id(id)->at("cluster").as_int(), 9);

  EXPECT_TRUE(col.remove_one(id));
  EXPECT_FALSE(col.find_by_id(id).has_value());
  EXPECT_FALSE(col.remove_one(id));
}

TEST(Collection, IndexedAndScannedQueriesAgree) {
  store::DocStore db;
  auto& indexed = db.collection("indexed");
  auto& scanned = db.collection("scanned");
  indexed.create_index("cluster");
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Object doc;
    doc["cluster"] = Value(static_cast<std::int64_t>(rng.uniform_index(7)));
    Object copy = doc;
    indexed.insert_one(Value(std::move(doc)));
    scanned.insert_one(Value(std::move(copy)));
  }
  for (std::int64_t c = 0; c < 7; ++c) {
    const auto a = indexed.find_eq("cluster", Value(c));
    const auto b = scanned.find_eq("cluster", Value(c));
    EXPECT_EQ(a.size(), b.size()) << "cluster " << c;
  }
}

TEST(Collection, IndexBuiltOverExistingDocumentsAndMaintained) {
  store::DocStore db;
  auto& col = db.collection("c");
  for (int i = 0; i < 10; ++i) {
    Object doc;
    doc["v"] = Value(static_cast<std::int64_t>(i % 2));
    col.insert_one(Value(std::move(doc)));
  }
  col.create_index("v");  // built after the fact
  EXPECT_EQ(col.find_eq("v", Value(std::int64_t{0})).size(), 5u);
  // Updates keep the index consistent.
  const auto ids = col.find_eq("v", Value(std::int64_t{1}));
  col.update_field(ids.front(), "v", Value(std::int64_t{0}));
  EXPECT_EQ(col.find_eq("v", Value(std::int64_t{0})).size(), 6u);
  EXPECT_EQ(col.find_eq("v", Value(std::int64_t{1})).size(), 4u);
}

TEST(Collection, RangeQueries) {
  store::DocStore db;
  auto& col = db.collection("r");
  col.create_index("t");
  for (int i = 0; i < 20; ++i) {
    Object doc;
    doc["t"] = Value(static_cast<std::int64_t>(i));
    col.insert_one(Value(std::move(doc)));
  }
  const auto hits =
      col.find_range("t", Value(std::int64_t{5}), Value(std::int64_t{9}));
  EXPECT_EQ(hits.size(), 4u);  // 5, 6, 7, 8
}

TEST(Collection, ParallelReadersWithConcurrentWriter) {
  store::DocStore db;
  auto& col = db.collection("hot");
  col.create_index("k");
  for (int i = 0; i < 100; ++i) {
    Object doc;
    doc["k"] = Value(static_cast<std::int64_t>(i % 4));
    col.insert_one(Value(std::move(doc)));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(100 + r);
      while (!stop.load()) {
        const auto ids = col.find_eq(
            "k", Value(static_cast<std::int64_t>(rng.uniform_index(4))));
        for (store::DocId id : ids) {
          if (col.find_by_id(id).has_value()) reads.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    Object doc;
    doc["k"] = Value(static_cast<std::int64_t>(i % 4));
    col.insert_one(Value(std::move(doc)));
  }
  // On single-core hosts the writer can finish before any reader is ever
  // scheduled; wait for one successful read so the assertion below is
  // deterministic rather than a scheduling lottery.
  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(col.size(), 300u);
  EXPECT_GT(reads.load(), 0u);
}

TEST(DocStore, CollectionsAreStableAndListed) {
  store::DocStore db;
  auto& a = db.collection("alpha");
  auto& a2 = db.collection("alpha");
  EXPECT_EQ(&a, &a2);
  db.collection("beta");
  const auto names = db.collection_names();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(db.has_collection("beta"));
  EXPECT_FALSE(db.has_collection("gamma"));
}

// --- codecs ---------------------------------------------------------------

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CodecRoundTrip, ExactFloatRecovery) {
  const auto& [name, size] = GetParam();
  const auto codec = store::make_codec(name);
  util::Rng rng(static_cast<std::uint64_t>(size) * 31 + 7);
  std::vector<float> values(static_cast<std::size_t>(size));
  for (auto& v : values) {
    // Mix of smooth values, zeros, negatives and runs (image-like content).
    const double u = rng.uniform();
    if (u < 0.3) {
      v = 0.0f;
    } else if (u < 0.5) {
      v = 0.25f;  // repeated value -> runs
    } else {
      v = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
  }
  const auto bytes = codec->encode(values);
  std::vector<float> back;
  codec->decode(bytes, back);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back[i], values[i]) << name << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllSizes, CodecRoundTrip,
    ::testing::Combine(::testing::Values("raw", "pickle", "blosc"),
                       ::testing::Values(0, 1, 2, 17, 225, 1024, 16384)));

TEST(Codec, BloscCompressesSmoothImages) {
  // Tomography phantoms are smooth -> byte-shuffle + RLE must beat raw.
  util::Rng rng(3);
  datagen::TomoConfig config;
  config.size = 64;
  std::vector<float> img(64 * 64);
  datagen::render_phantom(config, rng, img);
  const store::BloscCodec blosc;
  const store::RawCodec raw;
  EXPECT_LT(blosc.encode(img).size(), raw.encode(img).size());
}

TEST(Codec, PickleDecodeCostsMoreThanRaw) {
  // The design invariant behind Figs. 6-8: interpreted pickle decode is
  // slower than memcpy. Measure a generous ratio to stay robust on CI.
  util::Rng rng(4);
  std::vector<float> values(1 << 16);
  for (auto& v : values) v = static_cast<float>(rng.gaussian());
  const store::PickleCodec pickle;
  const store::RawCodec raw;
  const auto pb = pickle.encode(values);
  const auto rb = raw.encode(values);
  std::vector<float> out;
  const auto time_decode = [&](const store::Codec& c,
                               const std::vector<std::uint8_t>& bytes) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 20; ++i) c.decode(bytes, out);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  EXPECT_GT(time_decode(pickle, pb), time_decode(raw, rb));
}

TEST(Codec, UnknownNameAborts) {
  EXPECT_DEATH(store::make_codec("hdf5"), "unknown codec");
}

// --- NFS store --------------------------------------------------------------

TEST(NfsStore, WriteReadRoundTrip) {
  const std::string root = ::testing::TempDir() + "/fairdms_nfs_test";
  store::NfsStore nfs(root, store::RemoteLinkConfig{.latency_seconds = 0.0,
                                                    .bandwidth_bytes_per_s =
                                                        1e12});
  nn::Batchset data;
  util::Rng rng(5);
  data.xs = nn::Tensor::randn({6, 1, 4, 4}, rng);
  data.ys = nn::Tensor::randn({6, 2}, rng);
  nfs.write_dataset("unit", data);

  EXPECT_EQ(nfs.sample_count("unit"), 6u);
  EXPECT_EQ(nfs.x_shape("unit"), (std::vector<std::size_t>{1, 4, 4}));
  EXPECT_EQ(nfs.y_shape("unit"), (std::vector<std::size_t>{2}));
  std::vector<float> x, y;
  nfs.read_sample("unit", 3, x, y);
  ASSERT_EQ(x.size(), 16u);
  ASSERT_EQ(y.size(), 2u);
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(x[j], data.xs[3 * 16 + j]);
  }
  EXPECT_GT(nfs.link().requests(), 0u);
}

TEST(RemoteLink, AccountsRequestsAndBytes) {
  store::RemoteLink link(store::RemoteLinkConfig{
      .latency_seconds = 0.0, .bandwidth_bytes_per_s = 1e12});
  link.charge(100);
  link.charge(200);
  EXPECT_EQ(link.requests(), 2u);
  EXPECT_EQ(link.bytes_moved(), 300u);
}

TEST(RemoteLink, LatencyActuallyBlocks) {
  store::RemoteLink link(store::RemoteLinkConfig{
      .latency_seconds = 2e-3, .bandwidth_bytes_per_s = 1e12});
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) link.charge(64);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 8e-3);  // 5 x 2ms, minus scheduler slack
}

}  // namespace
}  // namespace fairdms
