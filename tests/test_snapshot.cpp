// Snapshot tests: the FairDS wrapper entry points and a directly held
// Snapshot must agree bit-for-bit (wrapper/snapshot consistency — the
// genuinely independent pre-rewrite reference lives in test_retrieval_path,
// where legacy_lookup_or_label reimplements the reuse path against the raw
// store), snapshot immutability across system-plane publishes (old versions
// keep answering with old models), version monotonicity, and label-width
// derivation over pre-existing collections.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairds/snapshot.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

fairds::FairDSConfig small_config(std::size_t k = 4) {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = k;
  config.embed_train.epochs = 3;
  config.embed_train.batch_size = 24;
  config.certainty_threshold = 0.55;
  config.seed = 61;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  regime.eta_mean = std::min(0.95, regime.eta_mean + drift * 0.5);
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

Tensor deterministic_labeler(const Tensor& xs, std::size_t label_w) {
  const std::size_t n = xs.dim(0);
  const std::size_t pixels = xs.numel() / n;
  Tensor ys({n, label_w});
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t p = 0; p < pixels; ++p) {
      sum += static_cast<double>(xs[i * pixels + p]);
    }
    const auto mean = static_cast<float>(sum / static_cast<double>(pixels));
    for (std::size_t j = 0; j < label_w; ++j) {
      ys.data()[i * label_w + j] = mean * static_cast<float>(j + 1);
    }
  }
  return ys;
}

void expect_tensors_identical(const Tensor& a, const Tensor& b,
                              const char* context) {
  ASSERT_EQ(a.shape(), b.shape()) << context;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << context << " [" << i << "]";
  }
}

class SnapshotFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = regime_data(0.0, 96, 71);
    ds_ = std::make_unique<fairds::FairDS>(small_config(), db_);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history_0");
  }

  store::DocStore db_;
  nn::Batchset history_;
  std::unique_ptr<fairds::FairDS> ds_;
};

TEST_F(SnapshotFixture, WrappersAgreeWithHeldSnapshotBitForBit) {
  const auto snap = ds_->snapshot();
  ASSERT_NE(snap, nullptr);
  const nn::Batchset query = regime_data(0.01, 24, 72);

  expect_tensors_identical(ds_->embed(query.xs), snap->embed(query.xs),
                           "embed");
  EXPECT_EQ(ds_->distribution(query.xs), snap->distribution(query.xs));
  EXPECT_DOUBLE_EQ(ds_->certainty(query.xs), snap->certainty(query.xs));

  const auto via_ds = ds_->lookup(query.xs, 99);
  const auto via_snap = snap->lookup(query.xs, 99);
  expect_tensors_identical(via_ds.xs, via_snap.xs, "lookup.xs");
  expect_tensors_identical(via_ds.ys, via_snap.ys, "lookup.ys");

  const auto labeler = [](const Tensor& xs) {
    return deterministic_labeler(xs, 2);
  };
  for (const double threshold : {1e9, 0.5, 1e-12}) {
    fairds::ReuseStats ds_stats;
    fairds::ReuseStats snap_stats;
    const auto a = ds_->lookup_or_label(query.xs, threshold, labeler,
                                        &ds_stats);
    const auto b = snap->lookup_or_label(query.xs, threshold, labeler,
                                         &snap_stats);
    EXPECT_EQ(ds_stats.reused, snap_stats.reused);
    EXPECT_EQ(ds_stats.computed, snap_stats.computed);
    expect_tensors_identical(a.xs, b.xs, "lookup_or_label.xs");
    expect_tensors_identical(a.ys, b.ys, "lookup_or_label.ys");
  }
}

TEST_F(SnapshotFixture, LookupIsPureGivenSeedAndSnapshot) {
  const auto snap = ds_->snapshot();
  const nn::Batchset query = regime_data(0.0, 16, 73);
  const auto a = snap->lookup(query.xs, 7);
  const auto b = snap->lookup(query.xs, 7);
  expect_tensors_identical(a.xs, b.xs, "repeat-lookup.xs");
  expect_tensors_identical(a.ys, b.ys, "repeat-lookup.ys");
}

TEST_F(SnapshotFixture, PublishBumpsVersionAndPreservesOldSnapshot) {
  const auto before = ds_->snapshot();
  const std::uint64_t v0 = before->version();
  EXPECT_EQ(before->indexed_count(), 96u);

  const nn::Batchset more = regime_data(0.0, 24, 74);
  ds_->ingest(more.xs, more.ys, "history_1");

  const auto after = ds_->snapshot();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->version(), v0 + 1);
  // The pre-ingest snapshot still answers against the pre-ingest index.
  EXPECT_EQ(before->indexed_count(), 96u);
  EXPECT_EQ(after->indexed_count(), 120u);
}

TEST(SnapshotLifecycle, OldSnapshotServesOldModelAcrossRetrain) {
  // A certainty threshold above 1 forces the retrain unconditionally; the
  // point under test is that a snapshot taken before the retrain keeps
  // answering with the old model, bit for bit.
  auto config = small_config();
  config.certainty_threshold = 1.01;
  store::DocStore db;
  fairds::FairDS ds(config, db);
  const nn::Batchset history = regime_data(0.0, 96, 71);
  ds.train_system(history.xs);
  ds.ingest(history.xs, history.ys, "h");

  const nn::Batchset query = regime_data(0.0, 12, 75);
  const auto labeler = [](const Tensor& xs) {
    return deterministic_labeler(xs, 2);
  };
  const auto snap_v1 = ds.snapshot();
  fairds::ReuseStats v1_stats;
  const auto v1 = snap_v1->lookup_or_label(query.xs, 1e9, labeler,
                                           &v1_stats);

  const nn::Batchset shifted = regime_data(1.8, 48, 76);
  ASSERT_TRUE(ds.maybe_retrain(shifted.xs));
  EXPECT_EQ(ds.retrain_count(), 1u);

  // The held snapshot is bit-for-bit unaffected by the published retrain.
  fairds::ReuseStats again_stats;
  const auto again = snap_v1->lookup_or_label(query.xs, 1e9, labeler,
                                              &again_stats);
  EXPECT_EQ(v1_stats.reused, again_stats.reused);
  expect_tensors_identical(v1.ys, again.ys, "held-snapshot.ys");
  // While the new snapshot is a different model version.
  EXPECT_GT(ds.snapshot()->version(), snap_v1->version());
}

TEST(SnapshotOverExistingCollection, DerivesLabelWidthLazily) {
  // Build a FairDS + history, then a second FairDS over the same collection
  // that never ingests: its snapshot must derive the label width from the
  // store on first lookup_or_label.
  store::DocStore db;
  auto config = small_config();
  fairds::FairDS first(config, db);
  const nn::Batchset history = regime_data(0.0, 64, 81);
  first.train_system(history.xs);
  first.ingest(history.xs, history.ys, "h");

  fairds::FairDS second(config, db);
  second.train_system(history.xs);
  const auto snap = second.snapshot();
  EXPECT_EQ(snap->indexed_count(), 64u);
  const nn::Batchset query = regime_data(0.0, 8, 82);
  fairds::ReuseStats stats;
  const auto labeled = snap->lookup_or_label(
      query.xs, 1e9,
      [](const Tensor& xs) { return deterministic_labeler(xs, 2); }, &stats);
  EXPECT_EQ(stats.reused, 8u);
  EXPECT_EQ(labeled.ys.dim(1), 2u);
  EXPECT_EQ(snap->label_width(), 2u);
}

TEST(SnapshotLifecycle, UntrainedFairDsHasNoSnapshot) {
  store::DocStore db;
  fairds::FairDS ds(small_config(), db);
  EXPECT_EQ(ds.snapshot(), nullptr);
  EXPECT_FALSE(ds.trained());
}

}  // namespace
}  // namespace fairdms
