// Sharded-collection semantics: 1-shard vs N-shard parity under randomized
// op sequences (every query result and every charged byte must agree),
// pinned duplicate-id / missing-id behavior, the ascending-id ordering
// guarantee, shard-count plumbing through DocStore, and persistence across
// different shard counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/docstore.hpp"
#include "store/persist.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using store::Binary;
using store::Collection;
using store::DocId;
using store::Object;
using store::RemoteLink;
using store::RemoteLinkConfig;
using store::Value;

/// Counts requests/bytes without sleeping (latency 0 skips the wire model
/// but still accounts), so tests can compare charge accounting exactly.
RemoteLink accounting_link() {
  return RemoteLink(RemoteLinkConfig{.latency_seconds = 0.0,
                                     .bandwidth_bytes_per_s = 1e12});
}

Value random_doc(util::Rng& rng) {
  Object doc;
  doc["cluster"] = Value(static_cast<std::int64_t>(rng.uniform_index(8)));
  doc["tag"] = Value(static_cast<std::int64_t>(rng.uniform_index(5)));
  Binary blob(rng.uniform_index(48));
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  doc["blob"] = Value(std::move(blob));
  return Value(std::move(doc));
}

void expect_same_docs(const std::optional<Value>& a,
                      const std::optional<Value>& b, std::size_t op) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
  if (a.has_value()) {
    EXPECT_EQ(a->compare(*b), 0) << "op " << op;
  }
}

/// Drives identical randomized op sequences against a 1-shard and an
/// n-shard collection; every query result and both links' byte accounting
/// must agree at every step.
void run_parity(std::size_t n_shards, std::uint64_t seed) {
  const RemoteLink link_a = accounting_link();
  const RemoteLink link_b = accounting_link();
  Collection a("parity", &link_a, 1);
  Collection b("parity", &link_b, n_shards);
  ASSERT_EQ(a.shard_count(), 1u);
  ASSERT_EQ(b.shard_count(), n_shards);
  a.create_index("cluster");
  b.create_index("cluster");

  util::Rng rng(seed);
  std::vector<DocId> live;  // ids both collections currently hold
  const auto any_id = [&](util::Rng& r) -> DocId {
    // Mostly live ids, sometimes removed/never-issued ones.
    if (!live.empty() && r.uniform() < 0.85) {
      return live[r.uniform_index(live.size())];
    }
    return a.next_id() + r.uniform_index(4);
  };

  constexpr std::size_t kOps = 1000;
  for (std::size_t op = 0; op < kOps; ++op) {
    util::Rng op_rng = rng.fork(op);
    switch (op_rng.uniform_index(12)) {
      case 0: {  // insert_one
        Value doc = random_doc(op_rng);
        Value copy = doc;
        const DocId ia = a.insert_one(std::move(doc));
        const DocId ib = b.insert_one(std::move(copy));
        ASSERT_EQ(ia, ib) << "op " << op;
        live.push_back(ia);
        break;
      }
      case 1: {  // insert_many
        const std::size_t n = 1 + op_rng.uniform_index(6);
        std::vector<Value> docs;
        std::vector<Value> copies;
        for (std::size_t i = 0; i < n; ++i) {
          docs.push_back(random_doc(op_rng));
          copies.push_back(docs.back());
        }
        const auto ia = a.insert_many(std::move(docs));
        const auto ib = b.insert_many(std::move(copies));
        ASSERT_EQ(ia, ib) << "op " << op;
        live.insert(live.end(), ia.begin(), ia.end());
        break;
      }
      case 2: {  // update_field (sometimes on a missing id)
        const DocId id = any_id(op_rng);
        Value v(static_cast<std::int64_t>(op_rng.uniform_index(8)));
        EXPECT_EQ(a.update_field(id, "cluster", v),
                  b.update_field(id, "cluster", v))
            << "op " << op;
        break;
      }
      case 3: {  // update_fields, multi-field
        const DocId id = any_id(op_rng);
        Object fields;
        fields["tag"] = Value(static_cast<std::int64_t>(
            op_rng.uniform_index(5)));
        Binary blob(op_rng.uniform_index(32));
        for (auto& byte : blob) {
          byte = static_cast<std::uint8_t>(op_rng.uniform_index(256));
        }
        fields["blob"] = Value(std::move(blob));
        Object copy = fields;
        EXPECT_EQ(a.update_fields(id, std::move(fields)),
                  b.update_fields(id, std::move(copy)))
            << "op " << op;
        break;
      }
      case 4: {  // update_many with duplicate and missing ids
        std::vector<std::pair<DocId, Object>> updates;
        const std::size_t n = 1 + op_rng.uniform_index(5);
        for (std::size_t i = 0; i < n; ++i) {
          Object fields;
          fields["tag"] = Value(static_cast<std::int64_t>(
              op_rng.uniform_index(5)));
          updates.emplace_back(any_id(op_rng), std::move(fields));
        }
        auto copy = updates;
        EXPECT_EQ(a.update_many(std::move(updates)),
                  b.update_many(std::move(copy)))
            << "op " << op;
        break;
      }
      case 5: {  // replace_one
        const DocId id = any_id(op_rng);
        Value doc = random_doc(op_rng);
        Value copy = doc;
        EXPECT_EQ(a.replace_one(id, std::move(doc)),
                  b.replace_one(id, std::move(copy)))
            << "op " << op;
        break;
      }
      case 6: {  // remove_one
        const DocId id = any_id(op_rng);
        EXPECT_EQ(a.remove_one(id), b.remove_one(id)) << "op " << op;
        std::erase(live, id);
        break;
      }
      case 7: {  // find_by_id
        const DocId id = any_id(op_rng);
        expect_same_docs(a.find_by_id(id), b.find_by_id(id), op);
        break;
      }
      case 8: {  // find_many with duplicates/missing, sometimes projected
        std::vector<DocId> ids;
        const std::size_t n = 1 + op_rng.uniform_index(8);
        for (std::size_t i = 0; i < n; ++i) ids.push_back(any_id(op_rng));
        if (n > 1) ids.push_back(ids.front());  // guaranteed duplicate
        std::vector<std::string> fields;
        if (op_rng.uniform() < 0.5) fields = {"cluster", "blob"};
        const auto ra = a.find_many(ids, fields);
        const auto rb = b.find_many(ids, fields);
        ASSERT_EQ(ra.size(), rb.size()) << "op " << op;
        for (std::size_t i = 0; i < ra.size(); ++i) {
          expect_same_docs(ra[i], rb[i], op);
        }
        break;
      }
      case 9: {  // find_eq: indexed field and scanned field
        const Value c(static_cast<std::int64_t>(op_rng.uniform_index(8)));
        EXPECT_EQ(a.find_eq("cluster", c), b.find_eq("cluster", c))
            << "op " << op;
        const Value t(static_cast<std::int64_t>(op_rng.uniform_index(5)));
        EXPECT_EQ(a.find_eq("tag", t), b.find_eq("tag", t)) << "op " << op;
        break;
      }
      case 10: {  // find_range on the indexed field
        const std::int64_t lo =
            static_cast<std::int64_t>(op_rng.uniform_index(6));
        const std::int64_t hi = lo + 1 +
            static_cast<std::int64_t>(op_rng.uniform_index(3));
        EXPECT_EQ(a.find_range("cluster", Value(lo), Value(hi)),
                  b.find_range("cluster", Value(lo), Value(hi)))
            << "op " << op;
        break;
      }
      case 11: {  // bulk introspection
        EXPECT_EQ(a.all_ids(), b.all_ids()) << "op " << op;
        EXPECT_EQ(a.size(), b.size()) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(a.approx_bytes(), b.approx_bytes()) << "op " << op;
    ASSERT_EQ(a.next_id(), b.next_id()) << "op " << op;
    ASSERT_EQ(link_a.bytes_moved(), link_b.bytes_moved()) << "op " << op;
    ASSERT_EQ(link_a.requests(), link_b.requests()) << "op " << op;
  }
  EXPECT_GT(a.size(), 0u);
  EXPECT_GT(link_a.bytes_moved(), 0u);
}

TEST(ShardParity, TwoShardsMatchOneShard) { run_parity(2, 11); }
TEST(ShardParity, ThreeShardsMatchOneShard) { run_parity(3, 22); }
TEST(ShardParity, EightShardsMatchOneShard) { run_parity(8, 33); }

// --- pinned duplicate-id / missing-id semantics -----------------------------

TEST(ShardSemantics, FindManyDuplicatesResolvedAndChargedIndependently) {
  const RemoteLink link = accounting_link();
  Collection col("dups", &link, 4);
  util::Rng rng(7);
  const DocId a = col.insert_one(random_doc(rng));
  const DocId b = col.insert_one(random_doc(rng));
  const std::size_t a_bytes = col.find_by_id(a)->encoded_size();
  const std::size_t b_bytes = col.find_by_id(b)->encoded_size();
  const DocId missing = col.next_id() + 3;

  const std::uint64_t before = link.bytes_moved();
  const std::vector<DocId> ids = {a, a, missing, b};
  const auto out = col.find_many(ids);
  ASSERT_EQ(out.size(), 4u);
  ASSERT_TRUE(out[0].has_value());
  ASSERT_TRUE(out[1].has_value());
  EXPECT_EQ(out[0]->compare(*out[1]), 0);  // duplicate: same document twice
  EXPECT_FALSE(out[2].has_value());        // missing: nullopt, no payload
  ASSERT_TRUE(out[3].has_value());
  // One envelope; the duplicate occurrence is charged again, the missing
  // id costs nothing beyond its share of the envelope.
  EXPECT_EQ(link.bytes_moved() - before, 64 + 2 * a_bytes + b_bytes);
}

TEST(ShardSemantics, UpdateFieldsOnMissingIdChargesValueBytes) {
  const RemoteLink link = accounting_link();
  Collection col("missing", &link, 4);
  util::Rng rng(8);
  col.insert_one(random_doc(rng));
  const std::size_t bytes_before = col.approx_bytes();
  const DocId missing = col.next_id() + 1;

  const Value v(std::int64_t{9});
  const std::uint64_t before = link.bytes_moved();
  EXPECT_FALSE(col.update_field(missing, "cluster", v));
  // The value travels to the server whether or not the document exists:
  // envelope + per-field overhead + key + encoded value.
  EXPECT_EQ(link.bytes_moved() - before,
            64 + 8 + std::string("cluster").size() + v.encoded_size());
  EXPECT_EQ(col.approx_bytes(), bytes_before);  // nothing stored changed

  // update_many counts only found ids but charges all value bytes.
  std::vector<std::pair<DocId, Object>> updates;
  Object fields;
  fields["tag"] = Value(std::int64_t{1});
  updates.emplace_back(missing, fields);
  updates.emplace_back(missing + 1, std::move(fields));
  EXPECT_EQ(col.update_many(std::move(updates)), 0u);
}

TEST(ShardSemantics, QueriesReturnAscendingIdsAfterUpdates) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    Collection col("ordered", nullptr, shards);
    col.create_index("v");
    std::vector<DocId> ids;
    for (int i = 0; i < 12; ++i) {
      Object doc;
      doc["v"] = Value(std::int64_t{0});
      ids.push_back(col.insert_one(Value(std::move(doc))));
    }
    // Bounce a middle document's value so a naive per-value index list
    // would hold it out of insertion order.
    col.update_field(ids[3], "v", Value(std::int64_t{1}));
    col.update_field(ids[3], "v", Value(std::int64_t{0}));

    const auto eq = col.find_eq("v", Value(std::int64_t{0}));
    ASSERT_EQ(eq.size(), ids.size()) << shards << " shards";
    EXPECT_TRUE(std::is_sorted(eq.begin(), eq.end())) << shards << " shards";
    const auto range =
        col.find_range("v", Value(std::int64_t{0}), Value(std::int64_t{2}));
    EXPECT_TRUE(std::is_sorted(range.begin(), range.end()))
        << shards << " shards";
    const auto all = col.all_ids();
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end())) << shards << " shards";
    EXPECT_EQ(all, eq) << shards << " shards";
  }
}

// --- shard-count plumbing ---------------------------------------------------

TEST(ShardPlumbing, DocStoreDefaultAndExplicitShardCounts) {
  store::DocStore db(store::DocStoreConfig{.shards = 4});
  EXPECT_EQ(db.default_shards(), 4u);
  EXPECT_EQ(db.collection("defaulted").shard_count(), 4u);
  EXPECT_EQ(db.collection("explicit", 2).shard_count(), 2u);
  // Re-getting with a different count returns the existing collection.
  EXPECT_EQ(db.collection("explicit", 8).shard_count(), 2u);
  EXPECT_EQ(&db.collection("explicit", 8), &db.collection("explicit"));

  store::DocStore plain;
  EXPECT_EQ(plain.default_shards(), 1u);
  EXPECT_EQ(plain.collection("c").shard_count(), 1u);
}

TEST(ShardPlumbing, InsertManyIdsAreContiguousPerBatch) {
  Collection col("batch", nullptr, 8);
  std::vector<Value> docs;
  util::Rng rng(9);
  for (int i = 0; i < 20; ++i) docs.push_back(random_doc(rng));
  const auto ids = col.insert_many(std::move(docs));
  ASSERT_EQ(ids.size(), 20u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], ids[i - 1] + 1);
  }
}

TEST(ShardPlumbing, PersistRoundTripsAcrossShardCounts) {
  const std::string dir = ::testing::TempDir() + "/fairdms_shard_persist";
  store::DocStore src(store::DocStoreConfig{.shards = 8});
  auto& col = src.collection("samples");
  col.create_index("cluster");
  util::Rng rng(10);
  for (int i = 0; i < 64; ++i) col.insert_one(random_doc(rng));
  col.remove_one(5);
  store::save_store(src, dir);

  // Load into stores with different shard counts; contents must agree.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    store::DocStore dst(store::DocStoreConfig{.shards = shards});
    store::load_store(dst, dir);
    auto& rcol = dst.collection("samples");
    EXPECT_EQ(rcol.shard_count(), shards);
    EXPECT_EQ(rcol.size(), col.size());
    EXPECT_EQ(rcol.next_id(), col.next_id());
    EXPECT_EQ(rcol.approx_bytes(), col.approx_bytes());
    EXPECT_EQ(rcol.all_ids(), col.all_ids());
    EXPECT_EQ(rcol.index_fields(), col.index_fields());
    for (std::int64_t c = 0; c < 8; ++c) {
      EXPECT_EQ(rcol.find_eq("cluster", Value(c)),
                col.find_eq("cluster", Value(c)));
    }
    for (const DocId id : col.all_ids()) {
      const auto orig = col.find_by_id(id);
      const auto back = rcol.find_by_id(id);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(orig->compare(*back), 0);
    }
  }
}

}  // namespace
}  // namespace fairdms
