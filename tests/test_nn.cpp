// NN stack tests: finite-difference gradient checks for every layer and
// loss, optimizer behaviour, serialization round trips, trainer convergence,
// and MC-dropout properties.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/pool.hpp"
#include "nn/reshape.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "nn/uncertainty.hpp"
#include "nn/upsample.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using nn::Mode;
using nn::Tensor;

/// Scalar objective for gradient checking: L = sum(layer(x) * w) with fixed
/// random weights w, so dL/dout = w.
double objective(nn::Layer& layer, const Tensor& x, const Tensor& w) {
  const Tensor y = layer.forward(x, Mode::kTrain);
  return tensor::dot(y, w);
}

/// Verifies layer.backward against central finite differences on inputs and
/// parameters.
void check_gradients(nn::Layer& layer, const Tensor& x, double tol = 2e-2) {
  util::Rng rng(4242);
  const Tensor y0 = layer.forward(x, Mode::kTrain);
  const Tensor w = Tensor::randn(y0.shape(), rng);

  layer.zero_grad();
  layer.forward(x, Mode::kTrain);
  const Tensor gx = layer.backward(w);

  constexpr float kEps = 1e-3f;
  // Input gradients (a sample of positions to keep runtime bounded).
  Tensor xp = x;
  const std::size_t stride = std::max<std::size_t>(1, x.numel() / 64);
  for (std::size_t i = 0; i < x.numel(); i += stride) {
    const float orig = xp[i];
    xp[i] = orig + kEps;
    const double up = objective(layer, xp, w);
    xp[i] = orig - kEps;
    const double down = objective(layer, xp, w);
    xp[i] = orig;
    const double fd = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(gx[i], fd, tol * std::max(1.0, std::fabs(fd)))
        << "input grad at " << i;
  }
  // Parameter gradients.
  layer.zero_grad();
  layer.forward(x, Mode::kTrain);
  layer.backward(w);
  auto params = layer.params();
  auto grads = layer.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& theta = *params[p];
    const Tensor& g = *grads[p];
    const std::size_t pstride = std::max<std::size_t>(1, theta.numel() / 48);
    for (std::size_t i = 0; i < theta.numel(); i += pstride) {
      const float orig = theta[i];
      theta[i] = orig + kEps;
      const double up = objective(layer, x, w);
      theta[i] = orig - kEps;
      const double down = objective(layer, x, w);
      theta[i] = orig;
      const double fd = (up - down) / (2.0 * kEps);
      EXPECT_NEAR(g[i], fd, tol * std::max(1.0, std::fabs(fd)))
          << "param " << p << " grad at " << i;
    }
  }
}

TEST(GradCheck, Linear) {
  util::Rng rng(1);
  nn::Linear layer(6, 4, rng);
  const Tensor x = Tensor::randn({3, 6}, rng);
  check_gradients(layer, x);
}

TEST(GradCheck, Conv2dValid) {
  util::Rng rng(2);
  nn::Conv2d layer(2, 3, 3, rng);
  const Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_gradients(layer, x);
}

TEST(GradCheck, Conv2dStridedPadded) {
  util::Rng rng(3);
  nn::Conv2d layer(1, 2, 3, rng, /*stride=*/2, /*padding=*/1);
  const Tensor x = Tensor::randn({2, 1, 7, 7}, rng);
  check_gradients(layer, x);
}

TEST(GradCheck, Activations) {
  util::Rng rng(4);
  const Tensor x = Tensor::randn({4, 10}, rng);
  {
    nn::ReLU layer;
    check_gradients(layer, x);
  }
  {
    nn::LeakyReLU layer(0.1f);
    check_gradients(layer, x);
  }
  {
    nn::Sigmoid layer;
    check_gradients(layer, x);
  }
  {
    nn::Tanh layer;
    check_gradients(layer, x);
  }
}

TEST(GradCheck, Pools) {
  util::Rng rng(5);
  const Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  {
    nn::AvgPool2d layer(2);
    check_gradients(layer, x);
  }
  {
    // MaxPool gradients are exact except at argmax ties; random input makes
    // ties measure-zero.
    nn::MaxPool2d layer(2);
    check_gradients(layer, x);
  }
}

TEST(GradCheck, Upsample) {
  util::Rng rng(6);
  nn::Upsample2d layer(2);
  const Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  check_gradients(layer, x);
}

TEST(GradCheck, SequentialComposite) {
  util::Rng rng(7);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(1, 2, 3, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(2 * 4 * 4, 5, rng);
  net.emplace<nn::Tanh>();
  const Tensor x = Tensor::randn({2, 1, 6, 6}, rng);
  check_gradients(net, x);
}

TEST(Loss, MseValueAndGradient) {
  const Tensor pred = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  const Tensor target = Tensor::from_vector({2, 2}, {0, 2, 3, 8});
  const nn::LossResult r = nn::mse_loss(pred, target);
  EXPECT_NEAR(r.value, (1.0 + 0.0 + 0.0 + 16.0) / 4.0, 1e-9);
  EXPECT_NEAR(r.grad[0], 2.0 * 1.0 / 4.0, 1e-6);
  EXPECT_NEAR(r.grad[3], 2.0 * -4.0 / 4.0, 1e-6);
}

TEST(Loss, L1ValueAndGradientSigns) {
  const Tensor pred = Tensor::from_vector({3}, {1, -2, 0});
  const Tensor target = Tensor::from_vector({3}, {0, 0, 0});
  const nn::LossResult r = nn::l1_loss(pred, target);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
  EXPECT_GT(r.grad[0], 0.0f);
  EXPECT_LT(r.grad[1], 0.0f);
  EXPECT_FLOAT_EQ(r.grad[2], 0.0f);
}

TEST(Loss, ByolZeroForAlignedVectors) {
  const Tensor a = Tensor::from_vector({2, 3}, {1, 0, 0, 0, 2, 0});
  const Tensor b = Tensor::from_vector({2, 3}, {3, 0, 0, 0, 5, 0});
  const nn::LossResult r = nn::byol_loss(a, b);
  EXPECT_NEAR(r.value, 0.0, 1e-6);
}

TEST(Loss, ByolGradientMatchesFiniteDifference) {
  util::Rng rng(8);
  Tensor a = Tensor::randn({3, 4}, rng);
  const Tensor b = Tensor::randn({3, 4}, rng);
  const nn::LossResult r = nn::byol_loss(a, b);
  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const float orig = a[i];
    a[i] = orig + kEps;
    const double up = nn::byol_loss(a, b).value;
    a[i] = orig - kEps;
    const double down = nn::byol_loss(a, b).value;
    a[i] = orig;
    EXPECT_NEAR(r.grad[i], (up - down) / (2.0 * kEps), 5e-3) << "at " << i;
  }
}

TEST(Loss, NtXentGradientMatchesFiniteDifference) {
  util::Rng rng(9);
  Tensor z = Tensor::randn({6, 5}, rng);  // 3 pairs
  const nn::LossResult r = nn::nt_xent_loss(z, 0.5f);
  EXPECT_GT(r.value, 0.0);
  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < z.numel(); i += 3) {
    const float orig = z[i];
    z[i] = orig + kEps;
    const double up = nn::nt_xent_loss(z, 0.5f).value;
    z[i] = orig - kEps;
    const double down = nn::nt_xent_loss(z, 0.5f).value;
    z[i] = orig;
    EXPECT_NEAR(r.grad[i], (up - down) / (2.0 * kEps), 5e-3) << "at " << i;
  }
}

TEST(Loss, NtXentPrefersAlignedPairs) {
  // Aligned positives (view i == view i+B) score lower than random.
  util::Rng rng(10);
  Tensor aligned({4, 8});
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const auto v = static_cast<float>(rng.gaussian());
      aligned.at(i, j) = v;
      aligned.at(i + 2, j) = v;  // identical positive
    }
  }
  const Tensor random = Tensor::randn({4, 8}, rng);
  EXPECT_LT(nn::nt_xent_loss(aligned).value, nn::nt_xent_loss(random).value);
}

TEST(Optim, SgdAndAdamMinimizeQuadratic) {
  // One Linear layer with zero input bias: loss = |W x - t|^2. Both
  // optimizers should cut the loss by >90%.
  for (const bool use_adam : {false, true}) {
    util::Rng rng(11);
    nn::Sequential net;
    net.emplace<nn::Linear>(4, 4, rng);
    const Tensor x = Tensor::randn({16, 4}, rng);
    const Tensor m = Tensor::randn({4, 4}, rng);
    const Tensor t = tensor::matmul(x, m);  // realizable linear target
    std::unique_ptr<nn::Optimizer> opt;
    if (use_adam) {
      opt = std::make_unique<nn::Adam>(net, 0.05);
    } else {
      opt = std::make_unique<nn::SGD>(net, 0.01, 0.9);
    }
    const double initial = nn::mse_loss(net.forward(x, Mode::kEval), t).value;
    for (int step = 0; step < 200; ++step) {
      opt->zero_grad();
      const Tensor y = net.forward(x, Mode::kTrain);
      const nn::LossResult loss = nn::mse_loss(y, t);
      net.backward(loss.grad);
      opt->step();
    }
    const double final = nn::mse_loss(net.forward(x, Mode::kEval), t).value;
    EXPECT_LT(final, 0.1 * initial) << (use_adam ? "adam" : "sgd");
  }
}

TEST(Optim, WeightDecayShrinksWeights) {
  util::Rng rng(12);
  nn::Sequential net;
  net.emplace<nn::Linear>(3, 3, rng);
  const double before = net.params()[0]->norm();
  nn::SGD opt(net, 0.1, 0.0, /*weight_decay=*/0.5);
  const Tensor x({2, 3});  // zero input -> zero task gradient
  const Tensor t({2, 3});
  for (int i = 0; i < 10; ++i) {
    opt.zero_grad();
    const Tensor y = net.forward(x, Mode::kTrain);
    net.backward(nn::mse_loss(y, t).grad);
    opt.step();
  }
  EXPECT_LT(net.params()[0]->norm(), before);
}

TEST(Serialize, RoundTripRestoresExactParameters) {
  util::Rng rng(13);
  nn::Sequential a;
  a.emplace<nn::Conv2d>(1, 2, 3, rng);
  a.emplace<nn::Linear>(8, 4, rng);
  nn::Sequential b;
  b.emplace<nn::Conv2d>(1, 2, 3, rng);
  b.emplace<nn::Linear>(8, 4, rng);

  const auto blob = nn::save_parameters(a);
  nn::load_parameters(b, blob);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->numel(); ++j) {
      EXPECT_EQ((*pa[i])[j], (*pb[i])[j]);
    }
  }
}

TEST(SerializeDeathTest, CorruptBlobAborts) {
  util::Rng rng(14);
  nn::Sequential net;
  net.emplace<nn::Linear>(3, 3, rng);
  auto blob = nn::save_parameters(net);
  blob[blob.size() / 2] ^= 0xFF;
  EXPECT_DEATH(nn::load_parameters(net, blob), "checksum");
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng(15);
  nn::Sequential a;
  a.emplace<nn::Linear>(5, 2, rng);
  const std::string path = ::testing::TempDir() + "/fairdms_model.bin";
  nn::save_parameters_file(a, path);
  nn::Sequential b;
  b.emplace<nn::Linear>(5, 2, rng);
  nn::load_parameters_file(b, path);
  EXPECT_EQ((*a.params()[0])[0], (*b.params()[0])[0]);
}

TEST(Trainer, GatherRowsSelectsCorrectRows) {
  const Tensor t = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> idx{2, 0};
  const Tensor g = nn::gather_rows(t, idx);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
}

TEST(Trainer, FitConvergesOnLinearTask) {
  util::Rng rng(16);
  util::Rng data_rng(17);
  nn::Batchset train;
  train.xs = Tensor::randn({128, 3}, data_rng);
  // Ground truth: y = x * M with a fixed matrix M.
  const Tensor m = Tensor::from_vector({3, 2}, {1, -1, 0.5, 2, -0.25, 0.75});
  train.ys = tensor::matmul(train.xs, m);
  nn::Batchset val;
  val.xs = Tensor::randn({32, 3}, data_rng);
  val.ys = tensor::matmul(val.xs, m);

  nn::Sequential net;
  net.emplace<nn::Linear>(3, 2, rng);
  nn::Adam opt(net, 0.02);
  nn::TrainConfig config;
  config.max_epochs = 200;
  config.batch_size = 32;
  config.target_val_error = 1e-3;
  const nn::TrainResult result = nn::fit(net, opt, train, val, config, rng);
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(result.convergence_epoch, 0u);
  EXPECT_LE(result.final_val_error, 1e-3);
  EXPECT_EQ(result.curve.size(), result.epochs_run);
}

TEST(Trainer, PatienceStopsEarly) {
  util::Rng rng(18);
  nn::Batchset train;
  train.xs = Tensor::randn({16, 2}, rng);
  train.ys = Tensor::randn({16, 1}, rng);  // pure noise: no progress
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 1, rng);
  nn::SGD opt(net, 0.0);  // lr 0: validation error frozen
  nn::TrainConfig config;
  config.max_epochs = 100;
  config.patience = 3;
  const nn::TrainResult result = nn::fit(net, opt, train, train, config, rng);
  EXPECT_LE(result.epochs_run, 5u);
}

TEST(McDropout, ZeroSpreadWithoutDropout) {
  util::Rng rng(19);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 2, rng);
  const Tensor x = Tensor::randn({8, 4}, rng);
  EXPECT_DOUBLE_EQ(nn::mc_dropout_uncertainty(net, x, 8), 0.0);
}

TEST(McDropout, PositiveSpreadWithDropoutAndEvalUnaffected) {
  util::Rng rng(20);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 8, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dropout>(0.5f, rng);
  net.emplace<nn::Linear>(8, 2, rng);
  const Tensor x = Tensor::randn({8, 4}, rng);
  EXPECT_GT(nn::mc_dropout_uncertainty(net, x, 16), 0.0);
  // kEval forward is deterministic.
  const Tensor y1 = net.forward(x, Mode::kEval);
  const Tensor y2 = net.forward(x, Mode::kEval);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(Dropout, InvertedScalingKeepsExpectation) {
  util::Rng rng(21);
  nn::Dropout layer(0.3f, rng);
  const Tensor x = Tensor::full({10000}, 1.0f);
  const Tensor y = layer.forward(x, Mode::kTrain);
  EXPECT_NEAR(y.mean(), 1.0, 0.05);
}

TEST(Sequential, CopyAndEmaParameters) {
  util::Rng rng(22);
  nn::Sequential a, b;
  a.emplace<nn::Linear>(3, 3, rng);
  b.emplace<nn::Linear>(3, 3, rng);
  b.copy_parameters_from(a);
  EXPECT_EQ((*a.params()[0])[0], (*b.params()[0])[0]);

  // EMA with tau=1 copies, tau=0 freezes.
  nn::Sequential c;
  c.emplace<nn::Linear>(3, 3, rng);
  const float before = (*c.params()[0])[0];
  c.ema_update_from(a, 0.0f);
  EXPECT_EQ((*c.params()[0])[0], before);
  c.ema_update_from(a, 1.0f);
  EXPECT_EQ((*c.params()[0])[0], (*a.params()[0])[0]);
}

TEST(Sequential, ParameterCount) {
  util::Rng rng(23);
  nn::Sequential net;
  net.emplace<nn::Linear>(10, 5, rng);  // 50 + 5
  net.emplace<nn::Linear>(5, 2, rng);   // 10 + 2
  EXPECT_EQ(net.parameter_count(), 67u);
}

}  // namespace
}  // namespace fairdms
