// Admission-control tests: the bounded ThreadPool queue (try_submit /
// try_async semantics), the DataService load-shedding policy (a saturated
// pending queue rejects with ServeStatus::kShedOverload, immediately and
// without ever blocking the submitter), full drain after a burst, and the
// admission ledger (per-op submitted == answered + shed, queue gauges,
// retrain coalescing counter). Carries the `service` label, so the TSan CI
// job and the Release `--repeat until-fail:3` stress step cover it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "service/data_service.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

// --- bounded ThreadPool mechanics -------------------------------------------

/// Occupies one pool worker until released, and reports when the worker has
/// actually started (so tests can saturate the queue deterministically).
struct WorkerGate {
  std::promise<void> release;
  std::shared_future<void> opened = release.get_future().share();
  std::atomic<bool> entered{false};

  std::function<void()> task() {
    return [this] {
      entered.store(true);
      opened.wait();
    };
  }
  void wait_entered() {
    while (!entered.load()) std::this_thread::yield();
  }
  void open() { release.set_value(); }
};

TEST(BoundedThreadPool, TrySubmitHonorsQueueBound) {
  util::ThreadPool pool(1, /*max_queue=*/2);
  EXPECT_EQ(pool.max_queue(), 2u);
  WorkerGate gate;
  pool.submit(gate.task());
  gate.wait_entered();  // worker busy, queue empty

  // The bound counts waiting tasks only; the executing task is exempt.
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.try_submit([&ran] { ++ran; }));
  EXPECT_TRUE(pool.try_submit([&ran] { ++ran; }));
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_FALSE(pool.try_submit([&ran] { ++ran; }));  // full: rejected
  // submit() is the internal substrate and bypasses the bound.
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(pool.queue_depth(), 3u);

  gate.open();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);  // the rejected task never ran
  EXPECT_EQ(pool.queue_depth(), 0u);
  // The bound frees up as the queue drains.
  EXPECT_TRUE(pool.try_submit([&ran] { ++ran; }));
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 4);
}

TEST(BoundedThreadPool, UnboundedPoolNeverRejects) {
  util::ThreadPool pool(1, /*max_queue=*/0);
  WorkerGate gate;
  pool.submit(gate.task());
  gate.wait_entered();
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(pool.try_submit([&ran] { ++ran; }));
  }
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

TEST(BoundedThreadPool, TryAsyncReturnsNulloptWhenFull) {
  util::ThreadPool pool(1, /*max_queue=*/1);
  WorkerGate gate;
  pool.submit(gate.task());
  gate.wait_entered();
  auto accepted = pool.try_async([] { return 7; });
  ASSERT_TRUE(accepted.has_value());
  std::atomic<bool> leaked{false};
  auto rejected = pool.try_async([&leaked] {
    leaked.store(true);
    return 8;
  });
  EXPECT_FALSE(rejected.has_value());
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(accepted->get(), 7);
  EXPECT_FALSE(leaked.load());  // the rejected callable was never invoked
}

// --- DataService load shedding ----------------------------------------------

fairds::FairDSConfig small_config() {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = 4;
  config.embed_train.epochs = 3;
  config.embed_train.batch_size = 24;
  config.seed = 77;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

class AdmissionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = regime_data(0.0, 96, 501);
    ds_ = std::make_unique<fairds::FairDS>(small_config(), db_);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history_0");
    label_width_ = ds_->snapshot()->label_width();
    query_ = regime_data(0.0, 8, 502);
  }

  /// Fast labeler of the stored width (for reuse-threshold 1e9 requests
  /// it is never invoked; for threshold -1 it labels everything).
  std::function<Tensor(const Tensor&)> fast_labeler() {
    const std::size_t width = label_width_;
    return [width](const Tensor& xs) { return Tensor({xs.dim(0), width}); };
  }

  /// Labeler that blocks until `gate.open()`, reporting entry — pins one
  /// service worker inside a request so tests can fill the queue behind it.
  std::function<Tensor(const Tensor&)> gated_labeler(WorkerGate& gate) {
    const std::size_t width = label_width_;
    return [&gate, width](const Tensor& xs) {
      gate.entered.store(true);
      gate.opened.wait();
      return Tensor({xs.dim(0), width});
    };
  }

  store::DocStore db_;
  nn::Batchset history_;
  nn::Batchset query_;
  std::unique_ptr<fairds::FairDS> ds_;
  std::size_t label_width_ = 0;
};

TEST_F(AdmissionFixture, SaturatedQueueShedsWithDocumentedStatus) {
  service::DataService service(*ds_, {.workers = 1, .max_pending = 1});
  WorkerGate gate;
  // Occupant: threshold -1 routes every sample to the blocking labeler.
  auto occupant = service.submit(
      service::LabelRequest{query_.xs, -1.0, gated_labeler(gate)});
  gate.wait_entered();  // worker pinned, queue empty

  // Fills the single pending slot.
  auto queued = service.submit(
      service::LabelRequest{query_.xs, 1e9, fast_labeler()});
  // Queue full: shed with the documented status, future ready immediately,
  // payload default-constructed.
  auto shed = service.submit(
      service::LabelRequest{query_.xs, 1e9, fast_labeler()});
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto shed_response = shed.get();
  EXPECT_EQ(shed_response.status, service::ServeStatus::kShedOverload);
  EXPECT_EQ(shed_response.batch.ys.numel(), 0u);
  EXPECT_EQ(shed_response.snapshot_version, 0u);
  EXPECT_EQ(shed_response.reuse.reused + shed_response.reuse.computed, 0u);
  // The worker is still pinned: the shed decision never waited on it.
  EXPECT_TRUE(gate.entered.load());

  gate.open();
  EXPECT_EQ(occupant.get().status, service::ServeStatus::kOk);
  EXPECT_EQ(queued.get().status, service::ServeStatus::kOk);
  service.wait_idle();

  const auto stats = service.stats();
  EXPECT_EQ(stats.label_requests, 3u);
  EXPECT_EQ(stats.label_answered, 2u);
  EXPECT_EQ(stats.label_shed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.max_pending, 1u);
  EXPECT_LE(stats.max_queue_depth, 1u);
}

TEST_F(AdmissionFixture, ShedNeverBlocksSubmitters) {
  service::DataService service(*ds_, {.workers = 1, .max_pending = 1});
  WorkerGate gate;
  auto occupant = service.submit(
      service::LabelRequest{query_.xs, -1.0, gated_labeler(gate)});
  gate.wait_entered();
  auto queued = service.submit(
      service::LabelRequest{query_.xs, 1e9, fast_labeler()});

  // With the worker pinned and the queue full, every further submit must
  // come back already satisfied — the rejection path cannot touch the
  // worker, the queue, or any future that would make the submitter wait.
  for (int i = 0; i < 16; ++i) {
    auto future = service.submit(
        service::LabelRequest{query_.xs, 1e9, fast_labeler()});
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "shed future " << i << " not immediately ready";
    EXPECT_EQ(future.get().status, service::ServeStatus::kShedOverload);
  }

  gate.open();
  (void)occupant.get();
  (void)queued.get();
  service.wait_idle();
  const auto stats = service.stats();
  EXPECT_EQ(stats.label_requests, 18u);
  EXPECT_EQ(stats.label_answered, 2u);
  EXPECT_EQ(stats.label_shed, 16u);
}

TEST_F(AdmissionFixture, AllOpTypesShedAndReconcile) {
  fairms::ModelZoo zoo(db_);
  zoo.publish("braggnn", "m0", ds_->distribution(history_.xs), {1, 2, 3});
  fairms::ModelManager manager(zoo, 1.0);
  service::DataService service(*ds_, {.workers = 1, .max_pending = 1},
                               &manager);
  WorkerGate gate;
  auto occupant = service.submit(
      service::LabelRequest{query_.xs, -1.0, gated_labeler(gate)});
  gate.wait_entered();
  auto queued = service.submit(
      service::LabelRequest{query_.xs, 1e9, fast_labeler()});

  auto shed_lookup = service.submit(service::LookupRequest{query_.xs, 5});
  ASSERT_EQ(shed_lookup.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(shed_lookup.get().status, service::ServeStatus::kShedOverload);

  auto shed_recommend =
      service.submit(service::RecommendRequest{"braggnn", query_.xs});
  ASSERT_EQ(shed_recommend.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto recommend_response = shed_recommend.get();
  EXPECT_EQ(recommend_response.status, service::ServeStatus::kShedOverload);
  EXPECT_FALSE(recommend_response.pick.has_value());

  gate.open();
  (void)occupant.get();
  (void)queued.get();
  service.wait_idle();

  // After drain, an accepted lookup and recommend complete normally.
  EXPECT_EQ(service.submit(service::LookupRequest{query_.xs, 5}).get().status,
            service::ServeStatus::kOk);
  EXPECT_EQ(service.submit(service::RecommendRequest{"braggnn", query_.xs})
                .get()
                .status,
            service::ServeStatus::kOk);
  service.wait_idle();

  const auto stats = service.stats();
  EXPECT_EQ(stats.label_requests, stats.label_answered + stats.label_shed);
  EXPECT_EQ(stats.lookup_requests,
            stats.lookup_answered + stats.lookup_shed);
  EXPECT_EQ(stats.recommend_requests,
            stats.recommend_answered + stats.recommend_shed);
  EXPECT_EQ(stats.lookup_shed, 1u);
  EXPECT_EQ(stats.lookup_answered, 1u);
  EXPECT_EQ(stats.recommend_shed, 1u);
  EXPECT_EQ(stats.recommend_answered, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(AdmissionFixture, QueueDrainsFullyAfterBurst) {
  service::DataService service(*ds_, {.workers = 2, .max_pending = 4});
  // Open-loop burst far above capacity: outcomes depend on scheduling, but
  // the ledger must reconcile exactly and the queue must drain to zero.
  constexpr int kBurst = 64;
  std::vector<std::future<service::LabelResponse>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(service.submit(
        service::LabelRequest{query_.xs, 1e9, fast_labeler()}));
  }
  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const auto response = f.get();
    if (response.status == service::ServeStatus::kOk) {
      ++ok;
      EXPECT_GT(response.snapshot_version, 0u);
    } else {
      ++shed;
    }
  }
  service.wait_idle();

  EXPECT_EQ(ok + shed, static_cast<std::size_t>(kBurst));
  EXPECT_GT(ok, 0u);  // admitted work always completes
  const auto stats = service.stats();
  EXPECT_EQ(stats.label_requests, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(stats.label_answered, ok);
  EXPECT_EQ(stats.label_shed, shed);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.max_queue_depth, 4u);

  // The service stays fully usable after the burst.
  EXPECT_EQ(service.submit(service::LabelRequest{query_.xs, 1e9,
                                                 fast_labeler()})
                .get()
                .status,
            service::ServeStatus::kOk);
}

TEST_F(AdmissionFixture, UnboundedConfigNeverSheds) {
  service::DataService service(*ds_, {.workers = 1, .max_pending = 0});
  std::vector<std::future<service::LabelResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.submit(
        service::LabelRequest{query_.xs, 1e9, fast_labeler()}));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, service::ServeStatus::kOk);
  }
  service.wait_idle();
  const auto stats = service.stats();
  EXPECT_EQ(stats.label_shed, 0u);
  EXPECT_EQ(stats.label_answered, 32u);
  EXPECT_EQ(stats.max_pending, 0u);
}

TEST_F(AdmissionFixture, RetrainCoalescingIsCounted) {
  auto config = small_config();
  config.certainty_threshold = 1.01;  // every check trains
  store::DocStore db;
  fairds::FairDS ds(config, db);
  ds.train_system(history_.xs);
  ds.ingest(history_.xs, history_.ys, "h");
  service::DataService service(ds, {.workers = 1});

  const nn::Batchset probe = regime_data(1.5, 48, 503);
  ASSERT_TRUE(service.request_retrain(probe.xs));
  const bool second = service.request_retrain(probe.xs);
  service.wait_idle();
  const auto stats = service.stats();
  // Whichever way the race went, both calls are accounted for: each either
  // ran a check or was coalesced into the in-flight one.
  EXPECT_EQ(stats.retrain_checks + stats.retrains_coalesced, 2u);
  if (!second) EXPECT_EQ(stats.retrains_coalesced, 1u);
}

// The multi-stream reconciliation invariant: every global aggregate in
// ServiceStats equals the sum of the corresponding per-stream ledger —
// including after a mixed outcome (one tenant shedding on its own bound,
// the other answering, retrain activity on both planes). A drifting global
// counter here would mean some path updated one ledger but not the other.
TEST_F(AdmissionFixture, GlobalStatsReconcileWithPerStreamLedgers) {
  auto config_b = small_config();
  config_b.seed = 78;
  config_b.collection = "fairds_samples_b";  // own collection in shared db_
  fairds::FairDS ds_b(config_b, db_);
  ds_b.train_system(history_.xs);
  ds_b.ingest(history_.xs, history_.ys, "history_b");

  service::DataService service({.workers = 1});
  service::StreamConfig bounded;
  bounded.max_pending = 1;
  ASSERT_TRUE(service.add_stream("a", *ds_, bounded));
  ASSERT_TRUE(service.add_stream("b", ds_b, {}));

  // Wedge the worker inside a stream-a request, then drive both tenants to
  // different outcomes: a sheds on its bound, b queues freely.
  WorkerGate gate;
  auto wedge = service.submit(
      service::LabelRequest{query_.xs, -1.0, gated_labeler(gate), "a"});
  gate.wait_entered();
  std::vector<std::future<service::LabelResponse>> labels;
  for (int i = 0; i < 3; ++i) {
    labels.push_back(service.submit(
        service::LabelRequest{query_.xs, 1e9, fast_labeler(), "a"}));
  }
  auto lookup_b = service.submit(service::LookupRequest{query_.xs, 11, "b"});
  auto label_b = service.submit(
      service::LabelRequest{query_.xs, 1e9, fast_labeler(), "b"});
  ASSERT_TRUE(service.request_retrain("b", regime_data(1.5, 48, 504).xs));
  gate.open();
  EXPECT_EQ(wedge.get().status, service::ServeStatus::kOk);
  EXPECT_EQ(lookup_b.get().status, service::ServeStatus::kOk);
  EXPECT_EQ(label_b.get().status, service::ServeStatus::kOk);
  service.wait_idle();

  const auto stats = service.stats();
  ASSERT_EQ(stats.streams.size(), 2u);
  service::StreamStats sum;
  for (const auto& s : stats.streams) {
    sum.label_requests += s.label_requests;
    sum.label_answered += s.label_answered;
    sum.label_shed += s.label_shed;
    sum.lookup_requests += s.lookup_requests;
    sum.lookup_answered += s.lookup_answered;
    sum.lookup_shed += s.lookup_shed;
    sum.recommend_requests += s.recommend_requests;
    sum.recommend_answered += s.recommend_answered;
    sum.recommend_shed += s.recommend_shed;
    sum.samples_labeled += s.samples_labeled;
    sum.labels_reused += s.labels_reused;
    sum.labels_computed += s.labels_computed;
    sum.retrain_checks += s.retrain_checks;
    sum.retrains += s.retrains;
    sum.retrains_coalesced += s.retrains_coalesced;
    sum.retrains_capped += s.retrains_capped;
    sum.policy_cooldown_skips += s.policy_cooldown_skips;
  }
  EXPECT_EQ(stats.label_requests, sum.label_requests);
  EXPECT_EQ(stats.label_answered, sum.label_answered);
  EXPECT_EQ(stats.label_shed, sum.label_shed);
  EXPECT_EQ(stats.lookup_requests, sum.lookup_requests);
  EXPECT_EQ(stats.lookup_answered, sum.lookup_answered);
  EXPECT_EQ(stats.lookup_shed, sum.lookup_shed);
  EXPECT_EQ(stats.recommend_requests, sum.recommend_requests);
  EXPECT_EQ(stats.recommend_answered, sum.recommend_answered);
  EXPECT_EQ(stats.recommend_shed, sum.recommend_shed);
  EXPECT_EQ(stats.samples_labeled, sum.samples_labeled);
  EXPECT_EQ(stats.labels_reused, sum.labels_reused);
  EXPECT_EQ(stats.labels_computed, sum.labels_computed);
  EXPECT_EQ(stats.retrain_checks, sum.retrain_checks);
  EXPECT_EQ(stats.retrains, sum.retrains);
  EXPECT_EQ(stats.retrains_coalesced, sum.retrains_coalesced);
  EXPECT_EQ(stats.retrains_capped, sum.retrains_capped);
  EXPECT_EQ(stats.policy_cooldown_skips, sum.policy_cooldown_skips);

  // And the scenario actually exercised both sides of the ledger.
  EXPECT_EQ(stats.label_requests, 5u);
  EXPECT_GE(stats.label_shed, 1u);
  EXPECT_EQ(stats.lookup_answered, 1u);
  EXPECT_EQ(stats.retrain_checks, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace fairdms
