// Workflow substrate tests: flow DAG ordering and parallelism, cycle/unknown
// dependency detection, funcX endpoint capacity semantics, transfer-time
// arithmetic and accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "workflow/flow.hpp"
#include "workflow/funcx.hpp"
#include "workflow/transfer.hpp"

namespace fairdms {
namespace {

TEST(Flow, RunsTasksInDependencyOrder) {
  std::mutex m;
  std::vector<std::string> order;
  auto log = [&](const std::string& name) {
    std::lock_guard lock(m);
    order.push_back(name);
  };
  workflow::Flow flow("pipeline");
  flow.add_task("train", [&] { log("train"); }, {"label"});
  flow.add_task("label", [&] { log("label"); }, {"acquire"});
  flow.add_task("acquire", [&] { log("acquire"); });
  flow.add_task("deploy", [&] { log("deploy"); }, {"train"});
  const auto report = flow.run();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "acquire");
  EXPECT_EQ(order[1], "label");
  EXPECT_EQ(order[2], "train");
  EXPECT_EQ(order[3], "deploy");
  EXPECT_EQ(report.tasks.size(), 4u);
  EXPECT_GT(report.total_seconds, 0.0);

  // Per-task report intervals nest inside the flow and respect deps.
  const auto* label = report.find("label");
  const auto* train = report.find("train");
  ASSERT_NE(label, nullptr);
  ASSERT_NE(train, nullptr);
  EXPECT_LE(label->end_seconds, train->start_seconds + 1e-6);
  EXPECT_EQ(report.find("nonexistent"), nullptr);
}

TEST(Flow, IndependentTasksOverlap) {
  // Two 30ms sleeps with no deps should finish in well under 60ms on the
  // multi-worker pool.
  workflow::Flow flow("parallel");
  auto nap = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  flow.add_task("a", nap);
  flow.add_task("b", nap);
  const auto report = flow.run();
  EXPECT_LT(report.total_seconds, 0.055);
}

TEST(FlowDeathTest, CycleIsRejected) {
  workflow::Flow flow("cyclic");
  flow.add_task("a", [] {}, {"b"});
  flow.add_task("b", [] {}, {"a"});
  EXPECT_DEATH(flow.run(), "cycle");
}

TEST(FlowDeathTest, UnknownDependencyIsRejected) {
  workflow::Flow flow("dangling");
  flow.add_task("a", [] {}, {"ghost"});
  EXPECT_DEATH(flow.run(), "unknown task");
}

TEST(FlowDeathTest, DuplicateTaskNameIsRejected) {
  workflow::Flow flow("dup");
  flow.add_task("a", [] {});
  EXPECT_DEATH(flow.add_task("a", [] {}), "duplicate");
}

TEST(FuncX, InvokeRunsRegisteredFunction) {
  workflow::FuncXRegistry registry;
  registry.add_endpoint("edge", 2);
  registry.register_function("double", "edge", [](const workflow::Payload& p) {
    return workflow::Payload(p.as_int() * 2);
  });
  EXPECT_TRUE(registry.has_function("double"));
  EXPECT_FALSE(registry.has_function("triple"));
  const auto result =
      registry.invoke("double", workflow::Payload(std::int64_t{21}));
  EXPECT_EQ(result.as_int(), 42);
  const auto stats = registry.stats("edge");
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(FuncX, CapacityOneSerializesConcurrentInvocations) {
  workflow::FuncXRegistry registry;
  registry.add_endpoint("gpu", 1);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  registry.register_function("busy", "gpu", [&](const workflow::Payload&) {
    const int now = inside.fetch_add(1) + 1;
    int prev = max_inside.load();
    while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    inside.fetch_sub(1);
    return workflow::Payload(nullptr);
  });
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&] { registry.invoke("busy", workflow::Payload(nullptr)); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_inside.load(), 1);
  EXPECT_EQ(registry.stats("gpu").invocations, 4u);
}

TEST(FuncXDeathTest, UnknownFunctionAndEndpoint) {
  workflow::FuncXRegistry registry;
  registry.add_endpoint("e", 1);
  EXPECT_DEATH(registry.invoke("nope", workflow::Payload(nullptr)),
               "unknown function");
  EXPECT_DEATH(registry.register_function("f", "ghost", [](const auto& p) {
    return p;
  }),
               "unknown endpoint");
}

TEST(Transfer, TimeIsLatencyPlusBytesOverBandwidth) {
  workflow::TransferService svc;
  svc.set_link("beamline", "compute",
               {.latency_seconds = 0.5, .bandwidth_bytes_per_s = 1000.0});
  EXPECT_DOUBLE_EQ(svc.transfer("beamline", "compute", 2000), 2.5);
  const auto stats = svc.stats("beamline", "compute");
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.bytes, 2000u);
  EXPECT_DOUBLE_EQ(stats.seconds, 2.5);
}

TEST(Transfer, LinksAreDirectional) {
  workflow::TransferService svc;
  svc.set_link("a", "b", {.latency_seconds = 0.0,
                          .bandwidth_bytes_per_s = 1e6});
  EXPECT_DEATH(svc.transfer("b", "a", 10), "no link");
  EXPECT_EQ(svc.stats("b", "a").transfers, 0u);
}

}  // namespace
}  // namespace fairdms
