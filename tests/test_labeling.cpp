// Tests for the conventional pseudo-Voigt labeler (MIDAS analog): parameter
// recovery across a property sweep, parallel labeling consistency, and the
// cluster cost-model arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "datagen/bragg.hpp"
#include "labeling/voigt_fit.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

TEST(VoigtFit, RecoversCleanPeakCenterExactly) {
  datagen::PeakParams p;
  p.center_x = 8.27;
  p.center_y = 6.43;
  p.sigma_major = 2.0;
  p.sigma_minor = 2.0;  // fitter assumes isotropic; match it here
  p.eta = 0.4;
  p.amplitude = 1.3;
  p.background = 0.05;
  std::vector<float> patch(15 * 15);
  datagen::render_peak(p, 15, patch);
  const auto fit = labeling::fit_peak(patch, 15);
  EXPECT_NEAR(fit.center_x, p.center_x, 0.02);
  EXPECT_NEAR(fit.center_y, p.center_y, 0.02);
  EXPECT_NEAR(fit.eta, p.eta, 0.1);
  EXPECT_NEAR(fit.amplitude, p.amplitude, 0.1);
  EXPECT_LT(fit.residual, 1e-5);
}

// Property sweep: center recovery within 0.25px across positions, widths,
// mixing ratios, and noise levels (sub-pixel accuracy is the whole point of
// pseudo-Voigt labeling).
class VoigtRecovery
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(VoigtRecovery, CenterWithinQuarterPixel) {
  const auto [offset, sigma, eta] = GetParam();
  datagen::PeakParams p;
  p.center_x = 7.0 + offset;
  p.center_y = 7.0 - offset * 0.6;
  p.sigma_major = sigma;
  p.sigma_minor = sigma;
  p.eta = eta;
  p.amplitude = 1.0;
  std::vector<float> patch(15 * 15);
  datagen::render_peak(p, 15, patch);
  util::Rng rng(1234);
  for (float& v : patch) {
    v += static_cast<float>(rng.gaussian(0.0, 0.02));
  }
  const auto fit = labeling::fit_peak(patch, 15);
  EXPECT_NEAR(fit.center_x, p.center_x, 0.25);
  EXPECT_NEAR(fit.center_y, p.center_y, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, VoigtRecovery,
    ::testing::Combine(::testing::Values(-2.0, -0.7, 0.0, 1.3, 2.4),
                       ::testing::Values(1.4, 2.0, 2.8),
                       ::testing::Values(0.1, 0.5, 0.9)));

TEST(VoigtFit, FlatPatchDoesNotExplode) {
  std::vector<float> patch(15 * 15, 0.2f);
  const auto fit = labeling::fit_peak(patch, 15);
  // Center defaults near the middle; residual stays tiny.
  EXPECT_GT(fit.center_x, 3.0);
  EXPECT_LT(fit.center_x, 12.0);
  EXPECT_LT(fit.residual, 1e-4);
}

TEST(LabelPatches, MatchesGroundTruthOnCleanBatch) {
  util::Rng rng(7);
  datagen::BraggRegime regime;
  regime.noise_sd = 0.01;
  const auto data = datagen::make_bragg_batchset(regime, {}, 24, rng);
  double elapsed = 0.0, per_patch = 0.0;
  const auto labels = labeling::label_patches(data.xs, {}, &elapsed,
                                              &per_patch);
  ASSERT_EQ(labels.shape(), data.ys.shape());
  EXPECT_GT(elapsed, 0.0);
  EXPECT_GT(per_patch, 0.0);
  for (std::size_t i = 0; i < 24; ++i) {
    const double err = datagen::bragg_pixel_error(labels, data.ys, 15, i);
    EXPECT_LT(err, 0.5) << "sample " << i;
  }
}

TEST(ClusterCostModel, PerfectScalingWithoutSerialFraction) {
  labeling::ClusterCostModel model;
  model.per_patch_seconds = 0.01;
  model.serial_fraction = 0.0;
  EXPECT_NEAR(model.project_seconds(1000, 1), 10.0, 1e-9);
  EXPECT_NEAR(model.project_seconds(1000, 10), 1.0, 1e-9);
}

TEST(ClusterCostModel, AmdahlLimitsSpeedup) {
  labeling::ClusterCostModel model;
  model.per_patch_seconds = 0.01;
  model.serial_fraction = 0.01;
  const double t80 = model.project_seconds(10000, 80);
  const double t1440 = model.project_seconds(10000, 1440);
  EXPECT_LT(t1440, t80);
  // Speedup of 1440 over 80 cores must be well below the 18x core ratio.
  EXPECT_LT(t80 / t1440, 18.0);
  // And never below the serial floor.
  EXPECT_GT(t1440, 0.01 * 10000 * 0.01);
}

}  // namespace
}  // namespace fairdms
