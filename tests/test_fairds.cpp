// fairDS tests: system-plane training, ingestion, distribution/lookup
// fidelity, per-sample label reuse with threshold + fallback, and the
// uncertainty-triggered retrain.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairms/jsd.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

fairds::FairDSConfig small_config(std::size_t k = 4) {
  fairds::FairDSConfig config;
  config.embedding_algorithm = "byol";
  config.embedding_dim = 8;
  config.image_size = 15;
  config.n_clusters = k;
  config.embed_train.epochs = 3;
  config.embed_train.batch_size = 24;
  // A single continuous regime clusters softly (fuzzy max-membership sits
  // near 0.7 with K=4); keep the trigger below that so same-regime data does
  // not retrain. The Fig. 16 bench uses genuinely multimodal history where
  // certainty is much higher.
  config.certainty_threshold = 0.55;
  config.seed = 17;
  return config;
}

nn::Batchset regime_data(double drift, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  regime.eta_mean = std::min(0.95, regime.eta_mean + drift * 0.5);
  return datagen::make_bragg_batchset(regime, {}, n, rng);
}

class FairDsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = regime_data(0.0, 96, 1);
    ds_ = std::make_unique<fairds::FairDS>(small_config(), db_);
    ds_->train_system(history_.xs);
    ds_->ingest(history_.xs, history_.ys, "history_0");
  }

  store::DocStore db_;
  nn::Batchset history_;
  std::unique_ptr<fairds::FairDS> ds_;
};

TEST_F(FairDsFixture, TrainedStateAndStoredCount) {
  EXPECT_TRUE(ds_->trained());
  EXPECT_EQ(ds_->stored_count(), 96u);
  EXPECT_EQ(ds_->n_clusters(), 4u);
  EXPECT_EQ(ds_->clusters().k(), 4u);
}

TEST_F(FairDsFixture, DistributionIsAPdf) {
  const auto pdf = ds_->distribution(history_.xs);
  ASSERT_EQ(pdf.size(), 4u);
  double sum = 0.0;
  for (double v : pdf) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(FairDsFixture, EmbedShape) {
  const Tensor e = ds_->embed(history_.xs);
  EXPECT_EQ(e.shape(), (std::vector<std::size_t>{96, 8}));
}

TEST_F(FairDsFixture, LookupReturnsMatchingCountAndDistribution) {
  const nn::Batchset query = regime_data(0.02, 48, 2);
  const nn::Batchset retrieved = ds_->lookup(query.xs, 99);
  EXPECT_EQ(retrieved.size(), 48u);
  EXPECT_EQ(retrieved.xs.shape(),
            (std::vector<std::size_t>{48, 1, 15, 15}));
  EXPECT_EQ(retrieved.ys.dim(1), 2u);

  // The retrieved set's cluster distribution should be close to the query's
  // (that is the whole lookup contract).
  const auto query_pdf = ds_->distribution(query.xs);
  const auto got_pdf = ds_->distribution(retrieved.xs);
  EXPECT_LT(fairms::jensen_shannon_divergence(query_pdf, got_pdf), 0.2);
}

TEST_F(FairDsFixture, LookupIsSeedDeterministic) {
  const nn::Batchset query = regime_data(0.0, 16, 3);
  const auto a = ds_->lookup(query.xs, 7);
  const auto b = ds_->lookup(query.xs, 7);
  for (std::size_t i = 0; i < a.xs.numel(); ++i) {
    ASSERT_EQ(a.xs[i], b.xs[i]);
  }
}

TEST_F(FairDsFixture, LookupOrLabelReusesForSimilarData) {
  // Query from the same regime as history: a generous threshold should
  // reuse essentially everything.
  const nn::Batchset query = regime_data(0.0, 24, 4);
  fairds::ReuseStats stats;
  std::size_t fallback_calls = 0;
  const auto labeled = ds_->lookup_or_label(
      query.xs, /*threshold=*/1e9,
      [&](const Tensor& xs) {
        ++fallback_calls;
        return Tensor({xs.dim(0), 2});
      },
      &stats);
  EXPECT_EQ(stats.reused, 24u);
  EXPECT_EQ(stats.computed, 0u);
  EXPECT_EQ(fallback_calls, 0u);
  EXPECT_EQ(labeled.size(), 24u);
}

TEST_F(FairDsFixture, LookupOrLabelFallsBackForTinyThreshold) {
  const nn::Batchset query = regime_data(0.0, 12, 5);
  fairds::ReuseStats stats;
  const auto labeled = ds_->lookup_or_label(
      query.xs, /*threshold=*/1e-12,
      [&](const Tensor& xs) {
        Tensor ys({xs.dim(0), 2});
        ys.fill_(0.123f);
        return ys;
      },
      &stats);
  EXPECT_EQ(stats.computed, 12u);
  EXPECT_EQ(stats.reused, 0u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(labeled.ys.at(i, 0), 0.123f);
  }
}

TEST_F(FairDsFixture, ReusedPairsAreInternallyConsistent) {
  // Fig. 9's BO construction returns *historical pairs* {p, l(p)}: each
  // reused image must carry its own label. Check image/label consistency
  // via the intensity centroid of the returned patch.
  const nn::Batchset query = regime_data(0.0, 24, 6);
  const auto labeled = ds_->lookup_or_label(
      query.xs, 1e9, [](const Tensor& xs) { return Tensor({xs.dim(0), 2}); });
  for (std::size_t i = 0; i < 24; ++i) {
    double cx = 0.0, cy = 0.0;
    datagen::intensity_centroid({labeled.xs.data() + i * 225, 225}, 15, cx,
                                cy);
    const double label_x =
        static_cast<double>(labeled.ys.at(i, 0)) * 15.0 + 7.0;
    const double label_y =
        static_cast<double>(labeled.ys.at(i, 1)) * 15.0 + 7.0;
    EXPECT_NEAR(cx, label_x, 1.5) << "pair " << i;
    EXPECT_NEAR(cy, label_y, 1.5) << "pair " << i;
  }
}

TEST_F(FairDsFixture, CertaintyHighInRegimeLowAfterBigShift) {
  EXPECT_GT(ds_->certainty(history_.xs), 0.55);
  const nn::Batchset shifted = regime_data(1.6, 48, 7);
  EXPECT_LT(ds_->certainty(shifted.xs), ds_->certainty(history_.xs));
}

TEST_F(FairDsFixture, MaybeRetrainTriggersOnlyBelowThreshold) {
  // Same-regime data: no trigger.
  const nn::Batchset same = regime_data(0.0, 32, 8);
  EXPECT_FALSE(ds_->maybe_retrain(same.xs));
  EXPECT_EQ(ds_->retrain_count(), 0u);
}

TEST(FairDs, RetrainRestoresCertaintyAfterRegimeShift) {
  store::DocStore db;
  auto config = small_config();
  config.certainty_threshold = 0.85;
  fairds::FairDS ds(config, db);
  const nn::Batchset history = regime_data(0.0, 80, 10);
  ds.train_system(history.xs);
  ds.ingest(history.xs, history.ys, "h");

  const nn::Batchset shifted = regime_data(1.8, 64, 11);
  const double before = ds.certainty(shifted.xs);
  if (before < config.certainty_threshold) {
    EXPECT_TRUE(ds.maybe_retrain(shifted.xs));
    EXPECT_EQ(ds.retrain_count(), 1u);
    const double after = ds.certainty(shifted.xs);
    EXPECT_GT(after, before);
  } else {
    GTEST_SKIP() << "shift did not reduce certainty below threshold";
  }
}

TEST(FairDs, ElbowSelectsClusterCountWhenUnset) {
  store::DocStore db;
  auto config = small_config();
  config.n_clusters = 0;  // elbow
  config.elbow_k_min = 2;
  config.elbow_k_max = 8;
  fairds::FairDS ds(config, db);
  const nn::Batchset history = regime_data(0.0, 64, 12);
  ds.train_system(history.xs);
  EXPECT_GE(ds.n_clusters(), 2u);
  EXPECT_LE(ds.n_clusters(), 8u);
}

TEST(FairDsDeathTest, LookupBeforeTrainingAborts) {
  store::DocStore db;
  fairds::FairDS ds(small_config(), db);
  const nn::Batchset q = regime_data(0.0, 4, 13);
  EXPECT_DEATH(ds.lookup(q.xs, 1), "before train_system");
}

}  // namespace
}  // namespace fairdms
