// Unit + property tests for the tensor substrate, anchored by a naive
// reference GEMM.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const std::size_t m = ta ? a.dim(1) : a.dim(0);
  const std::size_t k = ta ? a.dim(0) : a.dim(1);
  const std::size_t n = tb ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a.at(kk, i) : a.at(i, kk);
        const float bv = tb ? b.at(j, kk) : b.at(kk, j);
        sum += av * bv;
      }
      c.at(i, j) = sum;
    }
  }
  return c;
}

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FactoriesAndFill) {
  util::Rng rng(1);
  const Tensor f = Tensor::full({3, 3}, 2.5f);
  EXPECT_FLOAT_EQ(f.at(2, 2), 2.5f);
  const Tensor r = Tensor::randn({1000}, rng, 2.0f);
  EXPECT_NEAR(r.mean(), 0.0, 0.25);
  const Tensor u = Tensor::rand_uniform({1000}, rng, -1.0f, 1.0f);
  EXPECT_GE(u.flat()[0], -1.0f);
  const Tensor v = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(v.at(1, 0), 3.0f);
}

TEST(Tensor, ElementwiseOps) {
  const Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  const Tensor b = Tensor::from_vector({2, 2}, {10, 20, 30, 40});
  EXPECT_FLOAT_EQ(a.add(b).at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(b.sub(a).at(1, 1), 36.0f);
  EXPECT_FLOAT_EQ(a.mul(b).at(1, 0), 90.0f);
  EXPECT_FLOAT_EQ(a.scaled(3.0f).at(0, 0), 3.0f);
  Tensor c = a;
  c.axpy_(2.0f, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 21.0f);
}

TEST(Tensor, Reductions) {
  const Tensor a = Tensor::from_vector({4}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(a.sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.mean(), -0.5);
  EXPECT_FLOAT_EQ(a.max_abs(), 4.0f);
  EXPECT_NEAR(a.norm(), std::sqrt(30.0), 1e-6);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = a.reshaped({3, 2});
  EXPECT_FLOAT_EQ(b.at(2, 1), 6.0f);
  EXPECT_EQ(b.numel(), a.numel());
}

TEST(Tensor, DotDistanceCosine) {
  const Tensor a = Tensor::from_vector({3}, {1, 0, 0});
  const Tensor b = Tensor::from_vector({3}, {0, 1, 0});
  EXPECT_DOUBLE_EQ(tensor::dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(tensor::squared_distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(tensor::cosine_similarity(a, b), 0.0);
  EXPECT_NEAR(tensor::cosine_similarity(a, a), 1.0, 1e-12);
  const Tensor zero({3});
  EXPECT_DOUBLE_EQ(tensor::cosine_similarity(a, zero), 0.0);
}

// Property: threaded GEMM == naive GEMM for every transpose combination
// over a grid of shapes.
class MatmulProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {
};

TEST_P(MatmulProperty, MatchesNaive) {
  const auto [m, k, n, ta, tb] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n) +
                (ta ? 1 : 0) + (tb ? 2 : 0));
  const auto mu = static_cast<std::size_t>(m);
  const auto ku = static_cast<std::size_t>(k);
  const auto nu = static_cast<std::size_t>(n);
  const Tensor a = Tensor::randn(ta ? std::vector<std::size_t>{ku, mu}
                                    : std::vector<std::size_t>{mu, ku},
                                 rng);
  const Tensor b = Tensor::randn(tb ? std::vector<std::size_t>{nu, ku}
                                    : std::vector<std::size_t>{ku, nu},
                                 rng);
  const Tensor fast = tensor::matmul(a, b, ta, tb);
  const Tensor ref = naive_matmul(a, b, ta, tb);
  ASSERT_EQ(fast.shape(), ref.shape());
  for (std::size_t i = 0; i < fast.numel(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulProperty,
    ::testing::Combine(::testing::Values(1, 3, 17, 64),
                       ::testing::Values(1, 5, 32),
                       ::testing::Values(1, 7, 48),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Matmul, IdentityIsNoop) {
  util::Rng rng(9);
  const Tensor a = Tensor::randn({5, 5}, rng);
  Tensor eye({5, 5});
  for (std::size_t i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  const Tensor out = tensor::matmul(a, eye);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(out[i], a[i]);
  }
}

}  // namespace
}  // namespace fairdms
