// Embedding tests: augmentation identities, shape/contract checks for all
// three embedders, objective decrease under training, BYOL EMA dynamics, and
// regime separation in embedding space (the property fairDS depends on).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "datagen/bragg.hpp"
#include "embed/augment.hpp"
#include "embed/autoencoder.hpp"
#include "embed/byol.hpp"
#include "embed/contrastive.hpp"
#include "embed/embedder.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

std::vector<float> ramp_image(std::size_t size) {
  std::vector<float> img(size * size);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<float>(i);
  }
  return img;
}

TEST(Augment, FourQuarterTurnsAreIdentity) {
  const auto img = ramp_image(7);
  const auto out = embed::rotate90(img, 7, 4);
  EXPECT_EQ(out, img);
}

TEST(Augment, RotationComposition) {
  const auto img = ramp_image(6);
  const auto once_twice =
      embed::rotate90(embed::rotate90(img, 6, 1), 6, 1);
  EXPECT_EQ(once_twice, embed::rotate90(img, 6, 2));
  // Negative turns wrap.
  EXPECT_EQ(embed::rotate90(img, 6, -1), embed::rotate90(img, 6, 3));
}

TEST(Augment, MirrorTwiceIsIdentity) {
  const auto img = ramp_image(5);
  EXPECT_EQ(embed::mirror_horizontal(embed::mirror_horizontal(img, 5), 5),
            img);
}

TEST(Augment, CircularShiftRoundTripsAndPreservesMass) {
  const auto img = ramp_image(8);
  const auto shifted = embed::circular_shift(img, 8, 3, -2);
  const auto back = embed::circular_shift(shifted, 8, -3, 2);
  EXPECT_EQ(back, img);
  double a = 0.0, b = 0.0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    a += img[i];
    b += shifted[i];
  }
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Augment, RandomAugmentKeepsSizeAndRoughIntensity) {
  util::Rng rng(1);
  const auto img = ramp_image(15);
  embed::AugmentConfig config;
  config.noise_sd = 0.0;
  config.gain_sd = 0.0;
  const auto out = embed::augment(img, 15, config, rng);
  EXPECT_EQ(out.size(), img.size());
  double a = 0.0, b = 0.0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    a += img[i];
    b += out[i];
  }
  EXPECT_NEAR(a, b, 1e-3);  // geometry-only augmentations preserve mass
}

Tensor small_bragg_set(std::size_t n, double drift, std::uint64_t seed) {
  util::Rng rng(seed);
  datagen::BraggRegime regime;
  regime.sigma_major_mean *= 1.0 + drift;
  regime.eta_mean = std::min(0.95, regime.eta_mean + drift);
  return datagen::make_bragg_batchset(regime, {}, n, rng).xs;
}

class EmbedderContract : public ::testing::TestWithParam<const char*> {};

TEST_P(EmbedderContract, FitEmbedShapesAndDeterminism) {
  const std::string algo = GetParam();
  const Tensor xs = small_bragg_set(48, 0.0, 2);
  auto embedder = embed::make_embedder(algo, 15, 8, 33);
  EXPECT_EQ(embedder->name(), algo);
  EXPECT_EQ(embedder->embedding_dim(), 8u);

  embed::EmbedTrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  embedder->fit(xs, config);
  const Tensor e1 = embedder->embed(xs);
  const Tensor e2 = embedder->embed(xs);
  ASSERT_EQ(e1.shape(), (std::vector<std::size_t>{48, 8}));
  for (std::size_t i = 0; i < e1.numel(); ++i) {
    EXPECT_EQ(e1[i], e2[i]);  // eval-mode embedding is deterministic
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EmbedderContract,
                         ::testing::Values("autoencoder", "contrastive",
                                           "byol"));

TEST(Autoencoder, TrainingReducesReconstructionLoss) {
  const Tensor xs = small_bragg_set(64, 0.0, 3);
  embed::AutoencoderEmbedder ae(15, 8, 4);
  embed::EmbedTrainConfig one;
  one.epochs = 1;
  const double first = ae.fit(xs, one);
  embed::EmbedTrainConfig more;
  more.epochs = 6;
  const double later = ae.fit(xs, more);
  EXPECT_LT(later, first);
}

TEST(Contrastive, TrainingReducesNtXent) {
  const Tensor xs = small_bragg_set(48, 0.0, 5);
  embed::ContrastiveEmbedder simclr(15, 8, 6);
  embed::EmbedTrainConfig one;
  one.epochs = 1;
  one.batch_size = 16;
  const double first = simclr.fit(xs, one);
  embed::EmbedTrainConfig more;
  more.epochs = 6;
  more.batch_size = 16;
  const double later = simclr.fit(xs, more);
  EXPECT_LT(later, first);
}

TEST(Byol, TargetNetworkTracksOnlineViaEma) {
  const Tensor xs = small_bragg_set(32, 0.0, 7);
  embed::ByolEmbedder byol(15, 8, 8);
  embed::EmbedTrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  const double loss = byol.fit(xs, config);
  // BYOL regression loss is bounded in [0, 4] per pair.
  EXPECT_GE(loss, 0.0);
  EXPECT_LE(loss, 4.0);
}

TEST(Embedding, SeparatesDistinctRegimes) {
  // Two regimes far apart in generative-parameter space should land in
  // separable regions of embedding space: mean within-regime distance must
  // be smaller than the between-regime distance of the centroids.
  const Tensor a = small_bragg_set(40, 0.0, 10);
  const Tensor b = small_bragg_set(40, 0.9, 11);

  Tensor both({80, 1, 15, 15});
  std::copy_n(a.data(), a.numel(), both.data());
  std::copy_n(b.data(), b.numel(), both.data() + a.numel());

  auto embedder = embed::make_embedder("byol", 15, 8, 12);
  embed::EmbedTrainConfig config;
  config.epochs = 6;
  config.batch_size = 20;
  embedder->fit(both, config);
  const Tensor e = embedder->embed(both);

  std::vector<double> ca(8, 0.0), cb(8, 0.0);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      ca[j] += e.at(i, j) / 40.0;
      cb[j] += e.at(40 + i, j) / 40.0;
    }
  }
  double between = 0.0;
  for (std::size_t j = 0; j < 8; ++j) {
    between += (ca[j] - cb[j]) * (ca[j] - cb[j]);
  }
  between = std::sqrt(between);

  double within = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    double da = 0.0, db = 0.0;
    for (std::size_t j = 0; j < 8; ++j) {
      da += (e.at(i, j) - ca[j]) * (e.at(i, j) - ca[j]);
      db += (e.at(40 + i, j) - cb[j]) * (e.at(40 + i, j) - cb[j]);
    }
    within += (std::sqrt(da) + std::sqrt(db)) / 80.0;
  }
  EXPECT_GT(between, within)
      << "embedding does not separate the two regimes";
}

TEST(EmbedderFactoryDeathTest, UnknownAlgorithmAborts) {
  EXPECT_DEATH(embed::make_embedder("pca", 15, 8, 1),
               "unknown embedding algorithm");
}

}  // namespace
}  // namespace fairdms
