// Locking-discipline suite: the util::Mutex / util::SharedMutex capability
// wrappers, their RAII locks, condition-variable interop through
// MutexLock::native(), and the Debug-only lock-rank checker (including the
// abort on out-of-order acquisition). Also pins the two lock-contract
// regressions the thread-safety migration uncovered: the DataLoader gauge
// reads and NfsStore metadata lifetime under concurrent invalidation.
// Carries the `service` ctest label so it runs under the ThreadSanitizer CI
// job and the Debug clang-analysis job (rank checker live).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "store/dataloader.hpp"
#include "store/nfs.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms {
namespace {

// ---------------------------------------------------------------------------
// Wrapper basics
// ---------------------------------------------------------------------------

/// A guarded counter exactly as production classes declare one: the test
/// compiles under -Wthread-safety (the clang-analysis CI job builds the
/// tests too), so it doubles as a positive check that correctly-locked
/// access passes the analysis.
class GuardedCounter {
 public:
  void add(int delta) EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    value_ += delta;
  }
  [[nodiscard]] int value() const EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable util::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

TEST(MutexWrappers, MutexLockSerializesWriters) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIters);
}

TEST(MutexWrappers, TryLockReportsContention) {
  util::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread prober([&] {
    // Held by the main thread: must fail without blocking.
    EXPECT_FALSE(mu.try_lock());
  });
  prober.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexWrappers, SharedMutexAdmitsConcurrentReaders) {
  util::SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> threads;
  threads.reserve(2);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      util::ReaderLock lock(mu);
      readers_inside.fetch_add(1);
      // Spin briefly for the other reader; both holding the shared lock at
      // once is the property under test.
      for (int i = 0; i < 100000 && readers_inside.load() < 2; ++i) {
        std::this_thread::yield();
      }
      if (readers_inside.load() == 2) both_seen.store(true);
      readers_inside.fetch_sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(both_seen.load());
}

TEST(MutexWrappers, SharedMutexWriterExcludesReaders) {
  util::SharedMutex mu;
  int value GUARDED_BY(mu) = 0;
  constexpr int kIters = 1000;
  std::thread writer([&] {
    for (int i = 0; i < kIters; ++i) {
      util::MutexLock lock(mu);
      ++value;
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < kIters; ++i) {
      util::ReaderLock lock(mu);
      const int snapshot = value;
      EXPECT_GE(snapshot, 0);
      EXPECT_LE(snapshot, kIters);
    }
  });
  writer.join();
  reader.join();
  util::ReaderLock lock(mu);
  EXPECT_EQ(value, kIters);
}

// ---------------------------------------------------------------------------
// Condition-variable interop (MutexLock::native)
// ---------------------------------------------------------------------------

TEST(MutexWrappers, ConditionVariableInteropThroughNative) {
  util::Mutex mu;
  std::condition_variable cv;
  std::deque<int> queue GUARDED_BY(mu);
  bool done GUARDED_BY(mu) = false;
  constexpr int kItems = 500;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      util::MutexLock lock(mu);
      queue.push_back(i);
      cv.notify_one();
    }
    util::MutexLock lock(mu);
    done = true;
    cv.notify_one();
  });

  int next_expected = 0;
  for (;;) {
    util::MutexLock lock(mu);
    while (queue.empty() && !done) cv.wait(lock.native());
    if (queue.empty()) break;  // done and drained
    EXPECT_EQ(queue.front(), next_expected);
    queue.pop_front();
    ++next_expected;
  }
  producer.join();
  EXPECT_EQ(next_expected, kItems);
}

// ---------------------------------------------------------------------------
// Lock-rank checker
// ---------------------------------------------------------------------------

TEST(LockRank, InOrderNestingIsAccepted) {
  util::Mutex outer{util::LockRank::kStoreMap};
  util::Mutex inner{util::LockRank::kStoreShard};
  util::MutexLock outer_lock(outer);
  util::MutexLock inner_lock(inner);
#ifndef NDEBUG
  EXPECT_EQ(util::lock_rank_detail::held_ranks(), 2u);
#endif
}

TEST(LockRank, RanksAreReleasedOnUnlock) {
  util::Mutex outer{util::LockRank::kStoreMap};
  util::Mutex inner{util::LockRank::kStoreShard};
  {
    util::MutexLock outer_lock(outer);
    { util::MutexLock inner_lock(inner); }
  }
  // After releasing the higher rank, re-acquiring it must still pass.
  util::MutexLock outer_again(outer);
  util::MutexLock inner_again(inner);
#ifndef NDEBUG
  EXPECT_EQ(util::lock_rank_detail::held_ranks(), 2u);
#endif
}

TEST(LockRank, UnrankedMutexesAreExemptFromOrdering) {
  util::Mutex ranked{util::LockRank::kLogging};  // innermost rank
  util::Mutex adhoc;                             // kUnranked
  util::MutexLock ranked_lock(ranked);
  // Acquiring an unranked mutex inside the innermost rank must not abort.
  util::MutexLock adhoc_lock(adhoc);
#ifndef NDEBUG
  EXPECT_EQ(util::lock_rank_detail::held_ranks(), 1u);
#endif
}

TEST(LockRank, TryLockMayAcquireAgainstTheOrder) {
  util::Mutex outer{util::LockRank::kStoreShard};
  util::Mutex inner{util::LockRank::kStoreMap};
  util::MutexLock outer_lock(outer);
  // try-then-back-off is a legitimate against-the-grain acquisition: an
  // uncontended try_lock succeeds with no deadlock risk and no abort.
  const bool acquired = inner.try_lock();
  EXPECT_TRUE(acquired);
  if (acquired) inner.unlock();
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // Two *distinct* mutexes: under NDEBUG the statement executes for real
  // (EXPECT_DEBUG_DEATH runs it un-forked there), so it must be
  // deadlock-free, just order-violating.
  util::Mutex outer{util::LockRank::kStoreShard};
  util::Mutex inner{util::LockRank::kStoreMap};
  EXPECT_DEBUG_DEATH(
      {
        outer.lock();
        inner.lock();  // rank 30 while holding rank 40: violation
        inner.unlock();
        outer.unlock();
      },
      "LOCK-RANK VIOLATION");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  util::Mutex a{util::LockRank::kWorkflow};
  util::Mutex b{util::LockRank::kWorkflow};
  EXPECT_DEBUG_DEATH(
      {
        a.lock();
        b.lock();  // equal rank: ambiguous order, also a violation
        b.unlock();
        a.unlock();
      },
      "LOCK-RANK VIOLATION");
}

// ---------------------------------------------------------------------------
// Regression pins for the lock-contract violations the migration uncovered
// ---------------------------------------------------------------------------

/// Pre-migration, stall_seconds()/fetch_seconds()/batches_delivered() read
/// their fields without the loader mutex (and fetch time lived in an
/// unguarded per-worker vector), so polling them mid-epoch was a data race.
/// They now lock; this runs a poller against a live epoch and relies on the
/// TSan CI job to prove the absence of the race.
TEST(DataLoaderGaugeRegression, GaugesAreReadableMidEpoch) {
  constexpr std::size_t kSamples = 512;
  nn::Batchset data;
  data.xs = nn::Tensor({kSamples, 4});
  data.ys = nn::Tensor({kSamples, 1});
  store::InMemoryDataset ds(data);
  store::LoaderConfig config;
  config.batch_size = 8;
  config.workers = 4;
  config.prefetch_batches = 2;
  store::DataLoader loader(ds, config);
  loader.start_epoch(0);

  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    while (!stop_polling.load()) {
      EXPECT_GE(loader.stall_seconds(), 0.0);
      EXPECT_GE(loader.fetch_seconds(), 0.0);
      EXPECT_LE(loader.batches_delivered(), loader.batches_per_epoch());
      std::this_thread::yield();
    }
  });
  std::size_t batches = 0;
  while (loader.next()) ++batches;
  stop_polling.store(true);
  poller.join();
  EXPECT_EQ(batches, loader.batches_per_epoch());
  EXPECT_EQ(loader.batches_delivered(), batches);
  EXPECT_GT(loader.fetch_seconds(), 0.0);
}

/// Pre-migration, NfsStore::read_meta returned a const reference into the
/// mutex-guarded metadata cache; a concurrent write_dataset erases that
/// entry, leaving readers with a dangling reference (use-after-free under
/// ASan/TSan). read_meta now returns by value; this hammers the reader path
/// against repeated invalidation.
TEST(NfsMetaRegression, MetadataSurvivesConcurrentInvalidation) {
  const std::string root =
      ::testing::TempDir() + "/nfs_meta_regression";
  store::NfsStore nfs(root, store::RemoteLinkConfig{});
  nn::Batchset data;
  data.xs = nn::Tensor({16, 3});
  data.ys = nn::Tensor({16, 1});
  nfs.write_dataset("ds", data);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    // Same shapes every time, so readers always observe valid metadata;
    // each write_dataset erases the cached entry first.
    while (!stop.load()) nfs.write_dataset("ds", data);
  });
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(nfs.sample_count("ds"), 16u);
    EXPECT_EQ(nfs.x_shape("ds"), (std::vector<std::size_t>{3}));
    EXPECT_EQ(nfs.y_shape("ds"), (std::vector<std::size_t>{1}));
  }
  stop.store(true);
  invalidator.join();
}

}  // namespace
}  // namespace fairdms
