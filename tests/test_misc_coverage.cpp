// Coverage for corner paths not exercised elsewhere: loader/worker
// invariance of delivered content, un-indexed range queries, diamond flow
// DAGs, remote-mode store accounting, elbow degenerate ranges, and pooling /
// upsampling shape variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "cluster/kmeans.hpp"
#include "nn/pool.hpp"
#include "nn/upsample.hpp"
#include "store/dataloader.hpp"
#include "util/rng.hpp"
#include "workflow/flow.hpp"

namespace fairdms {
namespace {

using tensor::Tensor;

TEST(DataLoader, DeliveredContentIndependentOfWorkerCount) {
  nn::Batchset data;
  data.xs = Tensor({40, 2});
  data.ys = Tensor({40, 1});
  for (std::size_t i = 0; i < 40; ++i) {
    data.xs.at(i, 0) = static_cast<float>(i);
    data.ys.at(i, 0) = static_cast<float>(i);
  }
  store::InMemoryDataset ds(data);

  auto delivered_set = [&](std::size_t workers) {
    store::LoaderConfig config;
    config.batch_size = 7;
    config.workers = workers;
    config.seed = 99;
    store::DataLoader loader(ds, config);
    loader.start_epoch(4);
    std::multiset<int> seen;
    while (auto batch = loader.next()) {
      for (std::size_t i = 0; i < batch->xs.dim(0); ++i) {
        seen.insert(static_cast<int>(batch->xs.at(i, 0)));
      }
    }
    return seen;
  };
  // Batch *content over the epoch* is a pure function of (seed, epoch),
  // regardless of how many workers raced to produce it.
  EXPECT_EQ(delivered_set(1), delivered_set(4));
}

TEST(Collection, RangeQueryWithoutIndexMatchesIndexed) {
  store::DocStore db;
  auto& plain = db.collection("plain");
  auto& indexed = db.collection("indexed");
  indexed.create_index("t");
  for (int i = 0; i < 30; ++i) {
    store::Object doc;
    doc["t"] = store::Value(static_cast<std::int64_t>(i % 10));
    store::Object copy = doc;
    plain.insert_one(store::Value(std::move(doc)));
    indexed.insert_one(store::Value(std::move(copy)));
  }
  const auto a = plain.find_range("t", store::Value(std::int64_t{3}),
                                  store::Value(std::int64_t{7}));
  const auto b = indexed.find_range("t", store::Value(std::int64_t{3}),
                                    store::Value(std::int64_t{7}));
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 12u);  // t in {3,4,5,6} x 3 each
}

TEST(DocStore, RemoteModeChargesLink) {
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 1e-6,
                                             .bandwidth_bytes_per_s = 1e12});
  EXPECT_TRUE(db.is_remote());
  auto& col = db.collection("c");
  col.insert_one(store::Value(store::Object{}));
  EXPECT_GT(db.link().requests(), 0u);
  EXPECT_GT(db.link().bytes_moved(), 0u);
}

TEST(Flow, DiamondDependenciesJoinOnce) {
  std::atomic<int> joins{0};
  std::atomic<bool> left_done{false}, right_done{false};
  workflow::Flow flow("diamond");
  flow.add_task("src", [] {});
  flow.add_task("left", [&] { left_done = true; }, {"src"});
  flow.add_task("right", [&] { right_done = true; }, {"src"});
  flow.add_task(
      "join",
      [&] {
        EXPECT_TRUE(left_done.load());
        EXPECT_TRUE(right_done.load());
        joins.fetch_add(1);
      },
      {"left", "right"});
  const auto report = flow.run();
  EXPECT_EQ(joins.load(), 1);
  EXPECT_EQ(report.tasks.size(), 4u);
}

TEST(Elbow, DegenerateRangeReturnsKMin) {
  util::Rng rng(5);
  const Tensor xs = Tensor::randn({20, 3}, rng);
  const auto result = cluster::elbow_k(xs, 3, 3, 1);
  EXPECT_EQ(result.best_k, 3u);
  EXPECT_EQ(result.wss_curve.size(), 1u);
}

TEST(Pool, StridedAvgPoolShapesAndValues) {
  Tensor x({1, 1, 5, 5});
  for (std::size_t i = 0; i < 25; ++i) x[i] = static_cast<float>(i);
  nn::AvgPool2d pool(3, /*stride=*/2);
  const Tensor y = pool.forward(x, nn::Mode::kEval);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  // Window at (0,0): mean of rows 0-2, cols 0-2 = mean{0..2,5..7,10..12}=6.
  EXPECT_FLOAT_EQ(y[0], 6.0f);
}

TEST(Upsample, FactorThreeRoundTripGradient) {
  util::Rng rng(6);
  nn::Upsample2d up(3);
  const Tensor x = Tensor::randn({2, 1, 3, 3}, rng);
  const Tensor y = up.forward(x, nn::Mode::kTrain);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{2, 1, 9, 9}));
  // Backward of all-ones gradient sums the 3x3 replication per cell.
  const Tensor gx = up.backward(Tensor::full(y.shape(), 1.0f));
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    EXPECT_FLOAT_EQ(gx[i], 9.0f);
  }
}

TEST(KMeans, PdfOfDisjointQueryDataStillSumsToOne) {
  util::Rng rng(7);
  const Tensor train = Tensor::randn({50, 4}, rng);
  cluster::KMeansConfig config;
  config.k = 5;
  const auto model = cluster::kmeans_fit(train, config);
  // Query data far outside the training support.
  Tensor far = Tensor::randn({20, 4}, rng);
  far.scale_(100.0f);
  const auto pdf = model.cluster_pdf(far);
  double sum = 0.0;
  for (double v : pdf) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace fairdms
