// fairMS tests: JSD identities and bounds (property suite), model Zoo CRUD,
// manager ranking order, distance-threshold fallback, and re-indexing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fairms/jsd.hpp"
#include "fairms/zoo.hpp"
#include "nn/linear.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using fairms::jensen_shannon_divergence;

TEST(Jsd, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_NEAR(jensen_shannon_divergence(p, p), 0.0, 1e-12);
}

TEST(Jsd, DisjointSupportIsOne) {
  const std::vector<double> p{1.0, 0.0};
  const std::vector<double> q{0.0, 1.0};
  EXPECT_NEAR(jensen_shannon_divergence(p, q), 1.0, 1e-12);
}

TEST(Jsd, SymmetricAndNormalizing) {
  const std::vector<double> p{2.0, 6.0, 2.0};   // unnormalized
  const std::vector<double> q{0.5, 0.25, 0.25};
  EXPECT_NEAR(jensen_shannon_divergence(p, q),
              jensen_shannon_divergence(q, p), 1e-12);
  const std::vector<double> p_norm{0.2, 0.6, 0.2};
  EXPECT_NEAR(jensen_shannon_divergence(p, q),
              jensen_shannon_divergence(p_norm, q), 1e-12);
}

TEST(Jsd, MonotoneInDivergenceForInterpolation) {
  // Sliding q from p toward disjoint support increases JSD monotonically.
  const std::vector<double> p{0.7, 0.3, 0.0};
  const std::vector<double> far{0.0, 0.3, 0.7};
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.25) {
    std::vector<double> q(3);
    for (std::size_t i = 0; i < 3; ++i) {
      q[i] = (1.0 - t) * p[i] + t * far[i];
    }
    const double d = jensen_shannon_divergence(p, q);
    EXPECT_GT(d, prev - 1e-12);
    prev = d;
  }
}

// Property: bounds hold for random PDFs of various widths.
class JsdBounds : public ::testing::TestWithParam<int> {};

TEST_P(JsdBounds, AlwaysInUnitInterval) {
  const auto k = static_cast<std::size_t>(GetParam());
  util::Rng rng(k * 977);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p(k), q(k);
    for (std::size_t i = 0; i < k; ++i) {
      p[i] = rng.uniform();
      q[i] = rng.uniform();
    }
    p[rng.uniform_index(k)] += 0.5;  // ensure nonzero mass
    q[rng.uniform_index(k)] += 0.5;
    const double d = jensen_shannon_divergence(p, q);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, JsdBounds, ::testing::Values(2, 5, 15, 64));

TEST(Kl, SelfDivergenceIsZeroAndAsymmetry) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.9, 0.1};
  EXPECT_NEAR(fairms::kl_divergence(p, p), 0.0, 1e-12);
  EXPECT_NE(fairms::kl_divergence(p, q), fairms::kl_divergence(q, p));
}

std::vector<std::uint8_t> dummy_params(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 2, rng);
  return nn::save_parameters(net);
}

TEST(ModelZoo, PublishFetchRoundTrip) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  const std::vector<double> pdf{0.1, 0.9};
  const auto id = zoo.publish("braggnn", "scan_5", pdf, dummy_params(1));
  EXPECT_EQ(zoo.size(), 1u);
  const auto rec = zoo.fetch(id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->architecture, "braggnn");
  EXPECT_EQ(rec->dataset_id, "scan_5");
  EXPECT_EQ(rec->train_pdf, pdf);
  EXPECT_FALSE(rec->parameters.empty());
  EXPECT_FALSE(zoo.fetch(9999).has_value());
}

TEST(ModelZoo, ModelsOfFiltersByArchitecture) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  zoo.publish("braggnn", "a", {1.0}, dummy_params(1));
  zoo.publish("cookienetae", "b", {1.0}, dummy_params(2));
  zoo.publish("braggnn", "c", {1.0}, dummy_params(3));
  EXPECT_EQ(zoo.models_of("braggnn").size(), 2u);
  EXPECT_EQ(zoo.models_of("cookienetae").size(), 1u);
  EXPECT_TRUE(zoo.models_of("tomonet").empty());
}

TEST(ModelZoo, ReindexUpdatesPdf) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  const auto id = zoo.publish("braggnn", "a", {0.5, 0.5}, dummy_params(1));
  EXPECT_TRUE(zoo.reindex(id, {0.25, 0.25, 0.5}));
  EXPECT_EQ(zoo.fetch(id)->train_pdf.size(), 3u);
  EXPECT_FALSE(zoo.reindex(12345, {1.0}));
}

TEST(ModelManager, RanksByDistanceAscending) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  const std::vector<double> input{0.8, 0.2, 0.0};
  const auto near_id =
      zoo.publish("braggnn", "near", {0.75, 0.25, 0.0}, dummy_params(1));
  const auto mid_id =
      zoo.publish("braggnn", "mid", {0.4, 0.4, 0.2}, dummy_params(2));
  const auto far_id =
      zoo.publish("braggnn", "far", {0.0, 0.1, 0.9}, dummy_params(3));

  fairms::ModelManager manager(zoo, 1.0);
  const auto ranked = manager.rank("braggnn", input);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].model_id, near_id);
  EXPECT_EQ(ranked[1].model_id, mid_id);
  EXPECT_EQ(ranked[2].model_id, far_id);
  EXPECT_LT(ranked[0].distance, ranked[1].distance);
  EXPECT_LT(ranked[1].distance, ranked[2].distance);
}

TEST(ModelManager, ThresholdDeclinesDistantModels) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  zoo.publish("braggnn", "far", {0.0, 1.0}, dummy_params(1));
  fairms::ModelManager strict(zoo, 0.05);
  EXPECT_FALSE(strict.recommend("braggnn", std::vector<double>{1.0, 0.0})
                   .has_value());
  fairms::ModelManager lax(zoo, 1.0);
  EXPECT_TRUE(lax.recommend("braggnn", std::vector<double>{1.0, 0.0})
                  .has_value());
}

TEST(ModelManager, SkipsStaleIndexWidths) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  zoo.publish("braggnn", "old_clustering", {0.5, 0.5}, dummy_params(1));
  zoo.publish("braggnn", "new_clustering", {0.3, 0.3, 0.4}, dummy_params(2));
  fairms::ModelManager manager(zoo, 1.0);
  const auto ranked =
      manager.rank("braggnn", std::vector<double>{0.2, 0.2, 0.6});
  ASSERT_EQ(ranked.size(), 1u);  // the 2-wide record is skipped
}

TEST(ModelManager, EmptyZooYieldsNoRecommendation) {
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  fairms::ModelManager manager(zoo, 0.5);
  EXPECT_FALSE(
      manager.recommend("braggnn", std::vector<double>{1.0}).has_value());
}

}  // namespace
}  // namespace fairdms
