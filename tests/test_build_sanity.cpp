// Link-sanity suite: touches one exported symbol from each of the 14 library
// modules so a partial link (a module dropped from FAIRDMS_SOURCES, an ODR
// mishap, a dead archive member) fails this suite immediately instead of
// surfacing as a confusing downstream error.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/kmeans.hpp"
#include "core/version.hpp"
#include "datagen/pseudo_voigt.hpp"
#include "embed/augment.hpp"
#include "fairds/pixel_baseline.hpp"
#include "fairds/reuse_index.hpp"
#include "fairms/jsd.hpp"
#include "labeling/frame_label.hpp"
#include "models/models.hpp"
#include "nn/activations.hpp"
#include "service/data_service.hpp"
#include "store/codec.hpp"
#include "tensor/tensor.hpp"
#include "util/stats.hpp"
#include "workflow/flow.hpp"

namespace {

using fairdms::tensor::Tensor;

TEST(BuildSanity, VersionMatchesCMakeProject) {
  EXPECT_STREQ(fairdms::core::Version(), FAIRDMS_VERSION_STRING);
}

TEST(BuildSanity, TensorModuleLinks) {
  const Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6u);
}

TEST(BuildSanity, UtilModuleLinks) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fairdms::util::mean(xs), 2.0);
}

TEST(BuildSanity, ClusterModuleLinks) {
  fairdms::util::Rng rng(7);
  const Tensor xs = Tensor::rand_uniform({8, 2}, rng, 0.0f, 1.0f);
  fairdms::cluster::KMeansConfig config;
  config.k = 2;
  const auto model = fairdms::cluster::kmeans_fit(xs, config);
  EXPECT_EQ(model.centroids().dim(0), 2u);
}

TEST(BuildSanity, DatagenModuleLinks) {
  fairdms::datagen::PeakParams p;
  EXPECT_GT(fairdms::datagen::pseudo_voigt(p, p.center_x, p.center_y), 0.0);
}

TEST(BuildSanity, EmbedModuleLinks) {
  const std::vector<float> image = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto rotated = fairdms::embed::rotate90(image, 2, 1);
  EXPECT_EQ(rotated.size(), image.size());
}

TEST(BuildSanity, FairdsModuleLinks) {
  fairdms::fairds::PixelNnBaseline baseline(4);
  EXPECT_EQ(baseline.stored_count(), 0u);
  fairdms::fairds::ReuseIndex index(4);
  EXPECT_EQ(index.size(), 0u);
}

TEST(BuildSanity, FairmsModuleLinks) {
  const std::vector<double> p = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(fairdms::fairms::jensen_shannon_divergence(p, p), 0.0);
}

TEST(BuildSanity, LabelingModuleLinks) {
  const std::vector<float> blank(32 * 32, 0.0f);
  EXPECT_TRUE(fairdms::labeling::label_frame(blank, 32).empty());
}

TEST(BuildSanity, ModelsModuleLinks) {
  const auto model = fairdms::models::make_braggnn(/*seed=*/1);
  EXPECT_FALSE(model.architecture.empty());
}

TEST(BuildSanity, NnModuleLinks) {
  fairdms::nn::ReLU relu;
  const Tensor x = Tensor::full({1, 2}, -1.0f);
  const Tensor y = relu.forward(x, fairdms::nn::Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
}

TEST(BuildSanity, ServiceModuleLinks) {
  fairdms::store::DocStore db;
  fairdms::fairds::FairDS ds({}, db);
  fairdms::service::DataService service(
      ds, fairdms::service::DataServiceConfig{.workers = 1});
  EXPECT_EQ(service.worker_count(), 1u);
  EXPECT_EQ(service.stats().label_requests, 0u);
}

TEST(BuildSanity, StoreModuleLinks) {
  const auto codec = fairdms::store::make_codec("raw");
  ASSERT_NE(codec, nullptr);
}

TEST(BuildSanity, WorkflowModuleLinks) {
  fairdms::workflow::Flow flow("sanity");
  bool ran = false;
  flow.add_task("noop", [&ran] { ran = true; });
  flow.run();
  EXPECT_TRUE(ran);
}

}  // namespace
