// Model-plane cache tests (`service` label — runs under the TSan CI job):
// raw ModelCache LRU/budget/floor mechanics, zoo revision monotonicity
// (including resume-after-restart), zero-link-traffic repeat foundation
// loads, cache invalidation after attach_parameters/reindex, a randomized
// cached-parallel vs uncached-sequential parity suite over rank / recommend
// / fetch (results, ordering, and charged bytes), a concurrent
// hit/miss/evict stress drive, and regression tests for the three model-
// plane bugfixes (reindex mass validation, rank surviving malformed stored
// PDFs, attach_parameters rejecting empty blobs) plus the single-round-trip
// models_of rewrite.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fairms/jsd.hpp"
#include "fairms/model_cache.hpp"
#include "fairms/zoo.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

using fairms::CachedModel;
using fairms::ModelCache;
using fairms::ModelZoo;

ModelCache::RecordPtr make_record(store::DocId id, std::uint64_t revision,
                                  std::size_t blob_bytes) {
  auto record = std::make_shared<CachedModel>();
  record->id = id;
  record->revision = revision;
  record->architecture = "braggnn";
  record->dataset_id = "d" + std::to_string(id);
  record->train_pdf = {0.5, 0.5};
  record->parameters = std::make_shared<const std::vector<std::uint8_t>>(
      blob_bytes, static_cast<std::uint8_t>(id));
  return record;
}

std::vector<double> random_pdf(util::Rng& rng, std::size_t width) {
  std::vector<double> pdf(width);
  for (double& v : pdf) v = rng.uniform();
  pdf[rng.uniform_index(width)] += 0.5;  // guarantee positive mass
  return pdf;
}

std::vector<std::uint8_t> random_blob(util::Rng& rng, std::size_t bytes) {
  std::vector<std::uint8_t> blob(bytes);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return blob;
}

/// A store whose link *counts* requests/bytes (a local latency-0 store skips
/// the link entirely). Negligible simulated wire time, real counters — the
/// CountingLink harness of the byte-accounting pins below.
store::DocStore counting_db() {
  return store::DocStore(store::RemoteLinkConfig{
      .latency_seconds = 1e-9, .bandwidth_bytes_per_s = 1e12});
}

// --- raw ModelCache mechanics -----------------------------------------------

TEST(ModelCacheLru, BudgetEvictsLeastRecentlyUsed) {
  // Three ~1KB records against a budget that holds only two.
  ModelCache cache(2 * 1200);
  cache.put_record(make_record(1, 1, 1024));
  cache.put_record(make_record(2, 1, 1024));
  EXPECT_NE(cache.get_record(1), nullptr);  // 1 is now more recent than 2
  cache.put_record(make_record(3, 1, 1024));
  EXPECT_EQ(cache.get_record(2), nullptr);  // LRU victim
  EXPECT_NE(cache.get_record(1), nullptr);
  EXPECT_NE(cache.get_record(3), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.resident_bytes, 2048u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ModelCacheLru, ZeroBudgetDisablesCaching) {
  ModelCache cache(0);
  cache.put_record(make_record(1, 1, 16));
  cache.put_pdf(1, 1, std::make_shared<const std::vector<double>>(2, 0.5));
  EXPECT_EQ(cache.get_record(1), nullptr);
  EXPECT_EQ(cache.get_pdf(1, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(ModelCacheLru, OversizedEntryIsNotCachedAndEvictsNothing) {
  ModelCache cache(2048);
  cache.put_record(make_record(1, 1, 512));
  cache.put_record(make_record(2, 1, 1 << 20));  // larger than the budget
  EXPECT_EQ(cache.get_record(2), nullptr);
  EXPECT_NE(cache.get_record(1), nullptr);  // resident entry untouched
}

TEST(ModelCacheLru, RevisionFloorRejectsStalePuts) {
  ModelCache cache(1 << 20);
  cache.put_record(make_record(7, 3, 64));
  cache.invalidate_below(7, 5);
  EXPECT_EQ(cache.get_record(7), nullptr);  // rev 3 < floor 5: dropped
  cache.put_record(make_record(7, 4, 64));  // a racing reader's stale write
  EXPECT_EQ(cache.get_record(7), nullptr);
  cache.put_record(make_record(7, 5, 64));
  ASSERT_NE(cache.get_record(7), nullptr);
  EXPECT_EQ(cache.get_record(7)->revision, 5u);
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(ModelCacheLru, PdfHitRequiresMatchingRevision) {
  ModelCache cache(1 << 20);
  cache.put_pdf(4, 2, std::make_shared<const std::vector<double>>(3, 1.0 / 3));
  EXPECT_NE(cache.get_pdf(4, 2), nullptr);
  EXPECT_EQ(cache.get_pdf(4, 3), nullptr);  // stale entry erased on the spot
  EXPECT_EQ(cache.get_pdf(4, 2), nullptr);

  // A NEWER cached entry is a miss but is NOT evicted: a reader whose
  // store read raced a mutation must not destroy the writer's fresh
  // pre-warm.
  cache.put_pdf(5, 7, std::make_shared<const std::vector<double>>(3, 1.0 / 3));
  EXPECT_EQ(cache.get_pdf(5, 6), nullptr);
  EXPECT_NE(cache.get_pdf(5, 7), nullptr);
}

TEST(ModelCacheLru, AdmitsRecordMatchesPutRecordAdmission) {
  ModelCache cache(2048);
  // admits_record and put_record must agree at the boundary: if admits says
  // yes, the entry really lands; if it says no, a put is a no-op.
  const auto probe = [&](std::size_t blob_bytes) {
    auto record = make_record(1, 1, blob_bytes);
    const bool admits = cache.admits_record(
        blob_bytes, record->train_pdf.size(), record->architecture.size(),
        record->dataset_id.size());
    cache.put_record(std::move(record));
    const bool cached = cache.get_record(1) != nullptr;
    EXPECT_EQ(admits, cached) << "blob_bytes " << blob_bytes;
    cache.clear();
  };
  probe(256);   // comfortably fits
  probe(1950);  // blob < budget but entry overhead pushes it over
  probe(4096);  // clearly over
}

TEST(ModelCacheLru, SetBudgetSheddesDownToNewLimit) {
  ModelCache cache(1 << 20);
  for (store::DocId id = 1; id <= 8; ++id) {
    cache.put_record(make_record(id, 1, 1024));
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  cache.set_budget(2 * 1200);
  EXPECT_LE(cache.stats().entries, 2u);
  EXPECT_LE(cache.stats().resident_bytes, cache.budget());
}

// --- zoo revisions ----------------------------------------------------------

TEST(ZooRevision, MonotonicAcrossMutationsAndRestart) {
  store::DocStore db;
  store::DocId id = 0;
  {
    ModelZoo zoo(db);
    EXPECT_EQ(zoo.revision(), 0u);
    id = zoo.publish("braggnn", "a", {0.5, 0.5}, {1, 2, 3});
    const auto after_publish = zoo.fetch(id)->revision;
    EXPECT_GE(after_publish, 1u);

    ASSERT_TRUE(zoo.attach_parameters(id, {4, 5, 6}));
    const auto after_attach = zoo.fetch(id)->revision;
    EXPECT_GT(after_attach, after_publish);

    ASSERT_TRUE(zoo.reindex(id, {0.25, 0.75}));
    const auto after_reindex = zoo.fetch(id)->revision;
    EXPECT_GT(after_reindex, after_attach);
    EXPECT_GE(zoo.revision(), after_reindex);
  }
  // A fresh zoo over the same store resumes past every stored revision, so
  // (id, revision) cache keys never repeat across restarts.
  ModelZoo reopened(db);
  EXPECT_GE(reopened.revision(), reopened.fetch(id)->revision);
  const auto next = reopened.publish("braggnn", "b", {1.0}, {9});
  EXPECT_GT(reopened.fetch(next)->revision, reopened.fetch(id)->revision);
}

// --- cached fetch path ------------------------------------------------------

TEST(ZooCache, RepeatFoundationLoadCostsZeroLinkTraffic) {
  store::DocStore db = counting_db();
  ModelZoo zoo(db);
  util::Rng rng(19);
  const auto id =
      zoo.publish("braggnn", "scan", {0.3, 0.7}, random_blob(rng, 4096));
  const auto reference = zoo.fetch(id);

  // publish() pre-warms the cache: even the *first* cached load after a
  // publish is free.
  auto before_req = db.link().requests();
  auto before_bytes = db.link().bytes_moved();
  const auto warm = zoo.fetch_cached(id);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(db.link().requests() - before_req, 0u);
  EXPECT_EQ(db.link().bytes_moved() - before_bytes, 0u);

  // Cold (post-clear) load pays once; the repeat is free again.
  zoo.cache().clear();
  before_req = db.link().requests();
  before_bytes = db.link().bytes_moved();
  const auto cold = zoo.fetch_cached(id);
  ASSERT_NE(cold, nullptr);
  EXPECT_GT(db.link().requests() - before_req, 0u);
  EXPECT_GT(db.link().bytes_moved() - before_bytes, 0u);

  before_req = db.link().requests();
  before_bytes = db.link().bytes_moved();
  const auto repeat = zoo.fetch_cached(id);
  ASSERT_NE(repeat, nullptr);
  EXPECT_EQ(db.link().requests() - before_req, 0u);
  EXPECT_EQ(db.link().bytes_moved() - before_bytes, 0u);

  // All three answers match the uncached read exactly.
  for (const auto& cached : {warm, cold, repeat}) {
    EXPECT_EQ(cached->architecture, reference->architecture);
    EXPECT_EQ(cached->dataset_id, reference->dataset_id);
    EXPECT_EQ(cached->train_pdf, reference->train_pdf);
    EXPECT_EQ(*cached->parameters, reference->parameters);
    EXPECT_EQ(cached->revision, reference->revision);
  }
  EXPECT_EQ(zoo.fetch_cached(999999), nullptr);
}

TEST(ZooCache, InvalidatedAfterAttachParametersAndReindex) {
  store::DocStore db;
  ModelZoo zoo(db);
  const auto id = zoo.publish("braggnn", "d", {0.5, 0.5}, {1, 2, 3});
  ASSERT_NE(zoo.fetch_cached(id), nullptr);

  ASSERT_TRUE(zoo.attach_parameters(id, {7, 8}));
  const auto after_attach = zoo.fetch_cached(id);
  ASSERT_NE(after_attach, nullptr);
  EXPECT_EQ(*after_attach->parameters, (std::vector<std::uint8_t>{7, 8}));

  ASSERT_TRUE(zoo.reindex(id, {0.2, 0.8}));
  const auto after_reindex = zoo.fetch_cached(id);
  ASSERT_NE(after_reindex, nullptr);
  EXPECT_EQ(after_reindex->train_pdf, (std::vector<double>{0.2, 0.8}));
  EXPECT_EQ(*after_reindex->parameters, (std::vector<std::uint8_t>{7, 8}));
  EXPECT_GT(after_reindex->revision, after_attach->revision);
}

TEST(ZooCache, WarmRankTransfersNoPdfPayload) {
  store::DocStore db = counting_db();
  ModelZoo zoo(db);
  util::Rng rng(411);
  constexpr std::size_t kModels = 48;
  constexpr std::size_t kWidth = 16;
  for (std::size_t i = 0; i < kModels; ++i) {
    zoo.publish("braggnn", "m" + std::to_string(i), random_pdf(rng, kWidth),
                random_blob(rng, 64));
  }
  fairms::ModelManager manager(zoo, 1.0);
  const auto query = random_pdf(rng, kWidth);

  zoo.cache().clear();
  const auto cold_before = db.link().bytes_moved();
  const auto cold = manager.rank("braggnn", query);
  const auto cold_bytes = db.link().bytes_moved() - cold_before;

  const auto warm_before = db.link().bytes_moved();
  const auto warm = manager.rank("braggnn", query);
  const auto warm_bytes = db.link().bytes_moved() - warm_before;

  ASSERT_EQ(cold.size(), kModels);
  ASSERT_EQ(warm.size(), kModels);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].model_id, warm[i].model_id);
    EXPECT_EQ(cold[i].distance, warm[i].distance);
  }
  // The cold call moved every PDF; the warm call moved scalars only.
  EXPECT_LT(warm_bytes, cold_bytes);
  EXPECT_LT(warm_bytes, kModels * kWidth * sizeof(double));
}

// --- randomized cached/parallel vs uncached/sequential parity ---------------

TEST(RankParity, RandomizedCachedParallelMatchesUncachedSequential) {
  store::DocStore db = counting_db();
  // Writer zoo: cached, parallel ranking forced on every call. Reference
  // zoo: cache disabled (budget 0), strictly sequential ranking, reading
  // the same store. Mutations go through the writer only, so the reference
  // is always store-fresh.
  ModelZoo cached_zoo(db);
  ModelZoo reference_zoo(db, /*cache_bytes=*/0);
  fairms::ModelManager cached_manager(cached_zoo, 1.0,
                                      /*parallel_rank_threshold=*/1);
  fairms::ModelManager reference_manager(
      reference_zoo, 1.0,
      /*parallel_rank_threshold=*/std::numeric_limits<std::size_t>::max());

  util::Rng rng(2024);
  const std::vector<std::string> archs = {"braggnn", "cookienetae"};
  constexpr std::size_t kWidth = 6;
  std::vector<store::DocId> ids;

  const auto check_parity = [&] {
    // fetch parity over every record.
    for (const auto id : ids) {
      const auto cached = cached_zoo.fetch_cached(id);
      const auto reference = reference_zoo.fetch(id);
      ASSERT_TRUE(cached != nullptr && reference.has_value());
      EXPECT_EQ(cached->architecture, reference->architecture);
      EXPECT_EQ(cached->train_pdf, reference->train_pdf);
      EXPECT_EQ(*cached->parameters, reference->parameters);
      EXPECT_EQ(cached->revision, reference->revision);
    }
    // rank/recommend parity for random queries against both architectures.
    for (int q = 0; q < 4; ++q) {
      const auto query = random_pdf(rng, kWidth);
      for (const auto& arch : archs) {
        const auto fast = cached_manager.rank(arch, query);
        const auto slow = reference_manager.rank(arch, query);
        ASSERT_EQ(fast.size(), slow.size()) << arch;
        for (std::size_t i = 0; i < fast.size(); ++i) {
          EXPECT_EQ(fast[i].model_id, slow[i].model_id) << arch << " #" << i;
          // Bitwise-equal distances: same arithmetic on both paths.
          EXPECT_EQ(fast[i].distance, slow[i].distance) << arch << " #" << i;
        }
        const auto pick_fast = cached_manager.recommend(arch, query);
        const auto pick_slow = reference_manager.recommend(arch, query);
        ASSERT_EQ(pick_fast.has_value(), pick_slow.has_value());
        if (pick_fast.has_value()) {
          EXPECT_EQ(pick_fast->model_id, pick_slow->model_id);
          EXPECT_EQ(pick_fast->distance, pick_slow->distance);
        }
      }
    }
  };

  for (int round = 0; round < 6; ++round) {
    // Publish a few models: mostly weighted, occasionally metadata-first.
    for (int i = 0; i < 8; ++i) {
      const bool weightless = rng.uniform() < 0.2;
      ids.push_back(cached_zoo.publish(
          archs[rng.uniform_index(archs.size())],
          "r" + std::to_string(round) + "_" + std::to_string(i),
          random_pdf(rng, kWidth),
          weightless ? std::vector<std::uint8_t>{}
                     : random_blob(rng, 32 + rng.uniform_index(96))));
    }
    // Mutate a few existing records.
    for (int m = 0; m < 4; ++m) {
      const auto id = ids[rng.uniform_index(ids.size())];
      if (rng.uniform() < 0.5) {
        EXPECT_TRUE(cached_zoo.attach_parameters(
            id, random_blob(rng, 16 + rng.uniform_index(64))));
      } else {
        EXPECT_TRUE(cached_zoo.reindex(id, random_pdf(rng, kWidth)));
      }
    }
    check_parity();
  }

  // The cached path must also be cheaper on the wire: a repeat rank through
  // the cache moves fewer bytes than the same rank uncached.
  const auto query = random_pdf(rng, kWidth);
  (void)cached_manager.rank("braggnn", query);  // ensure warm
  const auto cached_before = db.link().bytes_moved();
  (void)cached_manager.rank("braggnn", query);
  const auto cached_bytes = db.link().bytes_moved() - cached_before;
  const auto uncached_before = db.link().bytes_moved();
  (void)reference_manager.rank("braggnn", query);
  const auto uncached_bytes = db.link().bytes_moved() - uncached_before;
  EXPECT_LT(cached_bytes, uncached_bytes);
}

TEST(RankParity, ParallelAndSequentialPathsAreByteIdentical) {
  store::DocStore db;
  ModelZoo zoo(db);
  util::Rng rng(555);
  for (int i = 0; i < 200; ++i) {
    zoo.publish("braggnn", "m" + std::to_string(i), random_pdf(rng, 8),
                {1});
  }
  fairms::ModelManager parallel(zoo, 1.0, /*parallel_rank_threshold=*/1);
  fairms::ModelManager sequential(
      zoo, 1.0,
      /*parallel_rank_threshold=*/std::numeric_limits<std::size_t>::max());
  for (int q = 0; q < 8; ++q) {
    const auto query = random_pdf(rng, 8);
    const auto a = parallel.rank("braggnn", query);
    const auto b = sequential.rank("braggnn", query);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].model_id, b[i].model_id) << i;
      EXPECT_EQ(a[i].distance, b[i].distance) << i;
    }
  }
}

// --- concurrent stress (runs under the TSan CI job) -------------------------

TEST(ConcurrentStress, CachedReadsUnderMutationAndEviction) {
  store::DocStore db;
  // A budget small enough that the blob working set does not fit: every
  // thread keeps hitting the insert/evict path, not just warm gets.
  ModelZoo zoo(db, /*cache_bytes=*/16 * 1024);
  util::Rng seed_rng(77);
  constexpr std::size_t kModels = 24;
  std::vector<store::DocId> ids;
  for (std::size_t i = 0; i < kModels; ++i) {
    ids.push_back(zoo.publish("braggnn", "m" + std::to_string(i),
                              random_pdf(seed_rng, 8),
                              random_blob(seed_rng, 2048)));
  }
  fairms::ModelManager manager(zoo, 1.0, /*parallel_rank_threshold=*/1);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<std::size_t> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto id = ids[rng.uniform_index(ids.size())];
        const auto record = zoo.fetch_cached(id);
        if (record == nullptr || record->parameters->empty()) {
          failures.fetch_add(1);
        }
        const auto ranked = manager.rank("braggnn", random_pdf(rng, 8));
        if (ranked.empty()) failures.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }
  // Two mutators over the SAME id set: concurrent attach/reindex of one
  // record must keep revision allocation and store commit in the same
  // order, or the record's stored revision falls behind the cache floor
  // and it silently becomes uncacheable (the post-drive hit-count check
  // below would see a cache that never warms).
  for (int m = 0; m < 2; ++m) {
    threads.emplace_back([&, m] {
      util::Rng rng(3000 + m);
      while (!stop.load(std::memory_order_acquire)) {
        const auto id = ids[rng.uniform_index(ids.size())];
        if (rng.uniform() < 0.5) {
          if (!zoo.attach_parameters(id, random_blob(rng, 2048))) {
            failures.fetch_add(1);
          }
        } else {
          if (!zoo.reindex(id, random_pdf(rng, 8))) failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    // Publishes go to a different architecture so the readers' rank result
    // set stays stable while the cache churns under the new inserts.
    util::Rng rng(4000);
    int published = 0;
    while (!stop.load(std::memory_order_acquire) && published < 16) {
      zoo.publish("cookienetae", "late_" + std::to_string(published++),
                  random_pdf(rng, 8), random_blob(rng, 2048));
    }
  });

  while (reads.load() < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  // Post-drive coherence: every cached record matches the store.
  for (const auto id : ids) {
    const auto cached = zoo.fetch_cached(id);
    const auto reference = zoo.fetch(id);
    ASSERT_TRUE(cached != nullptr && reference.has_value()) << id;
    EXPECT_EQ(*cached->parameters, reference->parameters) << id;
    EXPECT_EQ(cached->train_pdf, reference->train_pdf) << id;
    EXPECT_EQ(cached->revision, reference->revision) << id;
  }
  const auto stats = zoo.cache().stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);

  // No record was stranded uncacheable by a revision-order inversion: with
  // the drive over, a re-fetch of any record must warm the cache again (a
  // stranded record has a floor above its stored revision, so its puts are
  // rejected forever and the repeat read misses).
  for (const auto id : ids) {
    (void)zoo.fetch_cached(id);  // populate (hit or miss)
    const auto hits_before = zoo.cache().stats().hits;
    (void)zoo.fetch_cached(id);  // must now be a pure hit
    EXPECT_EQ(zoo.cache().stats().hits, hits_before + 1) << "id " << id;
  }
}

// --- bugfix regressions -----------------------------------------------------

TEST(Regression, ReindexRejectsMalformedPdfs) {
  store::DocStore db;
  ModelZoo zoo(db);
  const auto id = zoo.publish("braggnn", "d", {0.5, 0.5}, {1});
  const auto revision_before = zoo.fetch(id)->revision;

  // The old behavior accepted all of these; a zero-mass PDF then aborted
  // every later rank/recommend inside the JSD normalizer.
  EXPECT_FALSE(zoo.reindex(id, {}));
  EXPECT_FALSE(zoo.reindex(id, {0.0, 0.0}));
  EXPECT_FALSE(zoo.reindex(id, {1.0, -0.5}));
  EXPECT_FALSE(zoo.reindex(id, {1.0, std::nan("")}));
  EXPECT_FALSE(
      zoo.reindex(id, {1.0, std::numeric_limits<double>::infinity()}));

  const auto record = zoo.fetch(id);
  EXPECT_EQ(record->train_pdf, (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(record->revision, revision_before);  // nothing changed

  fairms::ModelManager manager(zoo, 1.0);
  const auto pick = manager.recommend("braggnn", std::vector<double>{1.0, 1.0});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->model_id, id);
}

TEST(Regression, RankSkipsMalformedStoredPdfInsteadOfAborting) {
  store::DocStore db;
  ModelZoo zoo(db);
  const auto bad = zoo.publish("braggnn", "bad", {0.5, 0.5}, {1});
  const auto good = zoo.publish("braggnn", "good", {0.4, 0.6}, {2});

  // Corrupt the stored PDF *behind* the validation gate, the way a snapshot
  // restored from before mass validation existed would present it.
  store::Array zero_mass;
  zero_mass.emplace_back(0.0);
  zero_mass.emplace_back(0.0);
  ASSERT_TRUE(db.collection("model_zoo")
                  .update_field(bad, "train_pdf",
                                store::Value(std::move(zero_mass))));
  zoo.cache().clear();  // documented external-writer recovery

  fairms::ModelManager manager(zoo, 1.0);
  // Previously: FAIRDMS_CHECK abort inside jsd normalized(). Now: the bad
  // record is skipped (and logged), the good one still serves.
  const auto ranked = manager.rank("braggnn", std::vector<double>{0.4, 0.6});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked.front().model_id, good);
  const auto pick = manager.recommend("braggnn", std::vector<double>{0.4, 0.6});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->model_id, good);

  // Second call exercises the cached malformed-sentinel path: same result,
  // no re-fetch of the bad PDF.
  const auto again = manager.rank("braggnn", std::vector<double>{0.4, 0.6});
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again.front().model_id, good);
}

TEST(Regression, RankSurvivesMalformedInputPdf) {
  // Client-reachable: an empty RecommendRequest batch produces an all-zero
  // cluster PDF. That must answer "no candidates", not abort the serving
  // worker.
  store::DocStore db;
  ModelZoo zoo(db);
  zoo.publish("braggnn", "d", {0.5, 0.5}, {1});
  fairms::ModelManager manager(zoo, 1.0);
  EXPECT_TRUE(manager.rank("braggnn", std::vector<double>{0.0, 0.0}).empty());
  EXPECT_FALSE(manager.recommend("braggnn", std::vector<double>{0.0, 0.0})
                   .has_value());
  EXPECT_TRUE(manager.rank("braggnn", std::vector<double>{}).empty());
  // A valid query still ranks.
  EXPECT_EQ(manager.rank("braggnn", std::vector<double>{0.5, 0.5}).size(),
            1u);
}

TEST(Regression, AttachParametersRejectsEmptyBlob) {
  store::DocStore db;
  ModelZoo zoo(db);
  const auto id = zoo.publish("braggnn", "d", {0.5, 0.5}, {1, 2, 3});
  const auto revision_before = zoo.fetch(id)->revision;

  // Silently accepting {} used to demote a rankable record to weightless.
  EXPECT_FALSE(zoo.attach_parameters(id, {}));
  const auto record = zoo.fetch(id);
  EXPECT_EQ(record->parameters, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(record->revision, revision_before);

  fairms::ModelManager manager(zoo, 1.0);
  EXPECT_FALSE(
      manager.rank("braggnn", std::vector<double>{0.5, 0.5}).empty());

  // Metadata-first records still complete the normal way.
  const auto pending = zoo.publish("braggnn", "pending", {0.5, 0.5}, {});
  EXPECT_FALSE(zoo.attach_parameters(pending, {}));  // still not a detach
  EXPECT_TRUE(zoo.attach_parameters(pending, {9}));
  EXPECT_EQ(manager.rank("braggnn", std::vector<double>{0.5, 0.5}).size(),
            2u);
}

TEST(Regression, ModelsOfIsOneIndexLookupPlusOneBatchedRead) {
  store::DocStore db = counting_db();
  ModelZoo zoo(db);
  util::Rng rng(88);
  constexpr std::size_t kModels = 12;
  for (std::size_t i = 0; i < kModels; ++i) {
    zoo.publish("braggnn", "m" + std::to_string(i), random_pdf(rng, 4),
                random_blob(rng, 256));
  }
  zoo.publish("cookienetae", "other", random_pdf(rng, 4), {1});

  // CountingLink-style pin: exactly two round trips (find_eq + find_many)
  // regardless of how many models the architecture holds — this used to be
  // 1 + N requests with N per-id lock acquisitions.
  const auto before = db.link().requests();
  const auto records = zoo.models_of("braggnn");
  EXPECT_EQ(db.link().requests() - before, 2u);
  ASSERT_EQ(records.size(), kModels);
  for (const auto& r : records) {
    EXPECT_EQ(r.architecture, "braggnn");
    EXPECT_EQ(r.parameters.size(), 256u);
  }
}

}  // namespace
}  // namespace fairdms
