// DataLoader tests: exactly-once delivery, seed determinism, worker/batch
// grids (property suite), and the Mongo/NFS dataset backends end to end.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "store/dataloader.hpp"
#include "util/rng.hpp"

namespace fairdms {
namespace {

nn::Batchset tagged_batchset(std::size_t n) {
  // x[i][0] encodes the sample id so delivery can be audited.
  nn::Batchset data;
  data.xs = nn::Tensor({n, 3});
  data.ys = nn::Tensor({n, 1});
  for (std::size_t i = 0; i < n; ++i) {
    data.xs.at(i, 0) = static_cast<float>(i);
    data.ys.at(i, 0) = static_cast<float>(i) * 2.0f;
  }
  return data;
}

TEST(InMemoryDataset, GetReturnsPairedSample) {
  store::InMemoryDataset ds(tagged_batchset(10));
  store::Sample s;
  ds.get(7, s);
  EXPECT_FLOAT_EQ(s.x[0], 7.0f);
  EXPECT_FLOAT_EQ(s.y[0], 14.0f);
  EXPECT_EQ(ds.x_shape(), (std::vector<std::size_t>{3}));
}

class LoaderGrid
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(LoaderGrid, DeliversEverySampleExactlyOnce) {
  const auto [workers, batch_size, shuffle] = GetParam();
  const std::size_t n = 101;  // prime: exercises the ragged final batch
  store::InMemoryDataset ds(tagged_batchset(n));
  store::LoaderConfig config;
  config.batch_size = static_cast<std::size_t>(batch_size);
  config.workers = static_cast<std::size_t>(workers);
  config.shuffle = shuffle;
  config.prefetch_batches = 2;
  store::DataLoader loader(ds, config);

  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    loader.start_epoch(epoch);
    std::map<int, int> seen;
    std::size_t batches = 0;
    while (auto batch = loader.next()) {
      ++batches;
      ASSERT_EQ(batch->xs.dim(1), 3u);
      for (std::size_t i = 0; i < batch->xs.dim(0); ++i) {
        const int id = static_cast<int>(batch->xs.at(i, 0));
        EXPECT_FLOAT_EQ(batch->ys.at(i, 0), 2.0f * static_cast<float>(id));
        ++seen[id];
      }
    }
    EXPECT_EQ(batches, loader.batches_per_epoch());
    ASSERT_EQ(seen.size(), n);
    for (const auto& [id, count] : seen) {
      EXPECT_EQ(count, 1) << "sample " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerBatchGrid, LoaderGrid,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 8, 32, 101, 128),
                       ::testing::Bool()));

TEST(DataLoader, ShuffleIsSeedDeterministicAcrossLoaders) {
  store::InMemoryDataset ds(tagged_batchset(64));
  store::LoaderConfig config;
  config.batch_size = 64;  // single batch: order fully visible
  config.workers = 1;
  config.seed = 55;
  auto collect = [&](std::size_t epoch) {
    store::DataLoader loader(ds, config);
    loader.start_epoch(epoch);
    std::vector<int> order;
    while (auto batch = loader.next()) {
      for (std::size_t i = 0; i < batch->xs.dim(0); ++i) {
        order.push_back(static_cast<int>(batch->xs.at(i, 0)));
      }
    }
    return order;
  };
  EXPECT_EQ(collect(0), collect(0));
  EXPECT_NE(collect(0), collect(1));
}

TEST(DataLoader, StallAndFetchAccountingArePopulated) {
  store::InMemoryDataset ds(tagged_batchset(256));
  store::LoaderConfig config;
  config.batch_size = 16;
  config.workers = 2;
  store::DataLoader loader(ds, config);
  loader.start_epoch(0);
  while (loader.next()) {
  }
  EXPECT_GE(loader.stall_seconds(), 0.0);
  EXPECT_GT(loader.fetch_seconds(), 0.0);
  EXPECT_EQ(loader.batches_delivered(), 16u);
}

TEST(MongoDataset, IngestAndReadBackThroughCodec) {
  for (const char* codec : {"raw", "pickle", "blosc"}) {
    store::DocStore db;
    auto& col = db.collection("ds");
    const nn::Batchset data = tagged_batchset(20);
    const auto ds = store::MongoDataset::ingest(col, data, codec);
    EXPECT_EQ(ds->size(), 20u);
    store::Sample s;
    ds->get(11, s);
    EXPECT_FLOAT_EQ(s.x[0], 11.0f) << codec;
    EXPECT_FLOAT_EQ(s.y[0], 22.0f) << codec;
  }
}

TEST(MongoDataset, WorksUnderDataLoader) {
  store::DocStore db;
  auto& col = db.collection("ds");
  const auto ds = store::MongoDataset::ingest(col, tagged_batchset(50),
                                              "blosc");
  store::LoaderConfig config;
  config.batch_size = 8;
  config.workers = 3;
  store::DataLoader loader(*ds, config);
  loader.start_epoch(1);
  std::size_t total = 0;
  while (auto batch = loader.next()) total += batch->xs.dim(0);
  EXPECT_EQ(total, 50u);
}

TEST(NfsDataset, WorksUnderDataLoader) {
  const std::string root = ::testing::TempDir() + "/fairdms_nfs_loader";
  store::NfsStore nfs(root, store::RemoteLinkConfig{
                                .latency_seconds = 0.0,
                                .bandwidth_bytes_per_s = 1e12});
  nfs.write_dataset("train", tagged_batchset(30));
  store::NfsDataset ds(nfs, "train");
  store::LoaderConfig config;
  config.batch_size = 7;
  config.workers = 2;
  store::DataLoader loader(ds, config);
  loader.start_epoch(0);
  std::map<int, int> seen;
  while (auto batch = loader.next()) {
    for (std::size_t i = 0; i < batch->xs.dim(0); ++i) {
      ++seen[static_cast<int>(batch->xs.at(i, 0))];
    }
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(DataLoader, DropLastSkipsRaggedBatch) {
  store::InMemoryDataset ds(tagged_batchset(20));
  store::LoaderConfig config;
  config.batch_size = 8;
  config.drop_last = true;
  store::DataLoader loader(ds, config);
  EXPECT_EQ(loader.batches_per_epoch(), 2u);
  loader.start_epoch(0);
  std::size_t total = 0;
  while (auto batch = loader.next()) total += batch->xs.dim(0);
  EXPECT_EQ(total, 16u);
}

}  // namespace
}  // namespace fairdms
