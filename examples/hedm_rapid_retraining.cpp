// HEDM rapid-retraining workflow: the paper's Fig. 1/Fig. 5 loop end to end,
// orchestrated as a Globus-Flows-style DAG over funcX-style endpoints with
// explicit transfer accounting — acquire -> detect degradation -> pseudo-
// label -> recommend -> fine-tune -> deploy.
#include <cstdio>

#include "core/degradation.hpp"
#include "core/fairdms.hpp"
#include "datagen/bragg.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "workflow/flow.hpp"
#include "workflow/funcx.hpp"

int main() {
  using namespace fairdms;
  std::printf("=== HEDM rapid retraining workflow ===\n");

  // Experiment with a deformation event at scan 6.
  datagen::HedmTimelineConfig timeline_config;
  timeline_config.n_scans = 12;
  timeline_config.deformation_scans = {6};
  timeline_config.deformation_jump = 0.6;
  datagen::HedmTimeline timeline(timeline_config);

  // fairDS + zoo built from the early phase.
  store::DocStore db;
  fairds::FairDSConfig ds_config;
  ds_config.n_clusters = 8;
  ds_config.embed_train.epochs = 4;
  fairds::FairDS data_service(ds_config, db);
  nn::Batchset history = timeline.dataset_at(0, 192, 1);
  {
    const nn::Batchset more = timeline.dataset_at(1, 192, 2);
    nn::Batchset merged;
    merged.xs = nn::Tensor({384, 1, 15, 15});
    merged.ys = nn::Tensor({384, 2});
    std::copy_n(history.xs.data(), history.xs.numel(), merged.xs.data());
    std::copy_n(more.xs.data(), more.xs.numel(),
                merged.xs.data() + history.xs.numel());
    std::copy_n(history.ys.data(), history.ys.numel(), merged.ys.data());
    std::copy_n(more.ys.data(), more.ys.numel(),
                merged.ys.data() + history.ys.numel());
    history = std::move(merged);
  }
  data_service.train_system(history.xs);
  data_service.ingest(history.xs, history.ys, "early_phase");

  workflow::TransferService transfers;
  transfers.set_link("beamline", "compute",
                     {.latency_seconds = 0.05, .bandwidth_bytes_per_s = 1e9});
  transfers.set_link("compute", "beamline",
                     {.latency_seconds = 0.05, .bandwidth_bytes_per_s = 1e9});

  core::FairDMSConfig config;
  config.architecture = "braggnn";
  config.train.max_epochs = 40;
  config.train.target_val_error = 2e-3;
  config.transfers = &transfers;
  core::FairDMS system(config, data_service, db);
  models::TaskModel deployed = models::make_braggnn(3);
  system.train_and_publish(deployed, history, history, "early_phase");

  // funcX-style endpoints: the edge runs inference/UQ; the cluster trains.
  workflow::FuncXRegistry funcx;
  funcx.add_endpoint("edge", 2);
  funcx.add_endpoint("gpu-cluster", 1);
  core::DegradationConfig monitor_config;
  monitor_config.baseline_window = 3;  // scans 2-4 establish the error band
  monitor_config.error_factor = 1.25;
  core::DegradationMonitor monitor(monitor_config);
  funcx.register_function(
      "evaluate_scan", "edge", [&](const workflow::Payload& arg) {
        const auto scan = static_cast<std::size_t>(arg.as_int());
        const nn::Batchset data = timeline.dataset_at(scan, 64, 100 + scan);
        const nn::Tensor pred =
            deployed.net.forward(data.xs, nn::Mode::kEval);
        double err = 0.0;
        for (std::size_t i = 0; i < 64; ++i) {
          err += datagen::bragg_pixel_error(pred, data.ys, 15, i) / 64.0;
        }
        const auto obs = monitor.observe(deployed.net, data.xs, err);
        store::Object out;
        out["error"] = store::Value(obs.error);
        out["degraded"] = store::Value(obs.degraded);
        return workflow::Payload(std::move(out));
      });

  // Stream scans; on degradation, run the update flow.
  for (std::size_t scan = 2; scan < timeline_config.n_scans; ++scan) {
    const auto result = funcx.invoke(
        "evaluate_scan", workflow::Payload(static_cast<std::int64_t>(scan)));
    const bool degraded = result.at("degraded").as_bool();
    std::printf("scan %2zu: error %.3f px %s\n", scan,
                result.at("error").as_double(),
                degraded ? " <- DEGRADED, updating model" : "");
    if (!degraded) continue;

    // The update itself as a flow DAG (tasks overlap where possible).
    const nn::Batchset new_data = timeline.dataset_at(scan, 128, 200 + scan);
    core::UpdateReport report;
    workflow::Flow flow("rapid_update");
    flow.add_task("snapshot_distribution", [&] {
      (void)data_service.distribution(new_data.xs);
    });
    flow.add_task(
        "update_model",
        [&] {
          report = system.update_model(new_data.xs, new_data,
                                       core::UpdateStrategy::kFairDMS);
        },
        {"snapshot_distribution"});
    flow.add_task(
        "deploy",
        [&] {
          const auto record = system.zoo().fetch(report.published_model);
          nn::load_parameters(deployed.net, record->parameters);
        },
        {"update_model"});
    const auto flow_report = flow.run();
    std::printf("  flow '%s' finished in %.2f s (%zu tasks); fine-tuned=%s, "
                "%zu epochs\n",
                flow_report.tasks.empty() ? "?" : "rapid_update",
                flow_report.total_seconds, flow_report.tasks.size(),
                report.fine_tuned ? "yes" : "no", report.epochs);
    monitor.reset();
  }
  std::printf("edge endpoint stats: %zu invocations\n",
              funcx.stats("edge").invocations);
  return 0;
}
