// Quickstart: the fairDMS loop in ~80 lines.
//
//   1. train the fairDS system plane (embedding + clustering) on history
//   2. ingest labeled history into the data store
//   3. seed the model Zoo with a model trained on that history
//   4. when new (unlabeled) data arrives: look up pseudo-labels, get a
//      foundation recommendation, fine-tune, publish
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/fairdms.hpp"
#include "datagen/bragg.hpp"
#include "models/models.hpp"

int main() {
  using namespace fairdms;

  // --- synthetic "experiment": Bragg peaks whose shape drifts over time ---
  datagen::HedmTimelineConfig timeline_config;
  timeline_config.n_scans = 10;
  datagen::HedmTimeline timeline(timeline_config);
  const nn::Batchset history = timeline.dataset_at(/*scan=*/0, 256, /*seed=*/1);
  const nn::Batchset new_data = timeline.dataset_at(/*scan=*/1, 96, 2);

  // --- 1+2: fairDS system plane ------------------------------------------
  store::DocStore db;
  fairds::FairDSConfig ds_config;
  ds_config.embedding_algorithm = "byol";  // or "autoencoder", "contrastive"
  ds_config.n_clusters = 8;                // 0 = pick K with the elbow method
  ds_config.embed_train.epochs = 4;
  fairds::FairDS data_service(ds_config, db);
  data_service.train_system(history.xs);
  data_service.ingest(history.xs, history.ys, "experiment_0");
  std::printf("fairDS ready: %zu labeled samples in %zu clusters\n",
              data_service.stored_count(), data_service.n_clusters());

  // --- 3: seed the model Zoo ----------------------------------------------
  core::FairDMSConfig config;
  config.architecture = "braggnn";
  config.train.max_epochs = 20;
  config.train.batch_size = 32;
  config.train.target_val_error = 1.5e-3;
  core::FairDMS system(config, data_service, db);
  models::TaskModel seed_model = models::make_braggnn(/*seed=*/7);
  system.train_and_publish(seed_model, history, history, "experiment_0");
  std::printf("model zoo seeded: %zu model(s)\n", system.zoo().size());

  // --- 4: rapid model update on new data ----------------------------------
  const auto report = system.update_model(new_data.xs, new_data,
                                          core::UpdateStrategy::kFairDMS);
  std::printf("update complete:\n");
  std::printf("  pseudo-labeling: %.3f s (no physics code ran)\n",
              report.label_seconds);
  std::printf("  foundation:      %s (JSD %.4f)\n",
              report.fine_tuned ? "fine-tuned from zoo" : "trained fresh",
              report.foundation_distance);
  std::printf("  training:        %.3f s, %zu epoch(s), val error %.5f\n",
              report.train_seconds, report.epochs, report.final_val_error);
  std::printf("  published as zoo model #%llu\n",
              static_cast<unsigned long long>(report.published_model));
  return 0;
}
