// Tomography denoising: the third application of the paper's evaluation —
// low-dose synchrotron CT frames restored by a TomoGAN-style denoiser
// (TomoNet), with the trained model published to the fairMS Zoo and the
// whole store snapshotted to disk so a later campaign can reload both the
// data and the model (the FAIR loop closed end to end).
#include <cstdio>
#include <string>

#include "datagen/tomography.hpp"
#include "fairms/zoo.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "store/persist.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fairdms;
  std::printf("=== Tomography denoising (TomoNet) ===\n");

  // Low-dose acquisition: Poisson photon noise + readout noise.
  util::Rng rng(21);
  datagen::TomoConfig config;
  config.size = 64;
  config.dose = 10.0;
  const nn::Batchset train = datagen::make_tomo_batchset(config, 96, rng);
  const nn::Batchset val = datagen::make_tomo_batchset(config, 24, rng);

  // Train the denoiser to convergence.
  models::TaskModel model = models::make_tomonet(9);
  nn::Adam opt(model.net, 1e-3);
  nn::TrainConfig train_config;
  train_config.max_epochs = 15;
  train_config.batch_size = 16;
  train_config.on_epoch = [](std::size_t epoch, double train_loss,
                             double val_error) {
    if (epoch % 3 == 0) {
      std::printf("epoch %2zu: train %.5f  val %.5f\n", epoch, train_loss,
                  val_error);
    }
  };
  util::Rng train_rng(22);
  const nn::TrainResult result =
      nn::fit(model.net, opt, train, val, train_config, train_rng);

  // Denoising quality: MSE of the raw low-dose frame vs the restored one.
  const nn::Tensor restored = model.net.forward(val.xs, nn::Mode::kEval);
  const double raw_mse = nn::mse_loss(val.xs, val.ys).value;
  const double restored_mse = nn::mse_loss(restored, val.ys).value;
  std::printf("low-dose frame MSE %.5f -> restored %.5f (%.1fx cleaner, "
              "%zu epochs, %.1f s)\n",
              raw_mse, restored_mse, raw_mse / restored_mse,
              result.epochs_run, result.seconds);

  // Publish to the Zoo and snapshot the store — the FAIR handoff.
  store::DocStore db;
  fairms::ModelZoo zoo(db);
  // Index by the dose/acquisition descriptor (tomography has no fairDS
  // embedding here; the distribution key is the acquisition setting).
  const auto zoo_id = zoo.publish("tomonet", "lowdose_run01",
                                  {config.dose / 100.0, 1.0 - config.dose / 100.0},
                                  nn::save_parameters(model.net));
  const std::string snapshot_dir = "/tmp/fairdms_tomo_campaign";
  store::save_store(db, snapshot_dir);
  std::printf("published TomoNet as zoo model #%llu and snapshotted the "
              "store to %s\n",
              static_cast<unsigned long long>(zoo_id), snapshot_dir.c_str());

  // A later campaign reloads the store and retrieves the model.
  store::DocStore later;
  store::load_store(later, snapshot_dir);
  fairms::ModelZoo later_zoo(later);
  const auto record = later_zoo.fetch(zoo_id);
  models::TaskModel revived = models::make_tomonet(0);
  nn::load_parameters(revived.net, record->parameters);
  const double revived_mse =
      nn::mse_loss(revived.net.forward(val.xs, nn::Mode::kEval), val.ys)
          .value;
  std::printf("reloaded model reproduces val MSE %.5f (delta %.2g)\n",
              revived_mse, revived_mse - restored_mse);
  return 0;
}
