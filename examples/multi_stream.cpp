// multi_stream — the paper's three edge instruments (Bragg/HEDM, CookieBox,
// tomography) served as concurrent tenants of ONE DataService (ROADMAP open
// item 4, the fairDMS production framing: many experiments sharing one
// serving facility).
//
// Each instrument registers as a named stream with its own fairDS (its own
// collection in the shared document store, its own snapshot chain), its own
// RetrainPolicy, and its own serialized retrain executor. Three client
// threads then drive drifting workloads concurrently; the per-stream fig16
// uncertainty trigger fires auto-retrains independently per tenant, and the
// final table shows each stream's ledgers plus the reconciliation invariant
// (global aggregates == sum over streams).
//
// Build & run:  ./build/examples/multi_stream
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/bragg.hpp"
#include "datagen/cookiebox.hpp"
#include "datagen/tomography.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "service/data_service.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace fairdms;

/// Image-to-image fallback labeler (CookieBox density / tomography
/// denoising): the stand-in "conventional" labeler just hands back the
/// frame itself, flattened to the stream's label width — shape-correct and
/// cheap, which is all the serving demo needs.
nn::Tensor identity_labeler(const nn::Tensor& xs) {
  const std::size_t n = xs.dim(0);
  const std::size_t width = xs.numel() / n;
  nn::Tensor ys({n, width});
  std::copy(xs.data(), xs.data() + xs.numel(), ys.data());
  return ys;
}

/// Bragg fallback labeler: the centroid stand-in for the pseudo-Voigt fit
/// (same as examples/serve.cpp).
nn::Tensor centroid_labeler(const nn::Tensor& xs) {
  const std::size_t n = xs.dim(0);
  const std::size_t s = xs.dim(2);
  nn::Tensor ys({n, 2});
  for (std::size_t i = 0; i < n; ++i) {
    double cx = 0.0;
    double cy = 0.0;
    datagen::intensity_centroid({xs.data() + i * s * s, s * s}, s, cx, cy);
    ys.at(i, 0) = static_cast<float>((cx - 7.0) / 15.0);
    ys.at(i, 1) = static_cast<float>((cy - 7.0) / 15.0);
  }
  return ys;
}

struct StreamReport {
  std::string stream;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
};

/// Drives `batches` label requests against one stream, phase by phase, with
/// the batch supplier producing progressively drifted data. Returns the
/// client-side view; the authoritative ledgers live in the service.
StreamReport drive_stream(service::DataService& service,
                          const std::string& stream, std::size_t batches,
                          nn::Tensor (*labeler)(const nn::Tensor&),
                          const std::function<nn::Tensor(std::size_t)>& data) {
  StreamReport report{stream};
  for (std::size_t b = 0; b < batches; ++b) {
    service::LabelRequest request;
    request.xs = data(b);
    request.threshold = 0.35;
    request.fallback_labeler = labeler;
    request.stream = stream;
    auto future = service.submit(std::move(request));
    const auto response = future.get();
    if (response.status == service::ServeStatus::kOk) {
      ++report.ok;
    } else {
      ++report.shed;
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t batches = 8;
  std::size_t batch_size = 16;
  std::size_t workers = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_size = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: multi_stream [--batches N] [--batch N] "
                   "[--workers N]\n");
      return 2;
    }
  }

  std::printf("=== multi-stream serving: bragg + cookiebox + tomo ===\n");

  // One shared document store; each tenant gets its own collection in it.
  store::DocStore db;

  // --- bragg: the drifting HEDM timeline (deformation jump at scan 5) ----
  datagen::HedmTimelineConfig bragg_config;
  bragg_config.n_scans = 12;
  bragg_config.drift_per_scan = 0.01;
  bragg_config.deformation_scans = {5};
  bragg_config.deformation_jump = 0.6;
  datagen::HedmTimeline bragg_timeline(bragg_config);
  const nn::Batchset bragg_history = bragg_timeline.dataset_at(0, 128, 101);

  fairds::FairDSConfig bragg_ds_config;
  bragg_ds_config.embedding_dim = 10;
  bragg_ds_config.image_size = 15;
  bragg_ds_config.n_clusters = 6;
  bragg_ds_config.embed_train.epochs = 2;
  bragg_ds_config.store_shards = 4;
  bragg_ds_config.seed = 101;
  bragg_ds_config.collection = "bragg_samples";
  fairds::FairDS bragg_ds(bragg_ds_config, db);
  bragg_ds.train_system(bragg_history.xs);
  bragg_ds.ingest(bragg_history.xs, bragg_history.ys, "bragg_history");

  // --- cookiebox: drifting photoline + streak phase ----------------------
  datagen::CookieBoxTimelineConfig cb_config;
  cb_config.n_steps = 24;
  cb_config.center_drift_per_step = 0.012;
  cb_config.phase_drift_per_step = 0.1;
  datagen::CookieBoxTimeline cb_timeline(cb_config);
  const nn::Batchset cb_history = cb_timeline.dataset_at(0, 96, 202);

  fairds::FairDSConfig cb_ds_config;
  cb_ds_config.embedding_dim = 10;
  cb_ds_config.image_size = 32;
  cb_ds_config.n_clusters = 6;
  cb_ds_config.embed_train.epochs = 2;
  cb_ds_config.store_shards = 2;
  cb_ds_config.seed = 202;
  cb_ds_config.collection = "cookiebox_samples";
  fairds::FairDS cb_ds(cb_ds_config, db);
  cb_ds.train_system(cb_history.xs);
  cb_ds.ingest(cb_history.xs, cb_history.ys, "cookiebox_history");

  // --- tomo: dose collapse as the drift (18 photons/px -> 3) -------------
  datagen::TomoConfig tomo_config;
  tomo_config.size = 16;
  tomo_config.dose = 18.0;
  util::Rng tomo_rng(303);
  const nn::Batchset tomo_history =
      datagen::make_tomo_batchset(tomo_config, 96, tomo_rng);

  fairds::FairDSConfig tomo_ds_config;
  tomo_ds_config.embedding_dim = 10;
  tomo_ds_config.image_size = 16;
  tomo_ds_config.n_clusters = 6;
  tomo_ds_config.embed_train.epochs = 2;
  tomo_ds_config.store_shards = 2;
  tomo_ds_config.seed = 303;
  tomo_ds_config.collection = "tomo_samples";
  fairds::FairDS tomo_ds(tomo_ds_config, db);
  tomo_ds.train_system(tomo_history.xs);
  tomo_ds.ingest(tomo_history.xs, tomo_history.ys, "tomo_history");

  // Shared zoo; each architecture gets one seed model so recommend() has
  // something to rank per tenant.
  fairms::ModelZoo zoo(db);
  zoo.publish("braggnn", "seed", bragg_ds.distribution(bragg_history.xs),
              std::vector<std::uint8_t>(2048, 0x42));
  zoo.publish("cookienetae", "seed", cb_ds.distribution(cb_history.xs),
              std::vector<std::uint8_t>(2048, 0x43));
  zoo.publish("tomonet", "seed", tomo_ds.distribution(tomo_history.xs),
              std::vector<std::uint8_t>(2048, 0x44));
  fairms::ModelManager manager(zoo, /*distance_threshold=*/1.0);

  // One service, three tenants. Every stream runs the fig16 uncertainty
  // trigger; the service-wide cap bounds how many may retrain at once (set
  // to the tenant count here so the demo shows all three policies firing —
  // a production host would set it below that and let `capped` absorb the
  // excess, as bench/multi_stream_workload does).
  service::DataService service({.workers = workers,
                                .max_pending = 64,
                                .max_concurrent_retrains = 3});
  service::StreamConfig tenant;
  tenant.retrain.auto_trigger = true;
  tenant.retrain.certainty_threshold = 0.0;  // each stream's own threshold
  tenant.retrain.min_new_samples = 2 * batch_size;
  tenant.max_pending = 32;
  // Bragg's drift is the mildest of the three; its operator runs a stricter
  // policy threshold than the FairDS default — per-stream policy in action.
  service::StreamConfig bragg_tenant = tenant;
  bragg_tenant.retrain.certainty_threshold = 0.95;
  FAIRDMS_CHECK(service.add_stream("bragg", bragg_ds, bragg_tenant, &manager),
                "register bragg");
  FAIRDMS_CHECK(service.add_stream("cookiebox", cb_ds, tenant, &manager),
                "register cookiebox");
  FAIRDMS_CHECK(service.add_stream("tomo", tomo_ds, tenant, &manager),
                "register tomo");

  // Three concurrent clients, one per instrument, each walking its own
  // drift trajectory so certainty decays independently per stream.
  std::vector<std::thread> clients;
  std::vector<StreamReport> reports(3);
  clients.emplace_back([&] {
    reports[0] = drive_stream(
        service, "bragg", batches, centroid_labeler, [&](std::size_t b) {
          return bragg_timeline.dataset_at(std::min<std::size_t>(b, 11),
                                           batch_size, 1000 + b)
              .xs;
        });
  });
  clients.emplace_back([&] {
    reports[1] = drive_stream(
        service, "cookiebox", batches, identity_labeler, [&](std::size_t b) {
          return cb_timeline.dataset_at(3 * b, batch_size, 2000 + b).xs;
        });
  });
  clients.emplace_back([&] {
    reports[2] = drive_stream(
        service, "tomo", batches, identity_labeler, [&](std::size_t b) {
          datagen::TomoConfig drifted = tomo_config;
          drifted.dose = 18.0 / static_cast<double>(1 + b);
          util::Rng rng(3000 + b);
          return datagen::make_tomo_batchset(drifted, batch_size, rng).xs;
        });
  });
  for (auto& t : clients) t.join();

  // One recommend per tenant: the per-stream model plane answering from the
  // shared zoo.
  for (const auto& [stream, arch] :
       std::vector<std::pair<std::string, std::string>>{
           {"bragg", "braggnn"},
           {"cookiebox", "cookienetae"},
           {"tomo", "tomonet"}}) {
    service::RecommendRequest request;
    request.architecture = arch;
    request.xs = stream == "bragg"      ? bragg_timeline.dataset_at(6, 8, 7).xs
                 : stream == "cookiebox" ? cb_timeline.dataset_at(6, 8, 7).xs
                                         : tomo_history.xs;
    request.stream = stream;
    const auto response = service.submit(std::move(request)).get();
    if (response.pick) {
      std::printf("recommend[%s/%s]: model #%llu (JSD %.3f)\n",
                  stream.c_str(), arch.c_str(),
                  static_cast<unsigned long long>(response.pick->model_id),
                  response.pick->distance);
    } else {
      std::printf("recommend[%s/%s]: train from scratch\n", stream.c_str(),
                  arch.c_str());
    }
  }

  service.wait_idle();

  // Per-stream ledgers + the reconciliation invariant.
  const auto stats = service.stats();
  std::printf("\n%-10s %8s %8s %6s %7s %8s %6s %9s %8s\n", "stream",
              "answered", "shed", "checks", "retrain", "coalesce", "capped",
              "cooldown", "model_v");
  std::uint64_t sum_answered = 0;
  std::uint64_t sum_retrains = 0;
  for (const auto& s : stats.streams) {
    std::printf("%-10s %8llu %8llu %6llu %7llu %8llu %6llu %9llu %8llu\n",
                s.stream.c_str(),
                static_cast<unsigned long long>(s.label_answered +
                                                s.lookup_answered +
                                                s.recommend_answered),
                static_cast<unsigned long long>(
                    s.label_shed + s.lookup_shed + s.recommend_shed),
                static_cast<unsigned long long>(s.retrain_checks),
                static_cast<unsigned long long>(s.retrains),
                static_cast<unsigned long long>(s.retrains_coalesced),
                static_cast<unsigned long long>(s.retrains_capped),
                static_cast<unsigned long long>(s.policy_cooldown_skips),
                static_cast<unsigned long long>(s.snapshot_version));
    sum_answered += s.label_answered + s.lookup_answered + s.recommend_answered;
    sum_retrains += s.retrains;
  }
  const std::uint64_t global_answered =
      stats.label_answered + stats.lookup_answered + stats.recommend_answered;
  std::printf("\nreconciliation: global answered %llu == sum %llu (%s), "
              "global retrains %llu == sum %llu (%s)\n",
              static_cast<unsigned long long>(global_answered),
              static_cast<unsigned long long>(sum_answered),
              global_answered == sum_answered ? "ok" : "MISMATCH",
              static_cast<unsigned long long>(stats.retrains),
              static_cast<unsigned long long>(sum_retrains),
              stats.retrains == sum_retrains ? "ok" : "MISMATCH");
  if (global_answered != sum_answered || stats.retrains != sum_retrains) {
    return 1;
  }
  if (sum_retrains == 0) {
    std::printf("note: no stream retrained — drift too mild for the "
                "threshold this run\n");
  }
  return 0;
}
