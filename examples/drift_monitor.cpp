// Drift monitor: fairDS's uncertainty-quantification trigger as a streaming
// service (the paper's §II-C system plane). Datasets arrive one by one;
// clustering certainty is tracked, and when it crosses the threshold the
// embedding + clustering are retrained and the store re-indexed — all
// without human intervention.
#include <cstdio>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"

int main() {
  using namespace fairdms;
  std::printf("=== fairDS drift monitor ===\n");

  datagen::HedmTimelineConfig timeline_config;
  timeline_config.n_scans = 18;
  timeline_config.deformation_scans = {9};
  timeline_config.deformation_jump = 0.5;
  datagen::HedmTimeline timeline(timeline_config);

  store::DocStore db;
  fairds::FairDSConfig config;
  config.n_clusters = 15;
  config.embed_train.epochs = 5;
  config.certainty_threshold = 0.80;
  fairds::FairDS data_service(config, db);

  // Bootstrap on the first three scans.
  {
    nn::Tensor warm({3 * 96, 1, 15, 15});
    for (std::size_t s = 0; s < 3; ++s) {
      const auto part = timeline.dataset_at(s, 96, 7);
      std::copy_n(part.xs.data(), part.xs.numel(),
                  warm.data() + s * 96 * 225);
    }
    data_service.train_system(warm);
    for (std::size_t s = 0; s < 3; ++s) {
      const auto part = timeline.dataset_at(s, 96, 7);
      data_service.ingest(part.xs, part.ys, "warm_" + std::to_string(s));
    }
  }

  std::printf("streaming scans (trigger below %.0f%% certainty):\n",
              config.certainty_threshold * 100.0);
  for (std::size_t scan = 3; scan < timeline_config.n_scans; ++scan) {
    const auto data = timeline.dataset_at(scan, 96, 8);
    const double certainty = data_service.certainty(data.xs) * 100.0;
    const bool retrained = data_service.maybe_retrain(data.xs);
    data_service.ingest(data.xs, data.ys, "scan_" + std::to_string(scan));
    std::printf("  scan %2zu: certainty %5.1f%%%s\n", scan, certainty,
                retrained ? "  -> retrained system plane" : "");
  }
  std::printf("total system-plane retrains: %zu; store now holds %zu "
              "samples\n",
              data_service.retrain_count(), data_service.stored_count());
  return 0;
}
