// CookieBox pipeline: the LCLS application — estimate per-channel electron
// energy densities from noisy time-of-flight histograms with CookieNetAE,
// storing training data in the MongoDB-analog store and reading it back
// through the multi-worker DataLoader (the paper's §III-D configuration).
#include <cstdio>

#include "datagen/cookiebox.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "store/dataloader.hpp"
#include "util/rng.hpp"

int main() {
  using namespace fairdms;
  std::printf("=== CookieBox / CookieNetAE pipeline ===\n");

  // Simulated CookieBox shots (16 channels x 2 rows, 32 energy bins).
  util::Rng rng(11);
  datagen::CookieBoxConfig data_config;
  data_config.counts_per_row = 40.0;  // low-dose: visibly noisy input
  const nn::Batchset train =
      datagen::make_cookiebox_batchset({}, data_config, 192, rng);
  const nn::Batchset val =
      datagen::make_cookiebox_batchset({}, data_config, 48, rng);

  // Stage the training set in the document store (Blosc-encoded), as the
  // paper does for managed experiment campaigns.
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 80e-6,
                                             .bandwidth_bytes_per_s = 6e9});
  const auto dataset =
      store::MongoDataset::ingest(db.collection("cookiebox"), train, "blosc");
  std::printf("staged %zu shots in MongoDB-analog store (%zu bytes)\n",
              dataset->size(), db.collection("cookiebox").approx_bytes());

  // Train CookieNetAE through the DataLoader.
  models::TaskModel model = models::make_cookienetae(5);
  nn::Adam opt(model.net, 1e-3);
  store::LoaderConfig loader_config;
  loader_config.batch_size = 32;
  loader_config.workers = 4;
  store::DataLoader loader(*dataset, loader_config);
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    loader.start_epoch(epoch);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (auto batch = loader.next()) {
      opt.zero_grad();
      const nn::Tensor pred = model.net.forward(batch->xs, nn::Mode::kTrain);
      const nn::LossResult loss = nn::mse_loss(pred, batch->ys);
      model.net.backward(loss.grad);
      opt.step();
      loss_sum += loss.value;
      ++batches;
    }
    const double val_mse =
        nn::mse_loss(model.net.forward(val.xs, nn::Mode::kEval), val.ys)
            .value;
    std::printf("epoch %zu: train %.5f, val %.5f (I/O stall %.0f ms)\n",
                epoch, loss_sum / static_cast<double>(batches), val_mse,
                loader.stall_seconds() * 1e3);
  }

  // Denoising effect over the whole validation set: density error of the
  // raw normalized histogram vs the CookieNetAE estimate.
  const nn::Tensor estimate = model.net.forward(val.xs, nn::Mode::kEval);
  const double raw_err = nn::mse_loss(val.xs, val.ys).value;
  const double model_err = nn::mse_loss(estimate, val.ys).value;
  std::printf("validation density error: raw histogram %.5f -> "
              "CookieNetAE %.5f (%.1fx reduction)\n",
              raw_err, model_err, raw_err / model_err);
  return 0;
}
