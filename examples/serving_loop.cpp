// Serving loop: the two-plane fairDS service under multi-client traffic.
//
//   * User plane: 3 client threads stream label requests (per-sample reuse
//     with a fallback labeler) through the DataService and print which
//     model version answered each batch.
//   * System plane: the service's auto-retrain policy probes each labeled
//     batch for drift; when the timeline deforms and clustering certainty
//     drops, a background retrain builds the next snapshot and atomically
//     publishes it — the clients never stop, and their responses show the
//     version flip mid-stream.
//   * Model plane: a small ModelZoo serves foundation recommendations
//     through the same service; the parameter-blob cache makes the repeat
//     recommend + foundation load free (counters in ServiceStats).
//
// Build & run:  ./build/examples/serving_loop
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "service/data_service.hpp"

int main() {
  using namespace fairdms;

  // A drifting HEDM timeline with one deformation event at scan 5.
  datagen::HedmTimelineConfig timeline_config;
  timeline_config.n_scans = 10;
  timeline_config.drift_per_scan = 0.004;
  timeline_config.deformation_scans = {5};
  // Strong deformation so post-event batches sit clearly below the 0.8
  // certainty trigger — the retrain fires every run, not just on lucky
  // probe timing.
  timeline_config.deformation_jump = 1.2;
  datagen::HedmTimeline timeline(timeline_config);
  const nn::Batchset history = timeline.dataset_at(/*scan=*/0, 384, /*seed=*/1);

  // System plane bootstrap.
  store::DocStore db;
  fairds::FairDSConfig ds_config;
  ds_config.embedding_dim = 12;
  ds_config.n_clusters = 8;
  ds_config.embed_train.epochs = 3;
  ds_config.certainty_threshold = 0.8;
  // Shard the sample store so streaming ingest and lookups don't queue on
  // one writer lock (a no-op on single-core hosts, parallel elsewhere).
  ds_config.store_shards = 4;
  fairds::FairDS data_service(ds_config, db);
  data_service.train_system(history.xs);
  data_service.ingest(history.xs, history.ys, "scan_0");
  std::printf("fairDS ready: %zu samples, %zu clusters, model v%llu\n",
              data_service.stored_count(), data_service.n_clusters(),
              static_cast<unsigned long long>(
                  data_service.snapshot()->version()));

  // Model plane: register a few historical models keyed by the cluster
  // PDFs of their training scans (dummy weight blobs — this demo exercises
  // ranking and caching, not inference). Publishing pre-warms the
  // parameter-blob cache, so the first recommend is already served from
  // memory.
  fairms::ModelZoo zoo(db);
  for (std::size_t scan : {0u, 2u, 4u}) {
    const nn::Batchset scan_data = timeline.dataset_at(scan, 96, 50 + scan);
    zoo.publish("braggnn", "scan_" + std::to_string(scan),
                data_service.distribution(scan_data.xs),
                std::vector<std::uint8_t>(4096, static_cast<std::uint8_t>(scan)));
  }
  fairms::ModelManager manager(zoo, /*distance_threshold=*/0.9);

  // Serving facade: auto-retrain probes every labeled batch for drift. The
  // declared store_shards is checked against the data tier at construction.
  service::DataService service(
      data_service,
      {.workers = 3, .auto_retrain = true, .store_shards = 4},
      &manager);

  const auto voigt_labeler = [](const nn::Tensor& xs) {
    // Stand-in for the conventional pseudo-Voigt fit: label = centroid.
    const std::size_t n = xs.dim(0);
    const std::size_t s = xs.dim(2);
    nn::Tensor ys({n, 2});
    for (std::size_t i = 0; i < n; ++i) {
      double cx = 0.0;
      double cy = 0.0;
      datagen::intensity_centroid({xs.data() + i * s * s, s * s}, s, cx, cy);
      ys.at(i, 0) = static_cast<float>((cx - 7.0) / 15.0);
      ys.at(i, 1) = static_cast<float>((cy - 7.0) / 15.0);
    }
    return ys;
  };

  std::mutex print_mutex;
  std::atomic<std::size_t> reused_total{0};
  std::atomic<std::size_t> computed_total{0};

  // User plane: 3 clients walk the timeline (crossing the deformation).
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t scan = 1; scan < 9; ++scan) {
        const nn::Batchset batch =
            timeline.dataset_at(scan, 24, 100 + scan * 10 + c);
        const auto response =
            service
                .submit(service::LabelRequest{batch.xs, /*threshold=*/0.6,
                                              voigt_labeler})
                .get();
        reused_total += response.reuse.reused;
        computed_total += response.reuse.computed;
        std::lock_guard lock(print_mutex);
        std::printf(
            "client %d scan %zu: %2zu reused / %2zu computed  "
            "(model v%llu, %.1f ms)\n",
            c, scan, response.reuse.reused, response.reuse.computed,
            static_cast<unsigned long long>(response.snapshot_version),
            response.seconds * 1e3);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.wait_idle();  // let the last background retrain finish

  // Model plane: which zoo model is the best foundation for the latest
  // batch? The repeat recommend ranks entirely from the cache.
  const nn::Batchset latest = timeline.dataset_at(8, 24, 999);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto response =
        service.submit(service::RecommendRequest{"braggnn", latest.xs}).get();
    if (response.pick.has_value()) {
      std::printf(
          "recommend #%d: foundation model %llu at JSD %.3f (%.2f ms)\n",
          attempt + 1,
          static_cast<unsigned long long>(response.pick->model_id),
          response.pick->distance, response.seconds * 1e3);
    } else {
      std::printf("recommend #%d: no model within threshold — train from "
                  "scratch\n", attempt + 1);
    }
  }

  const auto stats = service.stats();
  std::printf(
      "\nserved %llu label requests (%llu samples: %zu reused, %zu "
      "computed)\n",
      static_cast<unsigned long long>(stats.label_requests),
      static_cast<unsigned long long>(stats.samples_labeled),
      reused_total.load(), computed_total.load());
  std::printf("drift checks: %llu, retrains: %llu, final model v%llu\n",
              static_cast<unsigned long long>(stats.retrain_checks),
              static_cast<unsigned long long>(stats.retrains),
              static_cast<unsigned long long>(
                  data_service.snapshot()->version()));
  std::printf("model cache: %llu hits / %llu misses, %llu evictions, "
              "%llu bytes resident\n",
              static_cast<unsigned long long>(stats.model_cache_hits),
              static_cast<unsigned long long>(stats.model_cache_misses),
              static_cast<unsigned long long>(stats.model_cache_evictions),
              static_cast<unsigned long long>(stats.model_cache_bytes));
  return 0;
}
