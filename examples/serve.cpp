// serve — a standalone fairDMS serving process speaking the binary wire
// protocol (src/net/wire.hpp) over TCP.
//
// Builds the standard demo world (drifting HEDM timeline, trained fairDS,
// seeded ModelZoo), then runs net::Server over a DataService until SIGTERM
// / SIGINT (or --duration elapses) and exits 0 after a graceful drain —
// in-flight requests complete, buffered responses flush, then sockets
// close. bench/net_workload.cpp --connect drives this binary from separate
// client processes; CI runs exactly that pair.
//
// Build & run:  ./build/examples/serve --port 7641
//               ./build/bench/net_workload --preset small --connect 7641
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/bragg.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "net/server.hpp"
#include "service/data_service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace fairdms;

  std::uint16_t port = 0;  // ephemeral by default; printed once bound
  std::size_t workers = 4;
  std::size_t max_pending = 64;
  std::size_t history_samples = 256;
  std::size_t n_streams = 1;   // stream 0 is kDefaultStreamName (v1 peers)
  bool auto_retrain = false;   // per-stream fig16 policy on every stream
  double duration_seconds = 0.0;  // 0 => run until SIGTERM/SIGINT
  std::string engine = "mem";
  std::string data_dir;  // required for --engine log
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-pending") == 0 && i + 1 < argc) {
      max_pending = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc) {
      history_samples = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--streams") == 0 && i + 1 < argc) {
      n_streams = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--auto-retrain") == 0) {
      auto_retrain = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: serve [--port N] [--workers N] [--max-pending N] "
                   "[--history N] [--streams N] [--auto-retrain] "
                   "[--duration SECONDS] [--engine mem|log] "
                   "[--data-dir DIR]\n");
      return 2;
    }
  }
  if (n_streams == 0) n_streams = 1;
  const auto engine_kind = store::parse_engine_kind(engine);
  if (!engine_kind.has_value()) {
    std::fprintf(stderr, "serve: unknown --engine '%s' (mem|log)\n",
                 engine.c_str());
    return 2;
  }
  if (*engine_kind == store::EngineKind::kLog && data_dir.empty()) {
    std::fprintf(stderr, "serve: --engine log requires --data-dir\n");
    return 2;
  }

  // The standard drifting HEDM world the benches use (deformation at scan
  // 7), trained before the socket opens so clients never race training.
  datagen::HedmTimelineConfig timeline_config;
  timeline_config.n_scans = 12;
  timeline_config.drift_per_scan = 0.004;
  timeline_config.deformation_scans = {7};
  timeline_config.deformation_jump = 0.5;
  datagen::HedmTimeline timeline(timeline_config);
  const nn::Batchset history =
      timeline.dataset_at(/*scan=*/2, history_samples, /*seed=*/6161);

  store::DocStoreConfig db_config;
  db_config.engine.kind = *engine_kind;
  db_config.engine.directory = data_dir;  // store root; "<dir>/<collection>"
  store::DocStore db(db_config);

  // One FairDS (own collection, own snapshot chain) per stream. Stream 0 is
  // the default stream — what v1 wire peers and stream-less v2 frames hit;
  // extra streams are named s1..sN-1 and share the same world shape so one
  // fallback labeler serves them all.
  std::vector<std::string> stream_names;
  std::vector<std::unique_ptr<fairds::FairDS>> streams;
  for (std::size_t s = 0; s < n_streams; ++s) {
    fairds::FairDSConfig ds_config;
    ds_config.embedding_dim = 12;
    ds_config.n_clusters = 8;
    ds_config.embed_train.epochs = 2;
    ds_config.certainty_threshold = 0.8;
    ds_config.store_shards = 4;
    ds_config.seed = 6161 + s;
    ds_config.collection =
        s == 0 ? "fairds_samples" : "fairds_samples_s" + std::to_string(s);
    streams.push_back(std::make_unique<fairds::FairDS>(ds_config, db));
    streams.back()->train_system(history.xs);
    streams.back()->ingest(history.xs, history.ys, "history");
    stream_names.push_back(s == 0 ? service::kDefaultStreamName
                                  : "s" + std::to_string(s));
  }
  fairds::FairDS& ds = *streams.front();

  fairms::ModelZoo zoo(db);
  for (std::size_t m = 0; m < 4; ++m) {
    zoo.publish("braggnn", "seed_" + std::to_string(m),
                ds.distribution(timeline.dataset_at(2 + m, 32, 6161 + m).xs),
                std::vector<std::uint8_t>(4096, 0x42));
  }
  fairms::ModelManager manager(zoo, /*distance_threshold=*/1.0);

  service::DataService service({.workers = workers,
                                .max_pending = max_pending});
  for (std::size_t s = 0; s < n_streams; ++s) {
    service::StreamConfig tenant;
    tenant.retrain.auto_trigger = auto_retrain;
    tenant.retrain.cooldown_seconds = auto_retrain ? 5.0 : 0.0;
    tenant.retrain.min_new_samples = auto_retrain ? 64 : 0;
    tenant.store_shards = 4;
    tenant.storage_engine = engine;
    if (!service.add_stream(stream_names[s], *streams[s], tenant, &manager)) {
      std::fprintf(stderr, "serve: duplicate stream '%s'\n",
                   stream_names[s].c_str());
      return 1;
    }
  }

  // Server-side fallback labeler (code cannot travel on the wire): the
  // centroid stand-in for the conventional pseudo-Voigt fit.
  const std::size_t label_width = ds.snapshot()->label_width();
  net::ServerConfig server_config;
  server_config.port = port;
  server_config.fallback_labeler = [label_width](const nn::Tensor& xs) {
    const std::size_t n = xs.dim(0);
    const std::size_t s = xs.dim(2);
    nn::Tensor ys({n, label_width});
    for (std::size_t i = 0; i < n; ++i) {
      double cx = 0.0;
      double cy = 0.0;
      datagen::intensity_centroid({xs.data() + i * s * s, s * s}, s, cx, cy);
      ys.at(i, 0) = static_cast<float>((cx - 7.0) / 15.0);
      if (label_width > 1) {
        ys.at(i, 1) = static_cast<float>((cy - 7.0) / 15.0);
      }
    }
    return ys;
  };

  net::Server server(service, server_config);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: cannot listen on port %u\n",
                 static_cast<unsigned>(port));
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Parsed by scripts (and humans): the bound port, then a READY marker.
  std::printf("serve: listening on 127.0.0.1:%u (workers %zu, max_pending "
              "%zu, engine %s, streams %zu%s, model v%llu)\n",
              static_cast<unsigned>(server.port()), workers, max_pending,
              ds.storage_engine(), n_streams,
              auto_retrain ? ", auto-retrain" : "",
              static_cast<unsigned long long>(ds.snapshot()->version()));
  std::printf("READY\n");
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (duration_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= duration_seconds) {
      break;
    }
  }

  std::printf("serve: draining...\n");
  server.stop();
  service.wait_idle();

  const auto counters = server.counters();
  const auto stats = service.stats();
  std::printf(
      "serve: done. connections %llu, frames in %llu / out %llu, malformed "
      "%llu, shed %llu, shutdown %llu; served %llu label / %llu lookup / "
      "%llu recommend, retrains %llu\n",
      static_cast<unsigned long long>(counters.accepted_connections),
      static_cast<unsigned long long>(counters.frames_in),
      static_cast<unsigned long long>(counters.frames_out),
      static_cast<unsigned long long>(counters.malformed_frames),
      static_cast<unsigned long long>(counters.shed_responses),
      static_cast<unsigned long long>(counters.shutdown_responses),
      static_cast<unsigned long long>(stats.label_requests),
      static_cast<unsigned long long>(stats.lookup_requests),
      static_cast<unsigned long long>(stats.recommend_requests),
      static_cast<unsigned long long>(stats.retrains));
  return 0;
}
