#include "workflow/flow.hpp"

#include <algorithm>
#include <condition_variable>
#include <thread>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fairdms::workflow {

namespace {

// Flow tasks are latency-bound (sleeps, transfers, remote calls), so the DAG
// executor needs at least two workers to overlap independent tasks even on
// single-core hosts. The global pool stays sized for CPU-bound kernels.
util::ThreadPool& flow_pool() {
  static util::ThreadPool pool(
      std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace

const TaskReport* FlowReport::find(const std::string& name) const {
  for (const TaskReport& t : tasks) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Flow& Flow::add_task(const std::string& task_name, std::function<void()> body,
                     std::vector<std::string> dependencies) {
  FAIRDMS_CHECK(body != nullptr, "Flow task '", task_name, "' has no body");
  for (const TaskDef& t : tasks_) {
    FAIRDMS_CHECK(t.name != task_name, "duplicate flow task '", task_name,
                  "'");
  }
  tasks_.push_back(TaskDef{task_name, std::move(body),
                           std::move(dependencies)});
  return *this;
}

FlowReport Flow::run() {
  const std::size_t n = tasks_.size();
  // Resolve dependency names to indices; unknown names abort.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[tasks_[i].name] = i;
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<std::size_t> missing(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& dep : tasks_[i].deps) {
      auto it = index.find(dep);
      FAIRDMS_CHECK(it != index.end(), "flow '", name_, "': task '",
                    tasks_[i].name, "' depends on unknown task '", dep, "'");
      dependents[it->second].push_back(i);
      ++missing[i];
    }
  }

  // Kahn cycle check before launching anything.
  {
    std::vector<std::size_t> degree = missing;
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < n; ++i) {
      if (degree[i] == 0) queue.push_back(i);
    }
    std::size_t seen = 0;
    while (!queue.empty()) {
      const std::size_t t = queue.back();
      queue.pop_back();
      ++seen;
      for (std::size_t d : dependents[t]) {
        if (--degree[d] == 0) queue.push_back(d);
      }
    }
    FAIRDMS_CHECK(seen == n, "flow '", name_, "' contains a cycle");
  }

  FlowReport report;
  report.tasks.reserve(n);
  util::WallTimer flow_timer;
  // kTaskLocal: taken inside pool tasks, possibly while a caller up-stack
  // holds the system plane — so it must rank above every subsystem lock.
  util::Mutex mutex{util::LockRank::kTaskLocal};
  std::condition_variable cv_done;
  std::size_t completed = 0;
  auto& pool = flow_pool();

  // Submit a task once its dependency count reaches zero.
  std::function<void(std::size_t)> launch = [&](std::size_t i) {
    pool.submit([&, i] {
      const double start = flow_timer.seconds();
      tasks_[i].body();
      const double end = flow_timer.seconds();
      std::vector<std::size_t> ready;
      {
        util::MutexLock lock(mutex);
        report.tasks.push_back(TaskReport{tasks_[i].name, start, end});
        ++completed;
        for (std::size_t d : dependents[i]) {
          if (--missing[d] == 0) ready.push_back(d);
        }
        // Notify while holding the lock: once it is released with
        // completed == n, Flow::run may return and destroy cv_done, so a
        // notify after the unlock would race with that destruction.
        cv_done.notify_all();
      }
      for (std::size_t d : ready) launch(d);
    });
  };

  {
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < n; ++i) {
      if (missing[i] == 0) roots.push_back(i);
    }
    for (std::size_t i : roots) launch(i);
  }

  util::MutexLock lock(mutex);
  while (completed != n) cv_done.wait(lock.native());
  report.total_seconds = flow_timer.seconds();
  return report;
}

}  // namespace fairdms::workflow
