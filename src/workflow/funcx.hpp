// funcX analog: a registry of named functions bound to named endpoints with
// bounded concurrency. The paper uses funcX as the serverless layer that
// executes user-plane and system-plane functions on the right resources; we
// reproduce the scheduling semantics (per-endpoint capacity, queuing) and
// the accounting (invocations, busy time).
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <string>

#include "store/document.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::workflow {

/// Payloads are document values — the same JSON-like type the store uses.
using Payload = store::Value;
using Function = std::function<Payload(const Payload&)>;

struct EndpointStats {
  std::size_t invocations = 0;
  double busy_seconds = 0.0;
};

class FuncXRegistry {
 public:
  /// Declares an endpoint with a concurrency cap (e.g. "gpu-cluster": 1,
  /// "edge": 4). Registering twice aborts.
  void add_endpoint(const std::string& endpoint, std::size_t capacity);

  /// Registers `fn` under `name` on `endpoint`.
  void register_function(const std::string& name, const std::string& endpoint,
                         Function fn);

  /// Invokes synchronously, waiting for endpoint capacity first (the funcX
  /// queue). Thread-safe; concurrent callers share endpoint slots.
  Payload invoke(const std::string& name, const Payload& arg)
      EXCLUDES(mutex_);

  [[nodiscard]] bool has_function(const std::string& name) const;
  [[nodiscard]] EndpointStats stats(const std::string& endpoint) const;

 private:
  struct Endpoint {
    std::size_t capacity = 1;
    std::size_t in_use = 0;
    EndpointStats stats;
  };
  struct Registered {
    std::string endpoint;
    Function fn;
  };

  mutable util::Mutex mutex_{util::LockRank::kWorkflow};
  std::condition_variable cv_slot_;
  std::map<std::string, Endpoint> endpoints_ GUARDED_BY(mutex_);
  std::map<std::string, Registered> functions_ GUARDED_BY(mutex_);
};

}  // namespace fairdms::workflow
