// Globus-Flows analog: a named DAG of tasks executed with maximum
// parallelism on the global thread pool. The paper's end-to-end workflow
// (§III-C) is a flow of funcX function invocations and Globus transfers;
// Fig. 15's end-to-end time is the critical path of that DAG plus compute.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace fairdms::workflow {

struct TaskReport {
  std::string name;
  double start_seconds = 0.0;  ///< relative to flow start
  double end_seconds = 0.0;
  [[nodiscard]] double duration() const { return end_seconds - start_seconds; }
};

struct FlowReport {
  double total_seconds = 0.0;
  std::vector<TaskReport> tasks;  ///< completion order
  [[nodiscard]] const TaskReport* find(const std::string& name) const;
};

class Flow {
 public:
  explicit Flow(std::string name) : name_(std::move(name)) {}

  /// Adds a task with dependencies (all must be added before run()).
  Flow& add_task(const std::string& task_name, std::function<void()> body,
                 std::vector<std::string> dependencies = {});

  [[nodiscard]] const std::string& flow_name() const { return name_; }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }

  /// Validates the DAG (unknown deps / cycles abort), runs every task as
  /// soon as its dependencies finish, and returns per-task timings.
  FlowReport run();

 private:
  struct TaskDef {
    std::string name;
    std::function<void()> body;
    std::vector<std::string> deps;
  };
  std::string name_;
  std::vector<TaskDef> tasks_;
};

}  // namespace fairdms::workflow
