// Globus-Transfer analog: byte-accurate timing of data movement between
// named endpoints over parametric links. Transfers return *simulated*
// seconds (no real sleep — Fig. 15's end-to-end accounting adds them to
// measured compute), and the service records totals per endpoint pair.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::workflow {

struct LinkSpec {
  double latency_seconds = 0.05;       ///< per-transfer setup (auth, handshake)
  double bandwidth_bytes_per_s = 1e9;  ///< sustained WAN throughput
};

struct TransferStats {
  std::size_t transfers = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

class TransferService {
 public:
  /// Defines (or redefines) the link `src` -> `dst`. Links are directional.
  void set_link(const std::string& src, const std::string& dst,
                LinkSpec spec);

  /// Simulated wall time to move `bytes` from src to dst. Aborts on an
  /// undefined link.
  double transfer(const std::string& src, const std::string& dst,
                  std::uint64_t bytes);

  [[nodiscard]] TransferStats stats(const std::string& src,
                                    const std::string& dst) const;

 private:
  using Key = std::pair<std::string, std::string>;
  mutable util::Mutex mutex_{util::LockRank::kWorkflow};
  std::map<Key, LinkSpec> links_ GUARDED_BY(mutex_);
  std::map<Key, TransferStats> stats_ GUARDED_BY(mutex_);
};

}  // namespace fairdms::workflow
