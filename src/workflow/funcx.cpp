#include "workflow/funcx.hpp"

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::workflow {

void FuncXRegistry::add_endpoint(const std::string& endpoint,
                                 std::size_t capacity) {
  FAIRDMS_CHECK(capacity > 0, "endpoint '", endpoint, "' needs capacity > 0");
  util::MutexLock lock(mutex_);
  FAIRDMS_CHECK(endpoints_.count(endpoint) == 0, "endpoint '", endpoint,
                "' already exists");
  endpoints_[endpoint].capacity = capacity;
}

void FuncXRegistry::register_function(const std::string& name,
                                      const std::string& endpoint,
                                      Function fn) {
  FAIRDMS_CHECK(fn != nullptr, "function '", name, "' has no body");
  util::MutexLock lock(mutex_);
  FAIRDMS_CHECK(endpoints_.count(endpoint) > 0, "unknown endpoint '",
                endpoint, "'");
  FAIRDMS_CHECK(functions_.count(name) == 0, "function '", name,
                "' already registered");
  functions_[name] = Registered{endpoint, std::move(fn)};
}

Payload FuncXRegistry::invoke(const std::string& name, const Payload& arg) {
  Function fn;
  std::string endpoint_name;
  {
    util::MutexLock lock(mutex_);
    auto it = functions_.find(name);
    FAIRDMS_CHECK(it != functions_.end(), "unknown function '", name, "'");
    endpoint_name = it->second.endpoint;
    fn = it->second.fn;
    Endpoint& ep = endpoints_.at(endpoint_name);
    // Explicit wait loop: TSA analyzes a predicate lambda as a separate
    // function that would not be seen holding mutex_.
    while (ep.in_use >= ep.capacity) cv_slot_.wait(lock.native());
    ++ep.in_use;
  }
  util::WallTimer timer;
  Payload result = fn(arg);
  const double elapsed = timer.seconds();
  {
    util::MutexLock lock(mutex_);
    Endpoint& ep = endpoints_.at(endpoint_name);
    --ep.in_use;
    ++ep.stats.invocations;
    ep.stats.busy_seconds += elapsed;
  }
  cv_slot_.notify_one();
  return result;
}

bool FuncXRegistry::has_function(const std::string& name) const {
  util::MutexLock lock(mutex_);
  return functions_.count(name) > 0;
}

EndpointStats FuncXRegistry::stats(const std::string& endpoint) const {
  util::MutexLock lock(mutex_);
  auto it = endpoints_.find(endpoint);
  FAIRDMS_CHECK(it != endpoints_.end(), "unknown endpoint '", endpoint, "'");
  return it->second.stats;
}

}  // namespace fairdms::workflow
