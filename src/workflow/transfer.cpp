#include "workflow/transfer.hpp"

#include "util/check.hpp"

namespace fairdms::workflow {

void TransferService::set_link(const std::string& src, const std::string& dst,
                               LinkSpec spec) {
  FAIRDMS_CHECK(spec.bandwidth_bytes_per_s > 0.0,
                "link needs positive bandwidth");
  util::MutexLock lock(mutex_);
  links_[{src, dst}] = spec;
}

double TransferService::transfer(const std::string& src,
                                 const std::string& dst,
                                 std::uint64_t bytes) {
  util::MutexLock lock(mutex_);
  auto it = links_.find({src, dst});
  FAIRDMS_CHECK(it != links_.end(), "no link ", src, " -> ", dst);
  const LinkSpec& spec = it->second;
  const double seconds =
      spec.latency_seconds +
      static_cast<double>(bytes) / spec.bandwidth_bytes_per_s;
  TransferStats& s = stats_[{src, dst}];
  ++s.transfers;
  s.bytes += bytes;
  s.seconds += seconds;
  return seconds;
}

TransferStats TransferService::stats(const std::string& src,
                                     const std::string& dst) const {
  util::MutexLock lock(mutex_);
  auto it = stats_.find({src, dst});
  return it == stats_.end() ? TransferStats{} : it->second;
}

}  // namespace fairdms::workflow
