#include "core/fairdms.hpp"

#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::core {

FairDMS::FairDMS(FairDMSConfig config, fairds::FairDS& data_service,
                 store::DocStore& db)
    : config_(std::move(config)),
      ds_(&data_service),
      zoo_(db, config_.model_cache_bytes),
      manager_(zoo_, config_.distance_threshold),
      // The update workflow submits one request at a time, so two workers
      // suffice; background retrain stays an explicit caller decision here.
      service_(data_service,
               service::DataServiceConfig{.workers = 2, .auto_retrain = false},
               &manager_) {}

double FairDMS::charge_transfer(const std::string& src, const std::string& dst,
                                std::uint64_t bytes) const {
  if (config_.transfers == nullptr) return 0.0;
  return config_.transfers->transfer(src, dst, bytes);
}

store::DocId FairDMS::train_and_publish(models::TaskModel& model,
                                        const nn::Batchset& train,
                                        const nn::Batchset& val,
                                        const std::string& dataset_id) {
  util::Rng rng(config_.seed ^ (++update_counter_ * 0x9E3779B9ull));
  nn::Adam opt(model.net, config_.scratch_lr);
  nn::fit(model.net, opt, train, val, config_.train, rng);
  return zoo_.publish(model.architecture, dataset_id,
                      ds_->distribution(train.xs),
                      nn::save_parameters(model.net));
}

models::TaskModel FairDMS::materialize(store::DocId id) {
  const auto record = zoo_.fetch_cached(id);
  FAIRDMS_CHECK(record != nullptr, "zoo model ", id, " not found");
  models::TaskModel model = models::make_model(
      record->architecture, config_.seed, config_.patch_size);
  nn::load_parameters(model.net, *record->parameters);
  return model;
}

UpdateReport FairDMS::update_model(
    const Tensor& new_xs, const nn::Batchset& validation,
    UpdateStrategy strategy,
    const std::function<Tensor(const Tensor&)>& conventional_labeler,
    std::optional<double> label_seconds_override) {
  UpdateReport report;
  ++update_counter_;
  // Training stochasticity is seeded from the config alone so that
  // strategies compared on the same data differ only in what the strategy
  // changes (labels and initialization), not in shuffle order.
  util::Rng rng(config_.seed ^ 0xD134'2543'DE82'EF95ull);

  // (0) Move the new data to the compute facility.
  report.transfer_seconds += charge_transfer(
      config_.source_endpoint, config_.compute_endpoint, new_xs.numel() * 4);

  // (1) Acquire labeled training data.
  nn::Batchset train;
  {
    util::WallTimer timer;
    if (strategy == UpdateStrategy::kConventional) {
      FAIRDMS_CHECK(conventional_labeler != nullptr,
                    "kConventional needs a labeler");
      train.xs = new_xs;
      train.ys = conventional_labeler(new_xs);
    } else {
      train = service_
                  .submit(service::LookupRequest{
                      new_xs, config_.seed + update_counter_})
                  .get()
                  .batch;
    }
    report.label_seconds = timer.seconds();
  }
  if (label_seconds_override.has_value()) {
    report.label_seconds = *label_seconds_override;
  }

  // (2) Choose the foundation model.
  models::TaskModel model = models::make_model(
      config_.architecture, config_.seed, config_.patch_size);
  double lr = config_.scratch_lr;
  if (strategy == UpdateStrategy::kFairDMS) {
    util::WallTimer timer;
    const auto recommendation =
        service_.submit(service::RecommendRequest{config_.architecture,
                                                  new_xs})
            .get();
    report.recommend_seconds = timer.seconds();
    if (recommendation.pick.has_value()) {
      // Cached load: a foundation picked repeatedly (the steady state when
      // the data distribution is stable) transfers zero store bytes after
      // its first fetch.
      const auto record = zoo_.fetch_cached(recommendation.pick->model_id);
      FAIRDMS_CHECK(record != nullptr, "recommended model vanished");
      nn::load_parameters(model.net, *record->parameters);
      report.fine_tuned = true;
      report.foundation_distance = recommendation.pick->distance;
      lr = config_.fine_tune_lr;
    }
    // No model within threshold => fall through to training from scratch
    // (paper §II-C).
  }

  // (3) Train to convergence.
  {
    util::WallTimer timer;
    nn::Adam opt(model.net, lr);
    const nn::TrainResult result =
        nn::fit(model.net, opt, train, validation, config_.train, rng);
    report.train_seconds = timer.seconds();
    report.epochs = result.epochs_run;
    report.convergence_epoch = result.convergence_epoch;
    report.final_val_error = result.final_val_error;
  }

  // (4) Publish the updated model and return it to the user.
  auto blob = nn::save_parameters(model.net);
  report.transfer_seconds += charge_transfer(
      config_.compute_endpoint, config_.source_endpoint, blob.size());
  report.published_model =
      zoo_.publish(config_.architecture,
                   "update_" + std::to_string(update_counter_),
                   ds_->distribution(new_xs), std::move(blob));

  report.total_seconds = report.label_seconds + report.recommend_seconds +
                         report.train_seconds + report.transfer_seconds;
  return report;
}

}  // namespace fairdms::core
