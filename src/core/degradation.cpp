#include "core/degradation.hpp"

#include "nn/uncertainty.hpp"
#include "util/check.hpp"

namespace fairdms::core {

Observation DegradationMonitor::observe(nn::Sequential& model,
                                        const nn::Tensor& xs,
                                        double task_error) {
  Observation obs;
  obs.error = task_error;
  obs.uncertainty =
      nn::mc_dropout_uncertainty(model, xs, config_.mc_samples);

  if (history_.size() < config_.baseline_window) {
    // Still collecting the baseline band: running mean of early datasets.
    const auto n = static_cast<double>(history_.size());
    baseline_error_ = (baseline_error_ * n + obs.error) / (n + 1.0);
    baseline_uncertainty_ =
        (baseline_uncertainty_ * n + obs.uncertainty) / (n + 1.0);
  } else {
    const bool error_out =
        baseline_error_ > 0.0 &&
        obs.error > config_.error_factor * baseline_error_;
    const bool unc_out =
        baseline_uncertainty_ > 0.0 &&
        obs.uncertainty > config_.uncertainty_factor * baseline_uncertainty_;
    obs.degraded = error_out || unc_out;
    detected_ = detected_ || obs.degraded;
  }
  history_.push_back(obs);
  return obs;
}

void DegradationMonitor::reset() {
  history_.clear();
  baseline_error_ = 0.0;
  baseline_uncertainty_ = 0.0;
  detected_ = false;
}

}  // namespace fairdms::core
