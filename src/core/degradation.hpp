// Model-degradation detection (paper Fig. 2): track prediction error and
// MC-dropout uncertainty per dataset; flag retraining when either leaves the
// band established on the reference (deployment-time) datasets.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/sequential.hpp"

namespace fairdms::core {

struct DegradationConfig {
  std::size_t mc_samples = 16;      ///< forward passes for MC dropout
  double error_factor = 1.5;        ///< flag when error > factor * baseline
  double uncertainty_factor = 1.5;  ///< same for predictive uncertainty
  std::size_t baseline_window = 5;  ///< first N observations form baseline
};

struct Observation {
  double error = 0.0;
  double uncertainty = 0.0;
  bool degraded = false;
};

class DegradationMonitor {
 public:
  explicit DegradationMonitor(DegradationConfig config = {})
      : config_(config) {}

  /// Records one dataset's evaluation: mean task error (caller-computed,
  /// e.g. pixel distance for BraggNN) and MC-dropout uncertainty of the
  /// model on the inputs.
  Observation observe(nn::Sequential& model, const nn::Tensor& xs,
                      double task_error);

  [[nodiscard]] const std::vector<Observation>& history() const {
    return history_;
  }
  [[nodiscard]] double baseline_error() const { return baseline_error_; }
  [[nodiscard]] double baseline_uncertainty() const {
    return baseline_uncertainty_;
  }
  /// True once any observation has been flagged.
  [[nodiscard]] bool degradation_detected() const { return detected_; }
  void reset();

 private:
  DegradationConfig config_;
  std::vector<Observation> history_;
  double baseline_error_ = 0.0;
  double baseline_uncertainty_ = 0.0;
  bool detected_ = false;
};

}  // namespace fairdms::core
