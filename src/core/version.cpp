#include "core/version.hpp"

namespace fairdms::core {

const char* Version() { return FAIRDMS_VERSION_STRING; }

}  // namespace fairdms::core
