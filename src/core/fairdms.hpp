// FairDMS facade (paper Fig. 5): composes fairDS (labeled-data reuse) and
// fairMS (model recommendation) into the rapid model-update workflow that
// Fig. 15 measures end to end:
//
//   new unlabeled data -> [transfer in] -> acquire labels -> recommend
//   foundation -> fine-tune or retrain -> publish to Zoo -> [transfer out]
//
// Three strategies mirror the paper's comparison arms:
//   kFairDMS      — fairDS pseudo-labels + fine-tune the fairMS pick
//   kRetrain      — fairDS pseudo-labels + train from scratch
//   kConventional — caller-supplied conventional labeler (pseudo-Voigt)
//                   + train from scratch
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "models/models.hpp"
#include "nn/trainer.hpp"
#include "service/data_service.hpp"
#include "workflow/transfer.hpp"

namespace fairdms::core {

using tensor::Tensor;

enum class UpdateStrategy { kFairDMS, kRetrain, kConventional };

struct FairDMSConfig {
  std::string architecture = "braggnn";
  std::size_t patch_size = 15;
  double distance_threshold = 0.5;  ///< fairMS "train from scratch" cutoff
  nn::TrainConfig train;            ///< convergence target applies to all arms
  double fine_tune_lr = 5e-4;       ///< smaller LR when starting from a model
  double scratch_lr = 1e-3;
  /// Byte budget of the fairMS parameter-blob/PDF cache; repeat foundation
  /// loads within the budget cost zero store traffic. 0 disables caching.
  std::size_t model_cache_bytes = fairms::ModelZoo::kDefaultCacheBytes;
  std::uint64_t seed = 99;
  /// Optional transfer accounting (beamline <-> compute endpoints).
  workflow::TransferService* transfers = nullptr;
  std::string source_endpoint = "beamline";
  std::string compute_endpoint = "compute";
};

struct UpdateReport {
  double label_seconds = 0.0;      ///< acquiring labels for the new data
  double recommend_seconds = 0.0;  ///< fairMS ranking (zero for scratch arms)
  double train_seconds = 0.0;
  double transfer_seconds = 0.0;   ///< simulated data/model movement
  double total_seconds = 0.0;
  bool fine_tuned = false;
  double foundation_distance = 0.0;  ///< JSD of the chosen foundation
  std::size_t epochs = 0;
  std::size_t convergence_epoch = 0;
  double final_val_error = 0.0;
  store::DocId published_model = 0;
  fairds::ReuseStats reuse;        ///< only for per-sample labeled arms
};

class FairDMS {
 public:
  FairDMS(FairDMSConfig config, fairds::FairDS& data_service,
          store::DocStore& db);

  [[nodiscard]] fairds::FairDS& data_service() { return *ds_; }
  [[nodiscard]] fairms::ModelZoo& zoo() { return zoo_; }
  [[nodiscard]] fairms::ModelManager& manager() { return manager_; }
  /// The serving facade the update workflow submits its user-plane
  /// requests through; also available to callers for direct async use.
  [[nodiscard]] service::DataService& service() { return service_; }
  [[nodiscard]] const FairDMSConfig& config() const { return config_; }

  /// Trains `model` on `train`, publishes it with the training data's
  /// distribution, and returns the zoo id. Used to seed the Zoo with
  /// historical models.
  store::DocId train_and_publish(models::TaskModel& model,
                                 const nn::Batchset& train,
                                 const nn::Batchset& val,
                                 const std::string& dataset_id);

  /// The end-to-end model update of Fig. 15. `conventional_labeler` is only
  /// consulted for kConventional (it should run the pseudo-Voigt code and
  /// may account cluster-projected time itself via label_seconds_override).
  UpdateReport update_model(
      const Tensor& new_xs, const nn::Batchset& validation,
      UpdateStrategy strategy,
      const std::function<Tensor(const Tensor&)>& conventional_labeler = {},
      std::optional<double> label_seconds_override = std::nullopt);

 private:
  /// Loads zoo model `id` into a fresh TaskModel.
  models::TaskModel materialize(store::DocId id);
  [[nodiscard]] double charge_transfer(const std::string& src,
                                       const std::string& dst,
                                       std::uint64_t bytes) const;

  FairDMSConfig config_;
  fairds::FairDS* ds_;
  fairms::ModelZoo zoo_;
  fairms::ModelManager manager_;
  service::DataService service_;
  std::uint64_t update_counter_ = 0;
};

}  // namespace fairdms::core
