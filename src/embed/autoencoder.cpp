#include "embed/autoencoder.hpp"

#include <numeric>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/reshape.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"

namespace fairdms::embed {

AutoencoderEmbedder::AutoencoderEmbedder(std::size_t image_size,
                                         std::size_t dim, std::uint64_t seed,
                                         std::size_t hidden)
    : image_size_(image_size), dim_(dim), rng_(seed) {
  const std::size_t in = image_size * image_size;
  encoder_.emplace<nn::Flatten>();
  encoder_.emplace<nn::Linear>(in, hidden, rng_);
  encoder_.emplace<nn::ReLU>();
  encoder_.emplace<nn::Linear>(hidden, dim, rng_);

  decoder_.emplace<nn::Linear>(dim, hidden, rng_);
  decoder_.emplace<nn::ReLU>();
  decoder_.emplace<nn::Linear>(hidden, in, rng_);
}

double AutoencoderEmbedder::fit(const Tensor& xs,
                                const EmbedTrainConfig& config) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == image_size_ &&
                    xs.dim(3) == image_size_,
                "AutoencoderEmbedder::fit: expected [N,1,", image_size_, ",",
                image_size_, "], got ", xs.shape_str());
  const std::size_t n = xs.dim(0);
  nn::Adam enc_opt(encoder_, config.learning_rate);
  nn::Adam dec_opt(decoder_, config.learning_rate);

  const Tensor flat_target =
      xs.reshaped({n, image_size_ * image_size_});
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double last_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < n; begin += config.batch_size) {
      const std::size_t end = std::min(n, begin + config.batch_size);
      const std::span<const std::size_t> idx(order.data() + begin,
                                             end - begin);
      const Tensor xb = nn::gather_rows(xs, idx);
      const Tensor tb = nn::gather_rows(flat_target, idx);

      enc_opt.zero_grad();
      dec_opt.zero_grad();
      const Tensor z = encoder_.forward(xb, nn::Mode::kTrain);
      const Tensor recon = decoder_.forward(z, nn::Mode::kTrain);
      const nn::LossResult loss = nn::mse_loss(recon, tb);
      const Tensor gz = decoder_.backward(loss.grad);
      encoder_.backward(gz);
      enc_opt.step();
      dec_opt.step();
      epoch_loss += loss.value;
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
  }
  return last_loss;
}

Tensor AutoencoderEmbedder::embed(const Tensor& xs) {
  return encoder_.forward(xs, nn::Mode::kEval);
}

}  // namespace fairdms::embed
