// Physics-inspired image augmentations for self-supervised training.
//
// The paper's §IV failure analysis motivates these: two Bragg peaks related
// by a rotation are physically identical, so the embedding should be trained
// to be invariant to rotations, mirrors, small shifts (detector jitter) and
// noise (counting statistics). Augmentations operate on square single-channel
// images stored row-major.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace fairdms::embed {

struct AugmentConfig {
  bool rotate = true;       ///< random multiple-of-90-degree rotation
  bool mirror = true;       ///< random horizontal/vertical flip
  std::size_t max_shift = 1;///< random circular shift up to +-max_shift px
  double noise_sd = 0.02;   ///< additive Gaussian pixel noise
  double gain_sd = 0.08;    ///< multiplicative intensity jitter
};

/// Applies a random augmentation drawn from `rng` to a size x size image.
std::vector<float> augment(std::span<const float> image, std::size_t size,
                           const AugmentConfig& config, util::Rng& rng);

/// Deterministic building blocks (exposed for tests).
std::vector<float> rotate90(std::span<const float> image, std::size_t size,
                            int quarter_turns);
std::vector<float> mirror_horizontal(std::span<const float> image,
                                     std::size_t size);
std::vector<float> circular_shift(std::span<const float> image,
                                  std::size_t size, int dx, int dy);

}  // namespace fairdms::embed
