#include "embed/autoencoder.hpp"
#include "embed/byol.hpp"
#include "embed/contrastive.hpp"
#include "embed/embedder.hpp"
#include "util/check.hpp"

namespace fairdms::embed {

std::unique_ptr<Embedder> make_embedder(const std::string& algorithm,
                                        std::size_t image_size,
                                        std::size_t dim, std::uint64_t seed) {
  if (algorithm == "autoencoder") {
    return std::make_unique<AutoencoderEmbedder>(image_size, dim, seed);
  }
  if (algorithm == "contrastive") {
    return std::make_unique<ContrastiveEmbedder>(image_size, dim, seed);
  }
  if (algorithm == "byol") {
    return std::make_unique<ByolEmbedder>(image_size, dim, seed);
  }
  FAIRDMS_CHECK(false, "unknown embedding algorithm: ", algorithm);
  return nullptr;
}

}  // namespace fairdms::embed
