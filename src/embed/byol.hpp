// BYOL embedder (Grill et al. 2020): online network (encoder + projector +
// predictor) regresses the EMA target network's projection of a second view;
// no negative pairs. The stop-gradient lives in byol_loss (gradient flows
// only through the online branch). This is the method the paper lands on for
// Bragg data after the autoencoder failure (§IV): trained with
// physics-inspired augmentations, its embedding is rotation/noise-agnostic.
#pragma once

#include "embed/augment.hpp"
#include "embed/embedder.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fairdms::embed {

class ByolEmbedder final : public Embedder {
 public:
  ByolEmbedder(std::size_t image_size, std::size_t dim, std::uint64_t seed,
               std::size_t hidden = 128, std::size_t projection_dim = 16,
               AugmentConfig augment_config = {}, float target_tau = 0.02f);

  double fit(const Tensor& xs, const EmbedTrainConfig& config) override;
  Tensor embed(const Tensor& xs) override;
  [[nodiscard]] std::size_t embedding_dim() const override { return dim_; }
  [[nodiscard]] std::string name() const override { return "byol"; }

  /// Target-network EMA coefficient (per-step pull toward the online net).
  [[nodiscard]] float target_tau() const { return tau_; }

 private:
  static void build_backbone(nn::Sequential& encoder,
                             nn::Sequential& projector, std::size_t in,
                             std::size_t hidden, std::size_t dim,
                             std::size_t projection_dim, util::Rng& rng);

  std::size_t image_size_;
  std::size_t dim_;
  util::Rng rng_;
  AugmentConfig augment_config_;
  float tau_;
  nn::Sequential online_encoder_;
  nn::Sequential online_projector_;
  nn::Sequential predictor_;
  nn::Sequential target_encoder_;
  nn::Sequential target_projector_;
};

}  // namespace fairdms::embed
