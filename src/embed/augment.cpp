#include "embed/augment.hpp"

#include "util/check.hpp"

namespace fairdms::embed {

std::vector<float> rotate90(std::span<const float> image, std::size_t size,
                            int quarter_turns) {
  FAIRDMS_CHECK(image.size() == size * size, "rotate90: bad image size");
  const int q = ((quarter_turns % 4) + 4) % 4;
  std::vector<float> out(image.begin(), image.end());
  for (int t = 0; t < q; ++t) {
    std::vector<float> next(out.size());
    // (y, x) -> (x, size-1-y): counter-clockwise quarter turn.
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        next[(size - 1 - x) * size + y] = out[y * size + x];
      }
    }
    out.swap(next);
  }
  return out;
}

std::vector<float> mirror_horizontal(std::span<const float> image,
                                     std::size_t size) {
  FAIRDMS_CHECK(image.size() == size * size, "mirror: bad image size");
  std::vector<float> out(image.size());
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      out[y * size + (size - 1 - x)] = image[y * size + x];
    }
  }
  return out;
}

std::vector<float> circular_shift(std::span<const float> image,
                                  std::size_t size, int dx, int dy) {
  FAIRDMS_CHECK(image.size() == size * size, "shift: bad image size");
  const auto s = static_cast<int>(size);
  std::vector<float> out(image.size());
  for (int y = 0; y < s; ++y) {
    const int sy = ((y + dy) % s + s) % s;
    for (int x = 0; x < s; ++x) {
      const int sx = ((x + dx) % s + s) % s;
      out[static_cast<std::size_t>(sy) * size + static_cast<std::size_t>(sx)] =
          image[static_cast<std::size_t>(y) * size +
                static_cast<std::size_t>(x)];
    }
  }
  return out;
}

std::vector<float> augment(std::span<const float> image, std::size_t size,
                           const AugmentConfig& config, util::Rng& rng) {
  std::vector<float> out(image.begin(), image.end());
  if (config.rotate) {
    const int q = static_cast<int>(rng.uniform_index(4));
    if (q != 0) out = rotate90(out, size, q);
  }
  if (config.mirror && rng.uniform() < 0.5) {
    out = mirror_horizontal(out, size);
  }
  if (config.max_shift > 0) {
    const int span = static_cast<int>(config.max_shift);
    const int dx = static_cast<int>(rng.uniform_index(
                       static_cast<std::uint64_t>(2 * span + 1))) -
                   span;
    const int dy = static_cast<int>(rng.uniform_index(
                       static_cast<std::uint64_t>(2 * span + 1))) -
                   span;
    if (dx != 0 || dy != 0) out = circular_shift(out, size, dx, dy);
  }
  const auto gain =
      static_cast<float>(rng.gaussian(1.0, config.gain_sd));
  for (float& v : out) {
    v = v * gain + static_cast<float>(rng.gaussian(0.0, config.noise_sd));
  }
  return out;
}

}  // namespace fairdms::embed
