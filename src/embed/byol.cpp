#include "embed/byol.hpp"

#include <numeric>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/reshape.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"

namespace fairdms::embed {

void ByolEmbedder::build_backbone(nn::Sequential& encoder,
                                  nn::Sequential& projector, std::size_t in,
                                  std::size_t hidden, std::size_t dim,
                                  std::size_t projection_dim,
                                  util::Rng& rng) {
  encoder.emplace<nn::Flatten>();
  encoder.emplace<nn::Linear>(in, hidden, rng);
  encoder.emplace<nn::ReLU>();
  encoder.emplace<nn::Linear>(hidden, dim, rng);

  projector.emplace<nn::Linear>(dim, dim, rng);
  projector.emplace<nn::ReLU>();
  projector.emplace<nn::Linear>(dim, projection_dim, rng);
}

ByolEmbedder::ByolEmbedder(std::size_t image_size, std::size_t dim,
                           std::uint64_t seed, std::size_t hidden,
                           std::size_t projection_dim,
                           AugmentConfig augment_config, float target_tau)
    : image_size_(image_size),
      dim_(dim),
      rng_(seed),
      augment_config_(augment_config),
      tau_(target_tau) {
  const std::size_t in = image_size * image_size;
  build_backbone(online_encoder_, online_projector_, in, hidden, dim,
                 projection_dim, rng_);
  predictor_.emplace<nn::Linear>(projection_dim, projection_dim, rng_);
  predictor_.emplace<nn::ReLU>();
  predictor_.emplace<nn::Linear>(projection_dim, projection_dim, rng_);

  build_backbone(target_encoder_, target_projector_, in, hidden, dim,
                 projection_dim, rng_);
  // Target starts as an exact copy of the online network.
  target_encoder_.copy_parameters_from(online_encoder_);
  target_projector_.copy_parameters_from(online_projector_);
}

double ByolEmbedder::fit(const Tensor& xs, const EmbedTrainConfig& config) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == image_size_ &&
                    xs.dim(3) == image_size_,
                "ByolEmbedder::fit: bad input ", xs.shape_str());
  const std::size_t n = xs.dim(0);
  const std::size_t s = image_size_;
  nn::Adam enc_opt(online_encoder_, config.learning_rate);
  nn::Adam proj_opt(online_projector_, config.learning_rate);
  nn::Adam pred_opt(predictor_, config.learning_rate);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double last_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < n; begin += config.batch_size) {
      const std::size_t end = std::min(n, begin + config.batch_size);
      const std::size_t b = end - begin;
      Tensor v1({b, 1, s, s});
      Tensor v2({b, 1, s, s});
      const float* px = xs.data();
      for (std::size_t i = 0; i < b; ++i) {
        const std::span<const float> img(px + order[begin + i] * s * s,
                                         s * s);
        const auto a1 = augment(img, s, augment_config_, rng_);
        const auto a2 = augment(img, s, augment_config_, rng_);
        std::copy(a1.begin(), a1.end(), v1.data() + i * s * s);
        std::copy(a2.begin(), a2.end(), v2.data() + i * s * s);
      }

      // Symmetrized BYOL step: each view plays online once.
      double step_loss = 0.0;
      for (int swap = 0; swap < 2; ++swap) {
        const Tensor& online_view = swap == 0 ? v1 : v2;
        const Tensor& target_view = swap == 0 ? v2 : v1;

        enc_opt.zero_grad();
        proj_opt.zero_grad();
        pred_opt.zero_grad();
        const Tensor h = online_encoder_.forward(online_view,
                                                 nn::Mode::kTrain);
        const Tensor z = online_projector_.forward(h, nn::Mode::kTrain);
        const Tensor p = predictor_.forward(z, nn::Mode::kTrain);
        // Target branch in eval mode: stop-gradient by construction.
        const Tensor ht =
            target_encoder_.forward(target_view, nn::Mode::kEval);
        const Tensor zt = target_projector_.forward(ht, nn::Mode::kEval);

        const nn::LossResult loss = nn::byol_loss(p, zt);
        const Tensor gz = predictor_.backward(loss.grad);
        const Tensor gh = online_projector_.backward(gz);
        online_encoder_.backward(gh);
        enc_opt.step();
        proj_opt.step();
        pred_opt.step();
        step_loss += loss.value;
      }
      // EMA target update after the optimizer step.
      target_encoder_.ema_update_from(online_encoder_, tau_);
      target_projector_.ema_update_from(online_projector_, tau_);
      epoch_loss += step_loss / 2.0;
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
  }
  return last_loss;
}

Tensor ByolEmbedder::embed(const Tensor& xs) {
  return online_encoder_.forward(xs, nn::Mode::kEval);
}

}  // namespace fairdms::embed
