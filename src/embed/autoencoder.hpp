// Dense autoencoder embedder: encoder compresses the image to the embedding,
// decoder reconstructs; trained with MSE. This is the paper's first-choice
// embedding for CookieBox data — and its documented failure mode on Bragg
// data (over-sensitivity to pixel-wise differences) is reproduced in
// bench/abl_embedding.
#pragma once

#include "embed/embedder.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fairdms::embed {

class AutoencoderEmbedder final : public Embedder {
 public:
  AutoencoderEmbedder(std::size_t image_size, std::size_t dim,
                      std::uint64_t seed, std::size_t hidden = 128);

  double fit(const Tensor& xs, const EmbedTrainConfig& config) override;
  Tensor embed(const Tensor& xs) override;
  [[nodiscard]] std::size_t embedding_dim() const override { return dim_; }
  [[nodiscard]] std::string name() const override { return "autoencoder"; }

 private:
  std::size_t image_size_;
  std::size_t dim_;
  util::Rng rng_;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
};

}  // namespace fairdms::embed
