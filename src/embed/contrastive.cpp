#include "embed/contrastive.hpp"

#include <numeric>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/reshape.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"

namespace fairdms::embed {

ContrastiveEmbedder::ContrastiveEmbedder(std::size_t image_size,
                                         std::size_t dim, std::uint64_t seed,
                                         std::size_t hidden,
                                         std::size_t projection_dim,
                                         AugmentConfig augment_config,
                                         float temperature)
    : image_size_(image_size),
      dim_(dim),
      rng_(seed),
      augment_config_(augment_config),
      temperature_(temperature) {
  const std::size_t in = image_size * image_size;
  encoder_.emplace<nn::Flatten>();
  encoder_.emplace<nn::Linear>(in, hidden, rng_);
  encoder_.emplace<nn::ReLU>();
  encoder_.emplace<nn::Linear>(hidden, dim, rng_);

  projector_.emplace<nn::Linear>(dim, dim, rng_);
  projector_.emplace<nn::ReLU>();
  projector_.emplace<nn::Linear>(dim, projection_dim, rng_);
}

Tensor ContrastiveEmbedder::two_views(const Tensor& xs,
                                      std::span<const std::size_t> indices) {
  const std::size_t b = indices.size();
  const std::size_t s = image_size_;
  Tensor views({2 * b, 1, s, s});
  float* pv = views.data();
  const float* px = xs.data();
  for (std::size_t i = 0; i < b; ++i) {
    const std::span<const float> img(px + indices[i] * s * s, s * s);
    const auto v1 = augment(img, s, augment_config_, rng_);
    const auto v2 = augment(img, s, augment_config_, rng_);
    std::copy(v1.begin(), v1.end(), pv + i * s * s);
    std::copy(v2.begin(), v2.end(), pv + (b + i) * s * s);
  }
  return views;
}

double ContrastiveEmbedder::fit(const Tensor& xs,
                                const EmbedTrainConfig& config) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == image_size_ &&
                    xs.dim(3) == image_size_,
                "ContrastiveEmbedder::fit: bad input ", xs.shape_str());
  const std::size_t n = xs.dim(0);
  FAIRDMS_CHECK(n >= 2, "contrastive training needs >= 2 samples");
  nn::Adam enc_opt(encoder_, config.learning_rate);
  nn::Adam proj_opt(projector_, config.learning_rate);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double last_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin + 1 < n; begin += config.batch_size) {
      const std::size_t end = std::min(n, begin + config.batch_size);
      if (end - begin < 2) break;  // NT-Xent needs >= 2 pairs for negatives
      const std::span<const std::size_t> idx(order.data() + begin,
                                             end - begin);
      const Tensor views = two_views(xs, idx);

      enc_opt.zero_grad();
      proj_opt.zero_grad();
      const Tensor h = encoder_.forward(views, nn::Mode::kTrain);
      const Tensor z = projector_.forward(h, nn::Mode::kTrain);
      const nn::LossResult loss = nn::nt_xent_loss(z, temperature_);
      const Tensor gh = projector_.backward(loss.grad);
      encoder_.backward(gh);
      enc_opt.step();
      proj_opt.step();
      epoch_loss += loss.value;
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
  }
  return last_loss;
}

Tensor ContrastiveEmbedder::embed(const Tensor& xs) {
  return encoder_.forward(xs, nn::Mode::kEval);
}

}  // namespace fairdms::embed
