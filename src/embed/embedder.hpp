// Embedder interface (paper §II-C): fairDMS ships autoencoder, contrastive
// and BYOL embedding methods behind one interface; users select per
// application or extend it with their own algorithm.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.hpp"

namespace fairdms::embed {

using tensor::Tensor;

struct EmbedTrainConfig {
  std::size_t epochs = 8;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
};

class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Trains the representation on unlabeled images xs [N, 1, S, S].
  /// Returns the final training-objective value (algorithm-specific scale).
  virtual double fit(const Tensor& xs, const EmbedTrainConfig& config) = 0;

  /// Embeds images [N, 1, S, S] -> [N, embedding_dim()] (eval mode).
  virtual Tensor embed(const Tensor& xs) = 0;

  [[nodiscard]] virtual std::size_t embedding_dim() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory: "autoencoder" | "contrastive" | "byol". `image_size` is the
/// square side S; `dim` the embedding width.
std::unique_ptr<Embedder> make_embedder(const std::string& algorithm,
                                        std::size_t image_size,
                                        std::size_t dim, std::uint64_t seed);

}  // namespace fairdms::embed
