// SimCLR-style contrastive embedder: two augmented views per sample, encoder
// + projection head, NT-Xent objective over the 2B projections. The encoder
// output (pre-projection) is the embedding, per SimCLR practice.
#pragma once

#include "embed/augment.hpp"
#include "embed/embedder.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fairdms::embed {

class ContrastiveEmbedder final : public Embedder {
 public:
  ContrastiveEmbedder(std::size_t image_size, std::size_t dim,
                      std::uint64_t seed, std::size_t hidden = 128,
                      std::size_t projection_dim = 16,
                      AugmentConfig augment_config = {},
                      float temperature = 0.5f);

  double fit(const Tensor& xs, const EmbedTrainConfig& config) override;
  Tensor embed(const Tensor& xs) override;
  [[nodiscard]] std::size_t embedding_dim() const override { return dim_; }
  [[nodiscard]] std::string name() const override { return "contrastive"; }

 private:
  /// Builds [2B, 1, S, S]: rows [0,B) are view-1, rows [B,2B) view-2.
  Tensor two_views(const Tensor& xs, std::span<const std::size_t> indices);

  std::size_t image_size_;
  std::size_t dim_;
  util::Rng rng_;
  AugmentConfig augment_config_;
  float temperature_;
  nn::Sequential encoder_;
  nn::Sequential projector_;
};

}  // namespace fairdms::embed
