// fairDS — the FAIR data service (paper §II-A, Fig. 3).
//
// System plane: train the self-supervised embedding model on historical
// images, cluster the embedding space with k-means (K chosen by the elbow
// method when not fixed), and keep the labeled history in the document store
// with each sample's embedding and cluster id. Monitor clustering certainty
// (fuzzy k-means) and retrain embedding + clustering + re-ingest when
// certainty drops below threshold.
//
// User plane: given unlabeled input data, compute its cluster-PDF
// (`distribution`), retrieve a PDF-matched labeled dataset from history
// (`lookup`), or reuse labels per-sample with a distance threshold and fall
// back to a caller-provided conventional labeler (`lookup_or_label`,
// the Fig. 9 workload).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fuzzy.hpp"
#include "cluster/kmeans.hpp"
#include "embed/embedder.hpp"
#include "fairds/reuse_index.hpp"
#include "nn/trainer.hpp"
#include "store/docstore.hpp"
#include "util/rng.hpp"

namespace fairdms::fairds {

using tensor::Tensor;

struct FairDSConfig {
  std::string embedding_algorithm = "byol";
  std::size_t embedding_dim = 16;
  std::size_t image_size = 15;        ///< square image side
  std::size_t n_clusters = 0;         ///< 0 => elbow method
  std::size_t elbow_k_min = 4;
  std::size_t elbow_k_max = 18;
  embed::EmbedTrainConfig embed_train;
  double certainty_threshold = 0.8;   ///< Fig. 16's 80% retrain trigger
  /// Fuzzy-k-means fuzziness (m). Lower = crisper memberships. 1.35 makes
  /// "assigned with >= 50% confidence" a meaningful in-distribution signal
  /// for K in the 8-15 range; the classic m = 2 is far too soft there.
  double fuzziness = 1.35;
  std::uint64_t seed = 42;
  std::string collection = "fairds_samples";
};

/// Outcome of the per-sample reuse path (Fig. 9).
struct ReuseStats {
  std::size_t reused = 0;    ///< labels retrieved from history
  std::size_t computed = 0;  ///< labels computed by the fallback labeler
};

class FairDS {
 public:
  FairDS(FairDSConfig config, store::DocStore& db);

  // --- system plane --------------------------------------------------------

  /// Trains the embedding model and the clustering model on historical
  /// images [N, 1, S, S]. Must run before ingest/lookup.
  void train_system(const Tensor& historical_xs);

  /// Embeds, clusters, and stores labeled samples (xs [N,1,S,S], ys [N,L])
  /// under `dataset_id`. Requires a trained system.
  void ingest(const Tensor& xs, const Tensor& ys,
              const std::string& dataset_id);

  /// Fuzzy-k-means certainty of the current clustering on a dataset, in
  /// [0, 1] (fraction of samples assigned with >= 50% membership).
  [[nodiscard]] double certainty(const Tensor& xs) const;

  /// The uncertainty-triggered update: if certainty(new_xs) falls below the
  /// configured threshold, retrain embedding + clustering on all stored
  /// images plus new_xs, re-assign stored samples, and return true.
  bool maybe_retrain(const Tensor& new_xs);

  // --- user plane ----------------------------------------------------------

  /// Embeds images [N,1,S,S] -> [N, dim].
  [[nodiscard]] Tensor embed(const Tensor& xs) const;

  /// Cluster-PDF of a dataset — the representation used for store lookups
  /// and for indexing models in the Zoo.
  [[nodiscard]] std::vector<double> distribution(const Tensor& xs) const;

  /// Retrieves |xs| labeled samples from history whose cluster distribution
  /// matches the input's PDF (sampling per-cluster counts from the PDF).
  [[nodiscard]] nn::Batchset lookup(const Tensor& xs,
                                    std::uint64_t seed) const;

  /// Per-sample reuse: for each input, the nearest stored sample within its
  /// cluster is reused when its embedding distance is below `threshold`;
  /// otherwise `fallback_labeler` computes the label ([M,1,S,S] -> [M,L]).
  /// Nearest-neighbor search runs on the in-memory reuse index; winning
  /// documents are fetched in one batched, field-projected store read. On
  /// an empty store every sample routes to the fallback labeler and the
  /// label width is inferred from its output (cold start).
  nn::Batchset lookup_or_label(
      const Tensor& xs, double threshold,
      const std::function<Tensor(const Tensor&)>& fallback_labeler,
      ReuseStats* stats = nullptr) const;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] bool trained() const { return embedder_ != nullptr; }
  [[nodiscard]] const cluster::KMeansModel& clusters() const;
  [[nodiscard]] std::size_t stored_count() const;
  [[nodiscard]] std::size_t n_clusters() const;
  [[nodiscard]] std::size_t retrain_count() const { return retrains_; }
  [[nodiscard]] const FairDSConfig& config() const { return config_; }
  /// The in-memory per-cluster embedding index backing lookup_or_label.
  [[nodiscard]] const ReuseIndex& reuse_index() const { return reuse_index_; }

 private:
  void train_system_impl(const Tensor& xs, std::uint64_t seed);
  /// Rebuilds the reuse index from the stored `cluster`/`embedding` fields
  /// (used when models change but stored assignments are authoritative).
  void rebuild_index_from_store();
  /// All stored images as [N, 1, S, S] (system-plane retraining input).
  [[nodiscard]] Tensor stored_images() const;
  /// Images of `ids`, row i from ids[i], via one batched projected read.
  [[nodiscard]] Tensor images_for(const std::vector<store::DocId>& ids) const;
  [[nodiscard]] nn::Batchset fetch_samples(
      const std::vector<store::DocId>& ids) const;
  [[nodiscard]] std::size_t label_width() const;

  FairDSConfig config_;
  store::DocStore* db_;
  store::Collection* samples_;
  std::unique_ptr<embed::Embedder> embedder_;
  std::optional<cluster::KMeansModel> kmeans_;
  ReuseIndex reuse_index_;
  /// Label width of ingested samples; 0 until known (set on first ingest,
  /// re-derived from the store when a FairDS is built over existing data).
  /// Atomic because const read paths may fill the cache concurrently.
  mutable std::atomic<std::size_t> label_width_{0};
  mutable util::Rng rng_;
  std::size_t retrains_ = 0;
};

}  // namespace fairdms::fairds
