// fairDS — the FAIR data service (paper §II-A, Fig. 3).
//
// System plane: train the self-supervised embedding model on historical
// images, cluster the embedding space with k-means (K chosen by the elbow
// method when not fixed), and keep the labeled history in the document store
// with each sample's embedding and cluster id. Monitor clustering certainty
// (fuzzy k-means) and retrain embedding + clustering + re-ingest when
// certainty drops below threshold.
//
// User plane: given unlabeled input data, compute its cluster-PDF
// (`distribution`), retrieve a PDF-matched labeled dataset from history
// (`lookup`), or reuse labels per-sample with a distance threshold and fall
// back to a caller-provided conventional labeler (`lookup_or_label`,
// the Fig. 9 workload).
//
// Concurrency model (two planes, one atomic seam): the system plane
// (train_system / ingest / maybe_retrain) mutates master state under an
// internal mutex and, on completion, publishes an immutable fairds::Snapshot
// via atomic swap. The user-plane methods are thin wrappers that load the
// current snapshot and run on it — lock-free, any number of threads, and
// never blocked by (or observing a torn view of) an in-flight retrain.
// Callers that need cross-call consistency (e.g. embed + distribution of
// the same batch against one model version) should grab snapshot() once
// and call through it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/kmeans.hpp"
#include "embed/embedder.hpp"
#include "fairds/reuse_index.hpp"
#include "fairds/snapshot.hpp"
#include "nn/trainer.hpp"
#include "store/docstore.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::fairds {

using tensor::Tensor;

struct FairDSConfig {
  std::string embedding_algorithm = "byol";
  std::size_t embedding_dim = 16;
  std::size_t image_size = 15;        ///< square image side
  std::size_t n_clusters = 0;         ///< 0 => elbow method
  std::size_t elbow_k_min = 4;
  std::size_t elbow_k_max = 18;
  embed::EmbedTrainConfig embed_train;
  double certainty_threshold = 0.8;   ///< Fig. 16's 80% retrain trigger
  /// Fuzzy-k-means fuzziness (m). Lower = crisper memberships. 1.35 makes
  /// "assigned with >= 50% confidence" a meaningful in-distribution signal
  /// for K in the 8-15 range; the classic m = 2 is far too soft there.
  double fuzziness = 1.35;
  std::uint64_t seed = 42;
  std::string collection = "fairds_samples";
  /// Shard count for the sample collection (created on construction);
  /// 0 => the DocStore's default. More shards let concurrent ingest and
  /// store reads proceed in parallel (detector-rate streaming); 1 keeps
  /// the single-lock store. Ignored when the collection already exists.
  std::size_t store_shards = 0;
  /// Storage engine for the sample collection; nullopt => the DocStore's
  /// configured engine (with the store root directory + collection name).
  /// When set, `storage->directory` is used verbatim as the collection's
  /// data directory. Ignored when the collection already exists.
  std::optional<store::StorageEngineConfig> storage;
};

/// Outcome of the per-sample reuse path (Fig. 9).
struct ReuseStats {
  std::size_t reused = 0;    ///< labels retrieved from history
  std::size_t computed = 0;  ///< labels computed by the fallback labeler
};

class FairDS {
 public:
  FairDS(FairDSConfig config, store::DocStore& db);

  // --- system plane (serialized by an internal mutex) ----------------------

  /// Trains the embedding model and the clustering model on historical
  /// images [N, 1, S, S], then publishes the first snapshot. Must run
  /// before ingest/lookup.
  void train_system(const Tensor& historical_xs);

  /// Embeds, clusters, and stores labeled samples (xs [N,1,S,S], ys [N,L])
  /// under `dataset_id`, then publishes a refreshed snapshot. Requires a
  /// trained system.
  void ingest(const Tensor& xs, const Tensor& ys,
              const std::string& dataset_id);

  /// The uncertainty-triggered update: if certainty(new_xs) falls below the
  /// configured threshold, retrain embedding + clustering on all stored
  /// images plus new_xs, re-assign stored samples, publish the new
  /// snapshot, and return true. Concurrent queries keep running against
  /// the previous snapshot until the swap.
  bool maybe_retrain(const Tensor& new_xs);
  /// Same check against an explicit threshold instead of the configured
  /// one — the hook a per-stream RetrainPolicy (service layer) uses to
  /// give each tenant its own trigger sensitivity over a shared FairDS
  /// implementation. A threshold above 1.0 retrains unconditionally.
  bool maybe_retrain(const Tensor& new_xs, double certainty_threshold);

  // --- user plane (lock-free snapshot wrappers) ----------------------------

  /// The current published model snapshot. Queries running against a
  /// snapshot are unaffected by later system-plane publishes.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;

  /// Fuzzy-k-means certainty of the current clustering on a dataset, in
  /// [0, 1] (fraction of samples assigned with >= 50% membership).
  [[nodiscard]] double certainty(const Tensor& xs) const;

  /// Embeds images [N,1,S,S] -> [N, dim].
  [[nodiscard]] Tensor embed(const Tensor& xs) const;

  /// Cluster-PDF of a dataset — the representation used for store lookups
  /// and for indexing models in the Zoo.
  [[nodiscard]] std::vector<double> distribution(const Tensor& xs) const;

  /// Retrieves |xs| labeled samples from history whose cluster distribution
  /// matches the input's PDF (sampling per-cluster counts from the PDF).
  /// All randomness derives from the explicit per-call seed.
  [[nodiscard]] nn::Batchset lookup(const Tensor& xs,
                                    std::uint64_t seed) const;

  /// Per-sample reuse: for each input, the nearest stored sample within its
  /// cluster is reused when its embedding distance is below `threshold`;
  /// otherwise `fallback_labeler` computes the label ([M,1,S,S] -> [M,L]).
  /// Nearest-neighbor search runs on the snapshot's reuse index; winning
  /// documents are fetched in one batched, field-projected store read. On
  /// an empty store every sample routes to the fallback labeler and the
  /// label width is inferred from its output (cold start).
  nn::Batchset lookup_or_label(
      const Tensor& xs, double threshold,
      const std::function<Tensor(const Tensor&)>& fallback_labeler,
      ReuseStats* stats = nullptr) const;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] bool trained() const { return snapshot() != nullptr; }
  /// References returned by clusters()/reuse_index() point into the current
  /// snapshot and stay valid until the *next* system-plane publish; hold
  /// snapshot() instead when a retrain may run concurrently.
  [[nodiscard]] const cluster::KMeansModel& clusters() const;
  [[nodiscard]] const ReuseIndex& reuse_index() const;
  [[nodiscard]] std::size_t stored_count() const;
  /// Shard count of the backing sample collection.
  [[nodiscard]] std::size_t store_shards() const;
  /// Storage engine of the backing sample collection ("mem" | "log").
  [[nodiscard]] const char* storage_engine() const;
  [[nodiscard]] std::size_t n_clusters() const;
  [[nodiscard]] std::size_t retrain_count() const {
    return retrains_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const FairDSConfig& config() const { return config_; }

 private:
  void train_system_impl(const Tensor& xs, std::uint64_t seed)
      REQUIRES(system_mutex_);
  /// Rebuilds the reuse index from the stored `cluster`/`embedding` fields
  /// (used when models change but stored assignments are authoritative).
  void rebuild_index_from_store() REQUIRES(system_mutex_);
  /// Copies the master state into an immutable Snapshot and atomically
  /// swaps it in. Caller must hold system_mutex_ (compiler-checked).
  void publish_snapshot_locked() REQUIRES(system_mutex_);
  /// Certainty against the *master* state (inside a system-plane op, where
  /// the master may already be ahead of the published snapshot).
  [[nodiscard]] double certainty_locked(const Tensor& xs) const
      REQUIRES(system_mutex_);
  /// Images of `ids`, row i from ids[i], via one batched projected read.
  [[nodiscard]] Tensor images_for(const std::vector<store::DocId>& ids) const;
  [[nodiscard]] std::shared_ptr<const Snapshot> require_snapshot(
      const char* what) const;

  FairDSConfig config_;
  store::DocStore* db_;
  store::Collection* samples_;

  /// Master state, written only under system_mutex_. The embedder is shared
  /// with published snapshots and never refit in place: retraining replaces
  /// the pointer with a freshly trained embedder.
  util::Mutex system_mutex_{util::LockRank::kSystemPlane};
  std::shared_ptr<embed::Embedder> embedder_ GUARDED_BY(system_mutex_);
  std::optional<cluster::KMeansModel> kmeans_ GUARDED_BY(system_mutex_);
  ReuseIndex reuse_index_ GUARDED_BY(system_mutex_);
  /// Label width of ingested samples; 0 until known (set on first ingest,
  /// re-derived from the store when a FairDS is built over existing data).
  std::size_t label_width_ GUARDED_BY(system_mutex_) = 0;
  std::uint64_t version_ GUARDED_BY(system_mutex_) = 0;

  /// The published snapshot (null until train_system). Lock-free readers.
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::atomic<std::size_t> retrains_{0};
};

}  // namespace fairdms::fairds
