#include "fairds/reuse_baseline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fairds/field_codec.hpp"
#include "util/check.hpp"

namespace fairdms::fairds {

namespace {

std::size_t scan_label_width(const store::Collection& samples) {
  std::size_t width = 0;
  samples.scan([&](store::DocId, const store::Value& doc) {
    if (width == 0) {
      width = decode_floats(doc.at("y").as_binary()).size();
    }
  });
  FAIRDMS_CHECK(width > 0, "FairDS: no stored samples to infer label width");
  return width;
}

}  // namespace

nn::Batchset legacy_lookup_or_label(
    const FairDS& ds, store::DocStore& db, const tensor::Tensor& xs,
    double threshold,
    const std::function<tensor::Tensor(const tensor::Tensor&)>&
        fallback_labeler,
    ReuseStats* stats) {
  using tensor::Tensor;
  FAIRDMS_CHECK(ds.trained(), "FairDS::lookup_or_label before train_system");
  const FairDSConfig& config = ds.config();
  store::Collection& samples = db.collection(config.collection);
  const std::size_t n = xs.dim(0);
  const std::size_t pixels = config.image_size * config.image_size;
  const Tensor embeddings = ds.embed(xs);
  const auto assignments = ds.clusters().assign_batch(embeddings);

  // Two-level search: cluster members first, then nearest-by-embedding
  // within the cluster — one find_eq and one find_by_id *per member*.
  std::vector<std::size_t> fallback_rows;
  nn::Batchset out;
  out.xs = xs;
  out.ys = Tensor({n, scan_label_width(samples)});
  const std::size_t label_w = out.ys.dim(1);

  for (std::size_t i = 0; i < n; ++i) {
    const auto members = samples.find_eq(
        "cluster", store::Value(static_cast<std::int64_t>(assignments[i])));
    double best = std::numeric_limits<double>::infinity();
    store::DocId best_id = 0;
    std::vector<float> best_x;
    std::vector<float> best_y;
    const float* e = embeddings.data() + i * config.embedding_dim;
    for (store::DocId id : members) {
      const auto doc = samples.find_by_id(id);
      if (!doc.has_value()) continue;
      const auto emb = decode_floats(doc->at("embedding").as_binary());
      double d = 0.0;
      for (std::size_t j = 0; j < emb.size(); ++j) {
        const double diff = static_cast<double>(e[j]) - emb[j];
        d += diff * diff;
      }
      d = std::sqrt(d);
      if (d < best) {
        best = d;
        best_id = id;
        best_x = decode_floats(doc->at("x").as_binary());
        best_y = decode_floats(doc->at("y").as_binary());
      }
    }
    if (best_id != 0 && best < threshold) {
      FAIRDMS_CHECK(best_y.size() == label_w, "stored label width mismatch");
      FAIRDMS_CHECK(best_x.size() == pixels, "stored image size mismatch");
      std::copy(best_x.begin(), best_x.end(), out.xs.data() + i * pixels);
      std::copy(best_y.begin(), best_y.end(), out.ys.data() + i * label_w);
      if (stats != nullptr) ++stats->reused;
    } else {
      fallback_rows.push_back(i);
    }
  }

  if (!fallback_rows.empty()) {
    Tensor pending({fallback_rows.size(), 1, config.image_size,
                    config.image_size});
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(xs.data() + fallback_rows[j] * pixels, pixels,
                  pending.data() + j * pixels);
    }
    const Tensor computed = fallback_labeler(pending);
    FAIRDMS_CHECK(computed.rank() == 2 &&
                      computed.dim(0) == fallback_rows.size() &&
                      computed.dim(1) == label_w,
                  "fallback labeler returned wrong shape");
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(computed.data() + j * label_w, label_w,
                  out.ys.data() + fallback_rows[j] * label_w);
    }
    if (stats != nullptr) stats->computed += fallback_rows.size();
  }
  return out;
}

}  // namespace fairdms::fairds
