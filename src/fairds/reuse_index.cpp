#include "fairds/reuse_index.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::fairds {

namespace {
/// Distances accumulate in blocks of this many dimensions between pruning
/// checks: big enough to keep the inner loop tight, small enough that a
/// hopeless candidate is abandoned after a fraction of a wide row.
constexpr std::size_t kPruneBlock = 8;
}  // namespace

void ReuseIndex::reset(std::size_t dim) {
  FAIRDMS_CHECK(dim > 0, "ReuseIndex::reset: dim must be positive");
  dim_ = dim;
  clusters_.clear();
}

void ReuseIndex::mark_shared() {
  for (Slot& slot : clusters_) {
    if (slot.rows != nullptr) slot.shared = true;
  }
}

ReuseIndex::ClusterRows& ReuseIndex::detach(std::size_t cluster) {
  Slot& slot = clusters_[cluster];
  if (slot.rows == nullptr) {
    slot.rows = std::make_shared<ClusterRows>();
  } else if (slot.shared) {
    // Possibly held by a published copy: clone before writing. Blocks
    // created (or cloned) after the last mark_shared() are unflagged and
    // provably unobservable by any copy, so those mutate in place.
    slot.rows = std::make_shared<ClusterRows>(*slot.rows);
  }
  slot.shared = false;
  return *slot.rows;
}

void ReuseIndex::add(std::size_t cluster, store::DocId id,
                     std::span<const float> embedding) {
  FAIRDMS_CHECK(dim_ > 0, "ReuseIndex::add before reset");
  FAIRDMS_CHECK(embedding.size() == dim_, "ReuseIndex::add: embedding has ",
                embedding.size(), " dims, index expects ", dim_);
  FAIRDMS_CHECK(id != 0, "ReuseIndex::add: id 0 is the not-found sentinel");
  FAIRDMS_CHECK(cluster < std::numeric_limits<std::size_t>::max(),
                "ReuseIndex::add: cluster id overflow");
  if (cluster >= clusters_.size()) clusters_.resize(cluster + 1);
  ClusterRows& rows = detach(cluster);
  rows.rows.insert(rows.rows.end(), embedding.begin(), embedding.end());
  rows.ids.push_back(id);
}

ReuseIndex::Neighbor ReuseIndex::nearest(std::size_t cluster,
                                         std::span<const float> query) const {
  FAIRDMS_CHECK(query.size() == dim_, "ReuseIndex::nearest: query has ",
                query.size(), " dims, index expects ", dim_);
  Neighbor best;
  if (cluster >= clusters_.size() || clusters_[cluster].rows == nullptr) {
    return best;
  }
  const ClusterRows& rows = *clusters_[cluster].rows;
  for (std::size_t r = 0; r < rows.ids.size(); ++r) {
    const float* row = rows.rows.data() + r * dim_;
    double d = 0.0;
    std::size_t j = 0;
    while (j < dim_) {
      const std::size_t stop = std::min(dim_, j + kPruneBlock);
      for (; j < stop; ++j) {
        const double diff =
            static_cast<double>(query[j]) - static_cast<double>(row[j]);
        d += diff * diff;
      }
      // Partial pruning: the sum only grows, so once it reaches the current
      // best this row cannot win (winners need a strictly smaller total).
      if (d >= best.dist2) break;
    }
    if (j == dim_ && d < best.dist2) {
      best.dist2 = d;
      best.id = rows.ids[r];
    }
  }
  return best;
}

std::vector<ReuseIndex::Neighbor> ReuseIndex::nearest_batch(
    std::span<const float> queries,
    std::span<const std::size_t> clusters) const {
  FAIRDMS_CHECK(dim_ > 0, "ReuseIndex::nearest_batch before reset");
  FAIRDMS_CHECK(queries.size() == clusters.size() * dim_,
                "ReuseIndex::nearest_batch: ", queries.size(),
                " floats for ", clusters.size(), " queries of dim ", dim_);
  std::vector<Neighbor> out(clusters.size());
  util::parallel_for(
      clusters.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = nearest(clusters[i],
                           queries.subspan(i * dim_, dim_));
        }
      },
      /*min_grain=*/4);
  return out;
}

std::size_t ReuseIndex::size() const {
  std::size_t total = 0;
  for (const Slot& slot : clusters_) {
    if (slot.rows != nullptr) total += slot.rows->ids.size();
  }
  return total;
}

std::size_t ReuseIndex::cluster_size(std::size_t cluster) const {
  if (cluster >= clusters_.size() || clusters_[cluster].rows == nullptr) {
    return 0;
  }
  return clusters_[cluster].rows->ids.size();
}

std::span<const store::DocId> ReuseIndex::cluster_ids(
    std::size_t cluster) const {
  if (cluster >= clusters_.size() || clusters_[cluster].rows == nullptr) {
    return {};
  }
  return clusters_[cluster].rows->ids;
}

}  // namespace fairdms::fairds
