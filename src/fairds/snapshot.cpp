#include "fairds/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "cluster/fuzzy.hpp"
#include "fairds/fairds.hpp"
#include "fairds/field_codec.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fairdms::fairds {

Snapshot::Snapshot(const FairDSConfig& config,
                   std::shared_ptr<embed::Embedder> embedder,
                   cluster::KMeansModel kmeans,
                   std::shared_ptr<const ReuseIndex> index,
                   std::size_t label_width, store::Collection* samples,
                   std::uint64_t version)
    : embedder_(std::move(embedder)),
      kmeans_(std::move(kmeans)),
      index_(std::move(index)),
      samples_(samples),
      image_size_(config.image_size),
      embedding_dim_(config.embedding_dim),
      fuzziness_(config.fuzziness),
      version_(version),
      label_width_(label_width) {
  FAIRDMS_CHECK(embedder_ != nullptr && index_ != nullptr &&
                    samples_ != nullptr,
                "Snapshot: incomplete state");
}

std::size_t Snapshot::embedding_dim() const { return embedding_dim_; }

std::size_t Snapshot::image_size() const { return image_size_; }

Tensor Snapshot::embed(const Tensor& xs) const {
  // Eval-mode inference only: the shipped embedders mutate no layer state
  // outside kTrain, so concurrent embeds on the shared embedder are safe.
  return embedder_->embed(xs);
}

std::vector<double> Snapshot::distribution(const Tensor& xs) const {
  return kmeans_.cluster_pdf(embed(xs));
}

double Snapshot::certainty(const Tensor& xs) const {
  cluster::FuzzyConfig fuzzy;
  fuzzy.fuzziness = fuzziness_;
  return cluster::dataset_certainty(kmeans_, embed(xs), fuzzy);
}

std::size_t Snapshot::label_width() const {
  std::size_t width = label_width_.load(std::memory_order_relaxed);
  if (width != 0) return width;
  // Unknown width (snapshot built over a pre-existing collection): derive
  // it from any stored sample once and cache it.
  samples_->scan([&](store::DocId, const store::Value& doc) {
    if (width == 0) {
      width = decode_floats(doc.at("y").as_binary()).size();
    }
  });
  FAIRDMS_CHECK(width > 0, "FairDS: no stored samples to infer label width");
  label_width_.store(width, std::memory_order_relaxed);
  return width;
}

nn::Batchset Snapshot::fetch_samples(
    const std::vector<store::DocId>& ids) const {
  FAIRDMS_CHECK(!ids.empty(), "Snapshot::fetch_samples: empty id list");
  const std::size_t pixels = image_size_ * image_size_;
  const auto docs = samples_->find_many(ids, kXYFields);
  nn::Batchset out;
  bool first = true;
  std::size_t label_w = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    FAIRDMS_CHECK(docs[i].has_value(), "FairDS: stored sample vanished");
    const auto x = decode_floats(docs[i]->at("x").as_binary());
    const auto y = decode_floats(docs[i]->at("y").as_binary());
    if (first) {
      label_w = y.size();
      out.xs = Tensor({ids.size(), 1, image_size_, image_size_});
      out.ys = Tensor({ids.size(), label_w});
      first = false;
    }
    FAIRDMS_CHECK(x.size() == pixels && y.size() == label_w,
                  "FairDS: inconsistent stored sample shapes");
    std::copy(x.begin(), x.end(), out.xs.data() + i * pixels);
    std::copy(y.begin(), y.end(), out.ys.data() + i * label_w);
  }
  return out;
}

nn::Batchset Snapshot::lookup(const Tensor& xs, std::uint64_t seed) const {
  FAIRDMS_CHECK(index_->size() > 0, "FairDS::lookup on empty store");
  const std::size_t n = xs.dim(0);
  const std::vector<double> pdf = distribution(xs);
  util::Rng rng(seed);

  // Integer per-cluster counts that sum to n (largest remainders).
  const std::size_t k = pdf.size();
  std::vector<std::size_t> want(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = pdf[c] * static_cast<double>(n);
    want[c] = static_cast<std::size_t>(exact);
    assigned += want[c];
    remainders.emplace_back(exact - std::floor(exact), c);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < n && i < remainders.size(); ++i) {
    ++want[remainders[i].second];
    ++assigned;
  }

  // Draw randomly from each cluster's indexed members (with replacement
  // when a cluster is under-populated); clusters absent from the index
  // spill into a global pool of every indexed id (ascending, so draws are
  // a pure function of snapshot + seed).
  std::vector<store::DocId> chosen;
  chosen.reserve(n);
  std::vector<store::DocId> global_pool;
  for (std::size_t c = 0; c < k; ++c) {
    if (want[c] == 0) continue;
    const std::span<const store::DocId> members = index_->cluster_ids(c);
    if (members.empty()) {
      if (global_pool.empty()) {
        for (std::size_t cc = 0; cc < index_->cluster_count(); ++cc) {
          const auto ids = index_->cluster_ids(cc);
          global_pool.insert(global_pool.end(), ids.begin(), ids.end());
        }
        std::sort(global_pool.begin(), global_pool.end());
      }
      for (std::size_t i = 0; i < want[c]; ++i) {
        chosen.push_back(global_pool[rng.uniform_index(global_pool.size())]);
      }
      continue;
    }
    for (std::size_t i = 0; i < want[c]; ++i) {
      chosen.push_back(members[rng.uniform_index(members.size())]);
    }
  }
  return fetch_samples(chosen);
}

nn::Batchset Snapshot::lookup_or_label(
    const Tensor& xs, double threshold,
    const std::function<Tensor(const Tensor&)>& fallback_labeler,
    ReuseStats* stats) const {
  const std::size_t n = xs.dim(0);
  const std::size_t pixels = image_size_ * image_size_;
  nn::Batchset out;
  out.xs = xs;

  // Cold start: with no indexed history every sample routes to the fallback
  // labeler and the label width comes from its output.
  if (index_->size() == 0) {
    const Tensor computed = fallback_labeler(xs);
    FAIRDMS_CHECK(computed.rank() == 2 && computed.dim(0) == n,
                  "fallback labeler returned wrong shape");
    out.ys = computed;
    if (stats != nullptr) stats->computed += n;
    return out;
  }

  const Tensor embeddings = embed(xs);
  const auto assignments = kmeans_.assign_batch(embeddings);

  // Two-level search: the k-means assignment picks the cluster, the reuse
  // index finds the nearest stored member — dense floats only, parallel
  // over query rows, no store traffic.
  const auto neighbors = index_->nearest_batch(
      {embeddings.data(), embeddings.numel()}, assignments);

  out.ys = Tensor({n, label_width()});
  const std::size_t label_w = out.ys.dim(1);

  std::vector<std::size_t> reuse_rows;
  std::vector<store::DocId> reuse_ids;
  std::vector<std::size_t> fallback_rows;
  for (std::size_t i = 0; i < n; ++i) {
    const ReuseIndex::Neighbor& nb = neighbors[i];
    if (nb.found() && std::sqrt(nb.dist2) < threshold) {
      reuse_rows.push_back(i);
      reuse_ids.push_back(nb.id);
    } else {
      fallback_rows.push_back(i);
    }
  }

  if (!reuse_rows.empty()) {
    // Paper §III-E: the reused entry is the *historical pair* {p, l(p)} —
    // a consistent image/label pair from the store — not the new image
    // with a borrowed label. One batched projected read fetches every
    // *unique* winning pair (queries often share a nearest neighbor in
    // small clusters; no point fetching and charging the same document
    // once per query).
    std::vector<store::DocId> unique_ids;
    std::unordered_map<store::DocId, std::size_t> doc_slot;
    std::vector<std::size_t> row_slot(reuse_rows.size());
    for (std::size_t j = 0; j < reuse_rows.size(); ++j) {
      const auto [it, inserted] =
          doc_slot.try_emplace(reuse_ids[j], unique_ids.size());
      if (inserted) unique_ids.push_back(reuse_ids[j]);
      row_slot[j] = it->second;
    }
    const auto docs = samples_->find_many(unique_ids, kXYFields);
    std::size_t reused = 0;
    for (std::size_t j = 0; j < reuse_rows.size(); ++j) {
      const std::size_t i = reuse_rows[j];
      const auto& doc = docs[row_slot[j]];
      if (!doc.has_value()) {
        // The winning document was removed from the store after the index
        // row was built; serve the query via the fallback labeler instead
        // of failing the whole batch.
        fallback_rows.push_back(i);
        continue;
      }
      const auto x = decode_floats(doc->at("x").as_binary());
      const auto y = decode_floats(doc->at("y").as_binary());
      FAIRDMS_CHECK(y.size() == label_w, "stored label width mismatch");
      FAIRDMS_CHECK(x.size() == pixels, "stored image size mismatch");
      std::copy(x.begin(), x.end(), out.xs.data() + i * pixels);
      std::copy(y.begin(), y.end(), out.ys.data() + i * label_w);
      ++reused;
    }
    if (stats != nullptr) stats->reused += reused;
    // Vanished-winner rows were appended out of order.
    std::sort(fallback_rows.begin(), fallback_rows.end());
  }

  if (!fallback_rows.empty()) {
    Tensor pending({fallback_rows.size(), 1, image_size_, image_size_});
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(xs.data() + fallback_rows[j] * pixels, pixels,
                  pending.data() + j * pixels);
    }
    const Tensor computed = fallback_labeler(pending);
    FAIRDMS_CHECK(computed.rank() == 2 &&
                      computed.dim(0) == fallback_rows.size() &&
                      computed.dim(1) == label_w,
                  "fallback labeler returned wrong shape");
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(computed.data() + j * label_w, label_w,
                  out.ys.data() + fallback_rows[j] * label_w);
    }
    if (stats != nullptr) stats->computed += fallback_rows.size();
  }
  return out;
}

}  // namespace fairdms::fairds
