// Immutable fairDS model snapshot — the unit of publication between the
// system plane and the user plane (paper §II-A; serving framing of the
// FAIR-models follow-up, arXiv:2207.00611).
//
// A Snapshot captures everything a query needs — embedder, k-means model,
// reuse index, label width, config — at one consistent model version. All
// user-plane operations (embed / distribution / certainty / lookup /
// lookup_or_label) are pure functions of a snapshot plus per-call inputs
// (an explicit seed where sampling is involved), so any number of threads
// can query one snapshot concurrently without locks while the system plane
// trains the next version off to the side and publishes it with an atomic
// swap (FairDS::snapshot()).
//
// Thread-safety contract:
//  * Every method on a published Snapshot is safe to call concurrently.
//    The embedder is only ever run in eval mode, which mutates no layer
//    state; the k-means model and reuse index are owned copies that are
//    never written after construction.
//  * The backing document store collection is internally synchronized
//    (shared_mutex), so concurrent batched reads against it are safe even
//    while the system plane re-assigns stored samples — snapshots only read
//    the immutable `x`/`y` fields, never the mutable `cluster`/`embedding`
//    assignment fields.
//  * A snapshot can outlive the FairDS state that produced it: readers
//    holding the shared_ptr keep querying the old model version while (or
//    after) a retrain publishes a new one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/kmeans.hpp"
#include "embed/embedder.hpp"
#include "fairds/reuse_index.hpp"
#include "nn/trainer.hpp"
#include "store/docstore.hpp"

namespace fairdms::fairds {

using tensor::Tensor;

struct FairDSConfig;
struct ReuseStats;

class Snapshot {
 public:
  /// Built by FairDS under its system-plane lock; `embedder` must already be
  /// trained and is shared (never refit — retraining builds a new embedder),
  /// `index` is an immutable copy of the reuse index at publish time.
  Snapshot(const FairDSConfig& config,
           std::shared_ptr<embed::Embedder> embedder,
           cluster::KMeansModel kmeans,
           std::shared_ptr<const ReuseIndex> index, std::size_t label_width,
           store::Collection* samples, std::uint64_t version);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  // --- user plane (lock-free, concurrent) ----------------------------------

  /// Embeds images [N,1,S,S] -> [N, dim].
  [[nodiscard]] Tensor embed(const Tensor& xs) const;

  /// Cluster-PDF of a dataset under this snapshot's clustering.
  [[nodiscard]] std::vector<double> distribution(const Tensor& xs) const;

  /// Fuzzy-k-means certainty of this snapshot's clustering on a dataset.
  [[nodiscard]] double certainty(const Tensor& xs) const;

  /// PDF-matched labeled dataset of |xs| samples drawn from the snapshot's
  /// reuse index; `seed` drives all sampling (pure given seed + snapshot).
  [[nodiscard]] nn::Batchset lookup(const Tensor& xs,
                                    std::uint64_t seed) const;

  /// Per-sample reuse against this snapshot's index; misses (and queries on
  /// an empty index) go to `fallback_labeler`. See FairDS::lookup_or_label.
  nn::Batchset lookup_or_label(
      const Tensor& xs, double threshold,
      const std::function<Tensor(const Tensor&)>& fallback_labeler,
      ReuseStats* stats = nullptr) const;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const cluster::KMeansModel& clusters() const {
    return kmeans_;
  }
  [[nodiscard]] const ReuseIndex& reuse_index() const { return *index_; }
  [[nodiscard]] std::size_t n_clusters() const { return kmeans_.k(); }
  /// Monotonic model version: bumped on every system-plane publish.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  /// Label width of stored samples; derived from the store on first use
  /// when unknown at publish time (snapshot over a pre-existing history).
  [[nodiscard]] std::size_t label_width() const;
  /// Rows in this snapshot's reuse index (not the live store count).
  [[nodiscard]] std::size_t indexed_count() const { return index_->size(); }

  [[nodiscard]] std::size_t embedding_dim() const;
  [[nodiscard]] std::size_t image_size() const;

 private:
  [[nodiscard]] nn::Batchset fetch_samples(
      const std::vector<store::DocId>& ids) const;

  std::shared_ptr<embed::Embedder> embedder_;
  cluster::KMeansModel kmeans_;
  std::shared_ptr<const ReuseIndex> index_;
  store::Collection* samples_;
  std::size_t image_size_;
  std::size_t embedding_dim_;
  double fuzziness_;
  std::uint64_t version_;
  /// 0 until known; lazily derived from any stored sample. Racing readers
  /// compute the same value, so a plain atomic store publishes it safely.
  mutable std::atomic<std::size_t> label_width_;
};

}  // namespace fairdms::fairds
