// In-memory embedding index for the fairDS per-sample reuse path (the
// second level of the paper's two-level hierarchical search, §II-A).
//
// The document store holds each sample's embedding as an encoded binary
// field, which made the Fig. 9 reuse workload O(queries x cluster size)
// document fetches + decodes per batch. This index keeps a structure-of-
// arrays mirror of that data — per cluster, a contiguous row-major float
// block of embeddings plus a parallel DocId array — so nearest-neighbor
// search touches only dense floats and returns DocIds; the store is then
// read once, batched, for just the winning documents.
//
// Populated incrementally at FairDS::ingest, rebuilt wholesale when
// maybe_retrain refreshes the embedding/clustering models. Searches use
// squared-distance partial pruning (abandon a candidate as soon as its
// partial sum exceeds the current best) and parallelize over query rows on
// util::ThreadPool. Read-only operations are safe to call concurrently;
// mutation requires external exclusion (FairDS's system plane owns that).
//
// Copies are copy-on-write per cluster: mark_shared() + copy shares the
// per-cluster blocks, and a later mutation on the source detaches (clones)
// only the touched clusters. Snapshot publication therefore costs
// O(clusters) shared-pointer copies per publish — not O(stored rows) — no
// matter how often the system plane publishes during streaming ingest.
// Sharing is tracked explicitly (a per-cluster flag set by mark_shared),
// not by refcount inspection, so writers never touch a block any copy can
// observe and no cross-thread synchronization is needed beyond whatever
// ordering hands the copy to its readers.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "store/docstore.hpp"

namespace fairdms::fairds {

class ReuseIndex {
 public:
  /// Nearest stored row for one query. `id == 0` means the cluster had no
  /// members (DocStore ids start at 1, so 0 is free as a sentinel).
  struct Neighbor {
    store::DocId id = 0;
    double dist2 = std::numeric_limits<double>::infinity();
    [[nodiscard]] bool found() const { return id != 0; }
  };

  ReuseIndex() = default;
  explicit ReuseIndex(std::size_t dim) : dim_(dim) {}

  /// Drops every row and fixes the embedding width for subsequent adds.
  void reset(std::size_t dim);

  /// Appends one (document, embedding) row to `cluster`, growing the
  /// cluster list on demand. `embedding.size()` must equal dim().
  void add(std::size_t cluster, store::DocId id,
           std::span<const float> embedding);

  /// Declares every current block shared with an imminent copy: call right
  /// before copy-constructing this index for a published snapshot. Later
  /// mutations clone the touched clusters instead of writing in place, so
  /// the copy's readers never observe a change.
  void mark_shared();

  /// Nearest row of `cluster` to `query` by squared Euclidean distance.
  /// Ties keep the earliest-added row. Out-of-range clusters are empty.
  [[nodiscard]] Neighbor nearest(std::size_t cluster,
                                 std::span<const float> query) const;

  /// nearest() for every row of `queries` ([N * dim], row-major) against
  /// its per-row cluster, parallelized over the global thread pool.
  [[nodiscard]] std::vector<Neighbor> nearest_batch(
      std::span<const float> queries,
      std::span<const std::size_t> clusters) const;

  [[nodiscard]] std::size_t dim() const { return dim_; }
  /// Total rows across all clusters.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] std::size_t cluster_size(std::size_t cluster) const;
  [[nodiscard]] std::span<const store::DocId> cluster_ids(
      std::size_t cluster) const;

 private:
  struct ClusterRows {
    std::vector<float> rows;       ///< [n * dim_], row-major
    std::vector<store::DocId> ids; ///< parallel to rows
  };
  struct Slot {
    std::shared_ptr<ClusterRows> rows;  ///< null => empty cluster
    /// Set by mark_shared(); a flagged block may be held by a copy and is
    /// cloned (never written in place) on the next mutation.
    bool shared = false;
  };

  /// The cluster's block, writable by this index (cloned first when
  /// flagged shared). Mutators call this before writing.
  ClusterRows& detach(std::size_t cluster);

  std::size_t dim_ = 0;
  std::vector<Slot> clusters_;
};

}  // namespace fairdms::fairds
