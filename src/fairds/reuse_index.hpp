// In-memory embedding index for the fairDS per-sample reuse path (the
// second level of the paper's two-level hierarchical search, §II-A).
//
// The document store holds each sample's embedding as an encoded binary
// field, which made the Fig. 9 reuse workload O(queries x cluster size)
// document fetches + decodes per batch. This index keeps a structure-of-
// arrays mirror of that data — per cluster, a contiguous row-major float
// block of embeddings plus a parallel DocId array — so nearest-neighbor
// search touches only dense floats and returns DocIds; the store is then
// read once, batched, for just the winning documents.
//
// Populated incrementally at FairDS::ingest, rebuilt wholesale when
// maybe_retrain refreshes the embedding/clustering models. Searches use
// squared-distance partial pruning (abandon a candidate as soon as its
// partial sum exceeds the current best) and parallelize over query rows on
// util::ThreadPool. Read-only operations are safe to call concurrently;
// mutation requires external exclusion (FairDS's system plane owns that).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "store/docstore.hpp"

namespace fairdms::fairds {

class ReuseIndex {
 public:
  /// Nearest stored row for one query. `id == 0` means the cluster had no
  /// members (DocStore ids start at 1, so 0 is free as a sentinel).
  struct Neighbor {
    store::DocId id = 0;
    double dist2 = std::numeric_limits<double>::infinity();
    [[nodiscard]] bool found() const { return id != 0; }
  };

  ReuseIndex() = default;
  explicit ReuseIndex(std::size_t dim) : dim_(dim) {}

  /// Drops every row and fixes the embedding width for subsequent adds.
  void reset(std::size_t dim);

  /// Appends one (document, embedding) row to `cluster`, growing the
  /// cluster list on demand. `embedding.size()` must equal dim().
  void add(std::size_t cluster, store::DocId id,
           std::span<const float> embedding);

  /// Nearest row of `cluster` to `query` by squared Euclidean distance.
  /// Ties keep the earliest-added row. Out-of-range clusters are empty.
  [[nodiscard]] Neighbor nearest(std::size_t cluster,
                                 std::span<const float> query) const;

  /// nearest() for every row of `queries` ([N * dim], row-major) against
  /// its per-row cluster, parallelized over the global thread pool.
  [[nodiscard]] std::vector<Neighbor> nearest_batch(
      std::span<const float> queries,
      std::span<const std::size_t> clusters) const;

  [[nodiscard]] std::size_t dim() const { return dim_; }
  /// Total rows across all clusters.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] std::size_t cluster_size(std::size_t cluster) const;
  [[nodiscard]] std::span<const store::DocId> cluster_ids(
      std::size_t cluster) const;

 private:
  struct ClusterRows {
    std::vector<float> rows;       ///< [n * dim_], row-major
    std::vector<store::DocId> ids; ///< parallel to rows
  };

  std::size_t dim_ = 0;
  std::vector<ClusterRows> clusters_;
};

}  // namespace fairdms::fairds
