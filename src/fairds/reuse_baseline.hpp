// The pre-reuse-index implementation of FairDS::lookup_or_label, preserved
// verbatim as a reference baseline.
//
// This is the code path the reuse-index rewrite replaced: for every query
// sample it re-runs a cluster-index lookup, fetches every cluster member's
// full document out of the store one by one (paying the full per-document
// encode/transfer charge each time), and decodes the member's embedding
// just to measure a distance. It exists so that
//   * tests can assert exact result parity between the old and new paths
//     on identical store state, and
//   * bench/abl_retrieval can measure the speedup the rewrite delivers.
// It is implemented purely against the public FairDS / DocStore API.
#pragma once

#include <functional>

#include "fairds/fairds.hpp"

namespace fairdms::fairds {

/// Pre-PR per-sample reuse path over `ds`'s trained models and `db`'s
/// stored history. Same contract as FairDS::lookup_or_label, same
/// O(queries x cluster size) store traffic as the original. Aborts on an
/// empty store (the cold-start bug the rewrite fixed).
nn::Batchset legacy_lookup_or_label(
    const FairDS& ds, store::DocStore& db, const tensor::Tensor& xs,
    double threshold,
    const std::function<tensor::Tensor(const tensor::Tensor&)>&
        fallback_labeler,
    ReuseStats* stats = nullptr);

}  // namespace fairdms::fairds
