#include "fairds/fairds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "store/codec.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace fairdms::fairds {

namespace {

store::Binary encode_floats(std::span<const float> values) {
  static const store::RawCodec codec;
  return codec.encode(values);
}

std::vector<float> decode_floats(const store::Binary& bytes) {
  static const store::RawCodec codec;
  std::vector<float> out;
  codec.decode(bytes, out);
  return out;
}

/// Projection for sample fetches: the image/label pair, nothing else.
const std::vector<std::string> kXYFields = {"x", "y"};

}  // namespace

FairDS::FairDS(FairDSConfig config, store::DocStore& db)
    : config_(std::move(config)),
      db_(&db),
      samples_(&db.collection(config_.collection)),
      rng_(config_.seed) {
  samples_->create_index("cluster");
  samples_->create_index("dataset_id");
}

void FairDS::train_system_impl(const Tensor& xs, std::uint64_t seed) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == config_.image_size &&
                    xs.dim(3) == config_.image_size,
                "FairDS: expected [N,1,", config_.image_size, ",",
                config_.image_size, "], got ", xs.shape_str());
  embedder_ = embed::make_embedder(config_.embedding_algorithm,
                                   config_.image_size, config_.embedding_dim,
                                   seed);
  embedder_->fit(xs, config_.embed_train);
  const Tensor embeddings = embedder_->embed(xs);

  std::size_t k = config_.n_clusters;
  if (k == 0) {
    const auto elbow = cluster::elbow_k(
        embeddings, config_.elbow_k_min,
        std::min(config_.elbow_k_max, embeddings.dim(0)), seed);
    k = elbow.best_k;
    util::log_info("fairDS elbow selected K=", k);
  }
  cluster::KMeansConfig kc;
  kc.k = k;
  kc.seed = seed;
  kmeans_ = cluster::kmeans_fit(embeddings, kc);
}

void FairDS::train_system(const Tensor& historical_xs) {
  train_system_impl(historical_xs, config_.seed);
  // If the collection already holds samples (re-training over an existing
  // history, or a FairDS constructed over a restored snapshot), mirror
  // their stored cluster/embedding fields into the reuse index; those
  // fields stay authoritative until maybe_retrain re-assigns them.
  rebuild_index_from_store();
}

void FairDS::rebuild_index_from_store() {
  // Stored cluster ids can legitimately exceed the current model's k (they
  // were assigned under an earlier clustering and stay authoritative until
  // maybe_retrain re-assigns); queries only ever probe clusters < k, so
  // such rows are simply unreachable — exactly like the pre-index
  // implementation's find_eq on the stored field. Negative or absurdly
  // large values, however, mean corrupt data and must fail loudly instead
  // of indexing out of bounds.
  constexpr std::int64_t kMaxClusterId = 1 << 20;
  struct Row {
    store::DocId id;
    std::size_t cluster;
    std::vector<float> embedding;
  };
  std::vector<Row> rows;
  samples_->scan([&](store::DocId id, const store::Value& doc) {
    auto emb = decode_floats(doc.at("embedding").as_binary());
    FAIRDMS_CHECK(emb.size() == config_.embedding_dim,
                  "stored embedding has wrong width");
    const std::int64_t cluster = doc.at("cluster").as_int();
    FAIRDMS_CHECK(cluster >= 0 && cluster < kMaxClusterId, "stored sample ",
                  id, " has corrupt cluster id ", cluster);
    rows.push_back({id, static_cast<std::size_t>(cluster), std::move(emb)});
  });
  // Insert in id order so nearest-neighbor ties resolve to the lowest id,
  // matching the legacy find_eq member ordering and maybe_retrain's
  // all_ids()-ordered rebuild (scan order is hash-map order).
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.id < b.id; });
  reuse_index_.reset(config_.embedding_dim);
  for (const Row& row : rows) {
    reuse_index_.add(row.cluster, row.id, row.embedding);
  }
}

void FairDS::ingest(const Tensor& xs, const Tensor& ys,
                    const std::string& dataset_id) {
  FAIRDMS_CHECK(trained(), "FairDS::ingest before train_system");
  FAIRDMS_CHECK(xs.rank() == 4 && ys.rank() >= 1 && xs.dim(0) == ys.dim(0),
                "FairDS::ingest: xs/ys mismatch");
  const std::size_t n = xs.dim(0);
  const std::size_t pixels =
      config_.image_size * config_.image_size;
  // Labels of any rank are stored flattened per sample (image-valued labels
  // like CookieNetAE's density maps included).
  const std::size_t label_w = ys.numel() / n;
  const Tensor embeddings = embedder_->embed(xs);
  const auto assignments = kmeans_->assign_batch(embeddings);

  std::vector<store::Value> docs;
  docs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    store::Object doc;
    doc["dataset_id"] = store::Value(dataset_id);
    doc["cluster"] =
        store::Value(static_cast<std::int64_t>(assignments[i]));
    doc["embedding"] = store::Value(
        encode_floats({embeddings.data() + i * config_.embedding_dim,
                       config_.embedding_dim}));
    doc["x"] = store::Value(encode_floats({xs.data() + i * pixels, pixels}));
    doc["y"] =
        store::Value(encode_floats({ys.data() + i * label_w, label_w}));
    docs.emplace_back(std::move(doc));
  }
  const std::vector<store::DocId> ids = samples_->insert_many(std::move(docs));

  // Mirror the new rows into the reuse index incrementally — ingest already
  // has the embeddings and assignments in hand. train_system/maybe_retrain
  // always reset the index to the configured width before ingest can run;
  // a mismatch here would mean index and store have desynchronized.
  FAIRDMS_CHECK(reuse_index_.dim() == config_.embedding_dim,
                "FairDS::ingest: reuse index width ", reuse_index_.dim(),
                " != configured embedding dim ", config_.embedding_dim);
  for (std::size_t i = 0; i < n; ++i) {
    reuse_index_.add(assignments[i], ids[i],
                     {embeddings.data() + i * config_.embedding_dim,
                      config_.embedding_dim});
  }
  if (label_width_.load(std::memory_order_relaxed) == 0) {
    label_width_.store(label_w, std::memory_order_relaxed);
  }
}

double FairDS::certainty(const Tensor& xs) const {
  FAIRDMS_CHECK(trained(), "FairDS::certainty before train_system");
  const Tensor embeddings = embedder_->embed(xs);
  cluster::FuzzyConfig fuzzy;
  fuzzy.fuzziness = config_.fuzziness;
  return cluster::dataset_certainty(*kmeans_, embeddings, fuzzy);
}

bool FairDS::maybe_retrain(const Tensor& new_xs) {
  FAIRDMS_CHECK(trained(), "FairDS::maybe_retrain before train_system");
  const double c = certainty(new_xs);
  if (c >= config_.certainty_threshold) return false;
  util::log_info("fairDS retrain triggered (certainty ",
                 static_cast<int>(c * 100.0), "% < ",
                 static_cast<int>(config_.certainty_threshold * 100.0),
                 "%)");

  // Retrain the system plane on history + the new data, then re-assign the
  // stored samples under the refreshed embedding/clustering. One batched
  // projected read pulls every stored image; retraining inputs and the
  // re-assignment pass share it.
  const std::vector<store::DocId> ids = samples_->all_ids();
  const Tensor history = images_for(ids);
  Tensor combined;
  if (history.empty()) {
    combined = new_xs;
  } else {
    const std::size_t pixels = config_.image_size * config_.image_size;
    const std::size_t total = history.dim(0) + new_xs.dim(0);
    combined = Tensor({total, 1, config_.image_size, config_.image_size});
    std::copy_n(history.data(), history.numel(), combined.data());
    std::copy_n(new_xs.data(), new_xs.numel(),
                combined.data() + history.dim(0) * pixels);
  }
  ++retrains_;
  train_system_impl(combined, config_.seed + retrains_);

  // Re-embed all stored images in one batch, re-assign them in one batched
  // update pass, and rebuild the reuse index from the fresh embeddings
  // without another store read.
  reuse_index_.reset(config_.embedding_dim);
  if (!ids.empty()) {
    const Tensor embeddings = embedder_->embed(history);
    const auto assignments = kmeans_->assign_batch(embeddings);
    std::vector<std::pair<store::DocId, store::Object>> updates;
    updates.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::span<const float> row{
          embeddings.data() + i * config_.embedding_dim,
          config_.embedding_dim};
      store::Object fields;
      fields["cluster"] =
          store::Value(static_cast<std::int64_t>(assignments[i]));
      fields["embedding"] = store::Value(encode_floats(row));
      updates.emplace_back(ids[i], std::move(fields));
      reuse_index_.add(assignments[i], ids[i], row);
    }
    samples_->update_many(std::move(updates));
  }
  return true;
}

Tensor FairDS::embed(const Tensor& xs) const {
  FAIRDMS_CHECK(trained(), "FairDS::embed before train_system");
  return embedder_->embed(xs);
}

std::vector<double> FairDS::distribution(const Tensor& xs) const {
  FAIRDMS_CHECK(trained(), "FairDS::distribution before train_system");
  const Tensor embeddings = embedder_->embed(xs);
  return kmeans_->cluster_pdf(embeddings);
}

std::size_t FairDS::label_width() const {
  std::size_t width = label_width_.load(std::memory_order_relaxed);
  if (width != 0) return width;
  // Unknown width (e.g. FairDS built over an existing collection): derive
  // it from any stored sample once and cache it. Racing readers compute
  // the same value, so a plain atomic store publishes it safely.
  samples_->scan([&](store::DocId, const store::Value& doc) {
    if (width == 0) {
      width = decode_floats(doc.at("y").as_binary()).size();
    }
  });
  FAIRDMS_CHECK(width > 0, "FairDS: no stored samples to infer label width");
  label_width_.store(width, std::memory_order_relaxed);
  return width;
}

nn::Batchset FairDS::fetch_samples(
    const std::vector<store::DocId>& ids) const {
  FAIRDMS_CHECK(!ids.empty(), "FairDS::fetch_samples: empty id list");
  const std::size_t pixels = config_.image_size * config_.image_size;
  const auto docs = samples_->find_many(ids, kXYFields);
  nn::Batchset out;
  bool first = true;
  std::size_t label_w = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    FAIRDMS_CHECK(docs[i].has_value(), "FairDS: stored sample vanished");
    const auto x = decode_floats(docs[i]->at("x").as_binary());
    const auto y = decode_floats(docs[i]->at("y").as_binary());
    if (first) {
      label_w = y.size();
      out.xs = Tensor({ids.size(), 1, config_.image_size, config_.image_size});
      out.ys = Tensor({ids.size(), label_w});
      first = false;
    }
    FAIRDMS_CHECK(x.size() == pixels && y.size() == label_w,
                  "FairDS: inconsistent stored sample shapes");
    std::copy(x.begin(), x.end(), out.xs.data() + i * pixels);
    std::copy(y.begin(), y.end(), out.ys.data() + i * label_w);
  }
  return out;
}

nn::Batchset FairDS::lookup(const Tensor& xs, std::uint64_t seed) const {
  FAIRDMS_CHECK(trained(), "FairDS::lookup before train_system");
  FAIRDMS_CHECK(stored_count() > 0, "FairDS::lookup on empty store");
  const std::size_t n = xs.dim(0);
  const std::vector<double> pdf = distribution(xs);
  util::Rng rng(seed);

  // Integer per-cluster counts that sum to n (largest remainders).
  const std::size_t k = pdf.size();
  std::vector<std::size_t> want(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = pdf[c] * static_cast<double>(n);
    want[c] = static_cast<std::size_t>(exact);
    assigned += want[c];
    remainders.emplace_back(exact - std::floor(exact), c);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < n && i < remainders.size(); ++i) {
    ++want[remainders[i].second];
    ++assigned;
  }

  // Draw randomly from each cluster's stored members (with replacement when
  // a cluster is under-populated); clusters absent from history spill into
  // the global pool.
  std::vector<store::DocId> chosen;
  chosen.reserve(n);
  std::vector<store::DocId> global_pool;
  for (std::size_t c = 0; c < k; ++c) {
    if (want[c] == 0) continue;
    const auto members = samples_->find_eq(
        "cluster", store::Value(static_cast<std::int64_t>(c)));
    if (members.empty()) {
      if (global_pool.empty()) {
        samples_->scan([&](store::DocId id, const store::Value&) {
          global_pool.push_back(id);
        });
      }
      for (std::size_t i = 0; i < want[c]; ++i) {
        chosen.push_back(global_pool[rng.uniform_index(global_pool.size())]);
      }
      continue;
    }
    for (std::size_t i = 0; i < want[c]; ++i) {
      chosen.push_back(members[rng.uniform_index(members.size())]);
    }
  }
  return fetch_samples(chosen);
}

nn::Batchset FairDS::lookup_or_label(
    const Tensor& xs, double threshold,
    const std::function<Tensor(const Tensor&)>& fallback_labeler,
    ReuseStats* stats) const {
  FAIRDMS_CHECK(trained(), "FairDS::lookup_or_label before train_system");
  const std::size_t n = xs.dim(0);
  const std::size_t pixels = config_.image_size * config_.image_size;
  nn::Batchset out;
  out.xs = xs;

  // Cold start: with no stored history every sample routes to the fallback
  // labeler and the label width comes from its output.
  if (stored_count() == 0) {
    const Tensor computed = fallback_labeler(xs);
    FAIRDMS_CHECK(computed.rank() == 2 && computed.dim(0) == n,
                  "fallback labeler returned wrong shape");
    out.ys = computed;
    if (stats != nullptr) stats->computed += n;
    return out;
  }

  const Tensor embeddings = embedder_->embed(xs);
  const auto assignments = kmeans_->assign_batch(embeddings);

  // Two-level search: the k-means assignment picks the cluster, the reuse
  // index finds the nearest stored member — dense floats only, parallel
  // over query rows, no store traffic.
  const auto neighbors = reuse_index_.nearest_batch(
      {embeddings.data(), embeddings.numel()}, assignments);

  out.ys = Tensor({n, label_width()});
  const std::size_t label_w = out.ys.dim(1);

  std::vector<std::size_t> reuse_rows;
  std::vector<store::DocId> reuse_ids;
  std::vector<std::size_t> fallback_rows;
  for (std::size_t i = 0; i < n; ++i) {
    const ReuseIndex::Neighbor& nb = neighbors[i];
    if (nb.found() && std::sqrt(nb.dist2) < threshold) {
      reuse_rows.push_back(i);
      reuse_ids.push_back(nb.id);
    } else {
      fallback_rows.push_back(i);
    }
  }

  if (!reuse_rows.empty()) {
    // Paper §III-E: the reused entry is the *historical pair* {p, l(p)} —
    // a consistent image/label pair from the store — not the new image
    // with a borrowed label. One batched projected read fetches every
    // *unique* winning pair (queries often share a nearest neighbor in
    // small clusters; no point fetching and charging the same document
    // once per query).
    std::vector<store::DocId> unique_ids;
    std::unordered_map<store::DocId, std::size_t> doc_slot;
    std::vector<std::size_t> row_slot(reuse_rows.size());
    for (std::size_t j = 0; j < reuse_rows.size(); ++j) {
      const auto [it, inserted] =
          doc_slot.try_emplace(reuse_ids[j], unique_ids.size());
      if (inserted) unique_ids.push_back(reuse_ids[j]);
      row_slot[j] = it->second;
    }
    const auto docs = samples_->find_many(unique_ids, kXYFields);
    std::size_t reused = 0;
    for (std::size_t j = 0; j < reuse_rows.size(); ++j) {
      const std::size_t i = reuse_rows[j];
      const auto& doc = docs[row_slot[j]];
      if (!doc.has_value()) {
        // The winning document was removed from the store after the index
        // row was built; serve the query via the fallback labeler instead
        // of failing the whole batch.
        fallback_rows.push_back(i);
        continue;
      }
      const auto x = decode_floats(doc->at("x").as_binary());
      const auto y = decode_floats(doc->at("y").as_binary());
      FAIRDMS_CHECK(y.size() == label_w, "stored label width mismatch");
      FAIRDMS_CHECK(x.size() == pixels, "stored image size mismatch");
      std::copy(x.begin(), x.end(), out.xs.data() + i * pixels);
      std::copy(y.begin(), y.end(), out.ys.data() + i * label_w);
      ++reused;
    }
    if (stats != nullptr) stats->reused += reused;
    // Vanished-winner rows were appended out of order.
    std::sort(fallback_rows.begin(), fallback_rows.end());
  }

  if (!fallback_rows.empty()) {
    Tensor pending({fallback_rows.size(), 1, config_.image_size,
                    config_.image_size});
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(xs.data() + fallback_rows[j] * pixels, pixels,
                  pending.data() + j * pixels);
    }
    const Tensor computed = fallback_labeler(pending);
    FAIRDMS_CHECK(computed.rank() == 2 &&
                      computed.dim(0) == fallback_rows.size() &&
                      computed.dim(1) == label_w,
                  "fallback labeler returned wrong shape");
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(computed.data() + j * label_w, label_w,
                  out.ys.data() + fallback_rows[j] * label_w);
    }
    if (stats != nullptr) stats->computed += fallback_rows.size();
  }
  return out;
}

const cluster::KMeansModel& FairDS::clusters() const {
  FAIRDMS_CHECK(kmeans_.has_value(), "FairDS::clusters before train_system");
  return *kmeans_;
}

std::size_t FairDS::stored_count() const { return samples_->size(); }

std::size_t FairDS::n_clusters() const {
  return kmeans_.has_value() ? kmeans_->k() : 0;
}

Tensor FairDS::images_for(const std::vector<store::DocId>& ids) const {
  if (ids.empty()) return Tensor();
  static const std::vector<std::string> kXField = {"x"};
  const std::size_t pixels = config_.image_size * config_.image_size;
  const auto docs = samples_->find_many(ids, kXField);
  Tensor out({ids.size(), 1, config_.image_size, config_.image_size});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    FAIRDMS_CHECK(docs[i].has_value(), "FairDS: stored sample vanished");
    const auto x = decode_floats(docs[i]->at("x").as_binary());
    FAIRDMS_CHECK(x.size() == pixels, "stored sample has wrong pixel count");
    std::copy(x.begin(), x.end(), out.data() + i * pixels);
  }
  return out;
}

Tensor FairDS::stored_images() const { return images_for(samples_->all_ids()); }

}  // namespace fairdms::fairds
