#include "fairds/fairds.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <utility>

#include "cluster/fuzzy.hpp"
#include "fairds/field_codec.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace fairdms::fairds {

FairDS::FairDS(FairDSConfig config, store::DocStore& db)
    : config_(std::move(config)),
      db_(&db),
      samples_(&db.collection(
          config_.collection, config_.store_shards,
          config_.storage.has_value() ? &*config_.storage : nullptr)) {
  samples_->create_index("cluster");
  samples_->create_index("dataset_id");
}

void FairDS::train_system_impl(const Tensor& xs, std::uint64_t seed) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == config_.image_size &&
                    xs.dim(3) == config_.image_size,
                "FairDS: expected [N,1,", config_.image_size, ",",
                config_.image_size, "], got ", xs.shape_str());
  // A fresh embedder every time: published snapshots share the previous one
  // and must keep serving it unchanged while this trains.
  std::shared_ptr<embed::Embedder> next(
      embed::make_embedder(config_.embedding_algorithm, config_.image_size,
                           config_.embedding_dim, seed));
  next->fit(xs, config_.embed_train);
  const Tensor embeddings = next->embed(xs);
  embedder_ = std::move(next);

  std::size_t k = config_.n_clusters;
  if (k == 0) {
    const auto elbow = cluster::elbow_k(
        embeddings, config_.elbow_k_min,
        std::min(config_.elbow_k_max, embeddings.dim(0)), seed);
    k = elbow.best_k;
    util::log_info("fairDS elbow selected K=", k);
  }
  cluster::KMeansConfig kc;
  kc.k = k;
  kc.seed = seed;
  kmeans_ = cluster::kmeans_fit(embeddings, kc);
}

void FairDS::publish_snapshot_locked() {
  // The copy shares the master index's per-cluster blocks; marking them
  // shared first makes later master mutations clone instead of writing in
  // place, so the published snapshot's readers never observe a change.
  reuse_index_.mark_shared();
  auto snap = std::make_shared<const Snapshot>(
      config_, embedder_, *kmeans_,
      std::make_shared<const ReuseIndex>(reuse_index_), label_width_,
      samples_, ++version_);
  snapshot_.store(std::move(snap));
}

std::shared_ptr<const Snapshot> FairDS::snapshot() const {
  return snapshot_.load();
}

std::shared_ptr<const Snapshot> FairDS::require_snapshot(
    const char* what) const {
  auto snap = snapshot_.load();
  FAIRDMS_CHECK(snap != nullptr, "FairDS::", what, " before train_system");
  return snap;
}

void FairDS::train_system(const Tensor& historical_xs) {
  util::MutexLock lock(system_mutex_);
  train_system_impl(historical_xs, config_.seed);
  // If the collection already holds samples (re-training over an existing
  // history, or a FairDS constructed over a restored snapshot), mirror
  // their stored cluster/embedding fields into the reuse index; those
  // fields stay authoritative until maybe_retrain re-assigns them.
  rebuild_index_from_store();
  publish_snapshot_locked();
}

void FairDS::rebuild_index_from_store() {
  // Stored cluster ids can legitimately exceed the current model's k (they
  // were assigned under an earlier clustering and stay authoritative until
  // maybe_retrain re-assigns); queries only ever probe clusters < k, so
  // such rows are simply unreachable — exactly like the pre-index
  // implementation's find_eq on the stored field. Negative or absurdly
  // large values, however, mean corrupt data and must fail loudly instead
  // of indexing out of bounds.
  constexpr std::int64_t kMaxClusterId = 1 << 20;
  struct Row {
    store::DocId id;
    std::size_t cluster;
    std::vector<float> embedding;
  };
  std::vector<Row> rows;
  samples_->scan([&](store::DocId id, const store::Value& doc) {
    auto emb = decode_floats(doc.at("embedding").as_binary());
    FAIRDMS_CHECK(emb.size() == config_.embedding_dim,
                  "stored embedding has wrong width");
    const std::int64_t cluster = doc.at("cluster").as_int();
    FAIRDMS_CHECK(cluster >= 0 && cluster < kMaxClusterId, "stored sample ",
                  id, " has corrupt cluster id ", cluster);
    rows.push_back({id, static_cast<std::size_t>(cluster), std::move(emb)});
  });
  // Insert in id order so nearest-neighbor ties resolve to the lowest id,
  // matching the legacy find_eq member ordering and maybe_retrain's
  // all_ids()-ordered rebuild (scan order is hash-map order).
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.id < b.id; });
  reuse_index_.reset(config_.embedding_dim);
  for (const Row& row : rows) {
    reuse_index_.add(row.cluster, row.id, row.embedding);
  }
}

void FairDS::ingest(const Tensor& xs, const Tensor& ys,
                    const std::string& dataset_id) {
  util::MutexLock lock(system_mutex_);
  FAIRDMS_CHECK(embedder_ != nullptr, "FairDS::ingest before train_system");
  FAIRDMS_CHECK(xs.rank() == 4 && ys.rank() >= 1 && xs.dim(0) == ys.dim(0),
                "FairDS::ingest: xs/ys mismatch");
  const std::size_t n = xs.dim(0);
  const std::size_t pixels =
      config_.image_size * config_.image_size;
  // Labels of any rank are stored flattened per sample (image-valued labels
  // like CookieNetAE's density maps included).
  const std::size_t label_w = ys.numel() / n;
  const Tensor embeddings = embedder_->embed(xs);
  const auto assignments = kmeans_->assign_batch(embeddings);

  std::vector<store::Value> docs;
  docs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    store::Object doc;
    doc["dataset_id"] = store::Value(dataset_id);
    doc["cluster"] =
        store::Value(static_cast<std::int64_t>(assignments[i]));
    doc["embedding"] = store::Value(
        encode_floats({embeddings.data() + i * config_.embedding_dim,
                       config_.embedding_dim}));
    doc["x"] = store::Value(encode_floats({xs.data() + i * pixels, pixels}));
    doc["y"] =
        store::Value(encode_floats({ys.data() + i * label_w, label_w}));
    docs.emplace_back(std::move(doc));
  }
  const std::vector<store::DocId> ids = samples_->insert_many(std::move(docs));

  // Mirror the new rows into the master reuse index incrementally — ingest
  // already has the embeddings and assignments in hand; published snapshots
  // keep their own immutable copies. train_system/maybe_retrain always
  // reset the index to the configured width before ingest can run; a
  // mismatch here would mean index and store have desynchronized.
  FAIRDMS_CHECK(reuse_index_.dim() == config_.embedding_dim,
                "FairDS::ingest: reuse index width ", reuse_index_.dim(),
                " != configured embedding dim ", config_.embedding_dim);
  for (std::size_t i = 0; i < n; ++i) {
    reuse_index_.add(assignments[i], ids[i],
                     {embeddings.data() + i * config_.embedding_dim,
                      config_.embedding_dim});
  }
  if (label_width_ == 0) label_width_ = label_w;
  publish_snapshot_locked();
}

double FairDS::certainty_locked(const Tensor& xs) const {
  FAIRDMS_CHECK(embedder_ != nullptr,
                "FairDS::certainty before train_system");
  const Tensor embeddings = embedder_->embed(xs);
  cluster::FuzzyConfig fuzzy;
  fuzzy.fuzziness = config_.fuzziness;
  return cluster::dataset_certainty(*kmeans_, embeddings, fuzzy);
}

double FairDS::certainty(const Tensor& xs) const {
  return require_snapshot("certainty")->certainty(xs);
}

bool FairDS::maybe_retrain(const Tensor& new_xs) {
  return maybe_retrain(new_xs, config_.certainty_threshold);
}

bool FairDS::maybe_retrain(const Tensor& new_xs, double certainty_threshold) {
  util::MutexLock lock(system_mutex_);
  FAIRDMS_CHECK(embedder_ != nullptr,
                "FairDS::maybe_retrain before train_system");
  const double c = certainty_locked(new_xs);
  if (c >= certainty_threshold) return false;
  util::log_info("fairDS retrain triggered (certainty ",
                 static_cast<int>(c * 100.0), "% < ",
                 static_cast<int>(certainty_threshold * 100.0),
                 "%)");

  // Retrain the system plane on history + the new data, then re-assign the
  // stored samples under the refreshed embedding/clustering. One batched
  // projected read pulls every stored image; retraining inputs and the
  // re-assignment pass share it. Concurrent queries keep running on the
  // previously published snapshot for the duration.
  const std::vector<store::DocId> ids = samples_->all_ids();
  const Tensor history = images_for(ids);
  Tensor combined;
  if (history.empty()) {
    combined = new_xs;
  } else {
    const std::size_t pixels = config_.image_size * config_.image_size;
    const std::size_t total = history.dim(0) + new_xs.dim(0);
    combined = Tensor({total, 1, config_.image_size, config_.image_size});
    std::copy_n(history.data(), history.numel(), combined.data());
    std::copy_n(new_xs.data(), new_xs.numel(),
                combined.data() + history.dim(0) * pixels);
  }
  const std::size_t retrain_no =
      retrains_.fetch_add(1, std::memory_order_relaxed) + 1;
  train_system_impl(combined, config_.seed + retrain_no);

  // Re-embed all stored images in one batch, re-assign them in one batched
  // update pass, and rebuild the reuse index from the fresh embeddings
  // without another store read.
  reuse_index_.reset(config_.embedding_dim);
  if (!ids.empty()) {
    const Tensor embeddings = embedder_->embed(history);
    const auto assignments = kmeans_->assign_batch(embeddings);
    std::vector<std::pair<store::DocId, store::Object>> updates;
    updates.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::span<const float> row{
          embeddings.data() + i * config_.embedding_dim,
          config_.embedding_dim};
      store::Object fields;
      fields["cluster"] =
          store::Value(static_cast<std::int64_t>(assignments[i]));
      fields["embedding"] = store::Value(encode_floats(row));
      updates.emplace_back(ids[i], std::move(fields));
      reuse_index_.add(assignments[i], ids[i], row);
    }
    samples_->update_many(std::move(updates));
  }
  publish_snapshot_locked();
  return true;
}

Tensor FairDS::embed(const Tensor& xs) const {
  return require_snapshot("embed")->embed(xs);
}

std::vector<double> FairDS::distribution(const Tensor& xs) const {
  return require_snapshot("distribution")->distribution(xs);
}

nn::Batchset FairDS::lookup(const Tensor& xs, std::uint64_t seed) const {
  return require_snapshot("lookup")->lookup(xs, seed);
}

nn::Batchset FairDS::lookup_or_label(
    const Tensor& xs, double threshold,
    const std::function<Tensor(const Tensor&)>& fallback_labeler,
    ReuseStats* stats) const {
  return require_snapshot("lookup_or_label")
      ->lookup_or_label(xs, threshold, fallback_labeler, stats);
}

const cluster::KMeansModel& FairDS::clusters() const {
  return require_snapshot("clusters")->clusters();
}

const ReuseIndex& FairDS::reuse_index() const {
  return require_snapshot("reuse_index")->reuse_index();
}

std::size_t FairDS::stored_count() const { return samples_->size(); }

std::size_t FairDS::store_shards() const { return samples_->shard_count(); }

const char* FairDS::storage_engine() const { return samples_->engine_name(); }

std::size_t FairDS::n_clusters() const {
  auto snap = snapshot_.load();
  return snap == nullptr ? 0 : snap->n_clusters();
}

Tensor FairDS::images_for(const std::vector<store::DocId>& ids) const {
  if (ids.empty()) return Tensor();
  static const std::vector<std::string> kXField = {"x"};
  const std::size_t pixels = config_.image_size * config_.image_size;
  const auto docs = samples_->find_many(ids, kXField);
  Tensor out({ids.size(), 1, config_.image_size, config_.image_size});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    FAIRDMS_CHECK(docs[i].has_value(), "FairDS: stored sample vanished");
    const auto x = decode_floats(docs[i]->at("x").as_binary());
    FAIRDMS_CHECK(x.size() == pixels, "stored sample has wrong pixel count");
    std::copy(x.begin(), x.end(), out.data() + i * pixels);
  }
  return out;
}

}  // namespace fairdms::fairds
