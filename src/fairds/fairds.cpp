#include "fairds/fairds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "store/codec.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace fairdms::fairds {

namespace {

store::Binary encode_floats(std::span<const float> values) {
  static const store::RawCodec codec;
  return codec.encode(values);
}

std::vector<float> decode_floats(const store::Binary& bytes) {
  static const store::RawCodec codec;
  std::vector<float> out;
  codec.decode(bytes, out);
  return out;
}

}  // namespace

FairDS::FairDS(FairDSConfig config, store::DocStore& db)
    : config_(std::move(config)),
      db_(&db),
      samples_(&db.collection(config_.collection)),
      rng_(config_.seed) {
  samples_->create_index("cluster");
  samples_->create_index("dataset_id");
}

void FairDS::train_system_impl(const Tensor& xs, std::uint64_t seed) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == config_.image_size &&
                    xs.dim(3) == config_.image_size,
                "FairDS: expected [N,1,", config_.image_size, ",",
                config_.image_size, "], got ", xs.shape_str());
  embedder_ = embed::make_embedder(config_.embedding_algorithm,
                                   config_.image_size, config_.embedding_dim,
                                   seed);
  embedder_->fit(xs, config_.embed_train);
  const Tensor embeddings = embedder_->embed(xs);

  std::size_t k = config_.n_clusters;
  if (k == 0) {
    const auto elbow = cluster::elbow_k(
        embeddings, config_.elbow_k_min,
        std::min(config_.elbow_k_max, embeddings.dim(0)), seed);
    k = elbow.best_k;
    util::log_info("fairDS elbow selected K=", k);
  }
  cluster::KMeansConfig kc;
  kc.k = k;
  kc.seed = seed;
  kmeans_ = cluster::kmeans_fit(embeddings, kc);
}

void FairDS::train_system(const Tensor& historical_xs) {
  train_system_impl(historical_xs, config_.seed);
}

void FairDS::ingest(const Tensor& xs, const Tensor& ys,
                    const std::string& dataset_id) {
  FAIRDMS_CHECK(trained(), "FairDS::ingest before train_system");
  FAIRDMS_CHECK(xs.rank() == 4 && ys.rank() >= 1 && xs.dim(0) == ys.dim(0),
                "FairDS::ingest: xs/ys mismatch");
  const std::size_t n = xs.dim(0);
  const std::size_t pixels =
      config_.image_size * config_.image_size;
  // Labels of any rank are stored flattened per sample (image-valued labels
  // like CookieNetAE's density maps included).
  const std::size_t label_w = ys.numel() / n;
  const Tensor embeddings = embedder_->embed(xs);
  const auto assignments = kmeans_->assign_batch(embeddings);

  std::vector<store::Value> docs;
  docs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    store::Object doc;
    doc["dataset_id"] = store::Value(dataset_id);
    doc["cluster"] =
        store::Value(static_cast<std::int64_t>(assignments[i]));
    doc["embedding"] = store::Value(
        encode_floats({embeddings.data() + i * config_.embedding_dim,
                       config_.embedding_dim}));
    doc["x"] = store::Value(encode_floats({xs.data() + i * pixels, pixels}));
    doc["y"] =
        store::Value(encode_floats({ys.data() + i * label_w, label_w}));
    docs.emplace_back(std::move(doc));
  }
  samples_->insert_many(std::move(docs));
}

double FairDS::certainty(const Tensor& xs) const {
  FAIRDMS_CHECK(trained(), "FairDS::certainty before train_system");
  const Tensor embeddings = embedder_->embed(xs);
  cluster::FuzzyConfig fuzzy;
  fuzzy.fuzziness = config_.fuzziness;
  return cluster::dataset_certainty(*kmeans_, embeddings, fuzzy);
}

bool FairDS::maybe_retrain(const Tensor& new_xs) {
  FAIRDMS_CHECK(trained(), "FairDS::maybe_retrain before train_system");
  const double c = certainty(new_xs);
  if (c >= config_.certainty_threshold) return false;
  util::log_info("fairDS retrain triggered (certainty ",
                 static_cast<int>(c * 100.0), "% < ",
                 static_cast<int>(config_.certainty_threshold * 100.0),
                 "%)");

  // Retrain the system plane on history + the new data, then re-assign the
  // stored samples under the refreshed embedding/clustering.
  Tensor history = stored_images();
  Tensor combined;
  if (history.empty()) {
    combined = new_xs;
  } else {
    const std::size_t pixels = config_.image_size * config_.image_size;
    const std::size_t total = history.dim(0) + new_xs.dim(0);
    combined = Tensor({total, 1, config_.image_size, config_.image_size});
    std::copy_n(history.data(), history.numel(), combined.data());
    std::copy_n(new_xs.data(), new_xs.numel(),
                combined.data() + history.dim(0) * pixels);
  }
  ++retrains_;
  train_system_impl(combined, config_.seed + retrains_);

  // Re-embed and re-assign every stored document.
  std::vector<store::DocId> ids;
  samples_->scan([&](store::DocId id, const store::Value&) {
    ids.push_back(id);
  });
  const std::size_t pixels = config_.image_size * config_.image_size;
  for (store::DocId id : ids) {
    const auto doc = samples_->find_by_id(id);
    if (!doc.has_value()) continue;
    const auto x = decode_floats(doc->at("x").as_binary());
    FAIRDMS_CHECK(x.size() == pixels, "stored sample has wrong pixel count");
    Tensor img({1, 1, config_.image_size, config_.image_size});
    std::copy(x.begin(), x.end(), img.data());
    const Tensor e = embedder_->embed(img);
    const std::size_t a = kmeans_->assign({e.data(), e.numel()});
    samples_->update_field(id, "cluster",
                           store::Value(static_cast<std::int64_t>(a)));
    samples_->update_field(id, "embedding",
                           store::Value(encode_floats({e.data(), e.numel()})));
  }
  return true;
}

Tensor FairDS::embed(const Tensor& xs) const {
  FAIRDMS_CHECK(trained(), "FairDS::embed before train_system");
  return embedder_->embed(xs);
}

std::vector<double> FairDS::distribution(const Tensor& xs) const {
  FAIRDMS_CHECK(trained(), "FairDS::distribution before train_system");
  const Tensor embeddings = embedder_->embed(xs);
  return kmeans_->cluster_pdf(embeddings);
}

std::size_t FairDS::label_width() const {
  std::size_t width = 0;
  samples_->scan([&](store::DocId, const store::Value& doc) {
    if (width == 0) {
      width = decode_floats(doc.at("y").as_binary()).size();
    }
  });
  FAIRDMS_CHECK(width > 0, "FairDS: no stored samples to infer label width");
  return width;
}

nn::Batchset FairDS::fetch_samples(
    const std::vector<store::DocId>& ids) const {
  FAIRDMS_CHECK(!ids.empty(), "FairDS::fetch_samples: empty id list");
  const std::size_t pixels = config_.image_size * config_.image_size;
  nn::Batchset out;
  bool first = true;
  std::size_t label_w = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto doc = samples_->find_by_id(ids[i]);
    FAIRDMS_CHECK(doc.has_value(), "FairDS: stored sample vanished");
    const auto x = decode_floats(doc->at("x").as_binary());
    const auto y = decode_floats(doc->at("y").as_binary());
    if (first) {
      label_w = y.size();
      out.xs = Tensor({ids.size(), 1, config_.image_size, config_.image_size});
      out.ys = Tensor({ids.size(), label_w});
      first = false;
    }
    FAIRDMS_CHECK(x.size() == pixels && y.size() == label_w,
                  "FairDS: inconsistent stored sample shapes");
    std::copy(x.begin(), x.end(), out.xs.data() + i * pixels);
    std::copy(y.begin(), y.end(), out.ys.data() + i * label_w);
  }
  return out;
}

nn::Batchset FairDS::lookup(const Tensor& xs, std::uint64_t seed) const {
  FAIRDMS_CHECK(trained(), "FairDS::lookup before train_system");
  FAIRDMS_CHECK(stored_count() > 0, "FairDS::lookup on empty store");
  const std::size_t n = xs.dim(0);
  const std::vector<double> pdf = distribution(xs);
  util::Rng rng(seed);

  // Integer per-cluster counts that sum to n (largest remainders).
  const std::size_t k = pdf.size();
  std::vector<std::size_t> want(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = pdf[c] * static_cast<double>(n);
    want[c] = static_cast<std::size_t>(exact);
    assigned += want[c];
    remainders.emplace_back(exact - std::floor(exact), c);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < n && i < remainders.size(); ++i) {
    ++want[remainders[i].second];
    ++assigned;
  }

  // Draw randomly from each cluster's stored members (with replacement when
  // a cluster is under-populated); clusters absent from history spill into
  // the global pool.
  std::vector<store::DocId> chosen;
  chosen.reserve(n);
  std::vector<store::DocId> global_pool;
  for (std::size_t c = 0; c < k; ++c) {
    if (want[c] == 0) continue;
    const auto members = samples_->find_eq(
        "cluster", store::Value(static_cast<std::int64_t>(c)));
    if (members.empty()) {
      if (global_pool.empty()) {
        samples_->scan([&](store::DocId id, const store::Value&) {
          global_pool.push_back(id);
        });
      }
      for (std::size_t i = 0; i < want[c]; ++i) {
        chosen.push_back(global_pool[rng.uniform_index(global_pool.size())]);
      }
      continue;
    }
    for (std::size_t i = 0; i < want[c]; ++i) {
      chosen.push_back(members[rng.uniform_index(members.size())]);
    }
  }
  return fetch_samples(chosen);
}

nn::Batchset FairDS::lookup_or_label(
    const Tensor& xs, double threshold,
    const std::function<Tensor(const Tensor&)>& fallback_labeler,
    ReuseStats* stats) const {
  FAIRDMS_CHECK(trained(), "FairDS::lookup_or_label before train_system");
  const std::size_t n = xs.dim(0);
  const std::size_t pixels = config_.image_size * config_.image_size;
  const Tensor embeddings = embedder_->embed(xs);
  const auto assignments = kmeans_->assign_batch(embeddings);

  // Two-level search: cluster members first, then nearest-by-embedding
  // within the cluster.
  std::vector<std::size_t> fallback_rows;
  nn::Batchset out;
  out.xs = xs;
  out.ys = Tensor({n, label_width()});
  const std::size_t label_w = out.ys.dim(1);

  for (std::size_t i = 0; i < n; ++i) {
    const auto members = samples_->find_eq(
        "cluster", store::Value(static_cast<std::int64_t>(assignments[i])));
    double best = std::numeric_limits<double>::infinity();
    store::DocId best_id = 0;
    std::vector<float> best_x;
    std::vector<float> best_y;
    const float* e = embeddings.data() + i * config_.embedding_dim;
    for (store::DocId id : members) {
      const auto doc = samples_->find_by_id(id);
      if (!doc.has_value()) continue;
      const auto emb = decode_floats(doc->at("embedding").as_binary());
      double d = 0.0;
      for (std::size_t j = 0; j < emb.size(); ++j) {
        const double diff = static_cast<double>(e[j]) - emb[j];
        d += diff * diff;
      }
      d = std::sqrt(d);
      if (d < best) {
        best = d;
        best_id = id;
        best_x = decode_floats(doc->at("x").as_binary());
        best_y = decode_floats(doc->at("y").as_binary());
      }
    }
    if (best_id != 0 && best < threshold) {
      // Paper §III-E: the reused entry is the *historical pair* {p, l(p)} —
      // a consistent image/label pair from the store — not the new image
      // with a borrowed label.
      FAIRDMS_CHECK(best_y.size() == label_w, "stored label width mismatch");
      FAIRDMS_CHECK(best_x.size() == pixels, "stored image size mismatch");
      std::copy(best_x.begin(), best_x.end(), out.xs.data() + i * pixels);
      std::copy(best_y.begin(), best_y.end(), out.ys.data() + i * label_w);
      if (stats != nullptr) ++stats->reused;
    } else {
      fallback_rows.push_back(i);
    }
  }

  if (!fallback_rows.empty()) {
    Tensor pending({fallback_rows.size(), 1, config_.image_size,
                    config_.image_size});
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(xs.data() + fallback_rows[j] * pixels, pixels,
                  pending.data() + j * pixels);
    }
    const Tensor computed = fallback_labeler(pending);
    FAIRDMS_CHECK(computed.rank() == 2 &&
                      computed.dim(0) == fallback_rows.size() &&
                      computed.dim(1) == label_w,
                  "fallback labeler returned wrong shape");
    for (std::size_t j = 0; j < fallback_rows.size(); ++j) {
      std::copy_n(computed.data() + j * label_w, label_w,
                  out.ys.data() + fallback_rows[j] * label_w);
    }
    if (stats != nullptr) stats->computed += fallback_rows.size();
  }
  return out;
}

const cluster::KMeansModel& FairDS::clusters() const {
  FAIRDMS_CHECK(kmeans_.has_value(), "FairDS::clusters before train_system");
  return *kmeans_;
}

std::size_t FairDS::stored_count() const { return samples_->size(); }

std::size_t FairDS::n_clusters() const {
  return kmeans_.has_value() ? kmeans_->k() : 0;
}

Tensor FairDS::stored_images() const {
  const std::size_t n = samples_->size();
  if (n == 0) return Tensor();
  const std::size_t pixels = config_.image_size * config_.image_size;
  Tensor out({n, 1, config_.image_size, config_.image_size});
  std::size_t i = 0;
  samples_->scan([&](store::DocId, const store::Value& doc) {
    const auto x = decode_floats(doc.at("x").as_binary());
    FAIRDMS_CHECK(x.size() == pixels, "stored sample has wrong pixel count");
    std::copy(x.begin(), x.end(), out.data() + i * pixels);
    ++i;
  });
  return out;
}

}  // namespace fairdms::fairds
