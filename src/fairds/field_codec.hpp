// Shared helpers for the fairDS stored-sample field format.
//
// Every fairDS write path (ingest, retrain re-assignment) and read path
// (snapshot fetches, index rebuild, the legacy baseline) must agree on how
// `x` / `y` / `embedding` float vectors are (de)serialized into binary
// fields. One pair of helpers keeps them from drifting apart.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "store/document.hpp"

namespace fairdms::fairds {

inline store::Binary encode_floats(std::span<const float> values) {
  static const store::RawCodec codec;
  return codec.encode(values);
}

inline std::vector<float> decode_floats(const store::Binary& bytes) {
  static const store::RawCodec codec;
  std::vector<float> out;
  codec.decode(bytes, out);
  return out;
}

/// Projection for sample fetches: the image/label pair, nothing else.
inline const std::vector<std::string> kXYFields = {"x", "y"};

}  // namespace fairdms::fairds
