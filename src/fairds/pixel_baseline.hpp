// Instance-discrimination retrieval baseline (paper §II-A).
//
// The naive alternative to fairDS's embedding index: store raw images and
// answer "find similar labeled data" by pixel-by-pixel L2 nearest neighbour.
// The paper rejects it for two measured reasons — it is *fragile* (a rotated
// or shifted copy of an image lands far away in pixel space) and *expensive*
// (every query scans the whole database). This class exists to make both
// failure modes reproducible (bench/abl_retrieval).
#pragma once

#include <cstddef>

#include "nn/trainer.hpp"

namespace fairdms::fairds {

class PixelNnBaseline {
 public:
  /// image_size: square side of stored/query images.
  explicit PixelNnBaseline(std::size_t image_size)
      : image_size_(image_size) {}

  /// Adds labeled history (xs [N,1,S,S], ys [N,L]).
  void ingest(const nn::Tensor& xs, const nn::Tensor& ys);

  /// For each query row, the stored pair {p, l(p)} nearest in raw pixel
  /// space (exhaustive scan, like the paper's "pixel-by-pixel intensity
  /// vector comparisons").
  [[nodiscard]] nn::Batchset lookup(const nn::Tensor& xs) const;

  [[nodiscard]] std::size_t stored_count() const {
    return images_.empty() ? 0 : images_.dim(0);
  }

 private:
  std::size_t image_size_;
  nn::Tensor images_;  ///< [N, S*S]
  nn::Tensor labels_;  ///< [N, L]
};

}  // namespace fairdms::fairds
