#include "fairds/pixel_baseline.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::fairds {

void PixelNnBaseline::ingest(const nn::Tensor& xs, const nn::Tensor& ys) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == image_size_ &&
                    xs.dim(3) == image_size_,
                "PixelNnBaseline::ingest: bad image shape ", xs.shape_str());
  FAIRDMS_CHECK(xs.dim(0) == ys.dim(0), "ingest: xs/ys count mismatch");
  const std::size_t pixels = image_size_ * image_size_;
  const std::size_t label_w = ys.numel() / ys.dim(0);
  const std::size_t old_n = stored_count();
  const std::size_t add_n = xs.dim(0);

  nn::Tensor new_images({old_n + add_n, pixels});
  nn::Tensor new_labels({old_n + add_n, label_w});
  if (old_n > 0) {
    FAIRDMS_CHECK(labels_.dim(1) == label_w, "ingest: label width changed");
    std::copy_n(images_.data(), images_.numel(), new_images.data());
    std::copy_n(labels_.data(), labels_.numel(), new_labels.data());
  }
  std::copy_n(xs.data(), xs.numel(), new_images.data() + old_n * pixels);
  std::copy_n(ys.data(), ys.numel(), new_labels.data() + old_n * label_w);
  images_ = std::move(new_images);
  labels_ = std::move(new_labels);
}

nn::Batchset PixelNnBaseline::lookup(const nn::Tensor& xs) const {
  FAIRDMS_CHECK(stored_count() > 0, "PixelNnBaseline::lookup: empty store");
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(2) == image_size_ &&
                    xs.dim(3) == image_size_,
                "lookup: bad query shape ", xs.shape_str());
  const std::size_t pixels = image_size_ * image_size_;
  const std::size_t label_w = labels_.dim(1);
  const std::size_t n = xs.dim(0);
  const std::size_t stored = stored_count();

  nn::Batchset out;
  out.xs = nn::Tensor({n, 1, image_size_, image_size_});
  out.ys = nn::Tensor({n, label_w});
  const float* pq = xs.data();
  const float* pi = images_.data();
  const float* pl = labels_.data();
  float* pox = out.xs.data();
  float* poy = out.ys.data();

  // Exhaustive scan per query — the O(|DB|) cost the paper objects to.
  util::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          const float* query = pq + q * pixels;
          double best = std::numeric_limits<double>::infinity();
          std::size_t best_i = 0;
          for (std::size_t i = 0; i < stored; ++i) {
            const float* candidate = pi + i * pixels;
            double d = 0.0;
            for (std::size_t j = 0; j < pixels; ++j) {
              const double diff =
                  static_cast<double>(query[j]) - candidate[j];
              d += diff * diff;
              if (d >= best) break;  // early abandon
            }
            if (d < best) {
              best = d;
              best_i = i;
            }
          }
          std::copy_n(pi + best_i * pixels, pixels, pox + q * pixels);
          std::copy_n(pl + best_i * label_w, label_w, poy + q * label_w);
        }
      },
      /*min_grain=*/1);
  return out;
}

}  // namespace fairdms::fairds
