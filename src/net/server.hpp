// net::Server — the binary-framed TCP serving front-end over DataService.
//
// Threading model (three tiers, none of which block each other):
//  * One event-loop thread owns the listening socket and every connection:
//    poll()-driven accept, non-blocking reads, frame reassembly, dispatch,
//    and non-blocking response writes. Cheap endpoints (hello, stats,
//    request_retrain) are answered inline; shed requests — whose futures
//    are ready at dispatch — are answered inline too, so the wire-level
//    shed path stays O(1) exactly like the in-process one.
//  * label / lookup / recommend requests dispatch onto the existing
//    future-based DataService::submit() plane. A small completion pool
//    waits on the not-immediately-ready futures, encodes the responses,
//    and appends them to the connection's write buffer — so responses
//    return in *completion* order, not request order, matched to their
//    request by the correlation id the client chose.
//  * The DataService's own worker pool executes the requests, untouched.
//
// Protocol discipline (see net/wire.hpp for the frame format):
//  * Admission sheds map to ServeStatus::kShedOverload in the response
//    header — never to a dropped connection or a silent stall.
//  * Version negotiation is per-frame: the server answers every version in
//    [kMinProtocolVersion, kProtocolVersion], encoding each reply at the
//    version of the frame it answers. A v1 frame names no stream and
//    routes to the default stream; hello acks min(peer, kProtocolVersion),
//    so an old client and a new server agree on v1 without either side
//    special-casing.
//  * A request naming an unregistered stream is answered with
//    ServeStatus::kUnknownStream on a connection that stays usable — a
//    structured answer, exactly like a shed, never a disconnect.
//  * A malformed frame with a trustworthy envelope (known framing, bad
//    content: unknown op, undecodable payload, wrong tensor shape) is
//    answered with kMalformedRequest and the connection stays usable. A
//    frame that breaks the framing itself (bad magic) or that the server
//    refuses to buffer (declared payload over the cap) or speaks a
//    protocol version outside the supported range closes the connection
//    cleanly — after an error frame wherever the header could still be
//    parsed. The server never crashes on peer-controlled bytes.
//  * begin_drain()/stop() implement graceful shutdown: draining answers
//    new user-plane requests with kShuttingDown while in-flight requests
//    complete and every buffered response is flushed (bounded by a grace
//    period against peers that stop reading) before sockets close.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/data_service.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 => ephemeral; read back via Server::port()
  /// Per-frame payload cap; a peer declaring more is disconnected before
  /// the server buffers a single payload byte.
  std::uint32_t max_payload = kDefaultMaxPayload;
  /// Threads waiting on in-flight service futures; 0 => the service's
  /// worker count (enough that every concurrently-executing request has a
  /// waiter, so completion order tracks the service, not the front-end).
  std::size_t completion_threads = 0;
  /// Server-side policy for the label endpoint's fallback labeler (code
  /// cannot travel on the wire). Label requests against a server without
  /// one are answered kMalformedRequest.
  std::function<tensor::Tensor(const tensor::Tensor&)> fallback_labeler;
  /// Seconds stop() keeps flushing buffered responses to peers that have
  /// stopped reading before force-closing them.
  double drain_grace_seconds = 5.0;
};

class Server {
 public:
  /// Binds + listens + starts the event loop. Check ok() — construction
  /// does not abort on an unavailable port (environmental, not invariant).
  Server(service::DataService& service, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] bool ok() const { return listener_.valid(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop admitting user-plane work: label / lookup / recommend frames are
  /// answered with ServeStatus::kShuttingDown from this point on (stats and
  /// hello keep working so operators can watch the drain). Idempotent.
  void begin_drain();

  /// begin_drain() + wait for every dispatched request to complete and
  /// every buffered response byte to flush (bounded by drain_grace_seconds
  /// per the config), then close all sockets and join the event loop.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Wire-level observability, disjoint from ServiceStats (which counts
  /// what reached the service; these count what happened on the socket).
  struct Counters {
    std::uint64_t accepted_connections = 0;
    std::uint64_t frames_in = 0;   ///< well-framed frames fully received
    std::uint64_t frames_out = 0;  ///< response frames enqueued
    std::uint64_t malformed_frames = 0;
    std::uint64_t shed_responses = 0;      ///< kShedOverload sent
    std::uint64_t shutdown_responses = 0;  ///< kShuttingDown sent
    std::uint64_t unknown_stream_responses = 0;  ///< kUnknownStream sent
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Connection;

  void loop();
  /// Parse every complete frame out of `conn`'s read buffer. Returns false
  /// when the connection must close (framing broken / peer gone).
  bool drain_input(const std::shared_ptr<Connection>& conn);
  /// Returns false when the connection must close after the reply flushes.
  bool handle_frame(const std::shared_ptr<Connection>& conn,
                    const FrameHeader& header,
                    std::span<const std::uint8_t> payload);
  /// [N, 1, S, S] with N >= 1 and S the *target stream's* snapshot image
  /// size — the shape contract every tensor endpoint enforces on untrusted
  /// input before the request can reach an invariant-checked service path.
  /// Per-stream, because tenants may serve different image sizes.
  [[nodiscard]] bool valid_batch_shape(const tensor::Tensor& xs,
                                       const std::string& stream) const;

  /// `version` stamps the reply header (and must match how `payload` was
  /// encoded): always the version of the request frame being answered.
  void reply(const std::shared_ptr<Connection>& conn, Op op,
             service::ServeStatus status, std::uint64_t correlation_id,
             const Bytes& payload, std::uint16_t version);
  template <typename Response>
  void finish(const std::shared_ptr<Connection>& conn, Op op,
              std::uint64_t correlation_id, std::uint16_t version,
              std::future<Response> future,
              Bytes (*encoder)(const Response&));
  void wake();

  service::DataService* service_;
  ServerConfig config_;
  UniqueFd listener_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::uint16_t port_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};
  /// Requests handed to the completion pool and not yet answered; the
  /// event loop exits only at zero (with all buffers flushed).
  std::atomic<std::size_t> outstanding_{0};

  std::atomic<std::uint64_t> accepted_connections_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> shed_responses_{0};
  std::atomic<std::uint64_t> shutdown_responses_{0};
  std::atomic<std::uint64_t> unknown_stream_responses_{0};

  /// Owned by the event-loop thread exclusively.
  std::vector<std::shared_ptr<Connection>> connections_;

  util::ThreadPool completers_;
  std::thread loop_thread_;
  std::atomic<bool> stopped_{false};
};

}  // namespace fairdms::net
