// Binary wire protocol for the fairDMS serving front-end.
//
// Every message on a fairDMS connection is one length-prefixed frame:
//
//   offset  size  field
//        0     4  magic      0x534D4446 ("FDMS" as little-endian bytes)
//        4     2  version    protocol version (kProtocolVersion)
//        6     1  op         Op code (label / lookup / recommend / ...)
//        7     1  status     service::ServeStatus (requests always kOk)
//        8     8  correlation id — chosen by the client, echoed verbatim in
//                 the response, so responses may return out of order and
//                 still be matched to their request
//       16     4  payload length in bytes (follows immediately)
//
// All integers are little-endian; floats travel as their IEEE-754 bit
// pattern, so an encode/decode round trip is bit-exact. The payload is the
// op-specific DTO encoding (the structs in src/service/dtos.hpp): requests
// carry the inputs, responses carry the outputs plus serving metadata, and
// the admission status rides in the frame header so a shed or drained
// request needs no payload at all.
//
// Decoding never trusts the peer: every read is bounds-checked against the
// declared payload, tensor shapes are validated (rank/element caps,
// overflow-checked element counts) before allocation, and every decode
// entry point returns false on malformed input instead of aborting — the
// server maps that to ServeStatus::kMalformedRequest, never to a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/dtos.hpp"
#include "tensor/tensor.hpp"

namespace fairdms::net {

using Bytes = std::vector<std::uint8_t>;

inline constexpr std::uint32_t kMagic = 0x534D4446u;  // "FDMS"
/// Current protocol version. v2 adds multi-stream routing: request
/// payloads grow a trailing stream-name string, the stats response grows
/// a per-stream breakdown, and the kUnknownStream status byte becomes
/// legal on replies. The server still speaks v1 per-frame (see
/// kMinProtocolVersion): a v1 frame's requests route to the default
/// stream and its replies are encoded in the v1 layout, so old clients
/// work against a v2 server unchanged.
inline constexpr std::uint16_t kProtocolVersion = 2;
/// Oldest version the server still answers (frames below it are
/// malformed).
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;

/// Default cap on a single frame's payload. Generous for image batches
/// (16 MiB ≈ a [4600, 1, 30, 30] float batch) but small enough that a
/// hostile declared length cannot make the server allocate unboundedly.
inline constexpr std::uint32_t kDefaultMaxPayload = 16u << 20;

/// Operation codes. The endpoint surface mirrors the in-process
/// DataService plane (plus the hello handshake): label / lookup /
/// recommend dispatch onto the future-based submit() path; stats and
/// retrain are answered inline by the server.
enum class Op : std::uint8_t {
  kHello = 0,      ///< version handshake; response payload: server limits
  kLabel = 1,      ///< service::LabelRequest -> LabelResponse
  kLookup = 2,     ///< service::LookupRequest -> LookupResponse
  kRecommend = 3,  ///< service::RecommendRequest -> RecommendResponse
  kStats = 4,      ///< (empty) -> service::ServiceStats
  kRetrain = 5,    ///< service::RetrainRequest -> accepted/coalesced flag
};

[[nodiscard]] constexpr const char* to_string(Op op) {
  switch (op) {
    case Op::kHello:
      return "hello";
    case Op::kLabel:
      return "label";
    case Op::kLookup:
      return "lookup";
    case Op::kRecommend:
      return "recommend";
    case Op::kStats:
      return "stats";
    case Op::kRetrain:
      return "request_retrain";
  }
  return "unknown";
}

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  std::uint8_t op = 0;  ///< raw byte: may be an op code we do not know
  service::ServeStatus status = service::ServeStatus::kOk;
  std::uint64_t correlation_id = 0;
  std::uint32_t payload_len = 0;
};

/// Hello response payload: what the server is willing to speak.
struct HelloAck {
  std::uint16_t version = kProtocolVersion;
  std::uint32_t max_payload = kDefaultMaxPayload;
};

// --- primitives -------------------------------------------------------------

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);          ///< u32 length + bytes
  void tensor(const tensor::Tensor& t);    ///< u32 rank, u64 dims, f32 data
  void pdf(const std::vector<double>& p);  ///< u32 count + f64s

  [[nodiscard]] Bytes take() { return std::move(out_); }
  [[nodiscard]] const Bytes& bytes() const { return out_; }

 private:
  Bytes out_;
};

/// Cursor-based bounds-checked decoder. Every accessor returns false on
/// truncation (and leaves the output untouched); decode helpers below
/// additionally require the cursor to land exactly at the end, so trailing
/// garbage is malformed too.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool u8(std::uint8_t* v);
  [[nodiscard]] bool u16(std::uint16_t* v);
  [[nodiscard]] bool u32(std::uint32_t* v);
  [[nodiscard]] bool u64(std::uint64_t* v);
  [[nodiscard]] bool f32(float* v);
  [[nodiscard]] bool f64(double* v);
  [[nodiscard]] bool str(std::string* s, std::size_t max_len = 1 << 16);
  [[nodiscard]] bool tensor(tensor::Tensor* t);
  [[nodiscard]] bool pdf(std::vector<double>* p,
                         std::size_t max_len = 1 << 16);

  [[nodiscard]] bool done() const { return cursor_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - cursor_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t cursor_ = 0;
};

// --- frames -----------------------------------------------------------------

/// One complete frame: header + payload, ready to write to a socket.
/// `version` is stamped into the header verbatim — the payload must have
/// been encoded by a codec called with the same version.
[[nodiscard]] Bytes encode_frame(Op op, service::ServeStatus status,
                                 std::uint64_t correlation_id,
                                 const Bytes& payload,
                                 std::uint16_t version = kProtocolVersion);

/// Decodes the 20-byte header. nullopt on short input, wrong magic, or a
/// status byte outside the ServeStatus range. The version is NOT validated
/// here — the caller decides how to answer a version mismatch.
[[nodiscard]] std::optional<FrameHeader> decode_header(
    std::span<const std::uint8_t> bytes);

// --- DTO payload codecs -----------------------------------------------------
// Encoders produce the payload only (the status travels in the header);
// decoders return false on any malformed input and require the payload to
// be fully consumed. Request codecs (and the stats response, whose layout
// changed in v2) take the frame's negotiated version: v1 omits the
// trailing stream string, v2 appends it LAST so the v1 prefix of every
// payload is byte-identical across versions. Callers pass the version out
// of the frame header; a codec never guesses from payload length.

[[nodiscard]] Bytes encode_hello_ack(const HelloAck& ack);
[[nodiscard]] bool decode_hello_ack(std::span<const std::uint8_t> payload,
                                    HelloAck* ack);

/// The wire LabelRequest carries xs + threshold only: the fallback labeler
/// is code and stays a server-side policy (net::ServerConfig), exactly as
/// the paper's conventional labeler runs beside the data service, not on
/// the beamline client.
[[nodiscard]] Bytes encode_label_request(
    const service::LabelRequest& req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] bool decode_label_request(std::span<const std::uint8_t> payload,
                                        service::LabelRequest* req,
                                        std::uint16_t version = kProtocolVersion);
[[nodiscard]] Bytes encode_label_response(const service::LabelResponse& resp);
[[nodiscard]] bool decode_label_response(std::span<const std::uint8_t> payload,
                                         service::LabelResponse* resp);

[[nodiscard]] Bytes encode_lookup_request(
    const service::LookupRequest& req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] bool decode_lookup_request(
    std::span<const std::uint8_t> payload, service::LookupRequest* req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] Bytes encode_lookup_response(
    const service::LookupResponse& resp);
[[nodiscard]] bool decode_lookup_response(
    std::span<const std::uint8_t> payload, service::LookupResponse* resp);

[[nodiscard]] Bytes encode_recommend_request(
    const service::RecommendRequest& req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] bool decode_recommend_request(
    std::span<const std::uint8_t> payload, service::RecommendRequest* req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] Bytes encode_recommend_response(
    const service::RecommendResponse& resp);
[[nodiscard]] bool decode_recommend_response(
    std::span<const std::uint8_t> payload, service::RecommendResponse* resp);

/// Stats is the one response whose layout is versioned: the v1 body (25
/// fixed fields) stays a byte-identical prefix; v2 appends the new global
/// counters (retrains_capped, policy_cooldown_skips,
/// unknown_stream_requests) and the per-stream breakdown. A v1 peer asking
/// a v2 server simply receives the v1 body — aggregates only.
[[nodiscard]] Bytes encode_stats_response(
    const service::ServiceStats& stats,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] bool decode_stats_response(
    std::span<const std::uint8_t> payload, service::ServiceStats* stats,
    std::uint16_t version = kProtocolVersion);

[[nodiscard]] Bytes encode_retrain_request(
    const service::RetrainRequest& req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] bool decode_retrain_request(
    std::span<const std::uint8_t> payload, service::RetrainRequest* req,
    std::uint16_t version = kProtocolVersion);
[[nodiscard]] Bytes encode_retrain_response(bool accepted);
[[nodiscard]] bool decode_retrain_response(
    std::span<const std::uint8_t> payload, bool* accepted);

}  // namespace fairdms::net
