#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>

#include "util/annotations.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"

namespace fairdms::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kPollMillis = 100;

}  // namespace

/// One accepted socket. The read side (in / want_close) belongs to the
/// event-loop thread exclusively; the write buffer is shared with the
/// completion threads under `mutex` — completers only ever append, the
/// event loop only ever flushes, and nobody touches the fd but the loop.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}

  UniqueFd fd;
  Bytes in;                 ///< event-loop thread only
  bool want_close = false;  ///< event-loop thread only: close once flushed
  std::atomic<bool> closed{false};

  util::Mutex mutex{util::LockRank::kNetConnection};
  Bytes out GUARDED_BY(mutex);
  std::size_t out_off GUARDED_BY(mutex) = 0;

  /// Appends a response frame. False when the peer is already gone (the
  /// frame is dropped; the request's effects already happened server-side).
  bool enqueue(const Bytes& frame) {
    if (closed.load(std::memory_order_acquire)) return false;
    util::MutexLock lock(mutex);
    out.insert(out.end(), frame.begin(), frame.end());
    return true;
  }

  bool has_pending() {
    util::MutexLock lock(mutex);
    return out_off < out.size();
  }

  enum class FlushResult { kDrained, kBlocked, kError };
  FlushResult flush() {
    util::MutexLock lock(mutex);
    while (out_off < out.size()) {
      const ssize_t rc =
          ::send(fd.get(), out.data() + out_off, out.size() - out_off,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (rc > 0) {
        out_off += static_cast<std::size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return FlushResult::kBlocked;
      }
      if (rc < 0 && errno == EINTR) continue;
      return FlushResult::kError;
    }
    out.clear();
    out_off = 0;
    return FlushResult::kDrained;
  }
};

Server::Server(service::DataService& service, ServerConfig config)
    : service_(&service),
      config_(std::move(config)),
      completers_(config_.completion_threads != 0
                      ? config_.completion_threads
                      : std::max<std::size_t>(2, service.worker_count())) {
  const int lfd = create_listener(config_.bind_address, config_.port);
  if (lfd < 0) {
    util::log_warn("net::Server: cannot listen on ", config_.bind_address,
                   ":", config_.port);
    return;
  }
  set_nonblocking(lfd);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(lfd);
    util::log_warn("net::Server: cannot create wake pipe");
    return;
  }
  set_nonblocking(pipe_fds[0]);
  set_nonblocking(pipe_fds[1]);
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  listener_.reset(lfd);
  port_ = local_port(lfd);
  loop_thread_ = std::thread([this] { loop(); });
}

Server::~Server() { stop(); }

void Server::begin_drain() { draining_.store(true, std::memory_order_release); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  begin_drain();
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

Server::Counters Server::counters() const {
  Counters c;
  c.accepted_connections = accepted_connections_.load();
  c.frames_in = frames_in_.load();
  c.frames_out = frames_out_.load();
  c.malformed_frames = malformed_frames_.load();
  c.shed_responses = shed_responses_.load();
  c.shutdown_responses = shutdown_responses_.load();
  c.unknown_stream_responses = unknown_stream_responses_.load();
  return c;
}

void Server::wake() {
  const std::uint8_t byte = 1;
  // A full pipe already means a wakeup is pending; EAGAIN is success here.
  [[maybe_unused]] const ssize_t rc =
      ::write(wake_write_.get(), &byte, 1);
}

void Server::reply(const std::shared_ptr<Connection>& conn, Op op,
                   service::ServeStatus status, std::uint64_t correlation_id,
                   const Bytes& payload, std::uint16_t version) {
  if (conn->enqueue(
          encode_frame(op, status, correlation_id, payload, version))) {
    frames_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::valid_batch_shape(const tensor::Tensor& xs,
                               const std::string& stream) const {
  const auto snap = service_->snapshot(stream);
  if (snap == nullptr) return false;
  return xs.rank() == 4 && xs.dim(0) >= 1 && xs.dim(1) == 1 &&
         xs.dim(2) == snap->image_size() && xs.dim(3) == snap->image_size();
}

template <typename Response>
void Server::finish(const std::shared_ptr<Connection>& conn, Op op,
                    std::uint64_t correlation_id, std::uint16_t version,
                    std::future<Response> future,
                    Bytes (*encoder)(const Response&)) {
  // Shed futures are ready at dispatch: answer them from the event loop so
  // the wire-level shed path is as O(1) as the in-process one and never
  // waits behind a completion thread.
  if (future.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    const Response response = future.get();
    if (response.status == service::ServeStatus::kShedOverload) {
      shed_responses_.fetch_add(1, std::memory_order_relaxed);
    }
    reply(conn, op, response.status, correlation_id, encoder(response),
          version);
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  auto shared = std::make_shared<std::future<Response>>(std::move(future));
  completers_.submit(
      [this, conn, op, correlation_id, version, shared, encoder] {
        const Response response = shared->get();
        reply(conn, op, response.status, correlation_id, encoder(response),
              version);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
        wake();
      });
}

bool Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const FrameHeader& header,
                          std::span<const std::uint8_t> payload) {
  const std::uint64_t cid = header.correlation_id;
  // drain_input validated the version range; every reply (and every
  // versioned payload in it) is encoded at the request frame's version.
  const std::uint16_t ver = header.version;
  const auto op = static_cast<Op>(header.op);
  const auto malformed = [&] {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    reply(conn, op, service::ServeStatus::kMalformedRequest, cid, {}, ver);
  };
  const auto shutting_down = [&] {
    shutdown_responses_.fetch_add(1, std::memory_order_relaxed);
    reply(conn, op, service::ServeStatus::kShuttingDown, cid, {}, ver);
  };
  // Stream resolution comes before shape validation: an unregistered name
  // has no snapshot to validate against, and it deserves the structured
  // kUnknownStream answer, not kMalformedRequest. The connection stays
  // usable either way.
  const auto unknown_stream = [&] {
    unknown_stream_responses_.fetch_add(1, std::memory_order_relaxed);
    reply(conn, op, service::ServeStatus::kUnknownStream, cid, {}, ver);
  };
  const bool draining = draining_.load(std::memory_order_acquire);

  switch (op) {
    case Op::kHello: {
      // Negotiate down, never up: an old client keeps speaking its own
      // version and the server answers every frame in kind.
      const std::uint16_t ack = std::min(ver, kProtocolVersion);
      reply(conn, Op::kHello, service::ServeStatus::kOk, cid,
            encode_hello_ack({ack, config_.max_payload}), ver);
      return true;
    }
    case Op::kStats: {
      // Observability stays up during a drain so operators can watch it.
      // v1 peers get the aggregate body; v2 adds the per-stream blocks.
      reply(conn, Op::kStats, service::ServeStatus::kOk, cid,
            encode_stats_response(service_->stats(), ver), ver);
      return true;
    }
    case Op::kRetrain: {
      service::RetrainRequest request;
      if (!decode_retrain_request(payload, &request, ver)) {
        malformed();
        return true;
      }
      if (!service_->has_stream(request.stream)) {
        unknown_stream();
        return true;
      }
      if (!valid_batch_shape(request.xs, request.stream)) {
        malformed();
        return true;
      }
      if (draining) {
        shutting_down();
        return true;
      }
      reply(conn, Op::kRetrain, service::ServeStatus::kOk, cid,
            encode_retrain_response(
                service_->request_retrain(request.stream, request.xs)),
            ver);
      return true;
    }
    case Op::kLabel: {
      service::LabelRequest request;
      if (!decode_label_request(payload, &request, ver) ||
          config_.fallback_labeler == nullptr) {
        malformed();
        return true;
      }
      if (!service_->has_stream(request.stream)) {
        unknown_stream();
        return true;
      }
      if (!valid_batch_shape(request.xs, request.stream)) {
        malformed();
        return true;
      }
      if (draining) {
        shutting_down();
        return true;
      }
      request.fallback_labeler = config_.fallback_labeler;
      finish(conn, Op::kLabel, cid, ver,
             service_->submit(std::move(request)), &encode_label_response);
      return true;
    }
    case Op::kLookup: {
      service::LookupRequest request;
      if (!decode_lookup_request(payload, &request, ver)) {
        malformed();
        return true;
      }
      if (!service_->has_stream(request.stream)) {
        unknown_stream();
        return true;
      }
      if (!valid_batch_shape(request.xs, request.stream)) {
        malformed();
        return true;
      }
      if (draining) {
        shutting_down();
        return true;
      }
      finish(conn, Op::kLookup, cid, ver,
             service_->submit(std::move(request)), &encode_lookup_response);
      return true;
    }
    case Op::kRecommend: {
      service::RecommendRequest request;
      if (!decode_recommend_request(payload, &request, ver)) {
        malformed();
        return true;
      }
      if (!service_->has_stream(request.stream)) {
        unknown_stream();
        return true;
      }
      if (!valid_batch_shape(request.xs, request.stream) ||
          !service_->has_model_manager(request.stream)) {
        malformed();
        return true;
      }
      if (draining) {
        shutting_down();
        return true;
      }
      finish(conn, Op::kRecommend, cid, ver,
             service_->submit(std::move(request)),
             &encode_recommend_response);
      return true;
    }
  }
  // Unknown op code: the framing is intact, so answer and keep the stream.
  malformed();
  return true;
}

bool Server::drain_input(const std::shared_ptr<Connection>& conn) {
  Bytes& in = conn->in;
  std::size_t off = 0;
  bool keep = true;
  while (keep) {
    const std::size_t avail = in.size() - off;
    if (avail < kHeaderSize) break;
    const auto header =
        decode_header(std::span<const std::uint8_t>(in).subspan(off));
    if (!header) {
      // Bad magic / unparseable header: the stream itself cannot be
      // trusted, so there is no correlation id to answer to. Close.
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      keep = false;
      break;
    }
    if (header->version < kMinProtocolVersion ||
        header->version > kProtocolVersion ||
        header->payload_len > config_.max_payload) {
      // The envelope parsed, so an error reply reaches the right request —
      // but an unsupported-version peer misreads every subsequent byte and
      // an over-cap payload will never be buffered: close after the reply.
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      reply(conn, static_cast<Op>(header->op),
            service::ServeStatus::kMalformedRequest, header->correlation_id,
            {}, std::min(header->version, kProtocolVersion));
      keep = false;
      break;
    }
    if (avail < kHeaderSize + header->payload_len) break;  // partial frame
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    keep = handle_frame(
        conn, *header,
        std::span<const std::uint8_t>(in).subspan(off + kHeaderSize,
                                                  header->payload_len));
    off += kHeaderSize + header->payload_len;
  }
  if (off > 0) {
    in.erase(in.begin(),
             in.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return keep;
}

void Server::loop() {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> pfd_conn;  // pfds index -> connections_ index
  std::optional<Clock::time_point> flush_deadline;

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);

    // Exit once every dispatched request has been answered and the answers
    // flushed — bounded by the grace period against peers that stopped
    // reading. Completions wake the loop, so this converges promptly.
    if (stopping && outstanding_.load(std::memory_order_acquire) == 0) {
      if (!flush_deadline) {
        flush_deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   config_.drain_grace_seconds));
      }
      bool pending = false;
      for (const auto& conn : connections_) {
        if (!conn->closed.load(std::memory_order_acquire) &&
            conn->has_pending()) {
          pending = true;
          break;
        }
      }
      if (!pending || Clock::now() > *flush_deadline) break;
    }

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_read_.get(), POLLIN, 0});
    if (!stopping) pfds.push_back({listener_.get(), POLLIN, 0});
    const std::size_t first_conn_pfd = pfds.size();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      auto& conn = connections_[i];
      if (conn->closed.load(std::memory_order_acquire)) continue;
      short events = stopping ? 0 : POLLIN;
      if (conn->has_pending()) events |= POLLOUT;
      pfds.push_back({conn->fd.get(), events, 0});
      pfd_conn.push_back(i);
    }

    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kPollMillis);

    if ((pfds[0].revents & POLLIN) != 0) {
      std::uint8_t buf[256];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }

    if (!stopping && (pfds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listener_.get(), nullptr, nullptr);
        if (cfd < 0) break;
        set_nonblocking(cfd);
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        accepted_connections_.fetch_add(1, std::memory_order_relaxed);
        connections_.push_back(std::make_shared<Connection>(cfd));
      }
    }

    for (std::size_t p = first_conn_pfd; p < pfds.size(); ++p) {
      auto& conn = connections_[pfd_conn[p - first_conn_pfd]];
      const short revents = pfds[p].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn->closed.store(true, std::memory_order_release);
        continue;
      }
      if (!stopping && (revents & (POLLIN | POLLHUP)) != 0) {
        std::uint8_t buf[kReadChunk];
        bool peer_gone = false;
        for (;;) {
          const ssize_t rc = ::read(conn->fd.get(), buf, sizeof(buf));
          if (rc > 0) {
            conn->in.insert(conn->in.end(), buf, buf + rc);
            continue;
          }
          if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (rc < 0 && errno == EINTR) continue;
          peer_gone = true;  // EOF or hard error
          break;
        }
        if (!conn->in.empty() && !drain_input(conn)) {
          conn->want_close = true;
        }
        if (peer_gone) conn->closed.store(true, std::memory_order_release);
      }
    }

    // Flush everything writable; completers may have appended since poll.
    for (auto& conn : connections_) {
      if (conn->closed.load(std::memory_order_acquire)) continue;
      const auto result = conn->flush();
      if (result == Connection::FlushResult::kError) {
        conn->closed.store(true, std::memory_order_release);
      } else if (conn->want_close &&
                 result == Connection::FlushResult::kDrained) {
        conn->closed.store(true, std::memory_order_release);
      }
    }

    // Reap: completers may still hold a shared_ptr; dropping ours here
    // only ends the loop's interest. The fd dies with the last reference,
    // and enqueue() on a closed connection is a silent no-op.
    std::erase_if(connections_, [](const std::shared_ptr<Connection>& c) {
      return c->closed.load(std::memory_order_acquire);
    });
  }

  for (auto& conn : connections_) {
    conn->closed.store(true, std::memory_order_release);
  }
  connections_.clear();
}

}  // namespace fairdms::net
