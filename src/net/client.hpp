// net::Client — small blocking client for the fairDMS wire protocol.
//
// Two usage levels, freely mixable on one connection:
//  * Typed sync wrappers (label / lookup / recommend / stats /
//    request_retrain): send one request, block for its response, surface
//    the header status in the DTO. A non-kOk response (shed, draining,
//    malformed) is a *valid* result — only transport failure (peer gone,
//    undecodable response) returns nullopt.
//  * Pipelined primitives (send_* + recv_reply): fire many requests without
//    waiting, then collect responses in whatever order the server finished
//    them, matching each to its request by the returned correlation id.
//    This is how the closed-loop load generator keeps the server's
//    admission queue full from a single connection.
//
// connect() performs the hello handshake: the server acks
// min(client, server) and the client requires the ack to equal its own
// version, so every later frame is known to be mutually intelligible. A
// Client constructed with version 1 therefore interoperates with a v2
// server (the server answers its frames in the v1 layout and routes them
// to the default stream); a v2 client against a v1-only server fails
// connect() cleanly.
// The client is single-connection and not thread-safe: one Client per
// thread (or process — bench/net_workload.cpp forks around it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/dtos.hpp"
#include "tensor/tensor.hpp"

namespace fairdms::net {

class Client {
 public:
  /// `version` is the protocol version every frame is sent at (the
  /// cross-version tests construct v1 clients to talk to a v2 server).
  explicit Client(std::uint16_t version = kProtocolVersion)
      : version_(version) {}
  ~Client() = default;  // UniqueFd closes the socket

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect + hello handshake. False on refusal, transport failure, or a
  /// server speaking a different protocol version.
  bool connect(const std::string& host, std::uint16_t port);
  /// connect() retried for up to `timeout_seconds` (the serve binary trains
  /// a world before it listens; CI clients start first and wait).
  bool connect_retry(const std::string& host, std::uint16_t port,
                     double timeout_seconds);
  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  /// What the server declared in its hello ack (valid after connect()).
  [[nodiscard]] const HelloAck& server_limits() const { return limits_; }
  /// The version this client speaks (fixed at construction).
  [[nodiscard]] std::uint16_t version() const { return version_; }

  // --- pipelined primitives ------------------------------------------------

  struct Reply {
    FrameHeader header;
    Bytes payload;
  };

  /// Each send_* returns the correlation id assigned to the request, or 0
  /// on transport failure.
  std::uint64_t send_label(const service::LabelRequest& request);
  std::uint64_t send_lookup(const service::LookupRequest& request);
  std::uint64_t send_recommend(const service::RecommendRequest& request);
  std::uint64_t send_stats();
  std::uint64_t send_retrain(const service::RetrainRequest& request);
  /// Default-stream shorthand (the legacy call sites).
  std::uint64_t send_retrain(const tensor::Tensor& xs) {
    return send_retrain(service::RetrainRequest{xs, {}});
  }
  /// Raw bytes straight onto the socket — the malformed-frame probes in the
  /// tests and load generator use this to impersonate a broken peer.
  bool send_raw(const Bytes& bytes);

  /// Blocks for the next response frame (any correlation id). nullopt on
  /// EOF, transport failure, or a response that breaks the framing.
  std::optional<Reply> recv_reply();

  // --- typed sync wrappers -------------------------------------------------
  // The response's `status` field carries the header status; a shed or
  // drained request yields a default payload with that status, exactly like
  // the in-process submit() plane.

  std::optional<service::LabelResponse> label(
      const service::LabelRequest& request);
  std::optional<service::LookupResponse> lookup(
      const service::LookupRequest& request);
  std::optional<service::RecommendResponse> recommend(
      const service::RecommendRequest& request);

  /// nullopt on transport failure or a non-kOk status (stats has no status
  /// field of its own — it is served inline and never shed).
  std::optional<service::ServiceStats> stats();

  /// Returns the accepted/coalesced flag. When the server answered non-kOk
  /// (e.g. kShuttingDown) the result is false and `status_out` (optional)
  /// carries the wire status. nullopt on transport failure.
  std::optional<bool> request_retrain(
      const service::RetrainRequest& request,
      service::ServeStatus* status_out = nullptr);
  std::optional<bool> request_retrain(
      const tensor::Tensor& xs,
      service::ServeStatus* status_out = nullptr) {
    return request_retrain(service::RetrainRequest{xs, {}}, status_out);
  }

 private:
  std::uint64_t send_frame(Op op, const Bytes& payload);
  /// Sync path: wait for the reply matching `cid`, discarding any stale
  /// pipelined replies still in flight.
  std::optional<Reply> recv_matching(std::uint64_t cid);
  template <typename Response>
  std::optional<Response> roundtrip(
      Op op, const Bytes& payload,
      bool (*decoder)(std::span<const std::uint8_t>, Response*));

  UniqueFd fd_;
  HelloAck limits_;
  std::uint16_t version_ = kProtocolVersion;
  std::uint64_t next_cid_ = 1;
};

}  // namespace fairdms::net
