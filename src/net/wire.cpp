#include "net/wire.hpp"

#include <cstring>
#include <limits>

namespace fairdms::net {

namespace {

/// Hard ceilings the decoder enforces before allocating anything. A frame
/// that passed the transport-level payload cap can still declare absurd
/// shapes; these keep a malformed tensor from costing more than the bytes
/// the peer actually sent.
constexpr std::size_t kMaxTensorRank = 8;

void append_le(Bytes& out, std::uint64_t v, std::size_t n_bytes) {
  for (std::size_t i = 0; i < n_bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// v2 request payloads end with the stream string; v1 payloads omit it
/// (an absent id means the default stream, which is also what an empty v2
/// string means, so decode leaves the field defaulted).
void encode_stream(WireWriter& w, const std::string& stream,
                   std::uint16_t version) {
  if (version >= 2) w.str(stream);
}

[[nodiscard]] bool decode_stream(WireReader& r, std::string* stream,
                                 std::uint16_t version) {
  // Cleared first so decoding a v1 body into a reused DTO cannot leave a
  // stale stream id behind (v1 frames always mean the default stream).
  stream->clear();
  if (version < 2) return true;
  return r.str(stream);
}

}  // namespace

// --- WireWriter -------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) { append_le(out_, v, 2); }
void WireWriter::u32(std::uint32_t v) { append_le(out_, v, 4); }
void WireWriter::u64(std::uint64_t v) { append_le(out_, v, 8); }

void WireWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void WireWriter::tensor(const tensor::Tensor& t) {
  u32(static_cast<std::uint32_t>(t.rank()));
  for (const std::size_t d : t.shape()) u64(d);
  for (const float v : t.flat()) f32(v);
}

void WireWriter::pdf(const std::vector<double>& p) {
  u32(static_cast<std::uint32_t>(p.size()));
  for (const double v : p) f64(v);
}

// --- WireReader -------------------------------------------------------------

bool WireReader::u8(std::uint8_t* v) {
  if (remaining() < 1) return false;
  *v = data_[cursor_++];
  return true;
}

bool WireReader::u16(std::uint16_t* v) {
  if (remaining() < 2) return false;
  *v = static_cast<std::uint16_t>(data_[cursor_] |
                                  (data_[cursor_ + 1] << 8));
  cursor_ += 2;
  return true;
}

bool WireReader::u32(std::uint32_t* v) {
  if (remaining() < 4) return false;
  std::uint32_t out = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(data_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 4;
  *v = out;
  return true;
}

bool WireReader::u64(std::uint64_t* v) {
  if (remaining() < 8) return false;
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(data_[cursor_ + i]) << (8 * i);
  }
  cursor_ += 8;
  *v = out;
  return true;
}

bool WireReader::f32(float* v) {
  std::uint32_t bits;
  if (!u32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::f64(double* v) {
  std::uint64_t bits;
  if (!u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::str(std::string* s, std::size_t max_len) {
  std::uint32_t len;
  if (!u32(&len)) return false;
  if (len > max_len || len > remaining()) return false;
  s->assign(reinterpret_cast<const char*>(data_.data() + cursor_), len);
  cursor_ += len;
  return true;
}

bool WireReader::tensor(tensor::Tensor* t) {
  std::uint32_t rank;
  if (!u32(&rank)) return false;
  if (rank > kMaxTensorRank) return false;
  std::vector<std::size_t> shape(rank);
  std::size_t numel = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    std::uint64_t d;
    if (!u64(&d)) return false;
    // Overflow-checked element count; a dim can never exceed what the
    // remaining payload could possibly back, so the product stays exact.
    if (d != 0 && numel > remaining() / d) return false;
    shape[i] = static_cast<std::size_t>(d);
    numel *= shape[i];
  }
  if (rank == 0) numel = 0;
  if (remaining() < numel * sizeof(float)) return false;
  std::vector<float> values(numel);
  for (std::size_t i = 0; i < numel; ++i) {
    (void)f32(&values[i]);  // bounds pre-checked above
  }
  *t = rank == 0 ? tensor::Tensor()
                 : tensor::Tensor::from_vector(std::move(shape),
                                               std::move(values));
  return true;
}

bool WireReader::pdf(std::vector<double>* p, std::size_t max_len) {
  std::uint32_t len;
  if (!u32(&len)) return false;
  if (len > max_len || remaining() < std::size_t{len} * 8) return false;
  p->resize(len);
  for (std::uint32_t i = 0; i < len; ++i) (void)f64(&(*p)[i]);
  return true;
}

// --- frames -----------------------------------------------------------------

Bytes encode_frame(Op op, service::ServeStatus status,
                   std::uint64_t correlation_id, const Bytes& payload,
                   std::uint16_t version) {
  WireWriter w;
  w.u32(kMagic);
  w.u16(version);
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(correlation_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  Bytes out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<FrameHeader> decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  WireReader r(bytes.subspan(0, kHeaderSize));
  std::uint32_t magic;
  FrameHeader h;
  std::uint8_t status;
  if (!r.u32(&magic) || !r.u16(&h.version) || !r.u8(&h.op) ||
      !r.u8(&status) || !r.u64(&h.correlation_id) || !r.u32(&h.payload_len)) {
    return std::nullopt;
  }
  if (magic != kMagic) return std::nullopt;
  if (status > static_cast<std::uint8_t>(service::ServeStatus::kUnknownStream)) {
    return std::nullopt;
  }
  h.status = static_cast<service::ServeStatus>(status);
  return h;
}

// --- DTO payload codecs -----------------------------------------------------

Bytes encode_hello_ack(const HelloAck& ack) {
  WireWriter w;
  w.u16(ack.version);
  w.u32(ack.max_payload);
  return w.take();
}

bool decode_hello_ack(std::span<const std::uint8_t> payload, HelloAck* ack) {
  WireReader r(payload);
  return r.u16(&ack->version) && r.u32(&ack->max_payload) && r.done();
}

Bytes encode_label_request(const service::LabelRequest& req,
                           std::uint16_t version) {
  WireWriter w;
  w.tensor(req.xs);
  w.f64(req.threshold);
  encode_stream(w, req.stream, version);
  return w.take();
}

bool decode_label_request(std::span<const std::uint8_t> payload,
                          service::LabelRequest* req, std::uint16_t version) {
  WireReader r(payload);
  return r.tensor(&req->xs) && r.f64(&req->threshold) &&
         decode_stream(r, &req->stream, version) && r.done();
}

Bytes encode_label_response(const service::LabelResponse& resp) {
  WireWriter w;
  w.tensor(resp.batch.xs);
  w.tensor(resp.batch.ys);
  w.u64(resp.reuse.reused);
  w.u64(resp.reuse.computed);
  w.u64(resp.snapshot_version);
  w.f64(resp.seconds);
  return w.take();
}

bool decode_label_response(std::span<const std::uint8_t> payload,
                           service::LabelResponse* resp) {
  WireReader r(payload);
  std::uint64_t reused, computed;
  if (!(r.tensor(&resp->batch.xs) && r.tensor(&resp->batch.ys) &&
        r.u64(&reused) && r.u64(&computed) && r.u64(&resp->snapshot_version) &&
        r.f64(&resp->seconds) && r.done())) {
    return false;
  }
  resp->reuse.reused = static_cast<std::size_t>(reused);
  resp->reuse.computed = static_cast<std::size_t>(computed);
  return true;
}

Bytes encode_lookup_request(const service::LookupRequest& req,
                            std::uint16_t version) {
  WireWriter w;
  w.tensor(req.xs);
  w.u64(req.seed);
  encode_stream(w, req.stream, version);
  return w.take();
}

bool decode_lookup_request(std::span<const std::uint8_t> payload,
                           service::LookupRequest* req,
                           std::uint16_t version) {
  WireReader r(payload);
  return r.tensor(&req->xs) && r.u64(&req->seed) &&
         decode_stream(r, &req->stream, version) && r.done();
}

Bytes encode_lookup_response(const service::LookupResponse& resp) {
  WireWriter w;
  w.tensor(resp.batch.xs);
  w.tensor(resp.batch.ys);
  w.u64(resp.snapshot_version);
  w.f64(resp.seconds);
  return w.take();
}

bool decode_lookup_response(std::span<const std::uint8_t> payload,
                            service::LookupResponse* resp) {
  WireReader r(payload);
  return r.tensor(&resp->batch.xs) && r.tensor(&resp->batch.ys) &&
         r.u64(&resp->snapshot_version) && r.f64(&resp->seconds) && r.done();
}

Bytes encode_recommend_request(const service::RecommendRequest& req,
                               std::uint16_t version) {
  WireWriter w;
  w.str(req.architecture);
  w.tensor(req.xs);
  encode_stream(w, req.stream, version);
  return w.take();
}

bool decode_recommend_request(std::span<const std::uint8_t> payload,
                              service::RecommendRequest* req,
                              std::uint16_t version) {
  WireReader r(payload);
  return r.str(&req->architecture) && r.tensor(&req->xs) &&
         decode_stream(r, &req->stream, version) && r.done();
}

Bytes encode_recommend_response(const service::RecommendResponse& resp) {
  WireWriter w;
  w.u8(resp.pick.has_value() ? 1 : 0);
  w.u64(resp.pick ? resp.pick->model_id : 0);
  w.f64(resp.pick ? resp.pick->distance : 0.0);
  w.pdf(resp.pdf);
  w.u64(resp.snapshot_version);
  w.f64(resp.seconds);
  return w.take();
}

bool decode_recommend_response(std::span<const std::uint8_t> payload,
                               service::RecommendResponse* resp) {
  WireReader r(payload);
  std::uint8_t has_pick;
  std::uint64_t model_id;
  double distance;
  if (!(r.u8(&has_pick) && r.u64(&model_id) && r.f64(&distance) &&
        r.pdf(&resp->pdf) && r.u64(&resp->snapshot_version) &&
        r.f64(&resp->seconds) && r.done())) {
    return false;
  }
  if (has_pick > 1) return false;
  if (has_pick == 1) {
    resp->pick = fairms::Ranked{static_cast<store::DocId>(model_id), distance};
  } else {
    resp->pick = std::nullopt;
  }
  return true;
}

Bytes encode_stats_response(const service::ServiceStats& s,
                            std::uint16_t version) {
  WireWriter w;
  w.u64(s.label_requests);
  w.u64(s.lookup_requests);
  w.u64(s.recommend_requests);
  w.u64(s.label_answered);
  w.u64(s.lookup_answered);
  w.u64(s.recommend_answered);
  w.u64(s.label_shed);
  w.u64(s.lookup_shed);
  w.u64(s.recommend_shed);
  w.u64(s.queue_depth);
  w.u64(s.max_queue_depth);
  w.u64(s.max_pending);
  w.u64(s.samples_labeled);
  w.u64(s.labels_reused);
  w.u64(s.labels_computed);
  w.f64(s.busy_seconds);
  w.f64(s.max_request_seconds);
  w.u64(s.retrain_checks);
  w.u64(s.retrains);
  w.u64(s.retrains_coalesced);
  w.u64(s.store_shards);
  w.u64(s.model_cache_hits);
  w.u64(s.model_cache_misses);
  w.u64(s.model_cache_evictions);
  w.u64(s.model_cache_bytes);
  if (version < 2) return w.take();
  w.u64(s.retrains_capped);
  w.u64(s.policy_cooldown_skips);
  w.u64(s.unknown_stream_requests);
  w.u32(static_cast<std::uint32_t>(s.streams.size()));
  for (const service::StreamStats& ss : s.streams) {
    w.str(ss.stream);
    w.u64(ss.label_requests);
    w.u64(ss.lookup_requests);
    w.u64(ss.recommend_requests);
    w.u64(ss.label_answered);
    w.u64(ss.lookup_answered);
    w.u64(ss.recommend_answered);
    w.u64(ss.label_shed);
    w.u64(ss.lookup_shed);
    w.u64(ss.recommend_shed);
    w.u64(ss.queue_depth);
    w.u64(ss.max_queue_depth);
    w.u64(ss.max_pending);
    w.u64(ss.samples_labeled);
    w.u64(ss.labels_reused);
    w.u64(ss.labels_computed);
    w.f64(ss.busy_seconds);
    w.f64(ss.max_request_seconds);
    w.u64(ss.retrain_checks);
    w.u64(ss.retrains);
    w.u64(ss.retrains_coalesced);
    w.u64(ss.retrains_capped);
    w.u64(ss.policy_cooldown_skips);
    w.u64(ss.snapshot_version);
    w.u64(ss.store_shards);
  }
  return w.take();
}

bool decode_stats_response(std::span<const std::uint8_t> payload,
                           service::ServiceStats* s, std::uint16_t version) {
  WireReader r(payload);
  const bool v1_ok =
      r.u64(&s->label_requests) && r.u64(&s->lookup_requests) &&
      r.u64(&s->recommend_requests) && r.u64(&s->label_answered) &&
      r.u64(&s->lookup_answered) && r.u64(&s->recommend_answered) &&
      r.u64(&s->label_shed) && r.u64(&s->lookup_shed) &&
      r.u64(&s->recommend_shed) && r.u64(&s->queue_depth) &&
      r.u64(&s->max_queue_depth) && r.u64(&s->max_pending) &&
      r.u64(&s->samples_labeled) && r.u64(&s->labels_reused) &&
      r.u64(&s->labels_computed) && r.f64(&s->busy_seconds) &&
      r.f64(&s->max_request_seconds) && r.u64(&s->retrain_checks) &&
      r.u64(&s->retrains) && r.u64(&s->retrains_coalesced) &&
      r.u64(&s->store_shards) && r.u64(&s->model_cache_hits) &&
      r.u64(&s->model_cache_misses) && r.u64(&s->model_cache_evictions) &&
      r.u64(&s->model_cache_bytes);
  if (!v1_ok) return false;
  if (version < 2) return r.done();
  std::uint32_t n_streams;
  if (!(r.u64(&s->retrains_capped) && r.u64(&s->policy_cooldown_skips) &&
        r.u64(&s->unknown_stream_requests) && r.u32(&n_streams))) {
    return false;
  }
  // Each block is at least 4 (name length) + 24 * 8 bytes, so a hostile
  // count can't make the reserve allocate past what the payload backs.
  if (n_streams > r.remaining() / (4 + 24 * 8)) return false;
  s->streams.clear();
  s->streams.reserve(n_streams);
  for (std::uint32_t i = 0; i < n_streams; ++i) {
    service::StreamStats ss;
    if (!(r.str(&ss.stream) && r.u64(&ss.label_requests) &&
          r.u64(&ss.lookup_requests) && r.u64(&ss.recommend_requests) &&
          r.u64(&ss.label_answered) && r.u64(&ss.lookup_answered) &&
          r.u64(&ss.recommend_answered) && r.u64(&ss.label_shed) &&
          r.u64(&ss.lookup_shed) && r.u64(&ss.recommend_shed) &&
          r.u64(&ss.queue_depth) && r.u64(&ss.max_queue_depth) &&
          r.u64(&ss.max_pending) && r.u64(&ss.samples_labeled) &&
          r.u64(&ss.labels_reused) && r.u64(&ss.labels_computed) &&
          r.f64(&ss.busy_seconds) && r.f64(&ss.max_request_seconds) &&
          r.u64(&ss.retrain_checks) && r.u64(&ss.retrains) &&
          r.u64(&ss.retrains_coalesced) && r.u64(&ss.retrains_capped) &&
          r.u64(&ss.policy_cooldown_skips) && r.u64(&ss.snapshot_version) &&
          r.u64(&ss.store_shards))) {
      return false;
    }
    s->streams.push_back(std::move(ss));
  }
  return r.done();
}

Bytes encode_retrain_request(const service::RetrainRequest& req,
                             std::uint16_t version) {
  WireWriter w;
  w.tensor(req.xs);
  encode_stream(w, req.stream, version);
  return w.take();
}

bool decode_retrain_request(std::span<const std::uint8_t> payload,
                            service::RetrainRequest* req,
                            std::uint16_t version) {
  WireReader r(payload);
  return r.tensor(&req->xs) && decode_stream(r, &req->stream, version) &&
         r.done();
}

Bytes encode_retrain_response(bool accepted) {
  WireWriter w;
  w.u8(accepted ? 1 : 0);
  return w.take();
}

bool decode_retrain_response(std::span<const std::uint8_t> payload,
                             bool* accepted) {
  WireReader r(payload);
  std::uint8_t v;
  if (!r.u8(&v) || !r.done() || v > 1) return false;
  *accepted = v == 1;
  return true;
}

}  // namespace fairdms::net
