#include "net/client.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace fairdms::net {

bool Client::connect(const std::string& host, std::uint16_t port) {
  close();
  const int fd = connect_to(host, port);
  if (fd < 0) return false;
  fd_.reset(fd);
  const std::uint64_t cid = send_frame(Op::kHello, {});
  if (cid == 0) {
    close();
    return false;
  }
  const auto reply = recv_matching(cid);
  // The server acks min(our version, its version): equality means it will
  // answer every frame we send in the layout we encode it with.
  if (!reply || reply->header.status != service::ServeStatus::kOk ||
      !decode_hello_ack(reply->payload, &limits_) ||
      limits_.version != version_) {
    close();
    return false;
  }
  return true;
}

bool Client::connect_retry(const std::string& host, std::uint16_t port,
                           double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    if (connect(host, port)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

std::uint64_t Client::send_frame(Op op, const Bytes& payload) {
  if (!fd_.valid()) return 0;
  const std::uint64_t cid = next_cid_++;
  const Bytes frame =
      encode_frame(op, service::ServeStatus::kOk, cid, payload, version_);
  if (!write_all(fd_.get(), frame.data(), frame.size())) {
    close();
    return 0;
  }
  return cid;
}

std::uint64_t Client::send_label(const service::LabelRequest& request) {
  return send_frame(Op::kLabel, encode_label_request(request, version_));
}

std::uint64_t Client::send_lookup(const service::LookupRequest& request) {
  return send_frame(Op::kLookup, encode_lookup_request(request, version_));
}

std::uint64_t Client::send_recommend(
    const service::RecommendRequest& request) {
  return send_frame(Op::kRecommend,
                    encode_recommend_request(request, version_));
}

std::uint64_t Client::send_stats() { return send_frame(Op::kStats, {}); }

std::uint64_t Client::send_retrain(const service::RetrainRequest& request) {
  return send_frame(Op::kRetrain, encode_retrain_request(request, version_));
}

bool Client::send_raw(const Bytes& bytes) {
  if (!fd_.valid()) return false;
  if (!write_all(fd_.get(), bytes.data(), bytes.size())) {
    close();
    return false;
  }
  return true;
}

std::optional<Client::Reply> Client::recv_reply() {
  if (!fd_.valid()) return std::nullopt;
  std::uint8_t header_bytes[kHeaderSize];
  if (!read_exact(fd_.get(), header_bytes, kHeaderSize)) {
    close();
    return std::nullopt;
  }
  const auto header =
      decode_header(std::span<const std::uint8_t>(header_bytes, kHeaderSize));
  // Replies always come back at the version the request was sent at.
  if (!header || header->version != version_ ||
      header->payload_len > kDefaultMaxPayload) {
    close();
    return std::nullopt;
  }
  Reply reply;
  reply.header = *header;
  reply.payload.resize(header->payload_len);
  if (header->payload_len > 0 &&
      !read_exact(fd_.get(), reply.payload.data(), reply.payload.size())) {
    close();
    return std::nullopt;
  }
  return reply;
}

std::optional<Client::Reply> Client::recv_matching(std::uint64_t cid) {
  for (;;) {
    auto reply = recv_reply();
    if (!reply) return std::nullopt;
    if (reply->header.correlation_id == cid) return reply;
  }
}

template <typename Response>
std::optional<Response> Client::roundtrip(
    Op op, const Bytes& payload,
    bool (*decoder)(std::span<const std::uint8_t>, Response*)) {
  const std::uint64_t cid = send_frame(op, payload);
  if (cid == 0) return std::nullopt;
  const auto reply = recv_matching(cid);
  if (!reply) return std::nullopt;
  Response response;
  if (reply->header.status != service::ServeStatus::kOk) {
    response.status = reply->header.status;
    return response;
  }
  if (!decoder(reply->payload, &response)) {
    close();
    return std::nullopt;
  }
  return response;
}

std::optional<service::LabelResponse> Client::label(
    const service::LabelRequest& request) {
  return roundtrip<service::LabelResponse>(
      Op::kLabel, encode_label_request(request, version_),
      &decode_label_response);
}

std::optional<service::LookupResponse> Client::lookup(
    const service::LookupRequest& request) {
  return roundtrip<service::LookupResponse>(
      Op::kLookup, encode_lookup_request(request, version_),
      &decode_lookup_response);
}

std::optional<service::RecommendResponse> Client::recommend(
    const service::RecommendRequest& request) {
  return roundtrip<service::RecommendResponse>(
      Op::kRecommend, encode_recommend_request(request, version_),
      &decode_recommend_response);
}

std::optional<service::ServiceStats> Client::stats() {
  const std::uint64_t cid = send_stats();
  if (cid == 0) return std::nullopt;
  const auto reply = recv_matching(cid);
  if (!reply || reply->header.status != service::ServeStatus::kOk) {
    return std::nullopt;
  }
  service::ServiceStats stats;
  if (!decode_stats_response(reply->payload, &stats, version_)) {
    close();
    return std::nullopt;
  }
  return stats;
}

std::optional<bool> Client::request_retrain(
    const service::RetrainRequest& request, service::ServeStatus* status_out) {
  const std::uint64_t cid = send_retrain(request);
  if (cid == 0) return std::nullopt;
  const auto reply = recv_matching(cid);
  if (!reply) return std::nullopt;
  if (status_out != nullptr) *status_out = reply->header.status;
  if (reply->header.status != service::ServeStatus::kOk) return false;
  bool accepted = false;
  if (!decode_retrain_response(reply->payload, &accepted)) {
    close();
    return std::nullopt;
  }
  return accepted;
}

}  // namespace fairdms::net
