// Thin POSIX TCP helpers shared by net::Server and net::Client (Linux;
// IPv4 loopback-class deployments — the beamline serving tier the paper
// describes sits on one cluster fabric, not the open internet).
//
// Everything here is error-code based: helpers return false / -1 instead of
// aborting, because socket failures are environmental, not invariants.
// SIGPIPE is avoided per-call with MSG_NOSIGNAL, so library users never
// need a process-wide signal disposition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fairdms::net {

/// RAII file descriptor (close on destruction; move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Bound + listening IPv4 socket (SO_REUSEADDR). `port == 0` picks an
/// ephemeral port — read it back with local_port(). Returns -1 on failure.
[[nodiscard]] int create_listener(const std::string& bind_address,
                                  std::uint16_t port, int backlog = 64);

/// The locally bound port of a socket (0 on failure).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Blocking IPv4 connect. Returns -1 on failure.
[[nodiscard]] int connect_to(const std::string& host, std::uint16_t port);

/// Marks a descriptor non-blocking. Returns false on failure.
bool set_nonblocking(int fd);

/// Blocking full-buffer write (retries EINTR / partial writes,
/// MSG_NOSIGNAL). False when the peer is gone.
bool write_all(int fd, const std::uint8_t* data, std::size_t n);

/// Blocking full-buffer read. False on EOF or error before `n` bytes.
bool read_exact(int fd, std::uint8_t* data, std::size_t n);

}  // namespace fairdms::net
