#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fairdms::net {

namespace {

bool fill_addr(const std::string& host, std::uint16_t port,
               sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int create_listener(const std::string& bind_address, std::uint16_t port,
                    int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return -1;
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!fill_addr(bind_address, port, &addr)) return -1;
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return -1;
  }
  if (::listen(fd.get(), backlog) != 0) return -1;
  return fd.release();
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int connect_to(const std::string& host, std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return -1;
  sockaddr_in addr;
  if (!fill_addr(host, port, &addr)) return -1;
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return -1;
  }
  // Request/response frames are small and latency-bound; never Nagle-delay
  // a response tail.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd.release();
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  // send(MSG_NOSIGNAL) suppresses SIGPIPE per-call on sockets, but fails
  // ENOTSOCK on pipes — the load generator funnels its fork-coordination
  // pipes through here too, so fall back to plain write() for those
  // (pipe writers must handle SIGPIPE themselves).
  bool is_socket = true;
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        is_socket ? ::send(fd, data + sent, n - sent, MSG_NOSIGNAL)
                  : ::write(fd, data + sent, n - sent);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && errno == ENOTSOCK && is_socket) {
      is_socket = false;
      continue;
    }
    return false;
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, data + got, n - got);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
  return true;
}

}  // namespace fairdms::net
