// Fuzzy c-means memberships for clustering-certainty quantification.
//
// The paper (§III-I, Fig. 16) measures the certainty of fairDS's clustering
// as the percentage of a dataset assigned to its cluster with >= 50%
// membership confidence, computed with fuzzy k-means. We evaluate fuzzy
// memberships against fixed centroids (the fitted k-means model):
// u_ic = 1 / sum_j (d_ic / d_jc)^(2/(m-1)).
#pragma once

#include "cluster/kmeans.hpp"

namespace fairdms::cluster {

struct FuzzyConfig {
  double fuzziness = 2.0;              ///< the classic m = 2
  double confidence_threshold = 0.5;   ///< paper: "at least 50% confidence"
};

/// Membership vector of one sample over the model's clusters (sums to 1).
std::vector<double> fuzzy_memberships(const KMeansModel& model,
                                      std::span<const float> x,
                                      const FuzzyConfig& config = {});

/// Max membership per row of [N, D] — each sample's assignment confidence.
std::vector<double> assignment_confidence(const KMeansModel& model,
                                          const Tensor& xs,
                                          const FuzzyConfig& config = {});

/// Fraction of samples whose max membership >= threshold (Fig. 16's y-axis,
/// as a fraction; multiply by 100 for percent).
double dataset_certainty(const KMeansModel& model, const Tensor& xs,
                         const FuzzyConfig& config = {});

}  // namespace fairdms::cluster
