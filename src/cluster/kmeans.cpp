#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::cluster {

namespace {

double row_sq_dist(const float* a, const float* b, std::size_t d) {
  double s = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    s += diff * diff;
  }
  return s;
}

}  // namespace

KMeansModel::KMeansModel(Tensor centroids) : centroids_(std::move(centroids)) {
  FAIRDMS_CHECK(centroids_.rank() == 2, "KMeansModel: centroids must be [K,D]");
}

std::size_t KMeansModel::assign(std::span<const float> x) const {
  FAIRDMS_CHECK(x.size() == dim(), "KMeansModel::assign: dim mismatch");
  const float* pc = centroids_.data();
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t c = 0; c < k(); ++c) {
    const double d = row_sq_dist(x.data(), pc + c * dim(), dim());
    if (d < best) {
      best = d;
      best_k = c;
    }
  }
  return best_k;
}

std::vector<std::size_t> KMeansModel::assign_batch(const Tensor& xs) const {
  FAIRDMS_CHECK(xs.rank() == 2 && xs.dim(1) == dim(),
                "assign_batch: expected [N, ", dim(), "], got ",
                xs.shape_str());
  std::vector<std::size_t> out(xs.dim(0));
  const float* px = xs.data();
  const std::size_t d = dim();
  util::parallel_for(
      xs.dim(0),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = assign({px + i * d, d});
        }
      },
      /*min_grain=*/64);
  return out;
}

std::vector<double> KMeansModel::distances(std::span<const float> x) const {
  FAIRDMS_CHECK(x.size() == dim(), "KMeansModel::distances: dim mismatch");
  std::vector<double> out(k());
  const float* pc = centroids_.data();
  for (std::size_t c = 0; c < k(); ++c) {
    out[c] = row_sq_dist(x.data(), pc + c * dim(), dim());
  }
  return out;
}

double KMeansModel::wss(const Tensor& xs) const {
  const auto assignments = assign_batch(xs);
  const float* px = xs.data();
  const float* pc = centroids_.data();
  const std::size_t d = dim();
  double total = 0.0;
  for (std::size_t i = 0; i < xs.dim(0); ++i) {
    total += row_sq_dist(px + i * d, pc + assignments[i] * d, d);
  }
  return total;
}

std::vector<double> KMeansModel::cluster_pdf(const Tensor& xs) const {
  std::vector<double> pdf(k(), 0.0);
  const auto assignments = assign_batch(xs);
  for (std::size_t a : assignments) pdf[a] += 1.0;
  const auto n = static_cast<double>(assignments.size());
  if (n > 0) {
    for (double& v : pdf) v /= n;
  }
  return pdf;
}

KMeansModel kmeans_fit(const Tensor& xs, const KMeansConfig& config) {
  FAIRDMS_CHECK(xs.rank() == 2, "kmeans_fit: expected [N, D]");
  const std::size_t n = xs.dim(0);
  const std::size_t d = xs.dim(1);
  FAIRDMS_CHECK(config.k > 0 && config.k <= n, "kmeans_fit: k=", config.k,
                " with n=", n);
  util::Rng rng(config.seed);
  const float* px = xs.data();

  // k-means++ seeding.
  Tensor centroids({config.k, d});
  float* pc = centroids.data();
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  {
    const std::size_t first = rng.uniform_index(n);
    std::copy_n(px + first * d, d, pc);
  }
  for (std::size_t c = 1; c < config.k; ++c) {
    double total = 0.0;
    const float* prev = pc + (c - 1) * d;
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], row_sq_dist(px + i * d, prev, d));
      total += min_dist[i];
    }
    std::size_t chosen = n - 1;
    if (total > 0.0) {
      const double target = rng.uniform() * total;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.uniform_index(n);
    }
    std::copy_n(px + chosen * d, d, pc + c * d);
  }

  // Lloyd iterations with per-chunk partial sums merged deterministically
  // by chunk index.
  std::vector<std::size_t> assignment(n, 0);
  KMeansModel model(centroids);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    assignment = model.assign_batch(xs);

    Tensor sums({config.k, d});
    std::vector<std::size_t> counts(config.k, 0);
    float* ps = sums.data();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t a = assignment[i];
      ++counts[a];
      const float* row = px + i * d;
      float* dst = ps + a * d;
      for (std::size_t j = 0; j < d; ++j) dst[j] += row[j];
    }

    Tensor new_centroids = model.centroids();
    float* pnc = new_centroids.data();
    double movement = 0.0;
    for (std::size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at the point farthest from its centroid.
        double worst = -1.0;
        std::size_t worst_i = 0;
        const float* old = model.centroids().data();
        for (std::size_t i = 0; i < n; ++i) {
          const double dist =
              row_sq_dist(px + i * d, old + assignment[i] * d, d);
          if (dist > worst) {
            worst = dist;
            worst_i = i;
          }
        }
        std::copy_n(px + worst_i * d, d, pnc + c * d);
        movement += 1.0;
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) {
        const float v = ps[c * d + j] * inv;
        const double delta =
            static_cast<double>(v) - model.centroids()[c * d + j];
        movement += delta * delta;
        pnc[c * d + j] = v;
      }
    }
    model = KMeansModel(new_centroids);
    if (movement < config.tolerance) break;
  }
  return model;
}

ElbowResult elbow_k(const Tensor& xs, std::size_t k_min, std::size_t k_max,
                    std::uint64_t seed) {
  FAIRDMS_CHECK(k_min >= 1 && k_max >= k_min, "elbow_k: bad range [", k_min,
                ", ", k_max, "]");
  ElbowResult result;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeansConfig config;
    config.k = k;
    config.seed = seed + k;
    const KMeansModel model = kmeans_fit(xs, config);
    result.wss_curve.push_back(model.wss(xs));
  }
  // Knee: the k whose (k, WSS) point is farthest from the chord connecting
  // the first and last points of the curve.
  const std::size_t m = result.wss_curve.size();
  if (m <= 2) {
    result.best_k = k_min;
    return result;
  }
  const double x0 = static_cast<double>(k_min);
  const double y0 = result.wss_curve.front();
  const double x1 = static_cast<double>(k_max);
  const double y1 = result.wss_curve.back();
  const double chord_len = std::hypot(x1 - x0, y1 - y0);
  double best_dist = -1.0;
  result.best_k = k_min;
  for (std::size_t i = 0; i < m; ++i) {
    const double x = static_cast<double>(k_min + i);
    const double y = result.wss_curve[i];
    const double dist =
        std::fabs((y1 - y0) * x - (x1 - x0) * y + x1 * y0 - y1 * x0) /
        std::max(chord_len, 1e-12);
    if (dist > best_dist) {
      best_dist = dist;
      result.best_k = k_min + i;
    }
  }
  return result;
}

}  // namespace fairdms::cluster
