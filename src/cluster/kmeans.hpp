// K-means clustering over embedding vectors (paper §II-A: the second level
// of fairDS's two-level hierarchical search). k-means++ seeding, Lloyd
// iterations with thread-parallel assignment, normalized-Euclidean option.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fairdms::cluster {

using tensor::Tensor;

struct KMeansConfig {
  std::size_t k = 8;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when total centroid movement < tol
  std::uint64_t seed = 7;
};

class KMeansModel {
 public:
  KMeansModel() = default;
  KMeansModel(Tensor centroids);  // [K, D]

  [[nodiscard]] std::size_t k() const {
    return centroids_.empty() ? 0 : centroids_.dim(0);
  }
  [[nodiscard]] std::size_t dim() const {
    return centroids_.empty() ? 0 : centroids_.dim(1);
  }
  [[nodiscard]] const Tensor& centroids() const { return centroids_; }

  /// Nearest centroid for one vector.
  [[nodiscard]] std::size_t assign(std::span<const float> x) const;
  /// Nearest centroid per row of [N, D] (thread-parallel).
  [[nodiscard]] std::vector<std::size_t> assign_batch(const Tensor& xs) const;

  /// Squared distance from x to each centroid.
  [[nodiscard]] std::vector<double> distances(std::span<const float> x) const;

  /// Within-cluster sum of squared distances over a dataset.
  [[nodiscard]] double wss(const Tensor& xs) const;

  /// Normalized cluster-occupancy histogram of a dataset — fairDS's "cluster
  /// PDF", the representation both the data lookup and the fairMS model
  /// index are keyed on.
  [[nodiscard]] std::vector<double> cluster_pdf(const Tensor& xs) const;

 private:
  Tensor centroids_;
};

/// Lloyd's algorithm with k-means++ initialization on rows of [N, D].
KMeansModel kmeans_fit(const Tensor& xs, const KMeansConfig& config);

/// Elbow method (YellowBrick analog): fits k in [k_min, k_max], computes the
/// WSS curve, and returns the k at maximum distance from the chord between
/// the curve's endpoints (the "knee").
struct ElbowResult {
  std::size_t best_k = 0;
  std::vector<double> wss_curve;  ///< indexed by k - k_min
};
ElbowResult elbow_k(const Tensor& xs, std::size_t k_min, std::size_t k_max,
                    std::uint64_t seed);

}  // namespace fairdms::cluster
