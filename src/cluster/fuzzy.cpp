#include "cluster/fuzzy.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::cluster {

std::vector<double> fuzzy_memberships(const KMeansModel& model,
                                      std::span<const float> x,
                                      const FuzzyConfig& config) {
  FAIRDMS_CHECK(config.fuzziness > 1.0, "fuzziness must exceed 1");
  const std::vector<double> d2 = model.distances(x);
  const std::size_t k = d2.size();
  std::vector<double> u(k, 0.0);

  // Exact-hit handling: membership 1 on the coincident centroid.
  for (std::size_t c = 0; c < k; ++c) {
    if (d2[c] <= 1e-24) {
      u[c] = 1.0;
      return u;
    }
  }
  const double exponent = 1.0 / (config.fuzziness - 1.0);
  double denom_sum = 0.0;
  std::vector<double> inv(k);
  for (std::size_t c = 0; c < k; ++c) {
    inv[c] = std::pow(1.0 / d2[c], exponent);
    denom_sum += inv[c];
  }
  for (std::size_t c = 0; c < k; ++c) u[c] = inv[c] / denom_sum;
  return u;
}

std::vector<double> assignment_confidence(const KMeansModel& model,
                                          const Tensor& xs,
                                          const FuzzyConfig& config) {
  FAIRDMS_CHECK(xs.rank() == 2 && xs.dim(1) == model.dim(),
                "assignment_confidence: shape mismatch");
  std::vector<double> out(xs.dim(0));
  const float* px = xs.data();
  const std::size_t d = model.dim();
  util::parallel_for(
      xs.dim(0),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto u = fuzzy_memberships(model, {px + i * d, d}, config);
          out[i] = *std::max_element(u.begin(), u.end());
        }
      },
      /*min_grain=*/64);
  return out;
}

double dataset_certainty(const KMeansModel& model, const Tensor& xs,
                         const FuzzyConfig& config) {
  const auto confidence = assignment_confidence(model, xs, config);
  if (confidence.empty()) return 0.0;
  std::size_t confident = 0;
  for (double c : confidence) {
    if (c >= config.confidence_threshold) ++confident;
  }
  return static_cast<double>(confident) /
         static_cast<double>(confidence.size());
}

}  // namespace fairdms::cluster
