// Frame-level conventional labeling: the full MIDAS-style pipeline that
// Fig. 15's Voigt-80 / Voigt-1440 arms pay for. For each detector frame:
// threshold -> connected-component peak search -> per-peak window extraction
// -> pseudo-Voigt fit. Patch-level reuse (fairDS) skips all of it.
#pragma once

#include <vector>

#include "datagen/frame.hpp"
#include "labeling/voigt_fit.hpp"

namespace fairdms::labeling {

struct FramePeak {
  double center_x = 0.0;  ///< frame coordinates
  double center_y = 0.0;
  FitResult fit;          ///< window-local fit detail
};

struct FrameLabelConfig {
  float threshold = 0.12f;       ///< detection threshold above background
  std::size_t min_pixels = 4;    ///< reject specks
  std::size_t window = 15;       ///< fit window side (the BraggNN patch size)
  FitConfig fit;
};

/// Labels every detected peak in a frame. Single-threaded by design: the
/// unit of parallelism in MIDAS is the frame, not the peak.
std::vector<FramePeak> label_frame(const std::vector<float>& pixels,
                                   std::size_t size,
                                   const FrameLabelConfig& config = {});

/// Measures the mean wall-clock cost of labeling one frame (rendering
/// excluded), by running `sample_frames` real frames through label_frame.
double measure_frame_cost(const datagen::FrameConfig& frame_config,
                          const datagen::BraggRegime& regime,
                          std::size_t sample_frames, std::uint64_t seed,
                          const FrameLabelConfig& config = {});

}  // namespace fairdms::labeling
