// Conventional (physics-based) Bragg-peak labeling: least-squares fit of a
// 2-D pseudo-Voigt profile to a patch. This is the MIDAS analog — the
// compute-intensive baseline that fairDS's label reuse is measured against
// (paper Figs. 9 and 15).
//
// The fit runs Levenberg–Marquardt-damped Gauss–Newton over
// (center_x, center_y, sigma, eta, amplitude, background) with an isotropic
// footprint (the label of interest is only the center of mass; widths are
// nuisance parameters, matching how MIDAS reports peak positions).
#pragma once

#include <span>
#include <vector>

#include "datagen/pseudo_voigt.hpp"
#include "nn/trainer.hpp"

namespace fairdms::labeling {

struct FitResult {
  double center_x = 0.0;
  double center_y = 0.0;
  double sigma = 0.0;
  double eta = 0.0;
  double amplitude = 0.0;
  double background = 0.0;
  double residual = 0.0;  ///< final mean squared residual
  std::size_t iterations = 0;
  bool converged = false;
};

struct FitConfig {
  std::size_t max_iterations = 60;
  double tolerance = 1e-7;     ///< stop when step norm falls below this
  double initial_lambda = 1e-3;
};

/// Fits one size x size patch. Initial center guess is the intensity
/// centroid.
FitResult fit_peak(std::span<const float> patch, std::size_t size,
                   const FitConfig& config = {});

/// Labels every row of xs ([N, 1, S, S]) in parallel on the global thread
/// pool; returns [N, 2] labels in the same normalized units as
/// datagen::make_bragg_batchset. `elapsed_seconds` (optional) receives wall
/// time; `per_patch_seconds` receives the mean single-patch cost.
nn::Tensor label_patches(const nn::Tensor& xs, const FitConfig& config = {},
                         double* elapsed_seconds = nullptr,
                         double* per_patch_seconds = nullptr);

/// Projects conventional-labeling wall time onto a machine with `cores`
/// cores (the paper's Voigt-80 workstation and Voigt-1440 cluster), given
/// the locally measured per-patch cost. Labeling is embarrassingly parallel;
/// parallel efficiency decays with scale per Amdahl-style serial fraction
/// (task dispatch, result gather, file staging in MIDAS).
struct ClusterCostModel {
  double per_patch_seconds = 0.0;  ///< measured on this machine
  double serial_fraction = 0.004;  ///< non-parallelizable share of the job
  /// Wall seconds to label n_patches on `cores` cores.
  [[nodiscard]] double project_seconds(std::size_t n_patches,
                                       std::size_t cores) const;
};

}  // namespace fairdms::labeling
