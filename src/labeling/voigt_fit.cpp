#include "labeling/voigt_fit.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fairdms::labeling {

namespace {

constexpr std::size_t kNumParams = 6;

/// Model value and analytic-free (finite-difference) Jacobian row at (x, y).
double model_value(const double* p, double x, double y) {
  datagen::PeakParams pk;
  pk.center_x = p[0];
  pk.center_y = p[1];
  pk.sigma_major = std::max(0.3, p[2]);
  pk.sigma_minor = std::max(0.3, p[2]);  // isotropic footprint
  pk.theta = 0.0;
  pk.eta = std::clamp(p[3], 0.0, 1.0);
  pk.amplitude = p[4];
  pk.background = p[5];
  return datagen::pseudo_voigt(pk, x, y);
}

}  // namespace

FitResult fit_peak(std::span<const float> patch, std::size_t size,
                   const FitConfig& config) {
  FAIRDMS_CHECK(patch.size() == size * size, "fit_peak: bad patch size");
  const std::size_t m = patch.size();

  // Initial guess: centroid for position, moments for width/amplitude.
  double p[kNumParams];
  datagen::intensity_centroid(patch, size, p[0], p[1]);
  float lo = patch[0], hi = patch[0];
  for (float v : patch) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  p[2] = static_cast<double>(size) / 6.0;            // sigma
  p[3] = 0.5;                                        // eta
  p[4] = std::max(1e-3, static_cast<double>(hi - lo));  // amplitude
  p[5] = static_cast<double>(lo);                    // background

  std::vector<double> residual(m);
  std::vector<double> jacobian(m * kNumParams);
  double lambda = config.initial_lambda;

  auto compute_residual = [&](const double* params, std::vector<double>& r) {
    double ss = 0.0;
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        const std::size_t i = y * size + x;
        r[i] = model_value(params, static_cast<double>(x),
                           static_cast<double>(y)) -
               static_cast<double>(patch[i]);
        ss += r[i] * r[i];
      }
    }
    return ss / static_cast<double>(m);
  };

  FitResult result;
  double current_ss = compute_residual(p, residual);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Finite-difference Jacobian (like MIDAS's generic minimizer; this is
    // what makes conventional labeling expensive: 6 extra model evaluations
    // per pixel per iteration).
    for (std::size_t k = 0; k < kNumParams; ++k) {
      const double h = std::max(1e-6, 1e-4 * std::fabs(p[k]));
      double pk[kNumParams];
      std::copy(p, p + kNumParams, pk);
      pk[k] += h;
      for (std::size_t y = 0; y < size; ++y) {
        for (std::size_t x = 0; x < size; ++x) {
          const std::size_t i = y * size + x;
          const double f1 = model_value(pk, static_cast<double>(x),
                                        static_cast<double>(y));
          const double f0 = residual[i] + static_cast<double>(patch[i]);
          jacobian[i * kNumParams + k] = (f1 - f0) / h;
        }
      }
    }

    // Normal equations with LM damping: (J^T J + lambda I) dp = -J^T r
    double jtj[kNumParams][kNumParams] = {};
    double jtr[kNumParams] = {};
    for (std::size_t i = 0; i < m; ++i) {
      const double* jrow = jacobian.data() + i * kNumParams;
      for (std::size_t a = 0; a < kNumParams; ++a) {
        jtr[a] += jrow[a] * residual[i];
        for (std::size_t b = a; b < kNumParams; ++b) {
          jtj[a][b] += jrow[a] * jrow[b];
        }
      }
    }
    for (std::size_t a = 0; a < kNumParams; ++a) {
      for (std::size_t b = 0; b < a; ++b) jtj[a][b] = jtj[b][a];
      jtj[a][a] *= 1.0 + lambda;
    }

    // Gaussian elimination with partial pivoting.
    double aug[kNumParams][kNumParams + 1];
    for (std::size_t a = 0; a < kNumParams; ++a) {
      for (std::size_t b = 0; b < kNumParams; ++b) aug[a][b] = jtj[a][b];
      aug[a][kNumParams] = -jtr[a];
    }
    bool singular = false;
    for (std::size_t col = 0; col < kNumParams; ++col) {
      std::size_t pivot = col;
      for (std::size_t r = col + 1; r < kNumParams; ++r) {
        if (std::fabs(aug[r][col]) > std::fabs(aug[pivot][col])) pivot = r;
      }
      if (std::fabs(aug[pivot][col]) < 1e-14) {
        singular = true;
        break;
      }
      if (pivot != col) std::swap(aug[pivot], aug[col]);
      for (std::size_t r = 0; r < kNumParams; ++r) {
        if (r == col) continue;
        const double f = aug[r][col] / aug[col][col];
        for (std::size_t b = col; b <= kNumParams; ++b) {
          aug[r][b] -= f * aug[col][b];
        }
      }
    }
    if (singular) {
      lambda *= 10.0;
      continue;
    }

    double dp[kNumParams];
    double step_norm = 0.0;
    for (std::size_t a = 0; a < kNumParams; ++a) {
      dp[a] = aug[a][kNumParams] / aug[a][a];
      step_norm += dp[a] * dp[a];
    }

    double p_try[kNumParams];
    for (std::size_t a = 0; a < kNumParams; ++a) p_try[a] = p[a] + dp[a];
    std::vector<double> r_try(m);
    const double try_ss = compute_residual(p_try, r_try);

    if (try_ss < current_ss) {
      std::copy(p_try, p_try + kNumParams, p);
      residual.swap(r_try);
      current_ss = try_ss;
      lambda = std::max(1e-9, lambda * 0.3);
      if (std::sqrt(step_norm) < config.tolerance) {
        result.converged = true;
        break;
      }
    } else {
      lambda *= 10.0;
      if (lambda > 1e8) break;  // stuck
    }
  }

  result.center_x = p[0];
  result.center_y = p[1];
  result.sigma = p[2];
  result.eta = std::clamp(p[3], 0.0, 1.0);
  result.amplitude = p[4];
  result.background = p[5];
  result.residual = current_ss;
  return result;
}

nn::Tensor label_patches(const nn::Tensor& xs, const FitConfig& config,
                         double* elapsed_seconds, double* per_patch_seconds) {
  FAIRDMS_CHECK(xs.rank() == 4 && xs.dim(1) == 1,
                "label_patches expects [N, 1, S, S], got ", xs.shape_str());
  const std::size_t n = xs.dim(0);
  const std::size_t s = xs.dim(2);
  FAIRDMS_CHECK(xs.dim(3) == s, "label_patches expects square patches");
  const double mid = static_cast<double>(s - 1) / 2.0;

  nn::Tensor labels({n, 2});
  const float* px = xs.data();
  float* py = labels.data();
  util::WallTimer timer;
  util::ThreadPool::global().parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const FitResult fit =
              fit_peak({px + i * s * s, s * s}, s, config);
          py[i * 2 + 0] =
              static_cast<float>((fit.center_x - mid) / static_cast<double>(s));
          py[i * 2 + 1] =
              static_cast<float>((fit.center_y - mid) / static_cast<double>(s));
        }
      },
      /*min_grain=*/1);
  const double elapsed = timer.seconds();
  if (elapsed_seconds != nullptr) *elapsed_seconds = elapsed;
  if (per_patch_seconds != nullptr) {
    // Mean per-patch compute cost: wall time x threads / patches.
    *per_patch_seconds =
        elapsed * static_cast<double>(util::ThreadPool::global().size()) /
        static_cast<double>(std::max<std::size_t>(1, n));
  }
  return labels;
}

double ClusterCostModel::project_seconds(std::size_t n_patches,
                                         std::size_t cores) const {
  FAIRDMS_CHECK(cores > 0, "project_seconds: zero cores");
  const double total_cpu =
      per_patch_seconds * static_cast<double>(n_patches);
  // Amdahl: serial_fraction of the job cannot use more than one core.
  const double parallel = (1.0 - serial_fraction) * total_cpu /
                          static_cast<double>(cores);
  const double serial = serial_fraction * total_cpu;
  return serial + parallel;
}

}  // namespace fairdms::labeling
