#include "labeling/frame_label.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::labeling {

std::vector<FramePeak> label_frame(const std::vector<float>& pixels,
                                   std::size_t size,
                                   const FrameLabelConfig& config) {
  FAIRDMS_CHECK(pixels.size() == size * size, "label_frame: bad frame size");
  const std::size_t w = config.window;
  FAIRDMS_CHECK(w % 2 == 1, "fit window must be odd");
  const std::size_t half = w / 2;

  // Connected components over the thresholded mask (4-connectivity BFS).
  std::vector<std::uint8_t> visited(pixels.size(), 0);
  std::vector<FramePeak> peaks;
  std::vector<float> window(w * w);

  for (std::size_t start = 0; start < pixels.size(); ++start) {
    if (visited[start] || pixels[start] < config.threshold) continue;
    // Flood fill this blob, tracking its maximum pixel.
    std::queue<std::size_t> frontier;
    frontier.push(start);
    visited[start] = 1;
    std::size_t count = 0;
    std::size_t peak_idx = start;
    float peak_val = pixels[start];
    while (!frontier.empty()) {
      const std::size_t idx = frontier.front();
      frontier.pop();
      ++count;
      if (pixels[idx] > peak_val) {
        peak_val = pixels[idx];
        peak_idx = idx;
      }
      const std::size_t y = idx / size;
      const std::size_t x = idx % size;
      const std::size_t neighbors[4] = {
          y > 0 ? idx - size : idx, y + 1 < size ? idx + size : idx,
          x > 0 ? idx - 1 : idx, x + 1 < size ? idx + 1 : idx};
      for (std::size_t n : neighbors) {
        if (n != idx && !visited[n] && pixels[n] >= config.threshold) {
          visited[n] = 1;
          frontier.push(n);
        }
      }
    }
    if (count < config.min_pixels) continue;

    // Extract a w x w window centered on the blob maximum (clamped to the
    // frame) and fit the profile inside it.
    const std::size_t py = peak_idx / size;
    const std::size_t px = peak_idx % size;
    const std::size_t oy = std::min(
        std::max(py, half) - half, size - w);
    const std::size_t ox = std::min(
        std::max(px, half) - half, size - w);
    for (std::size_t yy = 0; yy < w; ++yy) {
      for (std::size_t xx = 0; xx < w; ++xx) {
        window[yy * w + xx] = pixels[(oy + yy) * size + (ox + xx)];
      }
    }
    FramePeak peak;
    peak.fit = fit_peak(window, w, config.fit);
    peak.center_x = static_cast<double>(ox) + peak.fit.center_x;
    peak.center_y = static_cast<double>(oy) + peak.fit.center_y;
    peaks.push_back(peak);
  }
  return peaks;
}

double measure_frame_cost(const datagen::FrameConfig& frame_config,
                          const datagen::BraggRegime& regime,
                          std::size_t sample_frames, std::uint64_t seed,
                          const FrameLabelConfig& config) {
  FAIRDMS_CHECK(sample_frames > 0, "measure_frame_cost: no frames");
  util::Rng rng(seed);
  double total = 0.0;
  for (std::size_t f = 0; f < sample_frames; ++f) {
    const datagen::Frame frame =
        datagen::render_frame(frame_config, regime, rng);
    util::WallTimer timer;
    const auto peaks = label_frame(frame.pixels, frame_config.size, config);
    total += timer.seconds();
    FAIRDMS_CHECK(!peaks.empty(), "peak finder found nothing — check "
                                  "threshold/regime");
  }
  return total / static_cast<double>(sample_frames);
}

}  // namespace fairdms::labeling
