// Dense row-major float tensor.
//
// This is the numeric substrate for the NN stack (src/nn), the embedding
// algorithms (src/embed) and k-means (src/cluster). It is deliberately small:
// contiguous float storage, shape arithmetic, elementwise ops, and a blocked,
// thread-parallel GEMM. Layers that need structure (conv, pooling) index into
// the flat storage themselves.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fairdms::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialized storage of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  // --- factories -----------------------------------------------------------
  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// N(0, stddev) entries from `rng`.
  static Tensor randn(std::vector<std::size_t> shape, util::Rng& rng,
                      float stddev = 1.0f);
  /// U(lo, hi) entries from `rng`.
  static Tensor rand_uniform(std::vector<std::size_t> shape, util::Rng& rng,
                             float lo, float hi);
  static Tensor from_vector(std::vector<std::size_t> shape,
                            std::vector<float> values);

  // --- shape ---------------------------------------------------------------
  [[nodiscard]] const std::vector<std::size_t>& shape() const {
    return shape_;
  }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::string shape_str() const;

  /// Same storage, new shape; total element count must match.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  // --- element access ------------------------------------------------------
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> flat() { return data_; }
  [[nodiscard]] std::span<const float> flat() const { return data_; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessors (checked rank in debug paths only via at()).
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  // --- elementwise in-place ops -------------------------------------------
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);
  Tensor& scale_(float k);
  Tensor& fill_(float value);
  /// this += k * other  (AXPY).
  Tensor& axpy_(float k, const Tensor& other);

  // --- elementwise out-of-place -------------------------------------------
  [[nodiscard]] Tensor add(const Tensor& other) const;
  [[nodiscard]] Tensor sub(const Tensor& other) const;
  [[nodiscard]] Tensor mul(const Tensor& other) const;
  [[nodiscard]] Tensor scaled(float k) const;

  // --- reductions ----------------------------------------------------------
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] float max_abs() const;
  /// L2 norm of the flattened tensor.
  [[nodiscard]] double norm() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C = op(A) * op(B) where op is optional transpose. Shapes (after op):
/// A: [M, K], B: [K, N] -> C: [M, N]. Multi-threaded over rows of C.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Dot product of two equally sized tensors (flattened).
double dot(const Tensor& a, const Tensor& b);

/// Squared Euclidean distance between two equally shaped tensors.
double squared_distance(const Tensor& a, const Tensor& b);

/// Cosine similarity of flattened tensors; 0 when either is all-zero.
double cosine_similarity(const Tensor& a, const Tensor& b);

}  // namespace fairdms::tensor
