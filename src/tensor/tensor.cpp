#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::tensor {

namespace {
std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, util::Rng& rng,
                     float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::size_t> shape, util::Rng& rng,
                            float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::from_vector(std::vector<std::size_t> shape,
                           std::vector<float> values) {
  FAIRDMS_CHECK(shape_numel(shape) == values.size(),
                "from_vector: shape/value count mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  FAIRDMS_CHECK(axis < shape_.size(), "dim(", axis, ") on rank-",
                shape_.size(), " tensor");
  return shape_[axis];
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  FAIRDMS_CHECK(shape_numel(new_shape) == numel(), "reshape ", shape_str(),
                " -> incompatible element count");
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  FAIRDMS_CHECK(rank() == 2, "at(r,c) on rank-", rank(), " tensor");
  FAIRDMS_CHECK(r < shape_[0] && c < shape_[1], "at(", r, ",", c,
                ") out of bounds for ", shape_str());
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

#define FAIRDMS_TENSOR_BINOP(name, expr)                                \
  Tensor& Tensor::name(const Tensor& other) {                           \
    FAIRDMS_CHECK(numel() == other.numel(), #name ": size mismatch ",   \
                  shape_str(), " vs ", other.shape_str());              \
    float* a = data_.data();                                            \
    const float* b = other.data_.data();                                \
    for (std::size_t i = 0; i < data_.size(); ++i) expr;                \
    return *this;                                                       \
  }

FAIRDMS_TENSOR_BINOP(add_, a[i] += b[i])
FAIRDMS_TENSOR_BINOP(sub_, a[i] -= b[i])
FAIRDMS_TENSOR_BINOP(mul_, a[i] *= b[i])
#undef FAIRDMS_TENSOR_BINOP

Tensor& Tensor::scale_(float k) {
  for (float& v : data_) v *= k;
  return *this;
}

Tensor& Tensor::fill_(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::axpy_(float k, const Tensor& other) {
  FAIRDMS_CHECK(numel() == other.numel(), "axpy_: size mismatch");
  float* a = data_.data();
  const float* b = other.data_.data();
  for (std::size_t i = 0; i < data_.size(); ++i) a[i] += k * b[i];
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = *this;
  return out.add_(other);
}
Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = *this;
  return out.sub_(other);
}
Tensor Tensor::mul(const Tensor& other) const {
  Tensor out = *this;
  return out.mul_(other);
}
Tensor Tensor::scaled(float k) const {
  Tensor out = *this;
  return out.scale_(k);
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v);
  return s;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  FAIRDMS_CHECK(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 inputs");
  const std::size_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::size_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::size_t kb = trans_b ? b.dim(1) : b.dim(0);
  const std::size_t n = trans_b ? b.dim(0) : b.dim(1);
  FAIRDMS_CHECK(k == kb, "matmul inner-dim mismatch: ", a.shape_str(), " x ",
                b.shape_str());

  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const std::size_t lda = a.dim(1);
  const std::size_t ldb = b.dim(1);

  // Row-parallel kernel. The non-transposed inner loops stream contiguously
  // over B rows (i-k-j order), which is the cache-friendly layout for
  // row-major storage; transposed operands fall back to strided reads.
  util::parallel_for(
      m,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          float* crow = pc + i * n;
          std::fill(crow, crow + n, 0.0f);
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float aval = trans_a ? pa[kk * lda + i] : pa[i * lda + kk];
            if (aval == 0.0f) continue;
            if (!trans_b) {
              const float* brow = pb + kk * ldb;
              for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
            } else {
              for (std::size_t j = 0; j < n; ++j) {
                crow[j] += aval * pb[j * ldb + kk];
              }
            }
          }
        }
      },
      /*min_grain=*/8);
  return c;
}

double dot(const Tensor& a, const Tensor& b) {
  FAIRDMS_CHECK(a.numel() == b.numel(), "dot: size mismatch");
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    s += static_cast<double>(pa[i]) * pb[i];
  }
  return s;
}

double squared_distance(const Tensor& a, const Tensor& b) {
  FAIRDMS_CHECK(a.numel() == b.numel(), "squared_distance: size mismatch");
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    s += d * d;
  }
  return s;
}

double cosine_similarity(const Tensor& a, const Tensor& b) {
  const double na = a.norm();
  const double nb = b.norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

}  // namespace fairdms::tensor
