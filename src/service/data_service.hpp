// DataService — the multi-client serving facade over fairDS (the ROADMAP's
// "heavy traffic from many clients" north star, and the serving framing of
// the FAIR-models follow-up, arXiv:2207.00611).
//
// Two planes, two executors:
//  * User plane: submit() enqueues label / lookup / recommend requests on a
//    worker pool and returns a std::future. Each request loads the current
//    immutable model snapshot and runs lock-free against it, so N clients
//    get real concurrency and consistent per-request model versions.
//    Admission control (DataServiceConfig::max_pending) bounds the pending
//    queue: at the bound, submit() sheds the request with an immediately
//    ready ServeStatus::kShedOverload response instead of queueing — the
//    mixed-workload policy that keeps an ingest burst or retrain storm
//    from growing an unbounded future backlog (bench/mixed_workload.cpp
//    is the driver that stresses exactly this).
//  * System plane: retrain checks run on a dedicated single-thread executor.
//    request_retrain() (or the auto-retrain policy) enqueues a certainty
//    check + conditional retrain that builds the next snapshot off to the
//    side; queries never block on it and keep being served by the previous
//    snapshot until the atomic publish. At most one system-plane check is
//    in flight at a time — extra requests are coalesced (dropped), since a
//    second check against the same model version answers the same question.
//
// Lifetime: the FairDS (and anything a ModelManager points at) must outlive
// the service. The destructor drains both planes.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>

#include "service/dtos.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::service {

struct DataServiceConfig {
  /// User-plane worker threads; 0 => max(2, hardware_concurrency) so even
  /// single-core hosts overlap request execution with client submission.
  std::size_t workers = 0;
  /// When true, every completed label request also enqueues a background
  /// certainty check on its input batch (coalesced to one in flight) — the
  /// paper's Fig. 16 trigger, run as a serving-side policy instead of an
  /// explicit caller step.
  bool auto_retrain = false;
  /// Declared shard count of the data tier's sample collection; 0 => don't
  /// care. When non-zero, construction checks it against the FairDS's
  /// actual collection, failing loudly when a deployment assumed ingest
  /// parallelism the store was not built with.
  std::size_t store_shards = 0;
  /// Declared storage engine of the data tier's sample collection ("mem" |
  /// "log"); empty => don't care. Like store_shards, a non-empty value is
  /// checked against the FairDS's actual collection at construction,
  /// failing loudly when a deployment assumed durability the store was not
  /// built with.
  std::string storage_engine = "";
  /// Re-budgets the model plane's parameter-blob/PDF cache at construction
  /// (requires a ModelManager). 0 => leave the zoo's budget as configured.
  /// Cache hit/miss/eviction counters surface through ServiceStats either
  /// way.
  std::size_t model_cache_bytes = 0;
  /// Admission control: bound on user-plane requests admitted but not yet
  /// picked up by a worker. 0 => unbounded (the legacy behavior). When the
  /// bound is reached, submit() sheds the request — it returns an
  /// immediately-ready future whose response carries
  /// ServeStatus::kShedOverload and a default payload — instead of
  /// growing the backlog; the submitter is never blocked. Requests already
  /// executing don't count against the bound, so total in-service work is
  /// at most `workers + max_pending`.
  std::size_t max_pending = 0;
};

class DataService {
 public:
  /// `manager` is optional and only needed for RecommendRequest.
  explicit DataService(fairds::FairDS& ds, DataServiceConfig config = {},
                       const fairms::ModelManager* manager = nullptr);
  ~DataService();

  DataService(const DataService&) = delete;
  DataService& operator=(const DataService&) = delete;

  // --- user plane ----------------------------------------------------------
  [[nodiscard]] std::future<LabelResponse> submit(LabelRequest request);
  [[nodiscard]] std::future<LookupResponse> submit(LookupRequest request);
  [[nodiscard]] std::future<RecommendResponse> submit(
      RecommendRequest request);

  // --- system plane --------------------------------------------------------
  /// Enqueues an async certainty check (and retrain, if certainty is below
  /// the FairDS threshold) on a copy of `xs`. Returns false when a check is
  /// already in flight (the request is coalesced and `xs` is not copied).
  /// Never blocks on training.
  bool request_retrain(const Tensor& xs);
  [[nodiscard]] bool retrain_in_flight() const {
    return system_busy_.load(std::memory_order_acquire);
  }

  /// Blocks until both planes are idle (all submitted requests answered,
  /// no retrain in flight).
  void wait_idle();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// The snapshot queries currently serve against (nullptr before the first
  /// train). The wire front-end validates untrusted batch shapes against it
  /// before a request can reach an invariant-checked service path.
  [[nodiscard]] std::shared_ptr<const fairds::Snapshot> snapshot() const {
    return ds_->snapshot();
  }
  /// Whether RecommendRequest is servable (a ModelManager was attached).
  [[nodiscard]] bool has_model_manager() const { return manager_ != nullptr; }

 private:
  void record_request(double seconds) EXCLUDES(stats_mutex_);
  /// Samples the pending-queue depth right after an admission and folds it
  /// into the max_queue_depth high-water mark.
  void note_admitted() EXCLUDES(stats_mutex_);

  fairds::FairDS* ds_;
  DataServiceConfig config_;
  const fairms::ModelManager* manager_;

  /// Ranked below the model cache: stats() reads the cache gauges while
  /// holding this (kServiceStats < kModelCache keeps that order legal and
  /// machine-checked), and queue_depth() is always read *before* taking it
  /// so the pool's mutex never nests inside.
  mutable util::Mutex stats_mutex_{util::LockRank::kServiceStats};
  ServiceStats stats_ GUARDED_BY(stats_mutex_);
  std::atomic<bool> system_busy_{false};

  // Pools last: their destructors run first and drain queued tasks, which
  // may still touch the members above.
  util::ThreadPool workers_;
  util::ThreadPool system_;
};

}  // namespace fairdms::service
