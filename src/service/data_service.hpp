// DataService — the multi-client, multi-stream serving facade over fairDS
// (the ROADMAP's "heavy traffic from many clients" north star, and the
// serving framing of the FAIR-models follow-up, arXiv:2207.00611).
//
// One service = N named streams (the paper's concurrent instruments:
// tomography, CookieBox, Bragg/HEDM). Each stream is an independent
// tenant — its own FairDS/collection/snapshot chain, ModelManager slice,
// RetrainPolicy, retrain executor, and admission ledger — registered in a
// StreamRegistry whose name->stream route is lock-free (see
// stream_registry.hpp). Every user-plane DTO carries a `stream` id; an
// empty id maps to kDefaultStreamName (what the legacy single-stream
// constructor registers, and what wire-v1 peers resolve to).
//
// Two planes per stream, shared worker pool:
//  * User plane: submit() routes the request to its stream, enqueues it on
//    the shared worker pool, and returns a std::future. Each request loads
//    that stream's current immutable snapshot and runs lock-free against
//    it. Admission is two-level: the per-stream bound
//    (StreamConfig::max_pending) sheds a single saturated tenant without
//    touching the others, then the service-wide bound
//    (DataServiceConfig::max_pending) sheds when the whole facility is
//    full. Both shed with an immediately-ready kShedOverload response —
//    never by blocking the submitter. A request naming an unregistered
//    stream is answered the same way with kUnknownStream (a structured
//    status, not an abort).
//  * System plane: each stream owns a dedicated single-thread retrain
//    executor, so one tenant's retrain storm serializes behind its own
//    executor and never queues in front of another tenant's checks. At
//    most one check per stream is in flight (extras coalesce), and a
//    service-wide cap (max_concurrent_retrains) bounds how many streams
//    may retrain at once on a small host. The fig16 uncertainty trigger
//    runs as a per-stream RetrainPolicy: after a label request completes,
//    the policy's min-new-samples / cooldown gates decide whether to
//    enqueue a certainty check at the policy's threshold.
//
// Lifetime: every registered FairDS (and anything a ModelManager points
// at) must outlive the service. The destructor drains all planes.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "service/dtos.hpp"
#include "service/stream_registry.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::service {

struct DataServiceConfig {
  /// User-plane worker threads; 0 => max(2, hardware_concurrency) so even
  /// single-core hosts overlap request execution with client submission.
  std::size_t workers = 0;
  /// Legacy single-stream switch: when true, the one-stream constructor
  /// registers its default stream with RetrainPolicy{.auto_trigger = true}
  /// (threshold/cooldown/min-samples at their permissive defaults, exactly
  /// the pre-policy behavior). Ignored by the multi-stream constructor —
  /// pass per-stream policies through add_stream instead.
  bool auto_retrain = false;
  /// Declared shard count of the default stream's sample collection; 0 =>
  /// don't care. Checked at registration against the FairDS's actual
  /// collection, failing loudly when a deployment assumed ingest
  /// parallelism the store was not built with. (Per-stream analogue:
  /// StreamConfig::store_shards.)
  std::size_t store_shards = 0;
  /// Declared storage engine of the default stream's collection ("mem" |
  /// "log"); empty => don't care. Checked like store_shards.
  std::string storage_engine = "";
  /// Re-budgets the default stream's model-plane cache at registration
  /// (requires a ModelManager). 0 => leave the zoo's budget as configured.
  std::size_t model_cache_bytes = 0;
  /// Service-wide admission bound: user-plane requests admitted (across
  /// all streams) but not yet picked up by a worker. 0 => unbounded.
  /// Requests already executing don't count, so total in-service work is
  /// at most `workers + max_pending`.
  std::size_t max_pending = 0;
  /// Service-wide cap on streams retraining concurrently (each stream
  /// already serializes its own checks). 0 => unbounded. A capped attempt
  /// is counted (StreamStats::retrains_capped) and dropped, exactly like
  /// a coalesced one — the next qualifying trigger retries.
  std::size_t max_concurrent_retrains = 0;
};

class DataService {
 public:
  /// Legacy single-stream service: registers `ds` as kDefaultStreamName
  /// with the config's declared-shards/engine/cache-budget checks and (when
  /// auto_retrain) the permissive-default RetrainPolicy. `manager` is
  /// optional and only needed for RecommendRequest.
  explicit DataService(fairds::FairDS& ds, DataServiceConfig config = {},
                       const fairms::ModelManager* manager = nullptr);
  /// Multi-stream service: starts with an empty registry; add_stream()
  /// tenants before (or while) serving.
  explicit DataService(DataServiceConfig config);
  ~DataService();

  DataService(const DataService&) = delete;
  DataService& operator=(const DataService&) = delete;

  // --- stream registry ------------------------------------------------------
  /// Registers a tenant. False when the name is taken. Thread-safe against
  /// concurrent submits (registration is copy-on-write; routing stays
  /// lock-free).
  bool add_stream(const std::string& name, fairds::FairDS& ds,
                  StreamConfig config = {},
                  const fairms::ModelManager* manager = nullptr);
  /// Empty `name` is the default-stream alias, here and everywhere below.
  [[nodiscard]] bool has_stream(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> stream_names() const;

  // --- user plane -----------------------------------------------------------
  [[nodiscard]] std::future<LabelResponse> submit(LabelRequest request);
  [[nodiscard]] std::future<LookupResponse> submit(LookupRequest request);
  [[nodiscard]] std::future<RecommendResponse> submit(
      RecommendRequest request);

  // --- system plane ---------------------------------------------------------
  /// Enqueues an async certainty check (and retrain, if certainty is below
  /// the stream's policy threshold — or its FairDS threshold when the
  /// policy leaves it 0) on a copy of `xs`, on that stream's own executor.
  /// Returns false when coalesced (a check is already in flight), capped
  /// (max_concurrent_retrains reached), or the stream is unknown; `xs` is
  /// not copied in any of those cases. Never blocks on training.
  bool request_retrain(const std::string& stream, const Tensor& xs);
  /// Default-stream shorthand (the legacy call sites).
  bool request_retrain(const Tensor& xs) { return request_retrain("", xs); }
  [[nodiscard]] bool retrain_in_flight() const;
  [[nodiscard]] bool retrain_in_flight(const std::string& stream) const;

  /// Blocks until all planes are idle (all submitted requests answered,
  /// no retrain in flight on any stream).
  void wait_idle();

  /// Global aggregates (computed as sums over streams at read time, so
  /// global == sum-over-streams holds by construction) plus the
  /// per-stream breakdown in `streams`.
  [[nodiscard]] ServiceStats stats() const;
  /// One stream's counters; default-constructed stats for an unknown name.
  [[nodiscard]] StreamStats stream_stats(const std::string& stream) const;
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// The snapshot `stream`'s queries currently serve against (nullptr for
  /// an unknown stream or before its first train). The wire front-end
  /// validates untrusted batch shapes against the *target stream's*
  /// snapshot before a request can reach an invariant-checked service
  /// path — which is also what lets tenants serve different image sizes.
  [[nodiscard]] std::shared_ptr<const fairds::Snapshot> snapshot(
      const std::string& stream) const;
  [[nodiscard]] std::shared_ptr<const fairds::Snapshot> snapshot() const {
    return snapshot("");
  }
  /// Whether RecommendRequest is servable on `stream` (a ModelManager was
  /// attached at registration).
  [[nodiscard]] bool has_model_manager(const std::string& stream) const;
  [[nodiscard]] bool has_model_manager() const {
    return has_model_manager("");
  }

 private:
  /// Two-level admission: reserve a per-stream pending slot (CAS against
  /// the stream bound), false => per-stream shed.
  static bool reserve_pending(Stream& stream);
  /// High-water bookkeeping after a successful admission.
  void note_admitted(Stream& stream);
  /// The fig16 policy gate, evaluated after an answered label request.
  void maybe_auto_retrain(const std::shared_ptr<Stream>& stream,
                          const Tensor& xs);
  bool request_retrain_on(const std::shared_ptr<Stream>& stream,
                          const Tensor& xs);

  DataServiceConfig config_;
  StreamRegistry registry_;

  /// Streams currently running a retrain (the max_concurrent_retrains
  /// ledger) and requests that named an unknown stream.
  std::atomic<std::size_t> retrains_in_flight_{0};
  std::atomic<std::uint64_t> unknown_stream_requests_{0};
  /// Service-wide queue-depth high-water (sampled at each admission, like
  /// the per-stream marks but over the shared pool's queue).
  std::atomic<std::uint64_t> max_queue_depth_{0};

  // Pool last: its destructor runs first and drains queued tasks, which
  // may still touch the members above.
  util::ThreadPool workers_;
};

}  // namespace fairdms::service
