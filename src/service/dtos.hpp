// Request/response DTOs of the fairDMS serving layer.
//
// The service API is asynchronous: clients build a request, submit() it to
// the DataService, and get a std::future for the response. Requests carry
// everything the user plane needs; responses carry the result plus serving
// metadata (which model version answered, how long execution took), so
// clients can detect when a background retrain has published a new model
// mid-stream.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor.hpp"

namespace fairdms::service {

using tensor::Tensor;

/// Per-sample label acquisition (the Fig. 9 reuse workload): reuse stored
/// labels within `threshold` embedding distance, fall back to
/// `fallback_labeler` for the rest. The labeler may be invoked on the
/// service's worker threads and must be thread-compatible (it is called at
/// most once per request, never concurrently within one request).
struct LabelRequest {
  Tensor xs;  ///< [N, 1, S, S]
  double threshold = 0.5;
  std::function<Tensor(const Tensor&)> fallback_labeler;
};

struct LabelResponse {
  nn::Batchset batch;
  fairds::ReuseStats reuse;
  std::uint64_t snapshot_version = 0;  ///< model version that served this
  double seconds = 0.0;                ///< execution time (queue wait excluded)
};

/// Dataset lookup: a PDF-matched labeled dataset of |xs| samples from
/// history. `seed` drives all sampling, so identical requests against the
/// same model version return identical batches.
struct LookupRequest {
  Tensor xs;  ///< [N, 1, S, S]
  std::uint64_t seed = 0;
};

struct LookupResponse {
  nn::Batchset batch;
  std::uint64_t snapshot_version = 0;
  double seconds = 0.0;
};

/// Foundation-model recommendation: rank the zoo's `architecture` models by
/// JSD between their training-data PDF and the PDF of `xs`.
struct RecommendRequest {
  std::string architecture;
  Tensor xs;  ///< [N, 1, S, S]
};

struct RecommendResponse {
  std::optional<fairms::Ranked> pick;  ///< nullopt => train from scratch
  std::vector<double> pdf;             ///< the query's cluster-PDF
  std::uint64_t snapshot_version = 0;
  double seconds = 0.0;
};

/// Aggregate serving counters (a snapshot copy; see DataService::stats).
struct ServiceStats {
  std::uint64_t label_requests = 0;
  std::uint64_t lookup_requests = 0;
  std::uint64_t recommend_requests = 0;
  std::uint64_t samples_labeled = 0;
  std::uint64_t labels_reused = 0;
  std::uint64_t labels_computed = 0;
  double busy_seconds = 0.0;         ///< summed request execution time
  double max_request_seconds = 0.0;  ///< slowest single request
  std::uint64_t retrain_checks = 0;  ///< system-plane certainty evaluations
  std::uint64_t retrains = 0;        ///< checks that triggered a retrain
  std::uint64_t store_shards = 0;    ///< sample-collection shard count
  // fairMS model-plane cache counters (all zero without a ModelManager).
  std::uint64_t model_cache_hits = 0;
  std::uint64_t model_cache_misses = 0;
  std::uint64_t model_cache_evictions = 0;
  std::uint64_t model_cache_bytes = 0;  ///< resident bytes right now
};

}  // namespace fairdms::service
