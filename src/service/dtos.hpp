// Request/response DTOs of the fairDMS serving layer.
//
// The service API is asynchronous: clients build a request, submit() it to
// the DataService, and get a std::future for the response. Requests carry
// everything the user plane needs; responses carry the result plus serving
// metadata (which model version answered, how long execution took), so
// clients can detect when a background retrain has published a new model
// mid-stream.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor.hpp"

namespace fairdms::service {

using tensor::Tensor;

/// Serving outcome of a submitted request. Every response carries one:
/// kOk means the request executed against a snapshot; kShedOverload means
/// the service's bounded pending queue was full at submission time and the
/// request was rejected *without* executing — its future is ready
/// immediately, its payload is default-constructed, and the caller is
/// expected to back off and retry. Shedding is the load policy (paper's
/// beamline bursts + retrain storms): a saturated service answers "not
/// now" in O(1) instead of growing an unbounded future backlog.
///
/// The remaining statuses are produced by the wire front-end (src/net/),
/// which answers over the same response DTOs: kMalformedRequest means the
/// request frame could not be decoded (the request never reached the
/// service), kShuttingDown means the server is draining and no longer
/// admits user-plane work (in-flight requests still complete and are
/// flushed before the socket closes). Both carry default payloads; neither
/// is ever produced by the in-process submit() path.
///
/// kUnknownStream means the request named a stream the service has not
/// registered. It is a structured answer, not an abort: the in-process
/// path returns an immediately-ready future carrying it, the wire path
/// answers it on a connection that stays usable — a hostile or stale
/// stream id can never crash the service or poison the connection.
enum class ServeStatus : std::uint8_t {
  kOk = 0,
  kShedOverload = 1,
  kMalformedRequest = 2,
  kShuttingDown = 3,
  kUnknownStream = 4,
};

[[nodiscard]] constexpr const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kShedOverload:
      return "shed_overload";
    case ServeStatus::kMalformedRequest:
      return "malformed_request";
    case ServeStatus::kShuttingDown:
      return "shutting_down";
    case ServeStatus::kUnknownStream:
      return "unknown_stream";
  }
  return "unknown";
}

/// Name every user-plane request routes by when it leaves the `stream`
/// field empty — the single stream the legacy one-stream constructor
/// registers, and the stream v1 wire peers (whose frames carry no stream
/// id at all) are mapped to.
inline constexpr const char* kDefaultStreamName = "default";

/// Per-sample label acquisition (the Fig. 9 reuse workload): reuse stored
/// labels within `threshold` embedding distance, fall back to
/// `fallback_labeler` for the rest. The labeler may be invoked on the
/// service's worker threads and must be thread-compatible (it is called at
/// most once per request, never concurrently within one request).
struct LabelRequest {
  Tensor xs;  ///< [N, 1, S, S]
  double threshold = 0.5;
  std::function<Tensor(const Tensor&)> fallback_labeler;
  std::string stream = {};  ///< target stream; empty => kDefaultStreamName
};

struct LabelResponse {
  ServeStatus status = ServeStatus::kOk;
  nn::Batchset batch;
  fairds::ReuseStats reuse;
  std::uint64_t snapshot_version = 0;  ///< model version that served this
  double seconds = 0.0;                ///< execution time (queue wait excluded)
};

/// Dataset lookup: a PDF-matched labeled dataset of |xs| samples from
/// history. `seed` drives all sampling, so identical requests against the
/// same model version return identical batches.
struct LookupRequest {
  Tensor xs;  ///< [N, 1, S, S]
  std::uint64_t seed = 0;
  std::string stream = {};  ///< target stream; empty => kDefaultStreamName
};

struct LookupResponse {
  ServeStatus status = ServeStatus::kOk;
  nn::Batchset batch;
  std::uint64_t snapshot_version = 0;
  double seconds = 0.0;
};

/// Foundation-model recommendation: rank the zoo's `architecture` models by
/// JSD between their training-data PDF and the PDF of `xs`.
struct RecommendRequest {
  std::string architecture;
  Tensor xs;  ///< [N, 1, S, S]
  std::string stream = {};  ///< target stream; empty => kDefaultStreamName
};

/// System-plane drift probe (the wire kRetrain op): ask `stream`'s
/// retrain executor to run a certainty check on `xs`.
struct RetrainRequest {
  Tensor xs;  ///< [N, 1, S, S]
  std::string stream = {};  ///< target stream; empty => kDefaultStreamName
};

struct RecommendResponse {
  ServeStatus status = ServeStatus::kOk;
  std::optional<fairms::Ranked> pick;  ///< nullopt => train from scratch
  std::vector<double> pdf;             ///< the query's cluster-PDF
  std::uint64_t snapshot_version = 0;
  double seconds = 0.0;
};

/// Per-stream serving counters (a snapshot copy; see DataService::stats).
/// Every mutable ledger the service keeps is per-stream — the global
/// aggregates in ServiceStats are computed by summation at read time, so
/// the reconciliation invariant (global == sum over streams, per op, once
/// idle) holds by construction and is pinned by tests/test_admission.
struct StreamStats {
  std::string stream;  ///< registry name (never empty)
  std::uint64_t label_requests = 0;
  std::uint64_t lookup_requests = 0;
  std::uint64_t recommend_requests = 0;
  std::uint64_t label_answered = 0;
  std::uint64_t lookup_answered = 0;
  std::uint64_t recommend_answered = 0;
  std::uint64_t label_shed = 0;
  std::uint64_t lookup_shed = 0;
  std::uint64_t recommend_shed = 0;
  /// Requests admitted to this stream but not yet picked up by a worker
  /// (point-in-time gauge) and its high-water mark.
  std::uint64_t queue_depth = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t max_pending = 0;  ///< per-stream bound (0 = global only)
  std::uint64_t samples_labeled = 0;
  std::uint64_t labels_reused = 0;
  std::uint64_t labels_computed = 0;
  double busy_seconds = 0.0;
  double max_request_seconds = 0.0;
  std::uint64_t retrain_checks = 0;
  std::uint64_t retrains = 0;
  std::uint64_t retrains_coalesced = 0;
  /// Retrain attempts rejected by the service-wide concurrent-retrain cap
  /// (DataServiceConfig::max_concurrent_retrains) — the stream keeps
  /// serving, the check just does not run.
  std::uint64_t retrains_capped = 0;
  /// Auto-trigger evaluations suppressed because the stream's RetrainPolicy
  /// cooldown had not elapsed since its last retrain.
  std::uint64_t policy_cooldown_skips = 0;
  std::uint64_t snapshot_version = 0;  ///< published model version
  std::uint64_t store_shards = 0;      ///< this stream's collection shards
};

/// Aggregate serving counters (a snapshot copy; see DataService::stats).
///
/// Admission accounting invariant (holds exactly once the service is idle;
/// transiently `submitted >= answered + shed` while requests are in
/// flight): for each op type, `*_requests == *_answered + *_shed`. The
/// `*_requests` counters count every submit() call, accepted or not.
/// Every per-op / retrain / labeling counter equals the sum of the same
/// counter across `streams`; `unknown_stream_requests` is global-only
/// (a request that named no stream belongs to none of them).
struct ServiceStats {
  std::uint64_t label_requests = 0;
  std::uint64_t lookup_requests = 0;
  std::uint64_t recommend_requests = 0;
  // Per-op admission outcomes (the load-shedding ledger).
  std::uint64_t label_answered = 0;
  std::uint64_t lookup_answered = 0;
  std::uint64_t recommend_answered = 0;
  std::uint64_t label_shed = 0;
  std::uint64_t lookup_shed = 0;
  std::uint64_t recommend_shed = 0;
  // Pending-queue gauges: requests admitted but not yet picked up by a
  // worker. `queue_depth` is a point-in-time read; `max_queue_depth` is a
  // high-water mark sampled at each admission, so it never exceeds the
  // configured `max_pending` (when bounded).
  std::uint64_t queue_depth = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t max_pending = 0;  ///< configured bound (0 = unbounded)
  std::uint64_t samples_labeled = 0;
  std::uint64_t labels_reused = 0;
  std::uint64_t labels_computed = 0;
  double busy_seconds = 0.0;         ///< summed request execution time
  double max_request_seconds = 0.0;  ///< slowest single request
  std::uint64_t retrain_checks = 0;  ///< system-plane certainty evaluations
  std::uint64_t retrains = 0;        ///< checks that triggered a retrain
  /// request_retrain calls dropped into an already in-flight check — the
  /// system plane's (pre-existing) admission control, surfaced so a
  /// retrain storm is visible in the stats instead of silent.
  std::uint64_t retrains_coalesced = 0;
  std::uint64_t retrains_capped = 0;        ///< sum of per-stream cap hits
  std::uint64_t policy_cooldown_skips = 0;  ///< sum over streams
  /// submit()/request_retrain calls naming a stream the registry does not
  /// know. Answered with ServeStatus::kUnknownStream, attributed to no
  /// stream (so global per-op ledgers still reconcile with the sums).
  std::uint64_t unknown_stream_requests = 0;
  std::uint64_t store_shards = 0;    ///< default stream's shard count
  // fairMS model-plane cache counters (all zero without a ModelManager).
  std::uint64_t model_cache_hits = 0;
  std::uint64_t model_cache_misses = 0;
  std::uint64_t model_cache_evictions = 0;
  std::uint64_t model_cache_bytes = 0;  ///< resident bytes right now
  /// Per-stream breakdown, sorted by stream name. Wire protocol v1 peers
  /// receive the global aggregates only; v2 carries the full vector.
  std::vector<StreamStats> streams;
};

}  // namespace fairdms::service
