#include "service/data_service.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::service {

namespace {

std::size_t worker_count_for(std::size_t configured) {
  if (configured != 0) return configured;
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::thread::hardware_concurrency()));
}

/// Already-satisfied future carrying the documented rejection response:
/// default payload, ServeStatus::kShedOverload. The shed path allocates no
/// request copy and touches no snapshot — O(1) on the submitter's thread.
template <typename Response>
std::future<Response> shed_future() {
  std::promise<Response> promise;
  Response response;
  response.status = ServeStatus::kShedOverload;
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

DataService::DataService(fairds::FairDS& ds, DataServiceConfig config,
                         const fairms::ModelManager* manager)
    : ds_(&ds),
      config_(config),
      manager_(manager),
      workers_(worker_count_for(config.workers), config.max_pending),
      system_(1) {
  FAIRDMS_CHECK(config_.store_shards == 0 ||
                    config_.store_shards == ds.store_shards(),
                "DataService: configured store_shards ", config_.store_shards,
                " != sample collection's ", ds.store_shards());
  FAIRDMS_CHECK(config_.storage_engine.empty() ||
                    config_.storage_engine == ds.storage_engine(),
                "DataService: configured storage_engine '",
                config_.storage_engine, "' != sample collection's '",
                ds.storage_engine(), "'");
  FAIRDMS_CHECK(config_.model_cache_bytes == 0 || manager_ != nullptr,
                "DataService: model_cache_bytes configured without a "
                "ModelManager to apply it to");
  if (config_.model_cache_bytes != 0) {
    manager_->zoo().cache().set_budget(config_.model_cache_bytes);
  }
}

DataService::~DataService() { wait_idle(); }

void DataService::record_request(double seconds) {
  util::MutexLock lock(stats_mutex_);
  stats_.busy_seconds += seconds;
  stats_.max_request_seconds = std::max(stats_.max_request_seconds, seconds);
}

void DataService::note_admitted() {
  const std::uint64_t depth = workers_.queue_depth();
  util::MutexLock lock(stats_mutex_);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
}

std::future<LabelResponse> DataService::submit(LabelRequest request) {
  FAIRDMS_CHECK(request.fallback_labeler != nullptr,
                "LabelRequest without a fallback labeler");
  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.label_requests;
  }
  auto req = std::make_shared<LabelRequest>(std::move(request));
  auto admitted = workers_.try_async([this, req] {
    util::WallTimer timer;
    const auto snap = ds_->snapshot();
    FAIRDMS_CHECK(snap != nullptr, "DataService: FairDS not trained");
    LabelResponse response;
    response.batch = snap->lookup_or_label(
        req->xs, req->threshold, req->fallback_labeler, &response.reuse);
    response.snapshot_version = snap->version();
    response.seconds = timer.seconds();
    {
      util::MutexLock lock(stats_mutex_);
      ++stats_.label_answered;
      stats_.samples_labeled += req->xs.dim(0);
      stats_.labels_reused += response.reuse.reused;
      stats_.labels_computed += response.reuse.computed;
    }
    record_request(response.seconds);
    // Serving-side Fig. 16 policy: the data just labeled doubles as the
    // drift probe. Coalesced inside request_retrain.
    if (config_.auto_retrain) request_retrain(req->xs);
    return response;
  });
  if (!admitted) {
    util::MutexLock lock(stats_mutex_);
    ++stats_.label_shed;
    return shed_future<LabelResponse>();
  }
  note_admitted();
  return std::move(*admitted);
}

std::future<LookupResponse> DataService::submit(LookupRequest request) {
  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.lookup_requests;
  }
  auto req = std::make_shared<LookupRequest>(std::move(request));
  auto admitted = workers_.try_async([this, req] {
    util::WallTimer timer;
    const auto snap = ds_->snapshot();
    FAIRDMS_CHECK(snap != nullptr, "DataService: FairDS not trained");
    LookupResponse response;
    response.batch = snap->lookup(req->xs, req->seed);
    response.snapshot_version = snap->version();
    response.seconds = timer.seconds();
    {
      util::MutexLock lock(stats_mutex_);
      ++stats_.lookup_answered;
    }
    record_request(response.seconds);
    return response;
  });
  if (!admitted) {
    util::MutexLock lock(stats_mutex_);
    ++stats_.lookup_shed;
    return shed_future<LookupResponse>();
  }
  note_admitted();
  return std::move(*admitted);
}

std::future<RecommendResponse> DataService::submit(RecommendRequest request) {
  FAIRDMS_CHECK(manager_ != nullptr,
                "RecommendRequest on a DataService without a ModelManager");
  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.recommend_requests;
  }
  auto req = std::make_shared<RecommendRequest>(std::move(request));
  auto admitted = workers_.try_async([this, req] {
    util::WallTimer timer;
    const auto snap = ds_->snapshot();
    FAIRDMS_CHECK(snap != nullptr, "DataService: FairDS not trained");
    RecommendResponse response;
    response.pdf = snap->distribution(req->xs);
    response.pick = manager_->recommend(req->architecture, response.pdf);
    response.snapshot_version = snap->version();
    response.seconds = timer.seconds();
    {
      util::MutexLock lock(stats_mutex_);
      ++stats_.recommend_answered;
    }
    record_request(response.seconds);
    return response;
  });
  if (!admitted) {
    util::MutexLock lock(stats_mutex_);
    ++stats_.recommend_shed;
    return shed_future<RecommendResponse>();
  }
  note_admitted();
  return std::move(*admitted);
}

bool DataService::request_retrain(const Tensor& xs) {
  bool expected = false;
  if (!system_busy_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    // One check in flight answers the question; coalesce. Counted so a
    // retrain storm shows up in the stats.
    util::MutexLock lock(stats_mutex_);
    ++stats_.retrains_coalesced;
    return false;
  }
  // Copy only after winning the coalescing race: dropped requests (the
  // steady state while a retrain runs) cost no allocation.
  system_.submit([this, xs] {
    const bool retrained = ds_->maybe_retrain(xs);
    {
      util::MutexLock lock(stats_mutex_);
      ++stats_.retrain_checks;
      if (retrained) ++stats_.retrains;
    }
    system_busy_.store(false, std::memory_order_release);
  });
  return true;
}

void DataService::wait_idle() {
  // User-plane tasks may enqueue system-plane checks, never the reverse,
  // so draining in this order reaches a true fixed point.
  workers_.wait_idle();
  system_.wait_idle();
}

ServiceStats DataService::stats() const {
  // Read the gauge before taking stats_mutex_: queue_depth() takes the
  // pool's own mutex and lock order must stay acyclic.
  const std::uint64_t depth = workers_.queue_depth();
  util::MutexLock lock(stats_mutex_);
  ServiceStats out = stats_;
  out.queue_depth = depth;
  out.max_pending = config_.max_pending;
  out.store_shards = ds_->store_shards();
  if (manager_ != nullptr) {
    const auto cache = manager_->zoo().cache().stats();
    out.model_cache_hits = cache.hits;
    out.model_cache_misses = cache.misses;
    out.model_cache_evictions = cache.evictions;
    out.model_cache_bytes = cache.resident_bytes;
  }
  return out;
}

}  // namespace fairdms::service
