#include "service/data_service.hpp"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::service {

namespace {

std::size_t worker_count_for(std::size_t configured) {
  if (configured != 0) return configured;
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::thread::hardware_concurrency()));
}

/// Already-satisfied future carrying a rejection response: default payload,
/// the given status (kShedOverload / kUnknownStream). The rejection path
/// allocates no request copy and touches no snapshot — O(1) on the
/// submitter's thread.
template <typename Response>
std::future<Response> rejected_future(ServeStatus status) {
  std::promise<Response> promise;
  Response response;
  response.status = status;
  promise.set_value(std::move(response));
  return promise.get_future();
}

/// Lock-free monotonic max for the queue-depth high-water marks.
void cas_max(std::atomic<std::uint64_t>& mark, std::uint64_t value) {
  std::uint64_t seen = mark.load(std::memory_order_relaxed);
  while (seen < value &&
         !mark.compare_exchange_weak(seen, value, std::memory_order_acq_rel)) {
  }
}

StreamConfig default_stream_config(const DataServiceConfig& config) {
  StreamConfig out;
  out.retrain.auto_trigger = config.auto_retrain;
  out.store_shards = config.store_shards;
  out.storage_engine = config.storage_engine;
  out.model_cache_bytes = config.model_cache_bytes;
  return out;
}

}  // namespace

DataService::DataService(DataServiceConfig config)
    : config_(std::move(config)),
      workers_(worker_count_for(config_.workers), config_.max_pending) {}

DataService::DataService(fairds::FairDS& ds, DataServiceConfig config,
                         const fairms::ModelManager* manager)
    : DataService(config) {
  const bool added =
      add_stream(kDefaultStreamName, ds, default_stream_config(config_),
                 manager);
  FAIRDMS_CHECK(added, "DataService: default stream registration failed");
}

DataService::~DataService() { wait_idle(); }

bool DataService::add_stream(const std::string& name, fairds::FairDS& ds,
                             StreamConfig config,
                             const fairms::ModelManager* manager) {
  return registry_.add(name, ds, std::move(config), manager);
}

bool DataService::has_stream(const std::string& name) const {
  return registry_.find(name) != nullptr;
}

std::vector<std::string> DataService::stream_names() const {
  std::vector<std::string> out;
  for (const auto& stream : registry_.all()) out.push_back(stream->name);
  return out;
}

std::shared_ptr<const fairds::Snapshot> DataService::snapshot(
    const std::string& stream) const {
  const auto s = registry_.find(stream);
  return s != nullptr ? s->ds->snapshot() : nullptr;
}

bool DataService::has_model_manager(const std::string& stream) const {
  const auto s = registry_.find(stream);
  return s != nullptr && s->manager != nullptr;
}

bool DataService::reserve_pending(Stream& stream) {
  const std::uint64_t bound = stream.config.max_pending;
  std::uint64_t seen = stream.pending.load(std::memory_order_relaxed);
  for (;;) {
    if (bound != 0 && seen >= bound) return false;
    if (stream.pending.compare_exchange_weak(seen, seen + 1,
                                             std::memory_order_acq_rel)) {
      cas_max(stream.max_pending_seen, seen + 1);
      return true;
    }
  }
}

void DataService::note_admitted(Stream& stream) {
  (void)stream;  // the per-stream mark was folded in by reserve_pending
  cas_max(max_queue_depth_, workers_.queue_depth());
}

std::future<LabelResponse> DataService::submit(LabelRequest request) {
  FAIRDMS_CHECK(request.fallback_labeler != nullptr,
                "LabelRequest without a fallback labeler");
  auto stream = registry_.find(request.stream);
  if (stream == nullptr) {
    unknown_stream_requests_.fetch_add(1, std::memory_order_relaxed);
    return rejected_future<LabelResponse>(ServeStatus::kUnknownStream);
  }
  {
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.label_requests;
  }
  if (!reserve_pending(*stream)) {
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.label_shed;
    return rejected_future<LabelResponse>(ServeStatus::kShedOverload);
  }
  auto req = std::make_shared<LabelRequest>(std::move(request));
  auto admitted = workers_.try_async([this, stream, req] {
    stream->pending.fetch_sub(1, std::memory_order_acq_rel);
    util::WallTimer timer;
    const auto snap = stream->ds->snapshot();
    FAIRDMS_CHECK(snap != nullptr, "DataService: stream '", stream->name,
                  "' not trained");
    LabelResponse response;
    response.batch = snap->lookup_or_label(
        req->xs, req->threshold, req->fallback_labeler, &response.reuse);
    response.snapshot_version = snap->version();
    response.seconds = timer.seconds();
    {
      util::MutexLock lock(stream->stats_mutex);
      ++stream->counters.label_answered;
      stream->counters.samples_labeled += req->xs.dim(0);
      stream->counters.labels_reused += response.reuse.reused;
      stream->counters.labels_computed += response.reuse.computed;
      stream->counters.busy_seconds += response.seconds;
      stream->counters.max_request_seconds =
          std::max(stream->counters.max_request_seconds, response.seconds);
    }
    // Serving-side Fig. 16 policy: the data just labeled doubles as the
    // drift probe, gated by this stream's RetrainPolicy.
    maybe_auto_retrain(stream, req->xs);
    return response;
  });
  if (!admitted) {
    stream->pending.fetch_sub(1, std::memory_order_acq_rel);
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.label_shed;
    return rejected_future<LabelResponse>(ServeStatus::kShedOverload);
  }
  note_admitted(*stream);
  return std::move(*admitted);
}

std::future<LookupResponse> DataService::submit(LookupRequest request) {
  auto stream = registry_.find(request.stream);
  if (stream == nullptr) {
    unknown_stream_requests_.fetch_add(1, std::memory_order_relaxed);
    return rejected_future<LookupResponse>(ServeStatus::kUnknownStream);
  }
  {
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.lookup_requests;
  }
  if (!reserve_pending(*stream)) {
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.lookup_shed;
    return rejected_future<LookupResponse>(ServeStatus::kShedOverload);
  }
  auto req = std::make_shared<LookupRequest>(std::move(request));
  auto admitted = workers_.try_async([this, stream, req] {
    stream->pending.fetch_sub(1, std::memory_order_acq_rel);
    util::WallTimer timer;
    const auto snap = stream->ds->snapshot();
    FAIRDMS_CHECK(snap != nullptr, "DataService: stream '", stream->name,
                  "' not trained");
    LookupResponse response;
    response.batch = snap->lookup(req->xs, req->seed);
    response.snapshot_version = snap->version();
    response.seconds = timer.seconds();
    {
      util::MutexLock lock(stream->stats_mutex);
      ++stream->counters.lookup_answered;
      stream->counters.busy_seconds += response.seconds;
      stream->counters.max_request_seconds =
          std::max(stream->counters.max_request_seconds, response.seconds);
    }
    return response;
  });
  if (!admitted) {
    stream->pending.fetch_sub(1, std::memory_order_acq_rel);
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.lookup_shed;
    return rejected_future<LookupResponse>(ServeStatus::kShedOverload);
  }
  note_admitted(*stream);
  return std::move(*admitted);
}

std::future<RecommendResponse> DataService::submit(RecommendRequest request) {
  auto stream = registry_.find(request.stream);
  if (stream == nullptr) {
    unknown_stream_requests_.fetch_add(1, std::memory_order_relaxed);
    return rejected_future<RecommendResponse>(ServeStatus::kUnknownStream);
  }
  FAIRDMS_CHECK(stream->manager != nullptr, "RecommendRequest on stream '",
                stream->name, "' without a ModelManager");
  {
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.recommend_requests;
  }
  if (!reserve_pending(*stream)) {
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.recommend_shed;
    return rejected_future<RecommendResponse>(ServeStatus::kShedOverload);
  }
  auto req = std::make_shared<RecommendRequest>(std::move(request));
  auto admitted = workers_.try_async([this, stream, req] {
    stream->pending.fetch_sub(1, std::memory_order_acq_rel);
    util::WallTimer timer;
    const auto snap = stream->ds->snapshot();
    FAIRDMS_CHECK(snap != nullptr, "DataService: stream '", stream->name,
                  "' not trained");
    RecommendResponse response;
    response.pdf = snap->distribution(req->xs);
    response.pick = stream->manager->recommend(req->architecture, response.pdf);
    response.snapshot_version = snap->version();
    response.seconds = timer.seconds();
    {
      util::MutexLock lock(stream->stats_mutex);
      ++stream->counters.recommend_answered;
      stream->counters.busy_seconds += response.seconds;
      stream->counters.max_request_seconds =
          std::max(stream->counters.max_request_seconds, response.seconds);
    }
    return response;
  });
  if (!admitted) {
    stream->pending.fetch_sub(1, std::memory_order_acq_rel);
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.recommend_shed;
    return rejected_future<RecommendResponse>(ServeStatus::kShedOverload);
  }
  note_admitted(*stream);
  return std::move(*admitted);
}

void DataService::maybe_auto_retrain(const std::shared_ptr<Stream>& stream,
                                     const Tensor& xs) {
  const RetrainPolicy& policy = stream->config.retrain;
  if (!policy.auto_trigger) return;
  {
    util::MutexLock lock(stream->stats_mutex);
    stream->samples_since_trigger += xs.dim(0);
    if (stream->samples_since_trigger < policy.min_new_samples) return;
    if (policy.cooldown_seconds > 0.0 && stream->ever_retrained) {
      const double since =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        stream->last_retrain_done)
              .count();
      if (since < policy.cooldown_seconds) {
        ++stream->counters.policy_cooldown_skips;
        return;
      }
    }
  }
  if (request_retrain_on(stream, xs)) {
    // The new-sample budget is spent only when a check actually enqueued;
    // coalesced/capped attempts keep accumulating toward the next one.
    util::MutexLock lock(stream->stats_mutex);
    stream->samples_since_trigger = 0;
  }
}

bool DataService::request_retrain(const std::string& stream_name,
                                  const Tensor& xs) {
  auto stream = registry_.find(stream_name);
  if (stream == nullptr) {
    unknown_stream_requests_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return request_retrain_on(stream, xs);
}

bool DataService::request_retrain_on(const std::shared_ptr<Stream>& stream,
                                     const Tensor& xs) {
  bool expected = false;
  if (!stream->system_busy.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    // One check in flight answers the question; coalesce. Counted so a
    // retrain storm shows up in the stats.
    util::MutexLock lock(stream->stats_mutex);
    ++stream->counters.retrains_coalesced;
    return false;
  }
  if (config_.max_concurrent_retrains != 0) {
    std::size_t seen = retrains_in_flight_.load(std::memory_order_acquire);
    for (;;) {
      if (seen >= config_.max_concurrent_retrains) {
        stream->system_busy.store(false, std::memory_order_release);
        util::MutexLock lock(stream->stats_mutex);
        ++stream->counters.retrains_capped;
        return false;
      }
      if (retrains_in_flight_.compare_exchange_weak(
              seen, seen + 1, std::memory_order_acq_rel)) {
        break;
      }
    }
  }
  // Copy only after winning the coalescing race and the global cap:
  // dropped requests (the steady state during a storm) cost no allocation.
  // Captured as a raw pointer on purpose: a worker destroys its task
  // object *after* signaling idle, so an owning capture could drop the
  // last Stream reference on the stream's own executor thread — ~Stream
  // would then self-join that thread. The raw pointer stays valid because
  // the registry never removes streams and ~Stream joins this executor
  // before anything the task touches is destroyed.
  Stream* const s = stream.get();
  const double threshold = s->config.retrain.certainty_threshold;
  s->retrain_executor.submit([this, s, xs, threshold] {
    const bool retrained = threshold > 0.0
                               ? s->ds->maybe_retrain(xs, threshold)
                               : s->ds->maybe_retrain(xs);
    {
      util::MutexLock lock(s->stats_mutex);
      ++s->counters.retrain_checks;
      if (retrained) {
        ++s->counters.retrains;
        s->ever_retrained = true;
        s->last_retrain_done = std::chrono::steady_clock::now();
      }
    }
    if (config_.max_concurrent_retrains != 0) {
      retrains_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    s->system_busy.store(false, std::memory_order_release);
  });
  return true;
}

bool DataService::retrain_in_flight() const {
  for (const auto& stream : registry_.all()) {
    if (stream->system_busy.load(std::memory_order_acquire)) return true;
  }
  return false;
}

bool DataService::retrain_in_flight(const std::string& stream_name) const {
  const auto stream = registry_.find(stream_name);
  return stream != nullptr &&
         stream->system_busy.load(std::memory_order_acquire);
}

void DataService::wait_idle() {
  // User-plane tasks may enqueue system-plane checks, never the reverse,
  // so draining workers first then every stream's executor reaches a true
  // fixed point.
  workers_.wait_idle();
  for (const auto& stream : registry_.all()) {
    stream->retrain_executor.wait_idle();
  }
}

StreamStats DataService::stream_stats(const std::string& stream_name) const {
  const auto stream = registry_.find(stream_name);
  return stream != nullptr ? stream->stats() : StreamStats{};
}

ServiceStats DataService::stats() const {
  ServiceStats out;
  // Pool gauge before any stats mutex: lock order must stay acyclic.
  out.queue_depth = workers_.queue_depth();
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_acquire);
  out.max_pending = config_.max_pending;
  out.unknown_stream_requests =
      unknown_stream_requests_.load(std::memory_order_relaxed);

  // Per-stream snapshots taken one at a time (never two stats mutexes at
  // once), then summed — the reconciliation invariant is structural.
  std::unordered_set<const fairms::ModelManager*> managers;
  const auto streams = registry_.all();
  out.streams.reserve(streams.size());
  for (const auto& stream : streams) {
    StreamStats s = stream->stats();
    out.label_requests += s.label_requests;
    out.lookup_requests += s.lookup_requests;
    out.recommend_requests += s.recommend_requests;
    out.label_answered += s.label_answered;
    out.lookup_answered += s.lookup_answered;
    out.recommend_answered += s.recommend_answered;
    out.label_shed += s.label_shed;
    out.lookup_shed += s.lookup_shed;
    out.recommend_shed += s.recommend_shed;
    out.samples_labeled += s.samples_labeled;
    out.labels_reused += s.labels_reused;
    out.labels_computed += s.labels_computed;
    out.busy_seconds += s.busy_seconds;
    out.max_request_seconds =
        std::max(out.max_request_seconds, s.max_request_seconds);
    out.retrain_checks += s.retrain_checks;
    out.retrains += s.retrains;
    out.retrains_coalesced += s.retrains_coalesced;
    out.retrains_capped += s.retrains_capped;
    out.policy_cooldown_skips += s.policy_cooldown_skips;
    if (stream->name == kDefaultStreamName || streams.size() == 1) {
      out.store_shards = s.store_shards;
    }
    if (stream->manager != nullptr) managers.insert(stream->manager);
    out.streams.push_back(std::move(s));
  }
  // Model-plane cache gauges, deduplicated by manager so tenants sharing
  // one zoo are not double-counted.
  for (const fairms::ModelManager* manager : managers) {
    const auto cache = manager->zoo().cache().stats();
    out.model_cache_hits += cache.hits;
    out.model_cache_misses += cache.misses;
    out.model_cache_evictions += cache.evictions;
    out.model_cache_bytes += cache.resident_bytes;
  }
  return out;
}

}  // namespace fairdms::service
