// StreamRegistry — per-stream serving state for the multi-tenant
// DataService (ROADMAP open item 4: the paper's three instruments as
// concurrent tenants of one serving facility).
//
// One `Stream` is one tenant: its own fairds::FairDS (and therefore its
// own store::Collection, sharding/storage engine composing unchanged, and
// its own snapshot publish chain), its own optional ModelManager slice,
// its own RetrainPolicy, its own single-thread retrain executor, and its
// own admission/stats ledgers. The registry maps names to streams with
// the same idiom the snapshot plane uses for models: an atomic
// shared_ptr to an immutable map, copied on mutation — so the user-plane
// route from a request's stream id to its snapshot is lock-free, while
// registration (rare, operator-plane) serializes on a mutex.
//
// Lifetime: like the single-stream DataService before it, the registry
// borrows the FairDS and ModelManager — the caller keeps them alive for
// the service's lifetime. Streams are never removed (an experiment that
// ends simply stops sending), so a shared_ptr<Stream> captured by an
// in-flight task stays valid without further ceremony.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/dtos.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::service {

/// The fig16 uncertainty trigger, promoted from a bench script to a
/// per-stream production policy: after every answered label request the
/// service evaluates this gate and, when it passes, enqueues a certainty
/// check (and conditional retrain) on that stream's retrain executor.
struct RetrainPolicy {
  /// Master switch; false leaves retraining to explicit request_retrain.
  bool auto_trigger = false;
  /// Certainty threshold the check retrains below. 0 => use the stream's
  /// FairDSConfig::certainty_threshold; > 1 retrains unconditionally.
  double certainty_threshold = 0.0;
  /// Minimum seconds between triggered retrains; suppressed evaluations
  /// are counted (StreamStats::policy_cooldown_skips), not queued.
  double cooldown_seconds = 0.0;
  /// Labeled samples that must accumulate since the last enqueued check
  /// before the next one fires (0 => every label request qualifies).
  std::size_t min_new_samples = 0;
};

/// Per-stream registration knobs (the per-tenant analogue of the legacy
/// single-stream fields in DataServiceConfig).
struct StreamConfig {
  RetrainPolicy retrain;
  /// Per-stream admission bound: requests admitted to this stream but not
  /// yet executing. 0 => only the service-wide bound applies. A full
  /// stream sheds its own requests without consuming service-wide queue
  /// slots other tenants could use.
  std::size_t max_pending = 0;
  /// Declared shard count / storage engine / cache budget, checked (or
  /// applied) at registration exactly like the legacy DataServiceConfig
  /// fields; see those for semantics.
  std::size_t store_shards = 0;
  std::string storage_engine = "";
  std::size_t model_cache_bytes = 0;
};

/// One tenant's serving state. User-plane fields are atomics or guarded by
/// the per-stream stats mutex; system-plane work serializes on the
/// stream's own 1-thread executor so one tenant's retrain can never queue
/// behind (or stall) another's.
struct Stream {
  Stream(std::string name_in, fairds::FairDS& ds_in, StreamConfig config_in,
         const fairms::ModelManager* manager_in);

  const std::string name;
  fairds::FairDS* const ds;
  const fairms::ModelManager* const manager;
  const StreamConfig config;

  /// Admitted-but-not-executing requests (the per-stream queue gauge) and
  /// its high-water mark. Maintained with CAS so admission never takes a
  /// lock on the submit path.
  std::atomic<std::uint64_t> pending{0};
  std::atomic<std::uint64_t> max_pending_seen{0};
  /// At most one certainty check in flight per stream; losers coalesce.
  std::atomic<bool> system_busy{false};

  /// kServiceStats rank — never hold two streams' stats mutexes at once
  /// (same-rank nesting aborts under the Debug rank checker by design).
  mutable util::Mutex stats_mutex{util::LockRank::kServiceStats};
  /// The mutable ledgers; gauges (queue_depth, snapshot_version, ...) are
  /// filled in by stats() at read time.
  StreamStats counters GUARDED_BY(stats_mutex);
  /// RetrainPolicy state.
  std::uint64_t samples_since_trigger GUARDED_BY(stats_mutex) = 0;
  bool ever_retrained GUARDED_BY(stats_mutex) = false;
  std::chrono::steady_clock::time_point last_retrain_done
      GUARDED_BY(stats_mutex){};

  /// This stream's serialized system plane (certainty checks + retrains).
  util::ThreadPool retrain_executor{1};

  /// Counters + gauges snapshot. Reads the FairDS gauges *before* taking
  /// the stats mutex (store locks rank below kServiceStats).
  [[nodiscard]] StreamStats stats() const EXCLUDES(stats_mutex);
};

/// Name -> Stream map with lock-free lookup and copy-on-write insertion.
class StreamRegistry {
 public:
  StreamRegistry();
  ~StreamRegistry() = default;

  StreamRegistry(const StreamRegistry&) = delete;
  StreamRegistry& operator=(const StreamRegistry&) = delete;

  /// Registers a stream. False (and no registration) when the name is
  /// already taken; aborts on an empty name (programmer error — empty is
  /// the wire's "default stream" alias, never a registry key).
  bool add(const std::string& name, fairds::FairDS& ds, StreamConfig config,
           const fairms::ModelManager* manager);

  /// Lock-free route from a request's stream id to its stream. Empty
  /// `name` is the v1-compat alias for kDefaultStreamName. nullptr when
  /// unknown.
  [[nodiscard]] std::shared_ptr<Stream> find(const std::string& name) const;

  /// All streams, sorted by name (the order stats vectors report in).
  [[nodiscard]] std::vector<std::shared_ptr<Stream>> all() const;

  [[nodiscard]] std::size_t size() const;

 private:
  using Map = std::map<std::string, std::shared_ptr<Stream>>;

  /// Published map; readers load, mutators copy-swap under mutation_mutex_.
  std::atomic<std::shared_ptr<const Map>> map_;
  util::Mutex mutation_mutex_{util::LockRank::kStreamRegistry};
};

}  // namespace fairdms::service
