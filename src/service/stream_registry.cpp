#include "service/stream_registry.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace fairdms::service {

Stream::Stream(std::string name_in, fairds::FairDS& ds_in,
               StreamConfig config_in, const fairms::ModelManager* manager_in)
    : name(std::move(name_in)),
      ds(&ds_in),
      manager(manager_in),
      config(std::move(config_in)) {
  util::MutexLock lock(stats_mutex);
  counters.stream = name;
  counters.max_pending = config.max_pending;
}

StreamStats Stream::stats() const {
  // Gauges first: snapshot()/store_shards() touch locks ranked below
  // kServiceStats, so they must never be read while holding stats_mutex.
  const std::uint64_t depth = pending.load(std::memory_order_acquire);
  const std::uint64_t high_water =
      max_pending_seen.load(std::memory_order_acquire);
  const auto snap = ds->snapshot();
  const std::uint64_t version = snap != nullptr ? snap->version() : 0;
  const std::uint64_t shards = ds->store_shards();

  util::MutexLock lock(stats_mutex);
  StreamStats out = counters;
  out.queue_depth = depth;
  out.max_queue_depth = high_water;
  out.max_pending = config.max_pending;
  out.snapshot_version = version;
  out.store_shards = shards;
  return out;
}

StreamRegistry::StreamRegistry() {
  map_.store(std::make_shared<const Map>(), std::memory_order_release);
}

bool StreamRegistry::add(const std::string& name, fairds::FairDS& ds,
                         StreamConfig config,
                         const fairms::ModelManager* manager) {
  FAIRDMS_CHECK(!name.empty(),
                "StreamRegistry: empty stream name (reserved as the "
                "default-stream alias)");
  FAIRDMS_CHECK(config.store_shards == 0 ||
                    config.store_shards == ds.store_shards(),
                "stream '", name, "': configured store_shards ",
                config.store_shards, " != sample collection's ",
                ds.store_shards());
  FAIRDMS_CHECK(config.storage_engine.empty() ||
                    config.storage_engine == ds.storage_engine(),
                "stream '", name, "': configured storage_engine '",
                config.storage_engine, "' != sample collection's '",
                ds.storage_engine(), "'");
  FAIRDMS_CHECK(config.model_cache_bytes == 0 || manager != nullptr,
                "stream '", name,
                "': model_cache_bytes configured without a ModelManager");
  util::MutexLock lock(mutation_mutex_);
  const auto current = map_.load(std::memory_order_acquire);
  if (current->contains(name)) return false;
  if (config.model_cache_bytes != 0) {
    manager->zoo().cache().set_budget(config.model_cache_bytes);
  }
  auto next = std::make_shared<Map>(*current);
  (*next)[name] =
      std::make_shared<Stream>(name, ds, std::move(config), manager);
  map_.store(std::move(next), std::memory_order_release);
  return true;
}

std::shared_ptr<Stream> StreamRegistry::find(const std::string& name) const {
  const auto map = map_.load(std::memory_order_acquire);
  const auto it = map->find(name.empty() ? kDefaultStreamName : name);
  return it != map->end() ? it->second : nullptr;
}

std::vector<std::shared_ptr<Stream>> StreamRegistry::all() const {
  const auto map = map_.load(std::memory_order_acquire);
  std::vector<std::shared_ptr<Stream>> out;
  out.reserve(map->size());
  for (const auto& [_, stream] : *map) out.push_back(stream);
  return out;  // std::map iteration is already name-sorted
}

std::size_t StreamRegistry::size() const {
  return map_.load(std::memory_order_acquire)->size();
}

}  // namespace fairdms::service
