#include "store/nfs.hpp"

#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace fairdms::store {

namespace fs = std::filesystem;

namespace {

std::size_t shape_elems(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

void write_shape(std::ofstream& out, const std::vector<std::size_t>& shape) {
  const std::uint64_t rank = shape.size();
  out.write(reinterpret_cast<const char*>(&rank), 8);
  for (std::size_t d : shape) {
    const std::uint64_t v = d;
    out.write(reinterpret_cast<const char*>(&v), 8);
  }
}

std::vector<std::size_t> read_shape(std::ifstream& in) {
  std::uint64_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), 8);
  std::vector<std::size_t> shape(rank);
  for (std::uint64_t i = 0; i < rank; ++i) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), 8);
    shape[i] = v;
  }
  return shape;
}

}  // namespace

NfsStore::NfsStore(std::string root, RemoteLinkConfig link_config)
    : root_(std::move(root)), link_(link_config) {
  fs::create_directories(root_);
}

std::string NfsStore::sample_path(const std::string& name,
                                  std::size_t index) const {
  return root_ + "/" + name + "_" + std::to_string(index) + ".bin";
}

void NfsStore::write_dataset(const std::string& name,
                             const nn::Batchset& data) {
  FAIRDMS_CHECK(data.size() > 0, "write_dataset: empty batchset");
  {
    util::MutexLock lock(meta_mutex_);
    meta_cache_.erase(name);
  }
  const std::size_t n = data.size();
  std::vector<std::size_t> xs(data.xs.shape().begin() + 1,
                              data.xs.shape().end());
  std::vector<std::size_t> ys(data.ys.shape().begin() + 1,
                              data.ys.shape().end());
  const std::size_t x_elems = shape_elems(xs);
  const std::size_t y_elems = shape_elems(ys);

  {
    // Write-then-rename so a concurrent read_meta (cache just invalidated
    // above) never observes a truncated metadata file: POSIX rename swaps
    // the directory entry atomically and in-flight readers keep the old
    // inode.
    const std::string meta_path = root_ + "/" + name + ".meta";
    const std::string tmp_path = meta_path + ".tmp";
    {
      std::ofstream meta(tmp_path, std::ios::binary);
      FAIRDMS_CHECK(meta.good(), "cannot write NFS metadata for ", name);
      const std::uint64_t count = n;
      meta.write(reinterpret_cast<const char*>(&count), 8);
      write_shape(meta, xs);
      write_shape(meta, ys);
    }
    fs::rename(tmp_path, meta_path);
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::ofstream out(sample_path(name, i), std::ios::binary);
    FAIRDMS_CHECK(out.good(), "cannot write NFS sample ", i, " of ", name);
    out.write(reinterpret_cast<const char*>(data.xs.data() + i * x_elems),
              static_cast<std::streamsize>(x_elems * 4));
    out.write(reinterpret_cast<const char*>(data.ys.data() + i * y_elems),
              static_cast<std::streamsize>(y_elems * 4));
    FAIRDMS_CHECK(out.good(), "short write for NFS sample ", i);
  }
}

NfsStore::Meta NfsStore::read_meta(const std::string& name) const {
  util::MutexLock lock(meta_mutex_);
  auto it = meta_cache_.find(name);
  if (it != meta_cache_.end()) return it->second;
  std::ifstream in(root_ + "/" + name + ".meta", std::ios::binary);
  FAIRDMS_CHECK(in.good(), "missing NFS metadata for ", name);
  Meta meta;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), 8);
  meta.count = count;
  meta.x_shape = read_shape(in);
  meta.y_shape = read_shape(in);
  FAIRDMS_CHECK(in.good(), "corrupt NFS metadata for ", name);
  return meta_cache_.emplace(name, std::move(meta)).first->second;
}

std::vector<std::size_t> NfsStore::x_shape(const std::string& name) const {
  return read_meta(name).x_shape;
}

std::vector<std::size_t> NfsStore::y_shape(const std::string& name) const {
  return read_meta(name).y_shape;
}

std::size_t NfsStore::sample_count(const std::string& name) const {
  return read_meta(name).count;
}

void NfsStore::read_sample(const std::string& name, std::size_t index,
                           std::vector<float>& x, std::vector<float>& y) const {
  const Meta meta = read_meta(name);
  FAIRDMS_CHECK(index < meta.count, "NFS read: index ", index,
                " out of range for ", name);
  const std::size_t x_elems = shape_elems(meta.x_shape);
  const std::size_t y_elems = shape_elems(meta.y_shape);
  x.resize(x_elems);
  y.resize(y_elems);
  std::ifstream in(sample_path(name, index), std::ios::binary);
  FAIRDMS_CHECK(in.good(), "missing NFS sample ", index, " of ", name);
  in.read(reinterpret_cast<char*>(x.data()),
          static_cast<std::streamsize>(x_elems * 4));
  in.read(reinterpret_cast<char*>(y.data()),
          static_cast<std::streamsize>(y_elems * 4));
  FAIRDMS_CHECK(in.good(), "short read for NFS sample ", index);
  link_.charge((x_elems + y_elems) * 4 + 128);
}

}  // namespace fairdms::store
