// Durable snapshots for the document store.
//
// MongoDB persists its collections; the FAIR premise of fairDMS (findable,
// accessible data *and models*) requires the same of this analog: a fairDS
// history and a model Zoo written by one campaign must be loadable by the
// next. Snapshots are per-collection binary files plus a manifest listing
// collections and their index definitions; indexes are rebuilt on load.
#pragma once

#include <string>
#include <vector>

#include "store/docstore.hpp"

namespace fairdms::store {

/// Writes every collection of `db` under `directory` (created if missing).
/// Layout: <directory>/manifest.bin + one .col file per collection.
/// Safe to call while writers are active: each collection file is a fuzzy
/// point-in-time snapshot (documents committed near the scan may or may
/// not be captured, and cross-shard atomicity is not promised) but is
/// always internally consistent and loadable.
void save_store(const DocStore& db, const std::string& directory);

/// Loads a snapshot into `db`. Collections are created as needed; loading
/// into a non-empty collection aborts (snapshots restore fresh stores).
void load_store(DocStore& db, const std::string& directory);

/// Collections listed in a snapshot manifest (without loading documents).
std::vector<std::string> snapshot_collections(const std::string& directory);

}  // namespace fairdms::store
