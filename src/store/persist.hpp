// Durable snapshots for the document store.
//
// MongoDB persists its collections; the FAIR premise of fairDMS (findable,
// accessible data *and models*) requires the same of this analog: a fairDS
// history and a model Zoo written by one campaign must be loadable by the
// next. Snapshots are per-collection binary files plus a manifest listing
// collections and their index definitions; indexes are rebuilt on load.
//
// Durability: every file is written tmp + fsync + rename (util/fsio.hpp),
// collection files before the manifest, so a writer killed at any point
// leaves each file either fully old or fully new — the directory is always
// loadable. Corruption: the `try_` entry points parse untrusted bytes with
// full bounds checking and report failures as values; the legacy
// entry points wrap them and abort, preserving the original fail-fast
// call sites.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "store/docstore.hpp"

namespace fairdms::store {

/// Outcome of a persistence operation: success, or a human-readable error
/// naming the file and the offending structure ("truncated", "bad magic",
/// "document 12: bad length", ...). Never aborts the process.
struct PersistResult {
  std::string error;  ///< empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
  explicit operator bool() const { return ok(); }
};

/// Writes every collection of `db` under `directory` (created if missing).
/// Layout: <directory>/manifest.bin + one .col file per collection.
/// Safe to call while writers are active: each collection file is a fuzzy
/// point-in-time snapshot (documents committed near the scan may or may
/// not be captured, and cross-shard atomicity is not promised) but is
/// always internally consistent and loadable. Every file replacement is
/// atomic and durable (tmp + fsync + rename), collection files first, the
/// manifest last — a crash mid-save never leaves a half-written snapshot.
[[nodiscard]] PersistResult try_save_store(const DocStore& db,
                                           const std::string& directory);

/// Loads a snapshot into `db`. Collections are created as needed; loading
/// into a non-empty collection is an error (snapshots restore fresh
/// stores). Truncated, corrupt, or malformed snapshot bytes — torn
/// lengths, bad magic, non-object documents, duplicate or out-of-range
/// ids, undecodable payloads — come back as a PersistResult error with the
/// store left unchanged past the collections already restored; no input
/// can abort the process or trigger an unbounded allocation.
[[nodiscard]] PersistResult try_load_store(DocStore& db,
                                           const std::string& directory);

/// Collections listed in a snapshot manifest (without loading documents).
[[nodiscard]] PersistResult try_snapshot_collections(
    const std::string& directory, std::vector<std::string>& names);

/// Abort-on-failure wrappers around the try_ entry points, for call sites
/// where a snapshot failure is unrecoverable operator error (the seed
/// behavior).
void save_store(const DocStore& db, const std::string& directory);
void load_store(DocStore& db, const std::string& directory);
std::vector<std::string> snapshot_collections(const std::string& directory);

}  // namespace fairdms::store
