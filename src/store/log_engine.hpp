// LogEngine: a memory-mapped append-only log storage engine.
//
// One segment file per shard. Every mutation appends a length-prefixed,
// checksummed record — a `put` carrying the full encoded document (inserts,
// replaces, and field updates all supersede by id) or a `tombstone`
// (deletes). Reads go through an in-memory id -> (offset, length) index
// into a read-only mmap of the segment; the index, the live-document count,
// and the payload-byte accounting are rebuilt by replaying the segment on
// open.
//
// Crash consistency: appends are single sequential write(2) calls, so a
// process killed at any byte offset leaves the segment equal to a prefix
// of the record stream plus at most one torn record. Replay stops at the
// first incomplete or checksum-failing record and truncates it away — the
// engine recovers to the last complete record, losing at most the
// in-flight tail. `compact()` rewrites only the live documents through a
// tmp + fsync + rename rotation (the nfs.cpp `.meta` pattern), so a crash
// mid-compaction leaves either the old segment or the new one, never a
// mix.
//
// Record layout (after a 16-byte segment header of magic/version/shard):
//   u32 payload_len | u8 kind (1=put, 2=tombstone) | u64 id
//   | payload_len bytes (Value::encode of the document; empty for
//     tombstones) | u32 checksum (FNV-1a over kind, id, payload)
//
// Like every StorageEngine, all methods run under the owning shard's lock;
// the mmap is remapped only during exclusive-lock appends (the mapping is
// sized ahead of the file so shared-lock readers never touch mmap state).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "store/storage_engine.hpp"

namespace fairdms::store {

class LogEngine final : public StorageEngine {
 public:
  /// Opens (or creates) segment `path` and replays it. Aborts on real I/O
  /// or format errors (wrong magic/version: the path is not a segment);
  /// a torn tail is not an error — it is truncated away with a log line.
  explicit LogEngine(std::string path, bool fsync_appends = false);
  ~LogEngine() override;

  LogEngine(const LogEngine&) = delete;
  LogEngine& operator=(const LogEngine&) = delete;

  [[nodiscard]] const char* name() const override { return "log"; }

  void insert(DocId id, Value doc, std::size_t bytes) override;
  [[nodiscard]] std::optional<Value> fetch(
      DocId id, std::span<const std::string> fields,
      std::size_t& charged_bytes) const override;
  bool replace(DocId id, Value doc, std::size_t& stored_bytes) override;
  bool update(DocId id, Object fields) override;
  bool erase(DocId id) override;

  void create_index(const std::string& field) override;
  [[nodiscard]] bool has_index(const std::string& field) const override;
  [[nodiscard]] std::vector<std::string> index_fields() const override;
  void find_eq(const std::string& field, const Value& value,
               std::vector<DocId>& out) const override;
  void find_range(const std::string& field, const Value& lo, const Value& hi,
                  std::vector<DocId>& out) const override;

  void scan(
      const std::function<void(DocId, const Value&)>& fn) const override;
  void append_ids(std::vector<DocId>& out) const override;
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }
  [[nodiscard]] std::size_t payload_bytes() const override {
    return payload_bytes_;
  }
  [[nodiscard]] DocId max_id() const override {
    return entries_.empty() ? 0 : entries_.rbegin()->first;
  }

  /// Rewrites the segment with only the live documents (tmp + fsync +
  /// rename), dropping superseded records and tombstones.
  void compact() override;

  /// Current segment size in bytes (observability + compaction tests).
  [[nodiscard]] std::size_t segment_bytes() const { return file_size_; }

 private:
  struct Entry {
    std::uint64_t offset = 0;  ///< payload offset within the segment
    std::uint32_t length = 0;  ///< payload length == encoded document size
  };

  void open_and_replay();
  /// Appends one framed record; returns the payload's file offset.
  std::uint64_t append_record(std::uint8_t kind, DocId id,
                              std::span<const std::uint8_t> payload);
  /// Ensures the read mapping covers at least `size` file bytes.
  void ensure_mapped(std::size_t size);
  [[nodiscard]] Value load_doc(const Entry& entry) const;
  void close_files();

  std::string path_;
  bool fsync_appends_;
  int fd_ = -1;
  const std::uint8_t* map_ = nullptr;
  std::size_t map_capacity_ = 0;
  std::size_t file_size_ = 0;
  /// Ordered so max_id() and deterministic scans are free.
  std::map<DocId, Entry> entries_;
  std::size_t payload_bytes_ = 0;
  SecondaryIndexes indexes_;
};

}  // namespace fairdms::store
