#include "store/codec.hpp"

#include <cstring>

#include "util/check.hpp"

namespace fairdms::store {

namespace {

constexpr std::uint32_t kRawMagic = 0x52415746;     // "RAWF"
constexpr std::uint32_t kPickleMagic = 0x504B4C46;  // "PKLF"
constexpr std::uint32_t kBloscMagic = 0x424C5346;   // "BLSF"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t& pos) {
  FAIRDMS_CHECK(pos + 4 <= in.size(), "codec: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[pos++]} << (8 * i);
  return v;
}

// Pickle-style opcodes. The decoder is a small interpreter: every element
// costs a tag dispatch plus value reconstruction, the property that makes
// real pickle decode CPU-bound.
enum PickleOp : std::uint8_t {
  kOpZero = 0x30,    // a 0.0f element
  kOpFloat = 0x46,   // 4-byte float follows
  kOpRepeat = 0x52,  // repeat previous element (u8 count follows)
  kOpStop = 0x2E,
};

}  // namespace

std::vector<std::uint8_t> RawCodec::encode(
    std::span<const float> values) const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + values.size() * 4);
  put_u32(out, kRawMagic);
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  const std::size_t offset = out.size();
  out.resize(offset + values.size() * 4);
  if (!values.empty()) {
    // Empty spans have a null data(), which memcpy must never see (UB).
    std::memcpy(out.data() + offset, values.data(), values.size() * 4);
  }
  return out;
}

void RawCodec::decode(std::span<const std::uint8_t> bytes,
                      std::vector<float>& out) const {
  std::size_t pos = 0;
  FAIRDMS_CHECK(get_u32(bytes, pos) == kRawMagic, "raw codec: bad magic");
  const std::uint32_t n = get_u32(bytes, pos);
  FAIRDMS_CHECK(pos + std::size_t{n} * 4 == bytes.size(),
                "raw codec: length mismatch");
  out.resize(n);
  if (n != 0) {
    std::memcpy(out.data(), bytes.data() + pos, std::size_t{n} * 4);
  }
}

std::vector<std::uint8_t> PickleCodec::encode(
    std::span<const float> values) const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + values.size() * 5);
  put_u32(out, kPickleMagic);
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  std::size_t i = 0;
  while (i < values.size()) {
    const float v = values[i];
    // Count immediate repeats of the same bit pattern (pickle memoization
    // analog); keeps encoded size reasonable on sparse data.
    std::size_t run = 1;
    std::uint32_t bits_v;
    std::memcpy(&bits_v, &v, 4);
    while (i + run < values.size() && run < 255) {
      std::uint32_t bits_n;
      std::memcpy(&bits_n, &values[i + run], 4);
      if (bits_n != bits_v) break;
      ++run;
    }
    if (bits_v == 0) {  // +0.0f only; -0.0f keeps its bit pattern via kOpFloat
      out.push_back(kOpZero);
    } else {
      out.push_back(kOpFloat);
      const std::size_t offset = out.size();
      out.resize(offset + 4);
      std::memcpy(out.data() + offset, &v, 4);
    }
    if (run > 1) {
      out.push_back(kOpRepeat);
      out.push_back(static_cast<std::uint8_t>(run - 1));
    }
    i += run;
  }
  out.push_back(kOpStop);
  return out;
}

void PickleCodec::decode(std::span<const std::uint8_t> bytes,
                         std::vector<float>& out) const {
  std::size_t pos = 0;
  FAIRDMS_CHECK(get_u32(bytes, pos) == kPickleMagic,
                "pickle codec: bad magic");
  const std::uint32_t n = get_u32(bytes, pos);
  out.clear();
  out.reserve(n);
  float prev = 0.0f;
  // Interpreted opcode loop — intentionally per-element, like pickle.
  for (;;) {
    FAIRDMS_CHECK(pos < bytes.size(), "pickle codec: truncated stream");
    const std::uint8_t op = bytes[pos++];
    if (op == kOpStop) break;
    switch (op) {
      case kOpZero:
        prev = 0.0f;
        out.push_back(prev);
        break;
      case kOpFloat: {
        FAIRDMS_CHECK(pos + 4 <= bytes.size(), "pickle codec: truncated float");
        std::memcpy(&prev, bytes.data() + pos, 4);
        pos += 4;
        out.push_back(prev);
        break;
      }
      case kOpRepeat: {
        FAIRDMS_CHECK(pos < bytes.size(), "pickle codec: truncated repeat");
        const std::uint8_t count = bytes[pos++];
        for (std::uint8_t r = 0; r < count; ++r) out.push_back(prev);
        break;
      }
      default:
        FAIRDMS_CHECK(false, "pickle codec: unknown opcode ", int{op});
    }
  }
  FAIRDMS_CHECK(out.size() == n, "pickle codec: element count mismatch (",
                out.size(), " vs ", n, ")");
}

std::vector<std::uint8_t> BloscCodec::encode(
    std::span<const float> values) const {
  const std::size_t n = values.size();
  // Byte shuffle: plane b holds byte b of every element. High-order exponent
  // bytes of smooth scientific data are nearly constant -> long RLE runs.
  std::vector<std::uint8_t> shuffled(n * 4);
  const auto* src = reinterpret_cast<const std::uint8_t*>(values.data());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < 4; ++b) {
      shuffled[b * n + i] = src[i * 4 + b];
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(16 + n);
  put_u32(out, kBloscMagic);
  put_u32(out, static_cast<std::uint32_t>(n));
  // RLE over the shuffled stream: (count u8, byte) pairs for runs >= 4,
  // literal blocks otherwise.
  std::size_t i = 0;
  while (i < shuffled.size()) {
    std::size_t run = 1;
    while (i + run < shuffled.size() && run < 255 &&
           shuffled[i + run] == shuffled[i]) {
      ++run;
    }
    if (run >= 4) {
      out.push_back(0x00);  // run marker
      out.push_back(static_cast<std::uint8_t>(run));
      out.push_back(shuffled[i]);
      i += run;
    } else {
      // Literal block: gather until the next run of >= 4 or 255 bytes.
      std::size_t lit_end = i;
      std::size_t scan = i;
      while (scan < shuffled.size() && scan - i < 255) {
        std::size_t r = 1;
        while (scan + r < shuffled.size() && r < 4 &&
               shuffled[scan + r] == shuffled[scan]) {
          ++r;
        }
        if (r >= 4) break;
        scan += 1;
        lit_end = scan;
      }
      if (lit_end == i) lit_end = i + 1;
      out.push_back(0x01);  // literal marker
      out.push_back(static_cast<std::uint8_t>(lit_end - i));
      out.insert(out.end(),
                 shuffled.begin() + static_cast<std::ptrdiff_t>(i),
                 shuffled.begin() + static_cast<std::ptrdiff_t>(lit_end));
      i = lit_end;
    }
  }
  return out;
}

void BloscCodec::decode(std::span<const std::uint8_t> bytes,
                        std::vector<float>& out) const {
  std::size_t pos = 0;
  FAIRDMS_CHECK(get_u32(bytes, pos) == kBloscMagic, "blosc codec: bad magic");
  const std::uint32_t n = get_u32(bytes, pos);
  std::vector<std::uint8_t> shuffled;
  shuffled.reserve(std::size_t{n} * 4);
  while (pos < bytes.size()) {
    const std::uint8_t marker = bytes[pos++];
    FAIRDMS_CHECK(pos < bytes.size(), "blosc codec: truncated block header");
    const std::uint8_t len = bytes[pos++];
    if (marker == 0x00) {
      FAIRDMS_CHECK(pos < bytes.size(), "blosc codec: truncated run");
      shuffled.insert(shuffled.end(), len, bytes[pos++]);
    } else {
      FAIRDMS_CHECK(marker == 0x01, "blosc codec: bad marker");
      FAIRDMS_CHECK(pos + len <= bytes.size(),
                    "blosc codec: truncated literal");
      shuffled.insert(shuffled.end(), bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                      bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
  }
  FAIRDMS_CHECK(shuffled.size() == std::size_t{n} * 4,
                "blosc codec: shuffled size mismatch");
  out.resize(n);
  auto* dst = reinterpret_cast<std::uint8_t*>(out.data());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < 4; ++b) {
      dst[i * 4 + b] = shuffled[b * n + i];
    }
  }
}

std::unique_ptr<Codec> make_codec(const std::string& name) {
  if (name == "raw") return std::make_unique<RawCodec>();
  if (name == "pickle") return std::make_unique<PickleCodec>();
  if (name == "blosc") return std::make_unique<BloscCodec>();
  FAIRDMS_CHECK(false, "unknown codec: ", name);
  return nullptr;
}

}  // namespace fairdms::store
