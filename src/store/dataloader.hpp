// Multi-worker prefetching DataLoader (PyTorch analog).
//
// The paper (§III-D) extends the PyTorch DataLoader to fetch training data
// from MongoDB with many concurrent clients so per-fetch latency is hidden
// behind compute. We reproduce the same three abstractions:
//   Dataset  — random access to samples (store/dataset.hpp),
//   Sampler  — a shuffled index permutation per epoch,
//   DataLoader — worker threads that materialize mini-batches into a
//                bounded prefetch queue.
// Accounting: `stall_seconds` is the time the training loop spent blocked on
// next() (I/O not hidden by prefetch); `fetch_seconds` is total worker time
// spent fetching+decoding (the per-iteration I/O cost of Figs. 6b/7b/8b).
// All three gauges are guarded by the loader mutex and may be read
// mid-epoch; workers fold their fetch time in at the batch-push point, so
// fetch_seconds lags in-flight fetches by at most one batch per worker.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "store/dataset.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace fairdms::store {

struct Batch {
  nn::Tensor xs;
  nn::Tensor ys;
};

struct LoaderConfig {
  std::size_t batch_size = 32;
  std::size_t workers = 4;
  std::size_t prefetch_batches = 8;  ///< bounded queue depth
  bool shuffle = true;
  std::uint64_t seed = 1234;
  bool drop_last = false;
};

class DataLoader {
 public:
  DataLoader(const Dataset& dataset, LoaderConfig config);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Begins a new pass: reshuffles (seed, epoch)-deterministically and
  /// spawns workers. Must not be called while an epoch is in flight.
  void start_epoch(std::size_t epoch);

  /// Next prefetched batch; std::nullopt when the epoch is exhausted
  /// (workers are joined at that point).
  std::optional<Batch> next();

  [[nodiscard]] std::size_t batches_per_epoch() const;

  /// Time next() spent blocked waiting for data this epoch (seconds).
  [[nodiscard]] double stall_seconds() const EXCLUDES(mutex_);
  /// Total worker time spent in Dataset::get + batch assembly this epoch.
  [[nodiscard]] double fetch_seconds() const EXCLUDES(mutex_);
  /// Batches handed out by next() this epoch.
  [[nodiscard]] std::size_t batches_delivered() const EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);
  void join_workers();

  const Dataset* dataset_;
  LoaderConfig config_;
  std::vector<std::size_t> order_;

  std::vector<std::thread> workers_;

  mutable util::Mutex mutex_{util::LockRank::kDataLoader};
  std::condition_variable cv_space_;
  std::condition_variable cv_data_;
  std::deque<Batch> queue_ GUARDED_BY(mutex_);
  std::size_t next_claim_ GUARDED_BY(mutex_) = 0;  // next claimable batch
  std::size_t produced_ GUARDED_BY(mutex_) = 0;    // batches pushed
  std::size_t batches_taken_ GUARDED_BY(mutex_) = 0;
  std::size_t total_batches_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  double stall_seconds_ GUARDED_BY(mutex_) = 0.0;
  double fetch_seconds_ GUARDED_BY(mutex_) = 0.0;
};

}  // namespace fairdms::store
