#include "store/docstore.hpp"

#include <algorithm>
#include <mutex>

#include "util/check.hpp"

namespace fairdms::store {

std::size_t Collection::doc_bytes(const Value& doc) {
  Binary buf;
  doc.encode(buf);
  return buf.size();
}

DocId Collection::insert_one(Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "insert_one: document must be an object");
  std::unique_lock lock(mutex_);
  const DocId id = next_id_++;
  doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
  const std::size_t bytes = doc_bytes(doc);
  payload_bytes_ += bytes;
  index_insert_locked(id, doc);
  docs_.emplace(id, std::move(doc));
  lock.unlock();
  charge(bytes + 64);  // request envelope
  return id;
}

std::vector<DocId> Collection::insert_many(std::vector<Value> docs) {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  std::size_t total_bytes = 0;
  {
    std::unique_lock lock(mutex_);
    for (Value& doc : docs) {
      FAIRDMS_CHECK(doc.is_object(), "insert_many: document must be object");
      const DocId id = next_id_++;
      doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
      total_bytes += doc_bytes(doc);
      index_insert_locked(id, doc);
      docs_.emplace(id, std::move(doc));
      ids.push_back(id);
    }
    payload_bytes_ += total_bytes;
  }
  charge(total_bytes + 64);  // one batched round trip
  return ids;
}

std::optional<Value> Collection::find_by_id(DocId id) const {
  std::optional<Value> out;
  std::size_t bytes = 64;
  {
    std::shared_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      out = it->second;
      bytes += doc_bytes(it->second);
    }
  }
  charge(bytes);
  return out;
}

bool Collection::replace_one(DocId id, Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "replace_one: document must be an object");
  std::size_t bytes = 64;
  bool found = false;
  {
    std::unique_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      index_remove_locked(id, it->second);
      payload_bytes_ -= doc_bytes(it->second);
      doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
      bytes += doc_bytes(doc);
      payload_bytes_ += doc_bytes(doc);
      index_insert_locked(id, doc);
      it->second = std::move(doc);
      found = true;
    }
  }
  charge(bytes);
  return found;
}

bool Collection::update_field(DocId id, const std::string& field,
                              Value value) {
  bool found = false;
  {
    std::unique_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      index_remove_locked(id, it->second);
      it->second.as_object()[field] = std::move(value);
      index_insert_locked(id, it->second);
      found = true;
    }
  }
  charge(128);
  return found;
}

bool Collection::remove_one(DocId id) {
  bool found = false;
  {
    std::unique_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      index_remove_locked(id, it->second);
      payload_bytes_ -= doc_bytes(it->second);
      docs_.erase(it);
      found = true;
    }
  }
  charge(64);
  return found;
}

void Collection::create_index(const std::string& field) {
  std::unique_lock lock(mutex_);
  if (indexes_.count(field) > 0) return;
  auto& index = indexes_[field];
  for (const auto& [id, doc] : docs_) {
    if (doc.contains(field)) index[doc.at(field)].push_back(id);
  }
}

bool Collection::has_index(const std::string& field) const {
  std::shared_lock lock(mutex_);
  return indexes_.count(field) > 0;
}

std::vector<DocId> Collection::find_eq(const std::string& field,
                                       const Value& value) const {
  std::vector<DocId> out;
  {
    std::shared_lock lock(mutex_);
    auto idx = indexes_.find(field);
    if (idx != indexes_.end()) {
      auto it = idx->second.find(value);
      if (it != idx->second.end()) out = it->second;
    } else {
      for (const auto& [id, doc] : docs_) {
        if (doc.contains(field) && doc.at(field) == value) out.push_back(id);
      }
      std::sort(out.begin(), out.end());
    }
  }
  charge(64 + out.size() * 8);
  return out;
}

std::vector<DocId> Collection::find_range(const std::string& field,
                                          const Value& lo,
                                          const Value& hi) const {
  std::vector<DocId> out;
  {
    std::shared_lock lock(mutex_);
    auto idx = indexes_.find(field);
    if (idx != indexes_.end()) {
      for (auto it = idx->second.lower_bound(lo);
           it != idx->second.end() && it->first < hi; ++it) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    } else {
      for (const auto& [id, doc] : docs_) {
        if (!doc.contains(field)) continue;
        const Value& v = doc.at(field);
        if (!(v < lo) && v < hi) out.push_back(id);
      }
      std::sort(out.begin(), out.end());
    }
  }
  charge(64 + out.size() * 8);
  return out;
}

void Collection::scan(
    const std::function<void(DocId, const Value&)>& fn) const {
  std::shared_lock lock(mutex_);
  for (const auto& [id, doc] : docs_) fn(id, doc);
}

std::size_t Collection::size() const {
  std::shared_lock lock(mutex_);
  return docs_.size();
}

std::size_t Collection::approx_bytes() const {
  std::shared_lock lock(mutex_);
  return payload_bytes_;
}

std::vector<std::string> Collection::index_fields() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> fields;
  fields.reserve(indexes_.size());
  for (const auto& [field, _] : indexes_) fields.push_back(field);
  std::sort(fields.begin(), fields.end());
  return fields;
}

DocId Collection::next_id() const {
  std::shared_lock lock(mutex_);
  return next_id_;
}

void Collection::restore(DocId next_id,
                         std::vector<std::pair<DocId, Value>> documents) {
  std::unique_lock lock(mutex_);
  FAIRDMS_CHECK(docs_.empty(), "restore into non-empty collection '", name_,
                "'");
  next_id_ = next_id;
  for (auto& [id, doc] : documents) {
    FAIRDMS_CHECK(doc.is_object(), "restore: document must be an object");
    FAIRDMS_CHECK(id < next_id, "restore: id ", id, " >= next_id ", next_id);
    payload_bytes_ += doc_bytes(doc);
    index_insert_locked(id, doc);
    docs_.emplace(id, std::move(doc));
  }
}

void Collection::index_insert_locked(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    if (doc.contains(field)) index[doc.at(field)].push_back(id);
  }
}

void Collection::index_remove_locked(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    if (!doc.contains(field)) continue;
    auto it = index.find(doc.at(field));
    if (it == index.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) index.erase(it);
  }
}

Collection& DocStore::collection(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    auto it = collections_.find(name);
    if (it != collections_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = collections_[name];
  if (!slot) {
    slot = std::make_unique<Collection>(name,
                                        is_remote() ? &link_ : nullptr);
  }
  return *slot;
}

bool DocStore::has_collection(const std::string& name) const {
  std::shared_lock lock(mutex_);
  return collections_.count(name) > 0;
}

std::vector<std::string> DocStore::collection_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace fairdms::store
