#include "store/docstore.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::store {

namespace {

/// Batched operations fan out per-shard on the global thread pool only
/// above this many work items; below it, serial dispatch beats the queue
/// round trip.
constexpr std::size_t kShardFanoutMinItems = 512;

}  // namespace

Collection::Collection(std::string name, const RemoteLink* link,
                       std::size_t shards)
    : name_(std::move(name)), link_(link) {
  FAIRDMS_CHECK(shards >= 1, "collection '", name_,
                "': shard count must be >= 1, got ", shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if ((shards & (shards - 1)) == 0) shard_mask_ = shards - 1;
}

std::size_t Collection::doc_bytes(const Value& doc) {
  return doc.encoded_size();
}

void Collection::for_each_shard(
    std::size_t items, const std::function<void(std::size_t)>& body) const {
  const std::size_t n = shards_.size();
  if (n > 1 && items >= kShardFanoutMinItems) {
    util::ThreadPool::global().parallel_for(
        n, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) body(s);
        });
    return;
  }
  for (std::size_t s = 0; s < n; ++s) body(s);
}

DocId Collection::insert_one(Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "insert_one: document must be an object");
  const DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
  const std::size_t bytes = doc_bytes(doc);
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    shard.payload_bytes += bytes;
    index_insert_locked(shard, id, doc);
    shard.docs.emplace(id, StoredDoc{std::move(doc), bytes});
  }
  charge(bytes + 64);  // request envelope
  return id;
}

std::vector<DocId> Collection::insert_many(std::vector<Value> docs) {
  const std::size_t n = docs.size();
  // One contiguous id block, so batch ids are deterministic regardless of
  // which shard commits first.
  const DocId first = next_id_.fetch_add(n, std::memory_order_relaxed);
  std::vector<DocId> ids;
  ids.reserve(n);
  std::vector<std::size_t> sizes(n);
  std::vector<std::vector<std::size_t>> per_shard(shards_.size());
  std::size_t total_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    FAIRDMS_CHECK(docs[i].is_object(),
                  "insert_many: document must be object");
    const DocId id = first + i;
    docs[i].as_object()["_id"] = Value(static_cast<std::int64_t>(id));
    sizes[i] = doc_bytes(docs[i]);
    total_bytes += sizes[i];
    per_shard[shard_index(id)].push_back(i);
    ids.push_back(id);
  }
  for_each_shard(n, [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mutex);
    for (const std::size_t i : per_shard[s]) {
      shard.payload_bytes += sizes[i];
      index_insert_locked(shard, ids[i], docs[i]);
      shard.docs.emplace(ids[i], StoredDoc{std::move(docs[i]), sizes[i]});
    }
  });
  charge(total_bytes + 64);  // one batched round trip
  return ids;
}

std::optional<Value> Collection::find_by_id(DocId id) const {
  std::optional<Value> out;
  std::size_t bytes = 64;
  Shard& shard = shard_of(id);
  {
    util::ReaderLock lock(shard.mutex);
    auto it = shard.docs.find(id);
    if (it != shard.docs.end()) {
      out = it->second.doc;
      bytes += it->second.bytes;
    }
  }
  charge(bytes);
  return out;
}

std::vector<std::optional<Value>> Collection::find_many(
    std::span<const DocId> ids, std::span<const std::string> fields) const {
  std::vector<std::optional<Value>> out(ids.size());
  std::vector<std::vector<std::size_t>> per_shard(shards_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    per_shard[shard_index(ids[i])].push_back(i);
  }
  std::vector<std::size_t> shard_bytes(shards_.size(), 0);
  for_each_shard(ids.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Shard& shard = *shards_[s];
    std::size_t bytes = 0;
    util::ReaderLock lock(shard.mutex);
    for (const std::size_t i : per_shard[s]) {
      auto it = shard.docs.find(ids[i]);
      if (it == shard.docs.end()) continue;
      if (fields.empty()) {
        out[i] = it->second.doc;
        bytes += it->second.bytes;
        continue;
      }
      Object projected;
      const Object& src = it->second.doc.as_object();
      for (const std::string& field : fields) {
        auto fit = src.find(field);
        if (fit == src.end()) continue;
        bytes += 8 + field.size() + fit->second.encoded_size();
        projected.emplace(field, fit->second);
      }
      out[i] = Value(std::move(projected));
    }
    shard_bytes[s] = bytes;
  });
  std::size_t bytes = 64;
  for (const std::size_t b : shard_bytes) bytes += b;
  charge(bytes);  // one batched round trip for the whole id list
  return out;
}

bool Collection::replace_one(DocId id, Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "replace_one: document must be an object");
  std::size_t bytes = 64;
  bool found = false;
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.docs.find(id);
    if (it != shard.docs.end()) {
      index_remove_locked(shard, id, it->second.doc);
      shard.payload_bytes -= it->second.bytes;
      doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
      const std::size_t new_bytes = doc_bytes(doc);
      bytes += new_bytes;
      shard.payload_bytes += new_bytes;
      index_insert_locked(shard, id, doc);
      it->second = StoredDoc{std::move(doc), new_bytes};
      found = true;
    }
  }
  charge(bytes);
  return found;
}

std::size_t Collection::update_fields_locked(Shard& shard, DocId id,
                                             Object&& fields, bool& found) {
  std::size_t value_bytes = 0;
  for (const auto& [field, value] : fields) {
    value_bytes += 8 + field.size() + value.encoded_size();
  }
  auto it = shard.docs.find(id);
  if (it == shard.docs.end()) {
    found = false;
    return value_bytes;
  }
  index_remove_locked(shard, id, it->second.doc);
  Object& obj = it->second.doc.as_object();
  for (auto& [field, value] : fields) {
    obj[field] = std::move(value);
  }
  const std::size_t new_bytes = doc_bytes(it->second.doc);
  shard.payload_bytes += new_bytes;
  shard.payload_bytes -= it->second.bytes;
  it->second.bytes = new_bytes;
  index_insert_locked(shard, id, it->second.doc);
  found = true;
  return value_bytes;
}

bool Collection::update_field(DocId id, const std::string& field,
                              Value value) {
  Object fields;
  fields.emplace(field, std::move(value));
  return update_fields(id, std::move(fields));
}

bool Collection::update_fields(DocId id, Object fields) {
  bool found = false;
  std::size_t value_bytes = 0;
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    value_bytes = update_fields_locked(shard, id, std::move(fields), found);
  }
  charge(64 + value_bytes);
  return found;
}

std::size_t Collection::update_many(
    std::vector<std::pair<DocId, Object>> updates) {
  std::vector<std::vector<std::size_t>> per_shard(shards_.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    // Grouping preserves list order within a shard, so repeated updates to
    // one id apply in submission order.
    per_shard[shard_index(updates[i].first)].push_back(i);
  }
  std::vector<std::size_t> shard_updated(shards_.size(), 0);
  std::vector<std::size_t> shard_bytes(shards_.size(), 0);
  for_each_shard(updates.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mutex);
    for (const std::size_t i : per_shard[s]) {
      bool found = false;
      shard_bytes[s] += update_fields_locked(
          shard, updates[i].first, std::move(updates[i].second), found);
      if (found) ++shard_updated[s];
    }
  });
  std::size_t updated = 0;
  std::size_t value_bytes = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    updated += shard_updated[s];
    value_bytes += shard_bytes[s];
  }
  charge(64 + value_bytes);  // one batched round trip
  return updated;
}

bool Collection::remove_one(DocId id) {
  bool found = false;
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    auto it = shard.docs.find(id);
    if (it != shard.docs.end()) {
      index_remove_locked(shard, id, it->second.doc);
      shard.payload_bytes -= it->second.bytes;
      shard.docs.erase(it);
      found = true;
    }
  }
  charge(64);
  return found;
}

void Collection::create_index(const std::string& field) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mutex);
    if (shard.indexes.count(field) > 0) continue;
    auto& index = shard.indexes[field];
    for (const auto& [id, stored] : shard.docs) {
      if (stored.doc.contains(field)) {
        index[stored.doc.at(field)].push_back(id);
      }
    }
  }
}

bool Collection::has_index(const std::string& field) const {
  // create_index installs the field on every shard before returning, so
  // shard 0 is authoritative.
  const Shard& shard = *shards_[0];
  util::ReaderLock lock(shard.mutex);
  return shard.indexes.count(field) > 0;
}

std::vector<DocId> Collection::find_eq(const std::string& field,
                                       const Value& value) const {
  std::vector<DocId> out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    auto idx = shard.indexes.find(field);
    if (idx != shard.indexes.end()) {
      auto it = idx->second.find(value);
      if (it != idx->second.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    } else {
      for (const auto& [id, stored] : shard.docs) {
        if (stored.doc.contains(field) && stored.doc.at(field) == value) {
          out.push_back(id);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

std::vector<DocId> Collection::find_range(const std::string& field,
                                          const Value& lo,
                                          const Value& hi) const {
  std::vector<DocId> out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    auto idx = shard.indexes.find(field);
    if (idx != shard.indexes.end()) {
      for (auto it = idx->second.lower_bound(lo);
           it != idx->second.end() && it->first < hi; ++it) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    } else {
      for (const auto& [id, stored] : shard.docs) {
        if (!stored.doc.contains(field)) continue;
        const Value& v = stored.doc.at(field);
        if (!(v < lo) && v < hi) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

void Collection::scan(
    const std::function<void(DocId, const Value&)>& fn) const {
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    for (const auto& [id, stored] : shard.docs) fn(id, stored.doc);
  }
}

std::vector<DocId> Collection::all_ids() const {
  std::vector<std::vector<DocId>> per_shard(shards_.size());
  // size() is a cheap pre-pass (one uncontended shared lock per shard) and
  // sizes the fan-out decision plus the merge reservation.
  const std::size_t total = size();
  for_each_shard(total, [&](std::size_t s) {
    const Shard& shard = *shards_[s];
    util::ReaderLock lock(shard.mutex);
    per_shard[s].reserve(shard.docs.size());
    for (const auto& [id, _] : shard.docs) per_shard[s].push_back(id);
  });
  std::vector<DocId> out;
  out.reserve(total);
  for (auto& ids : per_shard) {
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

std::size_t Collection::size() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    total += shard.docs.size();
  }
  return total;
}

std::size_t Collection::approx_bytes() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    total += shard.payload_bytes;
  }
  return total;
}

std::vector<std::string> Collection::index_fields() const {
  const Shard& shard = *shards_[0];
  util::ReaderLock lock(shard.mutex);
  std::vector<std::string> fields;
  fields.reserve(shard.indexes.size());
  for (const auto& [field, _] : shard.indexes) fields.push_back(field);
  std::sort(fields.begin(), fields.end());
  return fields;
}

DocId Collection::next_id() const {
  return next_id_.load(std::memory_order_relaxed);
}

void Collection::restore(DocId next_id,
                         std::vector<std::pair<DocId, Value>> documents) {
  FAIRDMS_CHECK(size() == 0, "restore into non-empty collection '", name_,
                "'");
  next_id_.store(next_id, std::memory_order_relaxed);
  for (auto& [id, doc] : documents) {
    FAIRDMS_CHECK(doc.is_object(), "restore: document must be an object");
    FAIRDMS_CHECK(id < next_id, "restore: id ", id, " >= next_id ", next_id);
    const std::size_t bytes = doc_bytes(doc);
    Shard& shard = shard_of(id);
    util::MutexLock lock(shard.mutex);
    shard.payload_bytes += bytes;
    index_insert_locked(shard, id, doc);
    shard.docs.emplace(id, StoredDoc{std::move(doc), bytes});
  }
}

void Collection::index_insert_locked(Shard& shard, DocId id,
                                     const Value& doc) {
  for (auto& [field, index] : shard.indexes) {
    if (doc.contains(field)) index[doc.at(field)].push_back(id);
  }
}

void Collection::index_remove_locked(Shard& shard, DocId id,
                                     const Value& doc) {
  for (auto& [field, index] : shard.indexes) {
    if (!doc.contains(field)) continue;
    auto it = index.find(doc.at(field));
    if (it == index.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) index.erase(it);
  }
}

Collection& DocStore::collection(const std::string& name,
                                 std::size_t shards) {
  const std::size_t want = shards == 0 ? default_shards_ : shards;
  {
    util::ReaderLock lock(mutex_);
    auto it = collections_.find(name);
    if (it != collections_.end()) {
      if (shards != 0 && it->second->shard_count() != want) {
        util::log_info("collection '", name, "' already exists with ",
                       it->second->shard_count(), " shard(s); requested ",
                       want, " ignored (live resharding unsupported)");
      }
      return *it->second;
    }
  }
  util::MutexLock lock(mutex_);
  auto& slot = collections_[name];
  if (!slot) {
    slot = std::make_unique<Collection>(name, is_remote() ? &link_ : nullptr,
                                        want);
  }
  return *slot;
}

bool DocStore::has_collection(const std::string& name) const {
  util::ReaderLock lock(mutex_);
  return collections_.count(name) > 0;
}

std::vector<std::string> DocStore::collection_names() const {
  util::ReaderLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace fairdms::store
