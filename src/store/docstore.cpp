#include "store/docstore.hpp"

#include <algorithm>
#include <mutex>

#include "util/check.hpp"

namespace fairdms::store {

std::size_t Collection::doc_bytes(const Value& doc) {
  return doc.encoded_size();
}

DocId Collection::insert_one(Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "insert_one: document must be an object");
  std::unique_lock lock(mutex_);
  const DocId id = next_id_++;
  doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
  const std::size_t bytes = doc_bytes(doc);
  payload_bytes_ += bytes;
  index_insert_locked(id, doc);
  docs_.emplace(id, StoredDoc{std::move(doc), bytes});
  lock.unlock();
  charge(bytes + 64);  // request envelope
  return id;
}

std::vector<DocId> Collection::insert_many(std::vector<Value> docs) {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  std::size_t total_bytes = 0;
  {
    std::unique_lock lock(mutex_);
    for (Value& doc : docs) {
      FAIRDMS_CHECK(doc.is_object(), "insert_many: document must be object");
      const DocId id = next_id_++;
      doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
      const std::size_t bytes = doc_bytes(doc);
      total_bytes += bytes;
      index_insert_locked(id, doc);
      docs_.emplace(id, StoredDoc{std::move(doc), bytes});
      ids.push_back(id);
    }
    payload_bytes_ += total_bytes;
  }
  charge(total_bytes + 64);  // one batched round trip
  return ids;
}

std::optional<Value> Collection::find_by_id(DocId id) const {
  std::optional<Value> out;
  std::size_t bytes = 64;
  {
    std::shared_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      out = it->second.doc;
      bytes += it->second.bytes;
    }
  }
  charge(bytes);
  return out;
}

std::vector<std::optional<Value>> Collection::find_many(
    std::span<const DocId> ids, std::span<const std::string> fields) const {
  std::vector<std::optional<Value>> out(ids.size());
  std::size_t bytes = 64;
  {
    std::shared_lock lock(mutex_);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      auto it = docs_.find(ids[i]);
      if (it == docs_.end()) continue;
      if (fields.empty()) {
        out[i] = it->second.doc;
        bytes += it->second.bytes;
        continue;
      }
      Object projected;
      const Object& src = it->second.doc.as_object();
      for (const std::string& field : fields) {
        auto fit = src.find(field);
        if (fit == src.end()) continue;
        bytes += 8 + field.size() + fit->second.encoded_size();
        projected.emplace(field, fit->second);
      }
      out[i] = Value(std::move(projected));
    }
  }
  charge(bytes);  // one batched round trip for the whole id list
  return out;
}

bool Collection::replace_one(DocId id, Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "replace_one: document must be an object");
  std::size_t bytes = 64;
  bool found = false;
  {
    std::unique_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      index_remove_locked(id, it->second.doc);
      payload_bytes_ -= it->second.bytes;
      doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
      const std::size_t new_bytes = doc_bytes(doc);
      bytes += new_bytes;
      payload_bytes_ += new_bytes;
      index_insert_locked(id, doc);
      it->second = StoredDoc{std::move(doc), new_bytes};
      found = true;
    }
  }
  charge(bytes);
  return found;
}

std::size_t Collection::update_fields_locked(DocId id, Object&& fields,
                                             bool& found) {
  std::size_t value_bytes = 0;
  for (const auto& [field, value] : fields) {
    value_bytes += 8 + field.size() + value.encoded_size();
  }
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    found = false;
    return value_bytes;
  }
  index_remove_locked(id, it->second.doc);
  Object& obj = it->second.doc.as_object();
  for (auto& [field, value] : fields) {
    obj[field] = std::move(value);
  }
  const std::size_t new_bytes = doc_bytes(it->second.doc);
  payload_bytes_ += new_bytes;
  payload_bytes_ -= it->second.bytes;
  it->second.bytes = new_bytes;
  index_insert_locked(id, it->second.doc);
  found = true;
  return value_bytes;
}

bool Collection::update_field(DocId id, const std::string& field,
                              Value value) {
  Object fields;
  fields.emplace(field, std::move(value));
  return update_fields(id, std::move(fields));
}

bool Collection::update_fields(DocId id, Object fields) {
  bool found = false;
  std::size_t value_bytes = 0;
  {
    std::unique_lock lock(mutex_);
    value_bytes = update_fields_locked(id, std::move(fields), found);
  }
  charge(64 + value_bytes);
  return found;
}

std::size_t Collection::update_many(
    std::vector<std::pair<DocId, Object>> updates) {
  std::size_t updated = 0;
  std::size_t value_bytes = 0;
  {
    std::unique_lock lock(mutex_);
    for (auto& [id, fields] : updates) {
      bool found = false;
      value_bytes += update_fields_locked(id, std::move(fields), found);
      if (found) ++updated;
    }
  }
  charge(64 + value_bytes);  // one batched round trip
  return updated;
}

bool Collection::remove_one(DocId id) {
  bool found = false;
  {
    std::unique_lock lock(mutex_);
    auto it = docs_.find(id);
    if (it != docs_.end()) {
      index_remove_locked(id, it->second.doc);
      payload_bytes_ -= it->second.bytes;
      docs_.erase(it);
      found = true;
    }
  }
  charge(64);
  return found;
}

void Collection::create_index(const std::string& field) {
  std::unique_lock lock(mutex_);
  if (indexes_.count(field) > 0) return;
  auto& index = indexes_[field];
  for (const auto& [id, stored] : docs_) {
    if (stored.doc.contains(field)) index[stored.doc.at(field)].push_back(id);
  }
}

bool Collection::has_index(const std::string& field) const {
  std::shared_lock lock(mutex_);
  return indexes_.count(field) > 0;
}

std::vector<DocId> Collection::find_eq(const std::string& field,
                                       const Value& value) const {
  std::vector<DocId> out;
  {
    std::shared_lock lock(mutex_);
    auto idx = indexes_.find(field);
    if (idx != indexes_.end()) {
      auto it = idx->second.find(value);
      if (it != idx->second.end()) out = it->second;
    } else {
      for (const auto& [id, stored] : docs_) {
        if (stored.doc.contains(field) && stored.doc.at(field) == value) {
          out.push_back(id);
        }
      }
      std::sort(out.begin(), out.end());
    }
  }
  charge(64 + out.size() * 8);
  return out;
}

std::vector<DocId> Collection::find_range(const std::string& field,
                                          const Value& lo,
                                          const Value& hi) const {
  std::vector<DocId> out;
  {
    std::shared_lock lock(mutex_);
    auto idx = indexes_.find(field);
    if (idx != indexes_.end()) {
      for (auto it = idx->second.lower_bound(lo);
           it != idx->second.end() && it->first < hi; ++it) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    } else {
      for (const auto& [id, stored] : docs_) {
        if (!stored.doc.contains(field)) continue;
        const Value& v = stored.doc.at(field);
        if (!(v < lo) && v < hi) out.push_back(id);
      }
      std::sort(out.begin(), out.end());
    }
  }
  charge(64 + out.size() * 8);
  return out;
}

void Collection::scan(
    const std::function<void(DocId, const Value&)>& fn) const {
  std::shared_lock lock(mutex_);
  for (const auto& [id, stored] : docs_) fn(id, stored.doc);
}

std::vector<DocId> Collection::all_ids() const {
  std::vector<DocId> out;
  {
    std::shared_lock lock(mutex_);
    out.reserve(docs_.size());
    for (const auto& [id, _] : docs_) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

std::size_t Collection::size() const {
  std::shared_lock lock(mutex_);
  return docs_.size();
}

std::size_t Collection::approx_bytes() const {
  std::shared_lock lock(mutex_);
  return payload_bytes_;
}

std::vector<std::string> Collection::index_fields() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> fields;
  fields.reserve(indexes_.size());
  for (const auto& [field, _] : indexes_) fields.push_back(field);
  std::sort(fields.begin(), fields.end());
  return fields;
}

DocId Collection::next_id() const {
  std::shared_lock lock(mutex_);
  return next_id_;
}

void Collection::restore(DocId next_id,
                         std::vector<std::pair<DocId, Value>> documents) {
  std::unique_lock lock(mutex_);
  FAIRDMS_CHECK(docs_.empty(), "restore into non-empty collection '", name_,
                "'");
  next_id_ = next_id;
  for (auto& [id, doc] : documents) {
    FAIRDMS_CHECK(doc.is_object(), "restore: document must be an object");
    FAIRDMS_CHECK(id < next_id, "restore: id ", id, " >= next_id ", next_id);
    const std::size_t bytes = doc_bytes(doc);
    payload_bytes_ += bytes;
    index_insert_locked(id, doc);
    docs_.emplace(id, StoredDoc{std::move(doc), bytes});
  }
}

void Collection::index_insert_locked(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    if (doc.contains(field)) index[doc.at(field)].push_back(id);
  }
}

void Collection::index_remove_locked(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    if (!doc.contains(field)) continue;
    auto it = index.find(doc.at(field));
    if (it == index.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) index.erase(it);
  }
}

Collection& DocStore::collection(const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    auto it = collections_.find(name);
    if (it != collections_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = collections_[name];
  if (!slot) {
    slot = std::make_unique<Collection>(name,
                                        is_remote() ? &link_ : nullptr);
  }
  return *slot;
}

bool DocStore::has_collection(const std::string& name) const {
  std::shared_lock lock(mutex_);
  return collections_.count(name) > 0;
}

std::vector<std::string> DocStore::collection_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace fairdms::store
