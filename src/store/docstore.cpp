#include "store/docstore.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::store {

namespace {

/// Batched operations fan out per-shard on the global thread pool only
/// above this many work items; below it, serial dispatch beats the queue
/// round trip.
constexpr std::size_t kShardFanoutMinItems = 512;

/// Wire bytes of an update's field set: 8 + name + encoded value per field.
/// Computed by the collection (not the engine) so the charge is identical
/// whether or not the document exists — the values travel either way.
std::size_t fields_value_bytes(const Object& fields) {
  std::size_t value_bytes = 0;
  for (const auto& [field, value] : fields) {
    value_bytes += 8 + field.size() + value.encoded_size();
  }
  return value_bytes;
}

}  // namespace

Collection::Collection(std::string name, const RemoteLink* link,
                       std::size_t shards, const StorageEngineConfig& engine)
    : name_(std::move(name)), link_(link), engine_kind_(engine.kind) {
  FAIRDMS_CHECK(shards >= 1, "collection '", name_,
                "': shard count must be >= 1, got ", shards);
  auto engines = make_shard_engines(engine, name_, shards);
  shards_.reserve(shards);
  DocId max_recovered = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    util::MutexLock lock(shard.mutex);
    shard.engine = std::move(engines[s]);
    // A durable engine may come up populated (segment replay); resume id
    // allocation past everything it recovered.
    max_recovered = std::max(max_recovered, shard.engine->max_id());
  }
  if (max_recovered != 0) {
    next_id_.store(max_recovered + 1, std::memory_order_relaxed);
  }
  if ((shards & (shards - 1)) == 0) shard_mask_ = shards - 1;
}

std::size_t Collection::doc_bytes(const Value& doc) {
  return doc.encoded_size();
}

void Collection::for_each_shard(
    std::size_t items, const std::function<void(std::size_t)>& body) const {
  const std::size_t n = shards_.size();
  if (n > 1 && items >= kShardFanoutMinItems) {
    util::ThreadPool::global().parallel_for(
        n, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) body(s);
        });
    return;
  }
  for (std::size_t s = 0; s < n; ++s) body(s);
}

DocId Collection::insert_one(Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "insert_one: document must be an object");
  const DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
  const std::size_t bytes = doc_bytes(doc);
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    shard.engine->insert(id, std::move(doc), bytes);
  }
  charge(bytes + 64);  // request envelope
  return id;
}

std::vector<DocId> Collection::insert_many(std::vector<Value> docs) {
  const std::size_t n = docs.size();
  // One contiguous id block, so batch ids are deterministic regardless of
  // which shard commits first.
  const DocId first = next_id_.fetch_add(n, std::memory_order_relaxed);
  std::vector<DocId> ids;
  ids.reserve(n);
  std::vector<std::size_t> sizes(n);
  std::vector<std::vector<std::size_t>> per_shard(shards_.size());
  std::size_t total_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    FAIRDMS_CHECK(docs[i].is_object(),
                  "insert_many: document must be object");
    const DocId id = first + i;
    docs[i].as_object()["_id"] = Value(static_cast<std::int64_t>(id));
    sizes[i] = doc_bytes(docs[i]);
    total_bytes += sizes[i];
    per_shard[shard_index(id)].push_back(i);
    ids.push_back(id);
  }
  for_each_shard(n, [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mutex);
    for (const std::size_t i : per_shard[s]) {
      shard.engine->insert(ids[i], std::move(docs[i]), sizes[i]);
    }
  });
  charge(total_bytes + 64);  // one batched round trip
  return ids;
}

std::optional<Value> Collection::find_by_id(DocId id) const {
  std::optional<Value> out;
  std::size_t bytes = 64;
  Shard& shard = shard_of(id);
  {
    util::ReaderLock lock(shard.mutex);
    out = shard.engine->fetch(id, {}, bytes);
  }
  charge(bytes);
  return out;
}

std::vector<std::optional<Value>> Collection::find_many(
    std::span<const DocId> ids, std::span<const std::string> fields) const {
  std::vector<std::optional<Value>> out(ids.size());
  std::vector<std::vector<std::size_t>> per_shard(shards_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    per_shard[shard_index(ids[i])].push_back(i);
  }
  std::vector<std::size_t> shard_bytes(shards_.size(), 0);
  for_each_shard(ids.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Shard& shard = *shards_[s];
    std::size_t bytes = 0;
    util::ReaderLock lock(shard.mutex);
    for (const std::size_t i : per_shard[s]) {
      out[i] = shard.engine->fetch(ids[i], fields, bytes);
    }
    shard_bytes[s] = bytes;
  });
  std::size_t bytes = 64;
  for (const std::size_t b : shard_bytes) bytes += b;
  charge(bytes);  // one batched round trip for the whole id list
  return out;
}

bool Collection::replace_one(DocId id, Value doc) {
  FAIRDMS_CHECK(doc.is_object(), "replace_one: document must be an object");
  doc.as_object()["_id"] = Value(static_cast<std::int64_t>(id));
  std::size_t bytes = 64;
  bool found = false;
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    std::size_t stored_bytes = 0;
    found = shard.engine->replace(id, std::move(doc), stored_bytes);
    if (found) bytes += stored_bytes;
  }
  charge(bytes);
  return found;
}

bool Collection::update_field(DocId id, const std::string& field,
                              Value value) {
  Object fields;
  fields.emplace(field, std::move(value));
  return update_fields(id, std::move(fields));
}

bool Collection::update_fields(DocId id, Object fields) {
  const std::size_t value_bytes = fields_value_bytes(fields);
  bool found = false;
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    found = shard.engine->update(id, std::move(fields));
  }
  charge(64 + value_bytes);
  return found;
}

std::size_t Collection::update_many(
    std::vector<std::pair<DocId, Object>> updates) {
  std::vector<std::vector<std::size_t>> per_shard(shards_.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    // Grouping preserves list order within a shard, so repeated updates to
    // one id apply in submission order.
    per_shard[shard_index(updates[i].first)].push_back(i);
  }
  std::vector<std::size_t> shard_updated(shards_.size(), 0);
  std::vector<std::size_t> shard_bytes(shards_.size(), 0);
  for_each_shard(updates.size(), [&](std::size_t s) {
    if (per_shard[s].empty()) return;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mutex);
    for (const std::size_t i : per_shard[s]) {
      shard_bytes[s] += fields_value_bytes(updates[i].second);
      if (shard.engine->update(updates[i].first,
                               std::move(updates[i].second))) {
        ++shard_updated[s];
      }
    }
  });
  std::size_t updated = 0;
  std::size_t value_bytes = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    updated += shard_updated[s];
    value_bytes += shard_bytes[s];
  }
  charge(64 + value_bytes);  // one batched round trip
  return updated;
}

bool Collection::remove_one(DocId id) {
  bool found = false;
  Shard& shard = shard_of(id);
  {
    util::MutexLock lock(shard.mutex);
    found = shard.engine->erase(id);
  }
  charge(64);
  return found;
}

void Collection::create_index(const std::string& field) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mutex);
    shard.engine->create_index(field);
  }
}

bool Collection::has_index(const std::string& field) const {
  // create_index installs the field on every shard before returning, so
  // shard 0 is authoritative.
  const Shard& shard = *shards_[0];
  util::ReaderLock lock(shard.mutex);
  return shard.engine->has_index(field);
}

std::vector<DocId> Collection::find_eq(const std::string& field,
                                       const Value& value) const {
  std::vector<DocId> out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    shard.engine->find_eq(field, value, out);
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

std::vector<DocId> Collection::find_range(const std::string& field,
                                          const Value& lo,
                                          const Value& hi) const {
  std::vector<DocId> out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    shard.engine->find_range(field, lo, hi, out);
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

void Collection::scan(
    const std::function<void(DocId, const Value&)>& fn) const {
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    shard.engine->scan(fn);
  }
}

std::vector<DocId> Collection::all_ids() const {
  std::vector<std::vector<DocId>> per_shard(shards_.size());
  // size() is a cheap pre-pass (one uncontended shared lock per shard) and
  // sizes the fan-out decision plus the merge reservation.
  const std::size_t total = size();
  for_each_shard(total, [&](std::size_t s) {
    const Shard& shard = *shards_[s];
    util::ReaderLock lock(shard.mutex);
    shard.engine->append_ids(per_shard[s]);
  });
  std::vector<DocId> out;
  out.reserve(total);
  for (auto& ids : per_shard) {
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  charge(64 + out.size() * 8);
  return out;
}

std::size_t Collection::size() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    total += shard.engine->size();
  }
  return total;
}

std::size_t Collection::approx_bytes() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    util::ReaderLock lock(shard.mutex);
    total += shard.engine->payload_bytes();
  }
  return total;
}

void Collection::compact() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mutex);
    shard.engine->compact();
  }
}

std::vector<std::string> Collection::index_fields() const {
  const Shard& shard = *shards_[0];
  util::ReaderLock lock(shard.mutex);
  return shard.engine->index_fields();
}

DocId Collection::next_id() const {
  return next_id_.load(std::memory_order_relaxed);
}

void Collection::restore(DocId next_id,
                         std::vector<std::pair<DocId, Value>> documents) {
  FAIRDMS_CHECK(size() == 0, "restore into non-empty collection '", name_,
                "'");
  next_id_.store(next_id, std::memory_order_relaxed);
  for (auto& [id, doc] : documents) {
    FAIRDMS_CHECK(doc.is_object(), "restore: document must be an object");
    FAIRDMS_CHECK(id < next_id, "restore: id ", id, " >= next_id ", next_id);
    const std::size_t bytes = doc_bytes(doc);
    Shard& shard = shard_of(id);
    util::MutexLock lock(shard.mutex);
    shard.engine->insert(id, std::move(doc), bytes);
  }
}

Collection& DocStore::collection(const std::string& name, std::size_t shards,
                                 const StorageEngineConfig* engine) {
  const std::size_t want = shards == 0 ? default_shards_ : shards;
  StorageEngineConfig want_engine =
      engine != nullptr ? *engine : engine_config_;
  if (engine == nullptr && want_engine.kind == EngineKind::kLog) {
    // The store-level directory is a root shared by every collection.
    want_engine.directory += "/" + name;
  }
  {
    util::ReaderLock lock(mutex_);
    auto it = collections_.find(name);
    if (it != collections_.end()) {
      if (shards != 0 && it->second->shard_count() != want) {
        util::log_info("collection '", name, "' already exists with ",
                       it->second->shard_count(), " shard(s); requested ",
                       want, " ignored (live resharding unsupported)");
      }
      if (engine != nullptr && it->second->engine_kind() != engine->kind) {
        util::log_info("collection '", name, "' already exists with the '",
                       it->second->engine_name(), "' engine; requested '",
                       to_string(engine->kind),
                       "' ignored (live engine swaps unsupported)");
      }
      return *it->second;
    }
  }
  util::MutexLock lock(mutex_);
  auto& slot = collections_[name];
  if (!slot) {
    slot = std::make_unique<Collection>(name, is_remote() ? &link_ : nullptr,
                                        want, want_engine);
  }
  return *slot;
}

bool DocStore::has_collection(const std::string& name) const {
  util::ReaderLock lock(mutex_);
  return collections_.count(name) > 0;
}

std::vector<std::string> DocStore::collection_names() const {
  util::ReaderLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace fairdms::store
