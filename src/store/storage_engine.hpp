// Pluggable storage engines behind store::Collection.
//
// MongoDB's architecture separates the document/query surface from the
// storage engine underneath it (MMAPv1 -> WiredTiger swapped without the
// query layer noticing); this seam is the same cut for the fairDS store.
// A Collection keeps owning identity (name, id allocation), sharding,
// locking, and RemoteLink charge accounting; everything below — the
// document map, the secondary indexes, and the resident-payload byte
// accounting — lives behind StorageEngine, one engine instance per shard.
//
// Contract: every method is invoked with the owning shard's lock held —
// exclusively for mutations, shared for const reads — so engines are
// written single-threaded and inherit the collection's locking discipline
// (including the PR-7 thread-safety annotations and the TSan suites)
// unchanged. Charge arithmetic stays in Collection; engines only report
// the stored-payload bytes a given read or write touches, so RemoteLink
// accounting is engine-independent by construction.
//
// Engines:
//  * MemEngine — the seed's in-memory guts, byte-for-byte: unordered doc
//    map + cached encoded sizes + in-memory ordered secondary indexes.
//  * LogEngine (log_engine.hpp) — a memory-mapped append-only log with an
//    in-memory id->offset index, tombstones, and explicit compaction; the
//    first durable engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/document.hpp"

namespace fairdms::store {

using DocId = std::uint64_t;

enum class EngineKind : std::uint8_t {
  kMem,  ///< in-memory (the seed behavior; nothing survives the process)
  kLog,  ///< memory-mapped append-only log (durable, crash-recovering)
};

[[nodiscard]] const char* to_string(EngineKind kind);
/// "mem" | "log" -> kind; nullopt on anything else.
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(
    std::string_view name);

/// Engine selection + engine-specific knobs, plumbed from DocStoreConfig /
/// FairDSConfig down to the per-shard engine instances.
struct StorageEngineConfig {
  EngineKind kind = EngineKind::kMem;
  /// kLog: the collection's data directory (created if missing), holding
  /// `engine.meta` plus one `shard-<k>.log` segment per shard. When the
  /// config enters through DocStoreConfig the directory is the *store*
  /// root and the collection name is appended automatically.
  std::string directory;
  /// kLog: fdatasync every committed append. kill -9 safety never needs
  /// this (the kernel keeps completed writes); power-loss durability does.
  bool fsync_appends = false;
};

/// Secondary-index machinery shared by engines: field -> (value -> ids,
/// ordered by value for range scans). Id vectors are in maintenance order;
/// Collection sorts merged results, so order here is not part of the
/// contract.
class SecondaryIndexes {
 public:
  /// Returns false when the index already existed (creation is a no-op).
  bool create(const std::string& field) {
    return indexes_.try_emplace(field).second;
  }
  [[nodiscard]] bool contains(const std::string& field) const {
    return indexes_.count(field) > 0;
  }
  [[nodiscard]] std::vector<std::string> fields() const;

  void insert(DocId id, const Value& doc);
  void remove(DocId id, const Value& doc);
  /// Indexes one existing document into `field` only (index-creation
  /// backfill; insert() would also touch every other index).
  void insert_into(const std::string& field, DocId id, const Value& doc);

  /// Appends matching ids to `out`; false when `field` has no index (the
  /// engine must fall back to a scan).
  bool find_eq(const std::string& field, const Value& value,
               std::vector<DocId>& out) const;
  bool find_range(const std::string& field, const Value& lo, const Value& hi,
                  std::vector<DocId>& out) const;

 private:
  std::unordered_map<std::string, std::map<Value, std::vector<DocId>>>
      indexes_;
};

/// Projects `fields` out of `doc` (documents missing a projected field
/// simply omit it), accumulating the charged bytes exactly like the seed's
/// find_many: 8 + field-name bytes + encoded value bytes per present field.
[[nodiscard]] Value project_fields(const Value& doc,
                                   std::span<const std::string> fields,
                                   std::size_t& charged_bytes);

/// One shard's storage. All methods are called under the owning shard's
/// lock (exclusive for mutations, shared for const reads) — see file
/// comment for the full contract.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Stores a new document under `id` (`_id` already stamped by the
  /// caller); `bytes` is its encoded size, which the engine must report
  /// back from payload_bytes()/fetch() accounting. `id` must not be live.
  virtual void insert(DocId id, Value doc, std::size_t bytes) = 0;

  /// Fetches document `id`: the full document when `fields` is empty
  /// (charging its stored encoded size), otherwise the projection
  /// (charging per present field). nullopt when absent (nothing charged).
  [[nodiscard]] virtual std::optional<Value> fetch(
      DocId id, std::span<const std::string> fields,
      std::size_t& charged_bytes) const = 0;

  /// Replaces document `id`; `stored_bytes` gets the new encoded size when
  /// found (the caller charges it). False + untouched when absent.
  virtual bool replace(DocId id, Value doc, std::size_t& stored_bytes) = 0;

  /// Applies `fields` to document `id` atomically (indexes, cached sizes,
  /// and payload accounting maintained). False when absent.
  virtual bool update(DocId id, Object fields) = 0;

  /// Removes document `id`; false when absent.
  virtual bool erase(DocId id) = 0;

  virtual void create_index(const std::string& field) = 0;
  [[nodiscard]] virtual bool has_index(const std::string& field) const = 0;
  [[nodiscard]] virtual std::vector<std::string> index_fields() const = 0;
  /// Appends ids with doc.field == value (index lookup or scan fallback).
  virtual void find_eq(const std::string& field, const Value& value,
                       std::vector<DocId>& out) const = 0;
  /// Appends ids with lo <= doc.field < hi.
  virtual void find_range(const std::string& field, const Value& lo,
                          const Value& hi, std::vector<DocId>& out) const = 0;

  /// Applies fn to every live (id, doc); iteration order is unspecified.
  virtual void scan(
      const std::function<void(DocId, const Value&)>& fn) const = 0;
  /// Appends every live id (order unspecified; Collection sorts).
  virtual void append_ids(std::vector<DocId>& out) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  /// Resident payload bytes: the sum of live documents' encoded sizes —
  /// identical across engines so approx_bytes() is engine-independent.
  [[nodiscard]] virtual std::size_t payload_bytes() const = 0;
  /// Highest live id (0 when empty) — lets a reopened durable engine
  /// resume the collection's id counter past everything it recovered.
  [[nodiscard]] virtual DocId max_id() const = 0;

  /// Reclaims space held by superseded/tombstoned records (durable
  /// engines); a no-op for purely in-memory storage.
  virtual void compact() {}
};

/// The seed's in-memory per-shard store behind the engine seam: document
/// map with cached encoded sizes, in-memory secondary indexes, payload
/// byte accounting. Byte-for-byte the pre-seam behavior.
class MemEngine final : public StorageEngine {
 public:
  [[nodiscard]] const char* name() const override { return "mem"; }

  void insert(DocId id, Value doc, std::size_t bytes) override;
  [[nodiscard]] std::optional<Value> fetch(
      DocId id, std::span<const std::string> fields,
      std::size_t& charged_bytes) const override;
  bool replace(DocId id, Value doc, std::size_t& stored_bytes) override;
  bool update(DocId id, Object fields) override;
  bool erase(DocId id) override;

  void create_index(const std::string& field) override;
  [[nodiscard]] bool has_index(const std::string& field) const override;
  [[nodiscard]] std::vector<std::string> index_fields() const override;
  void find_eq(const std::string& field, const Value& value,
               std::vector<DocId>& out) const override;
  void find_range(const std::string& field, const Value& lo, const Value& hi,
                  std::vector<DocId>& out) const override;

  void scan(
      const std::function<void(DocId, const Value&)>& fn) const override;
  void append_ids(std::vector<DocId>& out) const override;
  [[nodiscard]] std::size_t size() const override { return docs_.size(); }
  [[nodiscard]] std::size_t payload_bytes() const override {
    return payload_bytes_;
  }
  [[nodiscard]] DocId max_id() const override;

 private:
  /// A stored document plus its cached encoded size, so every read charges
  /// real bytes without re-serializing the (often multi-KB) payload.
  struct StoredDoc {
    Value doc;
    std::size_t bytes = 0;
  };

  std::unordered_map<DocId, StoredDoc> docs_;
  std::size_t payload_bytes_ = 0;
  SecondaryIndexes indexes_;
};

/// Builds the per-shard engines for one collection. For kLog this creates
/// (or validates) the collection directory — `engine.meta` pins the shard
/// count a log directory was written with, so a reopen with a different
/// count fails loudly instead of silently mis-routing ids — and replays
/// each shard's segment. `config.directory` is used as the collection
/// directory verbatim.
std::vector<std::unique_ptr<StorageEngine>> make_shard_engines(
    const StorageEngineConfig& config, const std::string& collection_name,
    std::size_t shards);

}  // namespace fairdms::store
