// Array serialization codecs.
//
// The paper stores training samples in MongoDB serialized with either Pickle
// (Python's generic object serializer — cheap to write, expensive to parse)
// or Blosc (a shuffling, block-compressing codec — smaller payloads, cheap
// SIMD-friendly decode). Figs. 6–8 hinge on the *relative* costs:
//   raw file bytes (NFS)  <  Blosc decode  <  Pickle decode
// and on Blosc producing the smallest payloads on smooth scientific images.
//
// We reproduce those cost/size shapes with honest implementations:
//  * PickleCodec writes a per-element tagged stream that the decoder must
//    parse element by element (mirroring pickle's opcode interpreter).
//  * BloscCodec byte-shuffles the float array (grouping all byte-0s, then
//    byte-1s, ...) and run-length-encodes the shuffled stream; smooth images
//    have near-constant high bytes, which RLE collapses.
//  * RawCodec memcpys (the NFS/H5 direct-read path).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fairdms::store {

class Codec {
 public:
  virtual ~Codec() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> encode(
      std::span<const float> values) const = 0;
  /// Decodes into `out` (resized as needed). Aborts on malformed input.
  virtual void decode(std::span<const std::uint8_t> bytes,
                      std::vector<float>& out) const = 0;
};

/// memcpy pass-through: header + raw IEEE754 bytes.
class RawCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "raw"; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const float> values) const override;
  void decode(std::span<const std::uint8_t> bytes,
              std::vector<float>& out) const override;
};

/// Tagged per-element stream with an interpreted decoder (pickle analog).
class PickleCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "pickle"; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const float> values) const override;
  void decode(std::span<const std::uint8_t> bytes,
              std::vector<float>& out) const override;
};

/// Byte-shuffle + run-length compression (Blosc analog).
class BloscCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "blosc"; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const float> values) const override;
  void decode(std::span<const std::uint8_t> bytes,
              std::vector<float>& out) const override;
};

/// Factory by name ("raw" | "pickle" | "blosc").
std::unique_ptr<Codec> make_codec(const std::string& name);

}  // namespace fairdms::store
