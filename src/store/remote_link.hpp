// Network model for remotely hosted storage.
//
// The paper hosts both MongoDB and NFS on a separate node behind a 100 GbE
// NIC; what matters for Figs. 6–8 is the per-request round trip (latency) and
// the payload transfer time (bandwidth). RemoteLink charges both with real
// sleeps so that DataLoader measurements include them exactly like a real
// remote fetch would. latency = 0 disables the model (local store).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fairdms::store {

struct RemoteLinkConfig {
  double latency_seconds = 120e-6;      ///< per-request round trip (RPC+TCP)
  double bandwidth_bytes_per_s = 6e9;   ///< ~50 Gb/s effective of 100 GbE
};

class RemoteLink {
 public:
  RemoteLink() = default;
  explicit RemoteLink(RemoteLinkConfig config) : config_(config) {}

  /// Blocks for the simulated wire time of a `bytes`-sized request.
  void charge(std::size_t bytes) const;

  [[nodiscard]] const RemoteLinkConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_moved() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  RemoteLinkConfig config_;
  mutable std::atomic<std::uint64_t> requests_{0};
  mutable std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace fairdms::store
