// BSON-lite document values for the MongoDB-analog store.
//
// A Value is null / bool / int64 / double / string / binary / array / object.
// Objects are the unit of storage ("documents"); the store indexes on scalar
// fields. Values serialize to a compact tagged binary form and render as JSON
// text for debugging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace fairdms::store {

class Value;

using Binary = std::vector<std::uint8_t>;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::size_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Binary b) : data_(std::move(b)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(data_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_binary() const {
    return std::holds_alternative<Binary>(data_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(data_);
  }

  // Checked accessors (abort on type mismatch).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Binary& as_binary() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object field lookup; aborts if not an object or key missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Total ordering across scalar values of the same type (used by ordered
  /// indexes); heterogenous comparisons order by type tag.
  [[nodiscard]] int compare(const Value& other) const;
  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }

  /// Compact tagged binary serialization.
  void encode(Binary& out) const;
  /// Exact byte count encode() would produce, without materializing the
  /// buffer. O(1) per scalar/string/binary node — the store uses this to
  /// account payload sizes on every read/write without re-serializing
  /// multi-kilobyte documents.
  [[nodiscard]] std::size_t encoded_size() const;
  static Value decode(const Binary& in, std::size_t& pos);
  static Value decode(const Binary& in);
  /// Failure-returning decode for *untrusted* bytes (corrupt snapshots,
  /// torn log records): nullopt instead of aborting on truncation, unknown
  /// tags, trailing bytes, lengths exceeding the buffer, or nesting deeper
  /// than a sanity limit. Never allocates more than the input size.
  [[nodiscard]] static std::optional<Value> try_decode(const Binary& in);

  /// JSON text (binary rendered as "<N bytes>").
  [[nodiscard]] std::string to_json() const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Binary, Array, Object>
      data_;
};

}  // namespace fairdms::store
