#include "store/storage_engine.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "store/log_engine.hpp"
#include "util/check.hpp"
#include "util/fsio.hpp"

namespace fairdms::store {

namespace {

// engine.meta: pins the shard count of a log-engine collection directory.
constexpr std::uint32_t kMetaMagic = 0x464D4554;  // "FMET"
constexpr std::uint32_t kMetaVersion = 1;

void put_u32(Binary& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_u64(Binary& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
std::uint64_t read_le(const std::uint8_t* p, int n) {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMem:
      return "mem";
    case EngineKind::kLog:
      return "log";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) {
  if (name == "mem") return EngineKind::kMem;
  if (name == "log") return EngineKind::kLog;
  return std::nullopt;
}

// --- SecondaryIndexes -------------------------------------------------------

std::vector<std::string> SecondaryIndexes::fields() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& [field, _] : indexes_) out.push_back(field);
  std::sort(out.begin(), out.end());
  return out;
}

void SecondaryIndexes::insert(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    if (doc.contains(field)) index[doc.at(field)].push_back(id);
  }
}

void SecondaryIndexes::insert_into(const std::string& field, DocId id,
                                   const Value& doc) {
  if (doc.contains(field)) indexes_[field][doc.at(field)].push_back(id);
}

void SecondaryIndexes::remove(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    if (!doc.contains(field)) continue;
    auto it = index.find(doc.at(field));
    if (it == index.end()) continue;
    auto& ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) index.erase(it);
  }
}

bool SecondaryIndexes::find_eq(const std::string& field, const Value& value,
                               std::vector<DocId>& out) const {
  auto idx = indexes_.find(field);
  if (idx == indexes_.end()) return false;
  auto it = idx->second.find(value);
  if (it != idx->second.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return true;
}

bool SecondaryIndexes::find_range(const std::string& field, const Value& lo,
                                  const Value& hi,
                                  std::vector<DocId>& out) const {
  auto idx = indexes_.find(field);
  if (idx == indexes_.end()) return false;
  for (auto it = idx->second.lower_bound(lo);
       it != idx->second.end() && it->first < hi; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return true;
}

Value project_fields(const Value& doc, std::span<const std::string> fields,
                     std::size_t& charged_bytes) {
  Object projected;
  const Object& src = doc.as_object();
  for (const std::string& field : fields) {
    auto fit = src.find(field);
    if (fit == src.end()) continue;
    charged_bytes += 8 + field.size() + fit->second.encoded_size();
    projected.emplace(field, fit->second);
  }
  return Value(std::move(projected));
}

// --- MemEngine --------------------------------------------------------------

void MemEngine::insert(DocId id, Value doc, std::size_t bytes) {
  payload_bytes_ += bytes;
  indexes_.insert(id, doc);
  docs_.emplace(id, StoredDoc{std::move(doc), bytes});
}

std::optional<Value> MemEngine::fetch(DocId id,
                                      std::span<const std::string> fields,
                                      std::size_t& charged_bytes) const {
  auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  if (fields.empty()) {
    charged_bytes += it->second.bytes;
    return it->second.doc;
  }
  return project_fields(it->second.doc, fields, charged_bytes);
}

bool MemEngine::replace(DocId id, Value doc, std::size_t& stored_bytes) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  indexes_.remove(id, it->second.doc);
  payload_bytes_ -= it->second.bytes;
  const std::size_t new_bytes = doc.encoded_size();
  payload_bytes_ += new_bytes;
  indexes_.insert(id, doc);
  it->second = StoredDoc{std::move(doc), new_bytes};
  stored_bytes = new_bytes;
  return true;
}

bool MemEngine::update(DocId id, Object fields) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  indexes_.remove(id, it->second.doc);
  Object& obj = it->second.doc.as_object();
  for (auto& [field, value] : fields) {
    obj[field] = std::move(value);
  }
  const std::size_t new_bytes = it->second.doc.encoded_size();
  payload_bytes_ += new_bytes;
  payload_bytes_ -= it->second.bytes;
  it->second.bytes = new_bytes;
  indexes_.insert(id, it->second.doc);
  return true;
}

bool MemEngine::erase(DocId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  indexes_.remove(id, it->second.doc);
  payload_bytes_ -= it->second.bytes;
  docs_.erase(it);
  return true;
}

void MemEngine::create_index(const std::string& field) {
  if (!indexes_.create(field)) return;
  for (const auto& [id, stored] : docs_) {
    indexes_.insert_into(field, id, stored.doc);
  }
}

bool MemEngine::has_index(const std::string& field) const {
  return indexes_.contains(field);
}

std::vector<std::string> MemEngine::index_fields() const {
  return indexes_.fields();
}

void MemEngine::find_eq(const std::string& field, const Value& value,
                        std::vector<DocId>& out) const {
  if (indexes_.find_eq(field, value, out)) return;
  for (const auto& [id, stored] : docs_) {
    if (stored.doc.contains(field) && stored.doc.at(field) == value) {
      out.push_back(id);
    }
  }
}

void MemEngine::find_range(const std::string& field, const Value& lo,
                           const Value& hi, std::vector<DocId>& out) const {
  if (indexes_.find_range(field, lo, hi, out)) return;
  for (const auto& [id, stored] : docs_) {
    if (!stored.doc.contains(field)) continue;
    const Value& v = stored.doc.at(field);
    if (!(v < lo) && v < hi) out.push_back(id);
  }
}

void MemEngine::scan(
    const std::function<void(DocId, const Value&)>& fn) const {
  for (const auto& [id, stored] : docs_) fn(id, stored.doc);
}

void MemEngine::append_ids(std::vector<DocId>& out) const {
  out.reserve(out.size() + docs_.size());
  for (const auto& [id, _] : docs_) out.push_back(id);
}

DocId MemEngine::max_id() const {
  DocId max = 0;
  for (const auto& [id, _] : docs_) max = std::max(max, id);
  return max;
}

// --- factory ----------------------------------------------------------------

std::vector<std::unique_ptr<StorageEngine>> make_shard_engines(
    const StorageEngineConfig& config, const std::string& collection_name,
    std::size_t shards) {
  std::vector<std::unique_ptr<StorageEngine>> engines;
  engines.reserve(shards);
  if (config.kind == EngineKind::kMem) {
    for (std::size_t s = 0; s < shards; ++s) {
      engines.push_back(std::make_unique<MemEngine>());
    }
    return engines;
  }

  FAIRDMS_CHECK(!config.directory.empty(), "collection '", collection_name,
                "': log engine requires a data directory");
  std::filesystem::create_directories(config.directory);
  const std::string meta_path = config.directory + "/engine.meta";
  if (std::filesystem::exists(meta_path)) {
    // Reopen: the shard count is part of the on-disk layout (ids were
    // routed to segments by `id % shards`), so it must match exactly.
    Binary meta(16);  // magic u32 + version u32 + shard count u64
    std::FILE* f = std::fopen(meta_path.c_str(), "rb");
    FAIRDMS_CHECK(f != nullptr, "cannot read ", meta_path);
    const std::size_t got = std::fread(meta.data(), 1, meta.size(), f);
    std::fclose(f);
    FAIRDMS_CHECK(got == meta.size(), "truncated ", meta_path);
    FAIRDMS_CHECK(read_le(meta.data(), 4) == kMetaMagic, "bad magic in ",
                  meta_path);
    FAIRDMS_CHECK(read_le(meta.data() + 4, 4) == kMetaVersion,
                  "bad version in ", meta_path);
    const std::uint64_t disk_shards = read_le(meta.data() + 8, 8);
    FAIRDMS_CHECK(disk_shards == shards, "log engine at ", config.directory,
                  " was written with ", disk_shards,
                  " shard(s); reopen requested ", shards,
                  " (resharding a log directory is not supported)");
  } else {
    Binary meta;
    put_u32(meta, kMetaMagic);
    put_u32(meta, kMetaVersion);
    put_u64(meta, shards);
    std::string error;
    FAIRDMS_CHECK(util::write_file_atomic(meta_path, meta, &error),
                  "cannot write ", meta_path, ": ", error);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<LogEngine>(
        config.directory + "/shard-" + std::to_string(s) + ".log",
        config.fsync_appends));
  }
  return engines;
}

}  // namespace fairdms::store
