// MongoDB-analog document store.
//
// Implements the subset the paper's fairDS backend needs (§II-A key
// requirements): large-collection storage, secondary indexes for efficient
// lookup, document updates, parallel reads (shared lock) and exclusive
// writes. Documents are store::Value objects; every document receives an
// integral `_id`. An optional RemoteLink charges network time per operation,
// modeling the remotely hosted deployment of the paper's evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/document.hpp"
#include "store/remote_link.hpp"

namespace fairdms::store {

using DocId = std::uint64_t;

class Collection {
 public:
  explicit Collection(std::string name, const RemoteLink* link = nullptr)
      : name_(std::move(name)), link_(link) {}

  [[nodiscard]] const std::string& collection_name() const { return name_; }

  /// Inserts a document (object Value), returns its _id. The `_id` field is
  /// added/overwritten on the stored copy.
  DocId insert_one(Value doc);
  /// Bulk insert; returns ids in order. One exclusive lock for the batch —
  /// the "parallel writes during data update" path of the paper.
  std::vector<DocId> insert_many(std::vector<Value> docs);

  /// Fetches a document copy by id.
  [[nodiscard]] std::optional<Value> find_by_id(DocId id) const;

  /// Batched fetch: one shared lock and one batched round-trip charge for
  /// the whole id list. `out[i]` is nullopt when `ids[i]` is absent. When
  /// `fields` is non-empty only those fields are copied out (documents
  /// missing a projected field simply omit it) and only their bytes are
  /// charged — the "fetch many members, but only the columns you need"
  /// path the reuse workload hits.
  [[nodiscard]] std::vector<std::optional<Value>> find_many(
      std::span<const DocId> ids,
      std::span<const std::string> fields = {}) const;

  /// Replaces document `id`; returns false if absent.
  bool replace_one(DocId id, Value doc);
  /// Sets a single field on document `id`; returns false if absent.
  /// Charges the encoded value size (plus envelope), not a flat constant.
  bool update_field(DocId id, const std::string& field, Value value);
  /// Sets several fields on document `id` under one lock with one charge.
  bool update_fields(DocId id, Object fields);
  /// Applies many per-document field updates under one exclusive lock and
  /// one batched round-trip charge (the retrain re-assignment pass).
  /// Returns the number of documents found and updated.
  std::size_t update_many(std::vector<std::pair<DocId, Object>> updates);
  bool remove_one(DocId id);

  /// Secondary index on a scalar field. Indexes are maintained on every
  /// subsequent insert/update; existing documents are indexed on creation.
  void create_index(const std::string& field);
  [[nodiscard]] bool has_index(const std::string& field) const;

  /// ids of documents whose `field` equals `value`. Uses the index when one
  /// exists, otherwise a collection scan.
  [[nodiscard]] std::vector<DocId> find_eq(const std::string& field,
                                           const Value& value) const;
  /// ids with lo <= field < hi (ordered-index range scan or collection scan).
  [[nodiscard]] std::vector<DocId> find_range(const std::string& field,
                                              const Value& lo,
                                              const Value& hi) const;

  /// Applies fn to every (id, doc) under a shared lock.
  void scan(const std::function<void(DocId, const Value&)>& fn) const;

  /// All document ids, ascending. One shared lock, charged like an index
  /// scan (ids only, not payloads).
  [[nodiscard]] std::vector<DocId> all_ids() const;

  [[nodiscard]] std::size_t size() const;

  /// Approximate resident bytes (document payloads only).
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Fields with secondary indexes (snapshot support).
  [[nodiscard]] std::vector<std::string> index_fields() const;
  /// Highest-issued-plus-one document id (snapshot support).
  [[nodiscard]] DocId next_id() const;
  /// Restores a snapshot into an *empty* collection: sets the id counter,
  /// inserts documents under their original ids, rebuilds all indexes.
  void restore(DocId next_id,
               std::vector<std::pair<DocId, Value>> documents);

 private:
  /// A stored document plus its cached encoded size, so every read charges
  /// real bytes without re-serializing the (often multi-KB) payload.
  struct StoredDoc {
    Value doc;
    std::size_t bytes = 0;
  };

  void index_insert_locked(DocId id, const Value& doc);
  void index_remove_locked(DocId id, const Value& doc);
  /// Applies `fields` to an existing document under the exclusive lock,
  /// maintaining indexes, the cached size, and payload_bytes_. Returns the
  /// encoded request-payload bytes to charge — the values travel to the
  /// server whether or not the document exists, so absent ids charge too.
  std::size_t update_fields_locked(DocId id, Object&& fields, bool& found);
  void charge(std::size_t bytes) const {
    if (link_ != nullptr) link_->charge(bytes);
  }
  static std::size_t doc_bytes(const Value& doc);

  std::string name_;
  const RemoteLink* link_;
  mutable std::shared_mutex mutex_;
  DocId next_id_ = 1;
  std::unordered_map<DocId, StoredDoc> docs_;
  std::size_t payload_bytes_ = 0;
  /// field -> (value -> ids); std::map keys give ordered range scans.
  std::unordered_map<std::string, std::map<Value, std::vector<DocId>>>
      indexes_;
};

/// A named set of collections, sharing one remote-link model.
class DocStore {
 public:
  DocStore() = default;
  explicit DocStore(RemoteLinkConfig link_config) : link_(link_config) {}

  /// Gets or creates a collection.
  Collection& collection(const std::string& name);
  [[nodiscard]] bool has_collection(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> collection_names() const;

  [[nodiscard]] const RemoteLink& link() const { return link_; }
  [[nodiscard]] bool is_remote() const {
    return link_.config().latency_seconds > 0.0;
  }

 private:
  RemoteLink link_{RemoteLinkConfig{.latency_seconds = 0.0,
                                    .bandwidth_bytes_per_s = 1e12}};
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace fairdms::store
