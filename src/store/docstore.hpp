// MongoDB-analog document store.
//
// Implements the subset the paper's fairDS backend needs (§II-A key
// requirements): large-collection storage, secondary indexes for efficient
// lookup, document updates, parallel reads (shared lock) and exclusive
// writes. Documents are store::Value objects; every document receives an
// integral `_id`. An optional RemoteLink charges network time per operation,
// modeling the remotely hosted deployment of the paper's evaluation.
//
// Sharding: a collection is partitioned into N hash-sharded sub-stores
// (DocId -> shard by `id % N`), each with its own shared_mutex and its own
// storage engine holding the document map, secondary indexes, and byte
// accounting, so concurrent writes to different shards proceed in parallel
// instead of queueing on one writer lock (the detector-rate ingest path).
// Batched operations fan out per-shard — on the global util::ThreadPool
// above a size threshold — and merge results deterministically. N = 1 (the
// default) is byte-for-byte the previous single-lock collection.
//
// Storage engines (storage_engine.hpp): what lives under each shard lock is
// pluggable — MemEngine (the seed's in-memory behavior, the default) or
// LogEngine (a memory-mapped append-only log; durable, crash-recovering).
// Sharding, locking, id allocation, charge accounting, and persistence
// snapshots compose with any engine unchanged.
//
// Semantics that hold for every shard count and every engine:
//  * find_eq / find_range / all_ids return ids in ascending order,
//    regardless of insert/update history.
//  * find_many: out[i] answers ids[i]; duplicate ids are each resolved and
//    charged independently; missing ids yield nullopt and cost only their
//    share of the request envelope.
//  * update_fields / update_many on a missing id return false / don't count
//    it, but still charge the encoded value bytes — the values travel to
//    the server whether or not the document exists.
//  * RemoteLink charges are shard-count and engine independent: one request
//    envelope per logical operation, value bytes summed across shards.
//  * Operations touching multiple shards (find_many, all_ids, scan, size,
//    approx_bytes, ...) are not atomic across shards under concurrent
//    writers: each shard is observed at its own lock acquisition. Any
//    single document is always observed consistently (per-shard locks
//    cover whole update_fields applications).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "store/document.hpp"
#include "store/remote_link.hpp"
#include "store/storage_engine.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::store {

class Collection {
 public:
  /// `shards` >= 1; 1 keeps the single-lock behavior, higher counts enable
  /// parallel ingest at the cost of per-shard index fragmentation.
  /// `engine` selects the per-shard storage engine; for LogEngine,
  /// `engine.directory` is this collection's data directory and an
  /// existing directory is replayed (the collection comes up populated,
  /// with the id counter resumed past everything recovered).
  explicit Collection(std::string name, const RemoteLink* link = nullptr,
                      std::size_t shards = 1,
                      const StorageEngineConfig& engine = {});

  [[nodiscard]] const std::string& collection_name() const { return name_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] EngineKind engine_kind() const { return engine_kind_; }
  /// "mem" | "log" — the storage engine behind every shard.
  [[nodiscard]] const char* engine_name() const {
    return to_string(engine_kind_);
  }

  /// Inserts a document (object Value), returns its _id. The `_id` field is
  /// added/overwritten on the stored copy. Ids are allocated from one
  /// atomic counter, so concurrent inserters never block each other on
  /// allocation and only serialize within one shard.
  DocId insert_one(Value doc);
  /// Bulk insert; returns ids in order (one contiguous id block). One
  /// exclusive lock per touched shard and one batched round-trip charge —
  /// the "parallel writes during data update" path of the paper.
  std::vector<DocId> insert_many(std::vector<Value> docs);

  /// Fetches a document copy by id.
  [[nodiscard]] std::optional<Value> find_by_id(DocId id) const;

  /// Batched fetch: one shared lock per touched shard and one batched
  /// round-trip charge for the whole id list. `out[i]` is nullopt when
  /// `ids[i]` is absent; duplicate ids are each resolved (and charged)
  /// independently. When `fields` is non-empty only those fields are
  /// copied out (documents missing a projected field simply omit it) and
  /// only their bytes are charged — the "fetch many members, but only the
  /// columns you need" path the reuse workload hits.
  [[nodiscard]] std::vector<std::optional<Value>> find_many(
      std::span<const DocId> ids,
      std::span<const std::string> fields = {}) const;

  /// Replaces document `id`; returns false if absent.
  bool replace_one(DocId id, Value doc);
  /// Sets a single field on document `id`; returns false if absent.
  /// Charges the encoded value size (plus envelope), not a flat constant —
  /// whether or not the document exists.
  bool update_field(DocId id, const std::string& field, Value value);
  /// Sets several fields on document `id` under one lock with one charge.
  /// All fields land atomically: a concurrent reader sees either none or
  /// all of them.
  bool update_fields(DocId id, Object fields);
  /// Applies many per-document field updates under one exclusive lock per
  /// touched shard and one batched round-trip charge (the retrain
  /// re-assignment pass). Updates to the same id apply in list order.
  /// Returns the number of documents found and updated (missing ids still
  /// charge their value bytes).
  std::size_t update_many(std::vector<std::pair<DocId, Object>> updates);
  bool remove_one(DocId id);

  /// Secondary index on a scalar field. Indexes are maintained on every
  /// subsequent insert/update; existing documents are indexed on creation.
  /// Each shard indexes its own documents. Indexes live in memory for
  /// every engine — a reopened durable collection starts index-less and
  /// callers re-create the indexes they need (as persist::load does).
  void create_index(const std::string& field);
  [[nodiscard]] bool has_index(const std::string& field) const;

  /// ids of documents whose `field` equals `value`, ascending. Uses the
  /// per-shard indexes when they exist, otherwise a collection scan.
  [[nodiscard]] std::vector<DocId> find_eq(const std::string& field,
                                           const Value& value) const;
  /// ids with lo <= field < hi, ascending (per-shard ordered-index range
  /// scans or collection scans, merged).
  [[nodiscard]] std::vector<DocId> find_range(const std::string& field,
                                              const Value& lo,
                                              const Value& hi) const;

  /// Applies fn to every (id, doc) under a shared lock, one shard at a
  /// time in shard order (document order within a shard is unspecified).
  void scan(const std::function<void(DocId, const Value&)>& fn) const;

  /// All document ids, ascending. One shared lock per shard, charged like
  /// an index scan (ids only, not payloads).
  [[nodiscard]] std::vector<DocId> all_ids() const;

  [[nodiscard]] std::size_t size() const;

  /// Approximate resident bytes (live document payloads only, summed over
  /// shards; identical across engines).
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Asks every shard's engine to reclaim space held by superseded or
  /// tombstoned records (LogEngine segment rotation); a no-op for
  /// MemEngine. Takes each shard's exclusive lock in turn, so it is safe
  /// (but fuzzy) under concurrent traffic.
  void compact();

  /// Fields with secondary indexes (snapshot support).
  [[nodiscard]] std::vector<std::string> index_fields() const;
  /// Highest-issued-plus-one document id (snapshot support). Under
  /// concurrent inserters this is a lower bound on the next allocation.
  [[nodiscard]] DocId next_id() const;
  /// Restores a snapshot into an *empty* collection: sets the id counter,
  /// inserts documents under their original ids, rebuilds all indexes.
  /// The on-disk format is shard-count and engine agnostic: a snapshot
  /// written by an N-shard collection loads into an M-shard one, and a
  /// snapshot of a MemEngine store loads into a LogEngine store.
  void restore(DocId next_id,
               std::vector<std::pair<DocId, Value>> documents);

 private:
  /// One hash shard: a shared_mutex guarding an independent storage-engine
  /// instance. Heap-allocated (shared_mutex is immovable) and never
  /// resized after construction, so shard lookup itself is lock-free. The
  /// engine pointer is set once in the constructor; all engine calls
  /// happen with `mutex` held (exclusive for mutations, shared for
  /// reads), per the StorageEngine contract.
  struct Shard {
    mutable util::SharedMutex mutex{util::LockRank::kStoreShard};
    std::unique_ptr<StorageEngine> engine GUARDED_BY(mutex);
  };

  [[nodiscard]] std::size_t shard_index(DocId id) const {
    // Power-of-two counts (the common configs: 1, 2, 4, 8) take the mask
    // fast path; anything else pays one integer division.
    if (shard_mask_ != 0 || shards_.size() == 1) {
      return static_cast<std::size_t>(id & shard_mask_);
    }
    return static_cast<std::size_t>(id % shards_.size());
  }
  [[nodiscard]] Shard& shard_of(DocId id) const {
    return *shards_[shard_index(id)];
  }
  /// Runs body(shard_idx) for every shard — in parallel on the global
  /// thread pool when the collection is sharded and the operation is large
  /// enough (`items` work items) to amortize the dispatch.
  void for_each_shard(std::size_t items,
                      const std::function<void(std::size_t)>& body) const;

  void charge(std::size_t bytes) const {
    if (link_ != nullptr) link_->charge(bytes);
  }
  static std::size_t doc_bytes(const Value& doc);

  std::string name_;
  const RemoteLink* link_;
  EngineKind engine_kind_;
  std::atomic<DocId> next_id_{1};
  std::vector<std::unique_ptr<Shard>> shards_;
  DocId shard_mask_ = 0;  ///< shards-1 when the count is a power of two
};

/// DocStore construction knobs: the remote-link model, the default shard
/// count applied to collections created without an explicit count, and the
/// storage-engine selection applied to every collection (engine.directory
/// is the store root; each collection gets `<root>/<name>`).
struct DocStoreConfig {
  RemoteLinkConfig link{.latency_seconds = 0.0,
                        .bandwidth_bytes_per_s = 1e12};
  std::size_t shards = 1;
  StorageEngineConfig engine{};
};

/// A named set of collections, sharing one remote-link model.
class DocStore {
 public:
  DocStore() = default;
  explicit DocStore(RemoteLinkConfig link_config) : link_(link_config) {}
  explicit DocStore(DocStoreConfig config)
      : link_(config.link),
        default_shards_(std::max<std::size_t>(1, config.shards)),
        engine_config_(std::move(config.engine)) {}

  /// Gets or creates a collection. `shards == 0` means the store default;
  /// `engine == nullptr` means the store's configured engine (its
  /// directory is treated as a store root and the collection name is
  /// appended). Both only apply on creation; getting an existing
  /// collection with different non-zero/non-null settings returns the
  /// existing one unchanged (live resharding / engine swaps unsupported).
  Collection& collection(const std::string& name, std::size_t shards = 0,
                         const StorageEngineConfig* engine = nullptr);
  [[nodiscard]] bool has_collection(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> collection_names() const;
  [[nodiscard]] std::size_t default_shards() const { return default_shards_; }
  [[nodiscard]] const StorageEngineConfig& engine_config() const {
    return engine_config_;
  }

  [[nodiscard]] const RemoteLink& link() const { return link_; }
  [[nodiscard]] bool is_remote() const {
    return link_.config().latency_seconds > 0.0;
  }

 private:
  RemoteLink link_{RemoteLinkConfig{.latency_seconds = 0.0,
                                    .bandwidth_bytes_per_s = 1e12}};
  std::size_t default_shards_ = 1;
  StorageEngineConfig engine_config_{};
  mutable util::SharedMutex mutex_{util::LockRank::kStoreMap};
  std::map<std::string, std::unique_ptr<Collection>> collections_
      GUARDED_BY(mutex_);
};

}  // namespace fairdms::store
