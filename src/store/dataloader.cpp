#include "store/dataloader.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::store {

namespace {
std::size_t shape_elems(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

DataLoader::DataLoader(const Dataset& dataset, LoaderConfig config)
    : dataset_(&dataset), config_(config) {
  FAIRDMS_CHECK(config_.batch_size > 0, "DataLoader: batch_size must be > 0");
  FAIRDMS_CHECK(config_.workers > 0, "DataLoader: workers must be > 0");
  FAIRDMS_CHECK(config_.prefetch_batches > 0,
                "DataLoader: prefetch_batches must be > 0");
  order_.resize(dataset_->size());
  std::iota(order_.begin(), order_.end(), 0);
}

DataLoader::~DataLoader() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_space_.notify_all();
  cv_data_.notify_all();
  join_workers();
}

std::size_t DataLoader::batches_per_epoch() const {
  const std::size_t n = order_.size();
  if (config_.drop_last) return n / config_.batch_size;
  return (n + config_.batch_size - 1) / config_.batch_size;
}

void DataLoader::start_epoch(std::size_t epoch) {
  join_workers();
  FAIRDMS_CHECK(queue_.empty() || batches_taken_ == total_batches_,
                "start_epoch while previous epoch still in flight");
  if (config_.shuffle) {
    util::Rng rng(config_.seed ^ (epoch * 0x9E3779B97F4A7C15ull));
    rng.shuffle(order_);
  }
  {
    std::lock_guard lock(mutex_);
    queue_.clear();
    next_claim_ = 0;
    produced_ = 0;
    batches_taken_ = 0;
    total_batches_ = batches_per_epoch();
    stopping_ = false;
    stall_seconds_ = 0.0;
  }
  worker_fetch_seconds_.assign(config_.workers, 0.0);
  workers_.clear();
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

void DataLoader::worker_loop(std::size_t worker_id) {
  const std::vector<std::size_t> xs = dataset_->x_shape();
  const std::vector<std::size_t> ys = dataset_->y_shape();
  const std::size_t xe = shape_elems(xs);
  const std::size_t ye = shape_elems(ys);
  Sample sample;

  for (;;) {
    std::size_t batch_index;
    {
      std::lock_guard lock(mutex_);
      if (stopping_ || next_claim_ >= total_batches_) return;
      batch_index = next_claim_++;
    }
    const std::size_t begin = batch_index * config_.batch_size;
    const std::size_t end =
        std::min(order_.size(), begin + config_.batch_size);
    const std::size_t count = end - begin;

    util::WallTimer fetch_timer;
    std::vector<std::size_t> bx(xs);
    bx.insert(bx.begin(), count);
    std::vector<std::size_t> by(ys);
    by.insert(by.begin(), count);
    Batch batch{nn::Tensor(bx), nn::Tensor(by)};
    for (std::size_t i = 0; i < count; ++i) {
      dataset_->get(order_[begin + i], sample);
      FAIRDMS_CHECK(sample.x.size() == xe && sample.y.size() == ye,
                    "DataLoader: sample shape mismatch at index ",
                    order_[begin + i]);
      std::copy(sample.x.begin(), sample.x.end(),
                batch.xs.data() + i * xe);
      std::copy(sample.y.begin(), sample.y.end(),
                batch.ys.data() + i * ye);
    }
    worker_fetch_seconds_[worker_id] += fetch_timer.seconds();

    std::unique_lock lock(mutex_);
    cv_space_.wait(lock, [this] {
      return stopping_ || queue_.size() < config_.prefetch_batches;
    });
    if (stopping_) return;
    queue_.push_back(std::move(batch));
    ++produced_;
    cv_data_.notify_one();
  }
}

std::optional<Batch> DataLoader::next() {
  std::unique_lock lock(mutex_);
  if (batches_taken_ >= total_batches_) return std::nullopt;
  util::WallTimer wait_timer;
  cv_data_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  stall_seconds_ += wait_timer.seconds();
  if (queue_.empty()) return std::nullopt;  // stopped
  Batch batch = std::move(queue_.front());
  queue_.pop_front();
  ++batches_taken_;
  const bool done = batches_taken_ >= total_batches_;
  lock.unlock();
  cv_space_.notify_one();
  if (done) join_workers();
  return batch;
}

double DataLoader::fetch_seconds() const {
  double total = 0.0;
  for (double s : worker_fetch_seconds_) total += s;
  return total;
}

void DataLoader::join_workers() {
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

}  // namespace fairdms::store
