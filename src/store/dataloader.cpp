#include "store/dataloader.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::store {

namespace {
std::size_t shape_elems(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

DataLoader::DataLoader(const Dataset& dataset, LoaderConfig config)
    : dataset_(&dataset), config_(config) {
  FAIRDMS_CHECK(config_.batch_size > 0, "DataLoader: batch_size must be > 0");
  FAIRDMS_CHECK(config_.workers > 0, "DataLoader: workers must be > 0");
  FAIRDMS_CHECK(config_.prefetch_batches > 0,
                "DataLoader: prefetch_batches must be > 0");
  order_.resize(dataset_->size());
  std::iota(order_.begin(), order_.end(), 0);
}

DataLoader::~DataLoader() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_space_.notify_all();
  cv_data_.notify_all();
  join_workers();
}

std::size_t DataLoader::batches_per_epoch() const {
  const std::size_t n = order_.size();
  if (config_.drop_last) return n / config_.batch_size;
  return (n + config_.batch_size - 1) / config_.batch_size;
}

void DataLoader::start_epoch(std::size_t epoch) {
  join_workers();
  if (config_.shuffle) {
    util::Rng rng(config_.seed ^ (epoch * 0x9E3779B97F4A7C15ull));
    rng.shuffle(order_);
  }
  {
    util::MutexLock lock(mutex_);
    FAIRDMS_CHECK(queue_.empty() || batches_taken_ == total_batches_,
                  "start_epoch while previous epoch still in flight");
    queue_.clear();
    next_claim_ = 0;
    produced_ = 0;
    batches_taken_ = 0;
    total_batches_ = batches_per_epoch();
    stopping_ = false;
    stall_seconds_ = 0.0;
    fetch_seconds_ = 0.0;
  }
  workers_.clear();
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void DataLoader::worker_loop() {
  const std::vector<std::size_t> xs = dataset_->x_shape();
  const std::vector<std::size_t> ys = dataset_->y_shape();
  const std::size_t xe = shape_elems(xs);
  const std::size_t ye = shape_elems(ys);
  Sample sample;

  for (;;) {
    std::size_t batch_index;
    {
      util::MutexLock lock(mutex_);
      if (stopping_ || next_claim_ >= total_batches_) return;
      batch_index = next_claim_++;
    }
    const std::size_t begin = batch_index * config_.batch_size;
    const std::size_t end =
        std::min(order_.size(), begin + config_.batch_size);
    const std::size_t count = end - begin;

    util::WallTimer fetch_timer;
    std::vector<std::size_t> bx(xs);
    bx.insert(bx.begin(), count);
    std::vector<std::size_t> by(ys);
    by.insert(by.begin(), count);
    Batch batch{nn::Tensor(bx), nn::Tensor(by)};
    for (std::size_t i = 0; i < count; ++i) {
      dataset_->get(order_[begin + i], sample);
      FAIRDMS_CHECK(sample.x.size() == xe && sample.y.size() == ye,
                    "DataLoader: sample shape mismatch at index ",
                    order_[begin + i]);
      std::copy(sample.x.begin(), sample.x.end(),
                batch.xs.data() + i * xe);
      std::copy(sample.y.begin(), sample.y.end(),
                batch.ys.data() + i * ye);
    }
    const double fetched = fetch_timer.seconds();

    util::MutexLock lock(mutex_);
    // Fold fetch time in under the lock (readers take the same lock, which
    // closes the old unguarded per-worker-slot gauge), including for a
    // batch that ends up dropped on shutdown.
    fetch_seconds_ += fetched;
    // Explicit wait loop (not the predicate overload): Clang TSA analyzes
    // lambdas as separate functions, so a predicate reading guarded fields
    // would not be seen as holding the lock.
    while (!stopping_ && queue_.size() >= config_.prefetch_batches) {
      cv_space_.wait(lock.native());
    }
    if (stopping_) return;
    queue_.push_back(std::move(batch));
    ++produced_;
    cv_data_.notify_one();
  }
}

std::optional<Batch> DataLoader::next() {
  std::optional<Batch> out;
  bool done = false;
  {
    util::MutexLock lock(mutex_);
    if (batches_taken_ >= total_batches_) return std::nullopt;
    util::WallTimer wait_timer;
    while (!stopping_ && queue_.empty()) cv_data_.wait(lock.native());
    stall_seconds_ += wait_timer.seconds();
    if (queue_.empty()) return std::nullopt;  // stopped
    out = std::move(queue_.front());
    queue_.pop_front();
    ++batches_taken_;
    done = batches_taken_ >= total_batches_;
  }
  cv_space_.notify_one();
  if (done) join_workers();
  return out;
}

double DataLoader::stall_seconds() const {
  util::MutexLock lock(mutex_);
  return stall_seconds_;
}

double DataLoader::fetch_seconds() const {
  util::MutexLock lock(mutex_);
  return fetch_seconds_;
}

std::size_t DataLoader::batches_delivered() const {
  util::MutexLock lock(mutex_);
  return batches_taken_;
}

void DataLoader::join_workers() {
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

}  // namespace fairdms::store
