#include "store/remote_link.hpp"

#include <chrono>
#include <thread>

namespace fairdms::store {

void RemoteLink::charge(std::size_t bytes) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (config_.latency_seconds <= 0.0) return;
  const double wire =
      config_.latency_seconds +
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
  // Busy-spin under ~20us (sleep granularity would over-charge), sleep above.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(wire));
  if (wire > 20e-6) {
    std::this_thread::sleep_until(deadline);
  } else {
    while (std::chrono::steady_clock::now() < deadline) {
      // spin
    }
  }
}

}  // namespace fairdms::store
