#include "store/dataset.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fairdms::store {

namespace {
std::size_t shape_elems(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

InMemoryDataset::InMemoryDataset(nn::Batchset data)
    : data_(std::move(data)), count_(data_.size()) {
  FAIRDMS_CHECK(count_ > 0, "InMemoryDataset: empty batchset");
  x_shape_.assign(data_.xs.shape().begin() + 1, data_.xs.shape().end());
  y_shape_.assign(data_.ys.shape().begin() + 1, data_.ys.shape().end());
}

void InMemoryDataset::get(std::size_t index, Sample& out) const {
  FAIRDMS_CHECK(index < count_, "InMemoryDataset: index out of range");
  const std::size_t xe = shape_elems(x_shape_);
  const std::size_t ye = shape_elems(y_shape_);
  out.x.assign(data_.xs.data() + index * xe,
               data_.xs.data() + (index + 1) * xe);
  out.y.assign(data_.ys.data() + index * ye,
               data_.ys.data() + (index + 1) * ye);
}

MongoDataset::MongoDataset(Collection& collection,
                           std::unique_ptr<Codec> codec,
                           std::vector<std::size_t> x_shape,
                           std::vector<std::size_t> y_shape)
    : collection_(&collection),
      codec_(std::move(codec)),
      x_shape_(std::move(x_shape)),
      y_shape_(std::move(y_shape)) {
  FAIRDMS_CHECK(codec_ != nullptr, "MongoDataset: null codec");
}

std::unique_ptr<MongoDataset> MongoDataset::ingest(
    Collection& collection, const nn::Batchset& data,
    const std::string& codec_name) {
  FAIRDMS_CHECK(data.size() > 0, "MongoDataset::ingest: empty batchset");
  auto codec = make_codec(codec_name);
  std::vector<std::size_t> xs(data.xs.shape().begin() + 1,
                              data.xs.shape().end());
  std::vector<std::size_t> ys(data.ys.shape().begin() + 1,
                              data.ys.shape().end());
  const std::size_t xe = shape_elems(xs);
  const std::size_t ye = shape_elems(ys);

  std::vector<Value> docs;
  docs.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    Object doc;
    doc["index"] = Value(static_cast<std::int64_t>(i));
    doc["x"] = Value(codec->encode({data.xs.data() + i * xe, xe}));
    doc["y"] = Value(codec->encode({data.ys.data() + i * ye, ye}));
    docs.emplace_back(std::move(doc));
  }
  collection.create_index("index");
  collection.insert_many(std::move(docs));
  return std::make_unique<MongoDataset>(collection, std::move(codec),
                                        std::move(xs), std::move(ys));
}

std::size_t MongoDataset::size() const { return collection_->size(); }

void MongoDataset::get(std::size_t index, Sample& out) const {
  const auto ids =
      collection_->find_eq("index", Value(static_cast<std::int64_t>(index)));
  FAIRDMS_CHECK(!ids.empty(), "MongoDataset: no document for index ", index);
  const auto doc = collection_->find_by_id(ids.front());
  FAIRDMS_CHECK(doc.has_value(), "MongoDataset: document vanished");
  codec_->decode(doc->at("x").as_binary(), out.x);
  codec_->decode(doc->at("y").as_binary(), out.y);
  FAIRDMS_CHECK(out.x.size() == shape_elems(x_shape_),
                "MongoDataset: decoded x size mismatch");
  FAIRDMS_CHECK(out.y.size() == shape_elems(y_shape_),
                "MongoDataset: decoded y size mismatch");
}

NfsDataset::NfsDataset(const NfsStore& nfs, std::string name)
    : nfs_(&nfs), name_(std::move(name)) {
  count_ = nfs_->sample_count(name_);
  x_shape_ = nfs_->x_shape(name_);
  y_shape_ = nfs_->y_shape(name_);
  FAIRDMS_CHECK(count_ > 0, "NfsDataset: dataset '", name_, "' is empty");
}

void NfsDataset::get(std::size_t index, Sample& out) const {
  nfs_->read_sample(name_, index, out.x, out.y);
}

}  // namespace fairdms::store
