#include "store/persist.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"
#include "util/fsio.hpp"

namespace fairdms::store {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kManifestMagic = 0x464D414E;  // "FMAN"
constexpr std::uint32_t kCollectionMagic = 0x46434F4C; // "FCOL"
constexpr std::uint32_t kVersion = 1;

template <typename... Args>
PersistResult fail(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return PersistResult{oss.str()};
}

void put_u32(Binary& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_u64(Binary& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_string(Binary& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over an in-memory snapshot. Every
/// read_* checks the *remaining* byte count (never `pos + n`, which a
/// hostile 64-bit length could wrap), so no corrupt header can push the
/// cursor out of bounds or size an allocation beyond the input.
struct Cursor {
  const Binary& in;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return in.size() - pos; }

  bool read_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[pos++]} << (8 * i);
    return true;
  }
  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[pos++]} << (8 * i);
    return true;
  }
  bool read_string(std::string& s) {
    std::uint64_t n = 0;
    if (!read_u64(n) || n > remaining()) return false;
    s.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return true;
  }
  bool read_bytes(std::uint64_t n, Binary& b) {
    if (n > remaining()) return false;
    b.assign(in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return true;
  }
};

PersistResult read_file(const std::string& path, Binary& out) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec) return fail("cannot stat snapshot file ", path, ": ", ec.message());
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return fail("cannot read snapshot file ", path);
  out.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  if (in.gcount() != static_cast<std::streamsize>(out.size())) {
    return fail("short read on snapshot file ", path);
  }
  return {};
}

std::string collection_path(const std::string& directory,
                            const std::string& name) {
  return directory + "/" + name + ".col";
}

/// Collection names become file names; reject anything a corrupt manifest
/// could use to escape the snapshot directory.
bool valid_collection_name(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos &&
         name.find('\0') == std::string::npos;
}

PersistResult save_collection(const Collection& col, const std::string& path) {
  // Collect first, frame after: scan/size/next_id are three independent
  // snapshots on a (possibly sharded) live collection, so the file header
  // must describe what the scan actually captured, and next_id must be
  // read *after* the scan — every captured id was allocated before the
  // scan finished, so a post-scan next_id() bounds them all and restore's
  // `id < next_id` check holds. Under concurrent writers the result is a
  // fuzzy but always-loadable point-in-time snapshot.
  std::vector<std::pair<DocId, Binary>> docs;
  col.scan([&](DocId id, const Value& doc) {
    Binary buf;
    doc.encode(buf);
    docs.emplace_back(id, std::move(buf));
  });
  const DocId next_id = col.next_id();
  const auto fields = col.index_fields();

  Binary out;
  put_u32(out, kCollectionMagic);
  put_u32(out, kVersion);
  put_u64(out, next_id);
  put_u64(out, fields.size());
  for (const auto& field : fields) put_string(out, field);
  put_u64(out, docs.size());
  for (const auto& [id, buf] : docs) {
    put_u64(out, id);
    put_u64(out, buf.size());
    out.insert(out.end(), buf.begin(), buf.end());
  }
  std::string error;
  if (!util::write_file_atomic(path, out, &error)) {
    return fail("snapshot write failed for ", path, ": ", error);
  }
  return {};
}

PersistResult load_collection(Collection& col, const std::string& path) {
  Binary bytes;
  if (PersistResult r = read_file(path, bytes); !r.ok()) return r;

  // Parse and validate the whole file before touching the collection, so a
  // corrupt snapshot leaves it exactly as it was.
  Cursor cur{bytes};
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!cur.read_u32(magic) || magic != kCollectionMagic) {
    return fail("bad collection magic in ", path);
  }
  if (!cur.read_u32(version) || version != kVersion) {
    return fail("bad snapshot version in ", path);
  }
  std::uint64_t next_id = 0;
  std::uint64_t n_fields = 0;
  if (!cur.read_u64(next_id) || !cur.read_u64(n_fields)) {
    return fail("truncated snapshot header in ", path);
  }
  if (n_fields > cur.remaining() / 8) {  // each field costs >= a u64 length
    return fail("bad index-field count in ", path);
  }
  std::vector<std::string> fields;
  fields.reserve(n_fields);
  for (std::uint64_t i = 0; i < n_fields; ++i) {
    std::string field;
    if (!cur.read_string(field)) {
      return fail("truncated index field ", i, " in ", path);
    }
    fields.push_back(std::move(field));
  }
  std::uint64_t count = 0;
  if (!cur.read_u64(count)) return fail("truncated snapshot ", path);
  if (count > cur.remaining() / 16) {  // each doc costs >= id + length
    return fail("bad document count in ", path);
  }
  std::vector<std::pair<DocId, Value>> docs;
  docs.reserve(count);
  std::unordered_set<DocId> seen;
  seen.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint64_t len = 0;
    Binary buf;
    if (!cur.read_u64(id) || !cur.read_u64(len) || !cur.read_bytes(len, buf)) {
      return fail("truncated snapshot ", path, " (document ", i, ")");
    }
    if (id >= next_id) {
      return fail("document ", i, " in ", path, ": id ", id, " >= next_id ",
                  next_id);
    }
    if (!seen.insert(id).second) {
      return fail("document ", i, " in ", path, ": duplicate id ", id);
    }
    std::optional<Value> doc = Value::try_decode(buf);
    if (!doc.has_value() || !doc->is_object()) {
      return fail("document ", i, " in ", path, ": undecodable payload");
    }
    docs.emplace_back(id, std::move(*doc));
  }
  if (cur.remaining() != 0) {
    return fail("trailing bytes in snapshot ", path);
  }
  if (col.size() != 0) {
    return fail("restore into non-empty collection '", col.collection_name(),
                "'");
  }
  for (const auto& field : fields) col.create_index(field);
  col.restore(next_id, std::move(docs));
  return {};
}

}  // namespace

PersistResult try_save_store(const DocStore& db,
                             const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return fail("cannot create snapshot directory ", directory, ": ",
                ec.message());
  }
  const auto names = db.collection_names();
  // Collection files land (atomically, durably) before the manifest that
  // names them: a reader never follows a manifest to a missing or
  // half-written .col file, no matter where the writer died.
  for (const auto& name : names) {
    // collection() is non-const but does not mutate an existing collection.
    PersistResult r =
        save_collection(const_cast<DocStore&>(db).collection(name),
                        collection_path(directory, name));
    if (!r.ok()) return r;
  }
  Binary manifest;
  put_u32(manifest, kManifestMagic);
  put_u32(manifest, kVersion);
  put_u64(manifest, names.size());
  for (const auto& name : names) put_string(manifest, name);
  std::string error;
  if (!util::write_file_atomic(directory + "/manifest.bin", manifest,
                               &error)) {
    return fail("cannot write manifest in ", directory, ": ", error);
  }
  return {};
}

PersistResult try_snapshot_collections(const std::string& directory,
                                       std::vector<std::string>& names) {
  names.clear();
  const std::string path = directory + "/manifest.bin";
  if (!fs::exists(path)) return fail("no snapshot manifest in ", directory);
  Binary bytes;
  if (PersistResult r = read_file(path, bytes); !r.ok()) return r;
  Cursor cur{bytes};
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!cur.read_u32(magic) || magic != kManifestMagic) {
    return fail("bad manifest magic in ", directory);
  }
  if (!cur.read_u32(version) || version != kVersion) {
    return fail("bad manifest version in ", directory);
  }
  std::uint64_t n = 0;
  if (!cur.read_u64(n)) return fail("truncated manifest in ", directory);
  if (n > cur.remaining() / 8) {
    return fail("bad collection count in manifest in ", directory);
  }
  names.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!cur.read_string(name)) {
      return fail("truncated manifest entry ", i, " in ", directory);
    }
    if (!valid_collection_name(name)) {
      return fail("invalid collection name in manifest in ", directory);
    }
    names.push_back(std::move(name));
  }
  if (cur.remaining() != 0) {
    return fail("trailing bytes in manifest in ", directory);
  }
  return {};
}

PersistResult try_load_store(DocStore& db, const std::string& directory) {
  std::vector<std::string> names;
  if (PersistResult r = try_snapshot_collections(directory, names); !r.ok()) {
    return r;
  }
  for (const auto& name : names) {
    PersistResult r =
        load_collection(db.collection(name), collection_path(directory, name));
    if (!r.ok()) return r;
  }
  return {};
}

void save_store(const DocStore& db, const std::string& directory) {
  const PersistResult r = try_save_store(db, directory);
  FAIRDMS_CHECK(r.ok(), r.error);
}

void load_store(DocStore& db, const std::string& directory) {
  const PersistResult r = try_load_store(db, directory);
  FAIRDMS_CHECK(r.ok(), r.error);
}

std::vector<std::string> snapshot_collections(const std::string& directory) {
  std::vector<std::string> names;
  const PersistResult r = try_snapshot_collections(directory, names);
  FAIRDMS_CHECK(r.ok(), r.error);
  return names;
}

}  // namespace fairdms::store
