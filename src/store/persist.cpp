#include "store/persist.hpp"

#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace fairdms::store {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kManifestMagic = 0x464D414E;  // "FMAN"
constexpr std::uint32_t kCollectionMagic = 0x46434F4C; // "FCOL"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), 8);
}
void put_string(std::ofstream& out, const std::string& s) {
  put_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
std::uint32_t get_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), 4);
  return v;
}
std::uint64_t get_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), 8);
  return v;
}
std::string get_string(std::ifstream& in) {
  const std::uint64_t n = get_u64(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

std::string collection_path(const std::string& directory,
                            const std::string& name) {
  return directory + "/" + name + ".col";
}

void save_collection(const Collection& col, const std::string& path) {
  // Collect first, frame after: scan/size/next_id are three independent
  // snapshots on a (possibly sharded) live collection, so the file header
  // must describe what the scan actually captured, and next_id must be
  // read *after* the scan — every captured id was allocated before the
  // scan finished, so a post-scan next_id() bounds them all and restore's
  // `id < next_id` check holds. Under concurrent writers the result is a
  // fuzzy but always-loadable point-in-time snapshot.
  std::vector<std::pair<DocId, Binary>> docs;
  col.scan([&](DocId id, const Value& doc) {
    Binary buf;
    doc.encode(buf);
    docs.emplace_back(id, std::move(buf));
  });
  const DocId next_id = col.next_id();
  const auto fields = col.index_fields();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FAIRDMS_CHECK(out.good(), "cannot write snapshot file ", path);
  put_u32(out, kCollectionMagic);
  put_u32(out, kVersion);
  put_u64(out, next_id);
  put_u64(out, fields.size());
  for (const auto& field : fields) put_string(out, field);
  put_u64(out, docs.size());
  for (const auto& [id, buf] : docs) {
    put_u64(out, id);
    put_u64(out, buf.size());
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  FAIRDMS_CHECK(out.good(), "snapshot write failed for ", path);
}

void load_collection(Collection& col, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FAIRDMS_CHECK(in.good(), "cannot read snapshot file ", path);
  FAIRDMS_CHECK(get_u32(in) == kCollectionMagic, "bad collection magic in ",
                path);
  FAIRDMS_CHECK(get_u32(in) == kVersion, "bad snapshot version in ", path);
  const DocId next_id = get_u64(in);
  const std::uint64_t n_fields = get_u64(in);
  for (std::uint64_t i = 0; i < n_fields; ++i) {
    col.create_index(get_string(in));
  }
  const std::uint64_t count = get_u64(in);
  std::vector<std::pair<DocId, Value>> docs;
  docs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const DocId id = get_u64(in);
    const std::uint64_t bytes = get_u64(in);
    Binary buf(bytes);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(bytes));
    FAIRDMS_CHECK(in.good(), "truncated snapshot ", path);
    docs.emplace_back(id, Value::decode(buf));
  }
  col.restore(next_id, std::move(docs));
}

}  // namespace

void save_store(const DocStore& db, const std::string& directory) {
  fs::create_directories(directory);
  const auto names = db.collection_names();
  {
    std::ofstream manifest(directory + "/manifest.bin",
                           std::ios::binary | std::ios::trunc);
    FAIRDMS_CHECK(manifest.good(), "cannot write manifest in ", directory);
    put_u32(manifest, kManifestMagic);
    put_u32(manifest, kVersion);
    put_u64(manifest, names.size());
    for (const auto& name : names) put_string(manifest, name);
  }
  for (const auto& name : names) {
    // collection() is non-const but does not mutate an existing collection.
    save_collection(const_cast<DocStore&>(db).collection(name),
                    collection_path(directory, name));
  }
}

std::vector<std::string> snapshot_collections(const std::string& directory) {
  std::ifstream manifest(directory + "/manifest.bin", std::ios::binary);
  FAIRDMS_CHECK(manifest.good(), "no snapshot manifest in ", directory);
  FAIRDMS_CHECK(get_u32(manifest) == kManifestMagic, "bad manifest magic");
  FAIRDMS_CHECK(get_u32(manifest) == kVersion, "bad manifest version");
  const std::uint64_t n = get_u64(manifest);
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) names.push_back(get_string(manifest));
  return names;
}

void load_store(DocStore& db, const std::string& directory) {
  for (const auto& name : snapshot_collections(directory)) {
    load_collection(db.collection(name), collection_path(directory, name));
  }
}

}  // namespace fairdms::store
