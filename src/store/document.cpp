#include "store/document.hpp"

#include <cstring>
#include <sstream>

#include "util/check.hpp"

namespace fairdms::store {

namespace {

enum class Tag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kBinary = 5,
  kArray = 6,
  kObject = 7,
};

void put_u64(Binary& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const Binary& in, std::size_t& pos) {
  FAIRDMS_CHECK(pos + 8 <= in.size(), "document decode: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[pos++]} << (8 * i);
  return v;
}

}  // namespace

bool Value::as_bool() const {
  FAIRDMS_CHECK(is_bool(), "Value: not a bool");
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  FAIRDMS_CHECK(is_int(), "Value: not an int");
  return std::get<std::int64_t>(data_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  FAIRDMS_CHECK(is_double(), "Value: not a double");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  FAIRDMS_CHECK(is_string(), "Value: not a string");
  return std::get<std::string>(data_);
}

const Binary& Value::as_binary() const {
  FAIRDMS_CHECK(is_binary(), "Value: not binary");
  return std::get<Binary>(data_);
}

const Array& Value::as_array() const {
  FAIRDMS_CHECK(is_array(), "Value: not an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  FAIRDMS_CHECK(is_object(), "Value: not an object");
  return std::get<Object>(data_);
}

Object& Value::as_object() {
  FAIRDMS_CHECK(is_object(), "Value: not an object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  FAIRDMS_CHECK(it != obj.end(), "Value: missing field '", key, "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

int Value::compare(const Value& other) const {
  const auto ti = data_.index();
  const auto to = other.data_.index();
  if (ti != to) return ti < to ? -1 : 1;
  if (is_null()) return 0;
  if (is_bool()) {
    return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
  }
  if (is_int()) {
    const auto a = as_int(), b = other.as_int();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_double()) {
    const double a = std::get<double>(data_);
    const double b = std::get<double>(other.data_);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string()) return as_string().compare(other.as_string());
  if (is_binary()) {
    const Binary& a = as_binary();
    const Binary& b = other.as_binary();
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    // Empty vectors have a null data(), which memcmp must never see (UB).
    if (a.empty()) return 0;
    return std::memcmp(a.data(), b.data(), a.size());
  }
  if (is_array()) {
    const Array& a = as_array();
    const Array& b = other.as_array();
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      const int c = a[i].compare(b[i]);
      if (c != 0) return c;
    }
    return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
  }
  // object: compare as sorted key/value sequences (std::map is sorted).
  const Object& a = as_object();
  const Object& b = other.as_object();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
    const int ck = ia->first.compare(ib->first);
    if (ck != 0) return ck;
    const int cv = ia->second.compare(ib->second);
    if (cv != 0) return cv;
  }
  return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
}

void Value::encode(Binary& out) const {
  if (is_null()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kNull));
  } else if (is_bool()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kBool));
    out.push_back(as_bool() ? 1 : 0);
  } else if (is_int()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kInt));
    put_u64(out, static_cast<std::uint64_t>(as_int()));
  } else if (is_double()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kDouble));
    std::uint64_t bits;
    const double d = std::get<double>(data_);
    std::memcpy(&bits, &d, 8);
    put_u64(out, bits);
  } else if (is_string()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kString));
    const std::string& s = as_string();
    put_u64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
  } else if (is_binary()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kBinary));
    const Binary& b = as_binary();
    put_u64(out, b.size());
    out.insert(out.end(), b.begin(), b.end());
  } else if (is_array()) {
    out.push_back(static_cast<std::uint8_t>(Tag::kArray));
    const Array& a = as_array();
    put_u64(out, a.size());
    for (const Value& v : a) v.encode(out);
  } else {
    out.push_back(static_cast<std::uint8_t>(Tag::kObject));
    const Object& o = as_object();
    put_u64(out, o.size());
    for (const auto& [k, v] : o) {
      put_u64(out, k.size());
      out.insert(out.end(), k.begin(), k.end());
      v.encode(out);
    }
  }
}

std::size_t Value::encoded_size() const {
  // Mirrors encode(): 1 tag byte, then the payload (u64 lengths/values are 8
  // bytes each). Keep the two in lockstep.
  if (is_null()) return 1;
  if (is_bool()) return 2;
  if (is_int() || is_double()) return 1 + 8;
  if (is_string()) return 1 + 8 + as_string().size();
  if (is_binary()) return 1 + 8 + as_binary().size();
  if (is_array()) {
    std::size_t total = 1 + 8;
    for (const Value& v : as_array()) total += v.encoded_size();
    return total;
  }
  std::size_t total = 1 + 8;
  for (const auto& [k, v] : as_object()) {
    total += 8 + k.size() + v.encoded_size();
  }
  return total;
}

Value Value::decode(const Binary& in, std::size_t& pos) {
  FAIRDMS_CHECK(pos < in.size(), "document decode: truncated tag");
  const auto tag = static_cast<Tag>(in[pos++]);
  switch (tag) {
    case Tag::kNull:
      return Value(nullptr);
    case Tag::kBool: {
      FAIRDMS_CHECK(pos < in.size(), "document decode: truncated bool");
      return Value(in[pos++] != 0);
    }
    case Tag::kInt:
      return Value(static_cast<std::int64_t>(get_u64(in, pos)));
    case Tag::kDouble: {
      const std::uint64_t bits = get_u64(in, pos);
      double d;
      std::memcpy(&d, &bits, 8);
      return Value(d);
    }
    case Tag::kString: {
      const std::uint64_t n = get_u64(in, pos);
      // `n <= size - pos` rather than `pos + n <= size`: a hostile 64-bit
      // length must not wrap the addition and slip past the bounds check.
      FAIRDMS_CHECK(n <= in.size() - pos, "document decode: truncated string");
      std::string s(in.begin() + static_cast<std::ptrdiff_t>(pos),
                    in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      return Value(std::move(s));
    }
    case Tag::kBinary: {
      const std::uint64_t n = get_u64(in, pos);
      FAIRDMS_CHECK(n <= in.size() - pos, "document decode: truncated binary");
      Binary b(in.begin() + static_cast<std::ptrdiff_t>(pos),
               in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      return Value(std::move(b));
    }
    case Tag::kArray: {
      const std::uint64_t n = get_u64(in, pos);
      Array a;
      // Each element costs >= 1 input byte, so the remaining input bounds
      // any honest count — don't let a hostile header force a huge alloc.
      a.reserve(std::min<std::uint64_t>(n, in.size() - pos));
      for (std::uint64_t i = 0; i < n; ++i) a.push_back(decode(in, pos));
      return Value(std::move(a));
    }
    case Tag::kObject: {
      const std::uint64_t n = get_u64(in, pos);
      Object o;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t klen = get_u64(in, pos);
        FAIRDMS_CHECK(klen <= in.size() - pos,
                      "document decode: truncated key");
        std::string key(in.begin() + static_cast<std::ptrdiff_t>(pos),
                        in.begin() + static_cast<std::ptrdiff_t>(pos + klen));
        pos += klen;
        o.emplace(std::move(key), decode(in, pos));
      }
      return Value(std::move(o));
    }
  }
  FAIRDMS_CHECK(false, "document decode: unknown tag");
  return Value(nullptr);
}

Value Value::decode(const Binary& in) {
  std::size_t pos = 0;
  Value v = decode(in, pos);
  FAIRDMS_CHECK(pos == in.size(), "document decode: trailing bytes");
  return v;
}

namespace {

/// Nesting deeper than this is treated as corruption: honest documents are
/// a handful of levels, and an adversarial byte stream of nested array
/// headers must not recurse the stack into the ground.
constexpr int kMaxDecodeDepth = 64;

bool try_get_u64(const Binary& in, std::size_t& pos, std::uint64_t& v) {
  if (in.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[pos++]} << (8 * i);
  return true;
}

/// Failure-returning mirror of Value::decode. Every length is checked
/// against the *remaining* input before use (overflow-proof form), so no
/// corrupt header can trigger an oversized allocation or an out-of-bounds
/// read.
bool try_decode_value(const Binary& in, std::size_t& pos, Value& out,
                      int depth) {
  if (depth > kMaxDecodeDepth) return false;
  if (pos >= in.size()) return false;
  const auto tag = static_cast<Tag>(in[pos++]);
  switch (tag) {
    case Tag::kNull:
      out = Value(nullptr);
      return true;
    case Tag::kBool: {
      if (pos >= in.size()) return false;
      out = Value(in[pos++] != 0);
      return true;
    }
    case Tag::kInt: {
      std::uint64_t v = 0;
      if (!try_get_u64(in, pos, v)) return false;
      out = Value(static_cast<std::int64_t>(v));
      return true;
    }
    case Tag::kDouble: {
      std::uint64_t bits = 0;
      if (!try_get_u64(in, pos, bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      out = Value(d);
      return true;
    }
    case Tag::kString: {
      std::uint64_t n = 0;
      if (!try_get_u64(in, pos, n)) return false;
      if (n > in.size() - pos) return false;
      std::string s(in.begin() + static_cast<std::ptrdiff_t>(pos),
                    in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      out = Value(std::move(s));
      return true;
    }
    case Tag::kBinary: {
      std::uint64_t n = 0;
      if (!try_get_u64(in, pos, n)) return false;
      if (n > in.size() - pos) return false;
      Binary b(in.begin() + static_cast<std::ptrdiff_t>(pos),
               in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      out = Value(std::move(b));
      return true;
    }
    case Tag::kArray: {
      std::uint64_t n = 0;
      if (!try_get_u64(in, pos, n)) return false;
      if (n > in.size() - pos) return false;  // each element is >= 1 byte
      Array a;
      a.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        Value v;
        if (!try_decode_value(in, pos, v, depth + 1)) return false;
        a.push_back(std::move(v));
      }
      out = Value(std::move(a));
      return true;
    }
    case Tag::kObject: {
      std::uint64_t n = 0;
      if (!try_get_u64(in, pos, n)) return false;
      if (n > (in.size() - pos) / 9) return false;  // key len u64 + tag
      Object o;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t klen = 0;
        if (!try_get_u64(in, pos, klen)) return false;
        if (klen > in.size() - pos) return false;
        std::string key(in.begin() + static_cast<std::ptrdiff_t>(pos),
                        in.begin() + static_cast<std::ptrdiff_t>(pos + klen));
        pos += klen;
        Value v;
        if (!try_decode_value(in, pos, v, depth + 1)) return false;
        o.emplace(std::move(key), std::move(v));
      }
      out = Value(std::move(o));
      return true;
    }
  }
  return false;  // unknown tag
}

}  // namespace

std::optional<Value> Value::try_decode(const Binary& in) {
  std::size_t pos = 0;
  Value v;
  if (!try_decode_value(in, pos, v, 0)) return std::nullopt;
  if (pos != in.size()) return std::nullopt;  // trailing bytes
  return v;
}

std::string Value::to_json() const {
  std::ostringstream oss;
  if (is_null()) {
    oss << "null";
  } else if (is_bool()) {
    oss << (as_bool() ? "true" : "false");
  } else if (is_int()) {
    oss << as_int();
  } else if (is_double()) {
    oss << std::get<double>(data_);
  } else if (is_string()) {
    oss << '"' << as_string() << '"';
  } else if (is_binary()) {
    oss << "\"<" << as_binary().size() << " bytes>\"";
  } else if (is_array()) {
    oss << '[';
    const Array& a = as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) oss << ',';
      oss << a[i].to_json();
    }
    oss << ']';
  } else {
    oss << '{';
    bool first = true;
    for (const auto& [k, v] : as_object()) {
      if (!first) oss << ',';
      first = false;
      oss << '"' << k << "\":" << v.to_json();
    }
    oss << '}';
  }
  return oss.str();
}

}  // namespace fairdms::store
