// NFS-analog file store: one file per sample on local disk, read through the
// same RemoteLink network model as the document store. This is the paper's
// "read training data directly from NFS over 100 GbE" baseline: no
// serialization layer (raw bytes), but a per-file open/request cost.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/trainer.hpp"
#include "store/remote_link.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::store {

class NfsStore {
 public:
  /// Files live under `root` (created if missing).
  NfsStore(std::string root, RemoteLinkConfig link_config);

  /// Writes every sample of `data` as <root>/<name>_<i>.bin plus a metadata
  /// file recording shapes. Overwrites existing files.
  void write_dataset(const std::string& name, const nn::Batchset& data);

  /// Per-sample shapes (without the leading batch dim).
  [[nodiscard]] std::vector<std::size_t> x_shape(const std::string& name) const;
  [[nodiscard]] std::vector<std::size_t> y_shape(const std::string& name) const;
  [[nodiscard]] std::size_t sample_count(const std::string& name) const;

  /// Reads sample i (x and y payloads); charges the link for the bytes.
  void read_sample(const std::string& name, std::size_t index,
                   std::vector<float>& x, std::vector<float>& y) const;

  [[nodiscard]] const RemoteLink& link() const { return link_; }

 private:
  struct Meta {
    std::vector<std::size_t> x_shape;
    std::vector<std::size_t> y_shape;
    std::size_t count = 0;
  };
  /// Metadata is cached after first read (clients stat once, then stream).
  /// Returned *by value*: a reference into meta_cache_ would escape
  /// meta_mutex_ and dangle when a concurrent write_dataset erases the
  /// entry (the lock contract the annotations now enforce).
  [[nodiscard]] Meta read_meta(const std::string& name) const
      EXCLUDES(meta_mutex_);
  [[nodiscard]] std::string sample_path(const std::string& name,
                                        std::size_t index) const;

  std::string root_;
  RemoteLink link_;
  mutable util::Mutex meta_mutex_{util::LockRank::kNfsMeta};
  mutable std::map<std::string, Meta> meta_cache_ GUARDED_BY(meta_mutex_);
};

}  // namespace fairdms::store
