// Dataset abstraction consumed by the DataLoader (the PyTorch Dataset
// analog): random access to (x, y) sample pairs with uniform per-sample
// shapes. Three backends mirror the paper's storage configurations:
// in-memory (tests), MongoDB-analog document store with a pluggable codec
// (Blosc/Pickle), and NFS-analog file store (raw bytes).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/trainer.hpp"
#include "store/codec.hpp"
#include "store/docstore.hpp"
#include "store/nfs.hpp"

namespace fairdms::store {

struct Sample {
  std::vector<float> x;
  std::vector<float> y;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  [[nodiscard]] virtual std::size_t size() const = 0;
  /// Thread-safe random access (DataLoader workers call concurrently).
  virtual void get(std::size_t index, Sample& out) const = 0;
  /// Per-sample shapes, excluding the batch dimension.
  [[nodiscard]] virtual std::vector<std::size_t> x_shape() const = 0;
  [[nodiscard]] virtual std::vector<std::size_t> y_shape() const = 0;
};

/// Wraps a Batchset already resident in RAM.
class InMemoryDataset final : public Dataset {
 public:
  explicit InMemoryDataset(nn::Batchset data);
  [[nodiscard]] std::size_t size() const override { return count_; }
  void get(std::size_t index, Sample& out) const override;
  [[nodiscard]] std::vector<std::size_t> x_shape() const override {
    return x_shape_;
  }
  [[nodiscard]] std::vector<std::size_t> y_shape() const override {
    return y_shape_;
  }

 private:
  nn::Batchset data_;
  std::size_t count_;
  std::vector<std::size_t> x_shape_;
  std::vector<std::size_t> y_shape_;
};

/// Samples stored as documents {index, x: Binary, y: Binary} in a
/// collection, payloads encoded with `codec`. `ingest` bulk-loads a
/// Batchset and builds the index on "index".
class MongoDataset final : public Dataset {
 public:
  MongoDataset(Collection& collection, std::unique_ptr<Codec> codec,
               std::vector<std::size_t> x_shape,
               std::vector<std::size_t> y_shape);

  /// Encodes and bulk-inserts `data`; returns a ready-to-read dataset.
  static std::unique_ptr<MongoDataset> ingest(Collection& collection,
                                              const nn::Batchset& data,
                                              const std::string& codec_name);

  [[nodiscard]] std::size_t size() const override;
  void get(std::size_t index, Sample& out) const override;
  [[nodiscard]] std::vector<std::size_t> x_shape() const override {
    return x_shape_;
  }
  [[nodiscard]] std::vector<std::size_t> y_shape() const override {
    return y_shape_;
  }

 private:
  Collection* collection_;
  std::unique_ptr<Codec> codec_;
  std::vector<std::size_t> x_shape_;
  std::vector<std::size_t> y_shape_;
};

/// Samples read from an NfsStore dataset written earlier.
class NfsDataset final : public Dataset {
 public:
  NfsDataset(const NfsStore& nfs, std::string name);
  [[nodiscard]] std::size_t size() const override { return count_; }
  void get(std::size_t index, Sample& out) const override;
  [[nodiscard]] std::vector<std::size_t> x_shape() const override {
    return x_shape_;
  }
  [[nodiscard]] std::vector<std::size_t> y_shape() const override {
    return y_shape_;
  }

 private:
  const NfsStore* nfs_;
  std::string name_;
  std::size_t count_;
  std::vector<std::size_t> x_shape_;
  std::vector<std::size_t> y_shape_;
};

}  // namespace fairdms::store
