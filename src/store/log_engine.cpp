#include "store/log_engine.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/check.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"

namespace fairdms::store {

namespace {

constexpr std::uint32_t kSegmentMagic = 0x464C4F47;  // "FLOG"
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kHeaderBytes = 16;  // magic + version + shard salt
// len(4) + kind(1) + id(8) + checksum(4)
constexpr std::size_t kRecordOverhead = 17;
constexpr std::size_t kPayloadOffsetInRecord = 13;
constexpr std::uint8_t kPut = 1;
constexpr std::uint8_t kTombstone = 2;
constexpr std::size_t kInitialMapCapacity = std::size_t{1} << 20;  // 1 MiB

void put_le(std::uint8_t* out, std::uint64_t v, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t read_le(const std::uint8_t* p, int n) {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// FNV-1a over kind + id bytes + payload: cheap, and torn tails are the
/// threat model (a prefix of a valid record), not adversarial collisions.
std::uint32_t record_checksum(std::uint8_t kind, DocId id,
                              std::span<const std::uint8_t> payload) {
  std::uint32_t h = 2166136261u;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  mix(kind);
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<std::uint8_t>(id >> (8 * i)));
  }
  for (const std::uint8_t byte : payload) mix(byte);
  return h;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

LogEngine::LogEngine(std::string path, bool fsync_appends)
    : path_(std::move(path)), fsync_appends_(fsync_appends) {
  open_and_replay();
}

LogEngine::~LogEngine() { close_files(); }

void LogEngine::close_files() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_capacity_);
    map_ = nullptr;
    map_capacity_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void LogEngine::ensure_mapped(std::size_t size) {
  if (size <= map_capacity_) return;
  std::size_t capacity = std::max(map_capacity_, kInitialMapCapacity);
  while (capacity < size) capacity *= 2;
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_capacity_);
    map_ = nullptr;
  }
  // Mapping beyond EOF is fine: only offsets < file_size_ are ever read,
  // and those pages exist. Sizing the map ahead of the file keeps remaps
  // off the shared-lock read path entirely.
  void* mapped =
      ::mmap(nullptr, capacity, PROT_READ, MAP_SHARED, fd_, 0);
  FAIRDMS_CHECK(mapped != MAP_FAILED, "mmap failed for ", path_, ": ",
                std::strerror(errno));
  map_ = static_cast<const std::uint8_t*>(mapped);
  map_capacity_ = capacity;
}

void LogEngine::open_and_replay() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  FAIRDMS_CHECK(fd_ >= 0, "cannot open log segment ", path_, ": ",
                std::strerror(errno));
  struct stat st{};
  FAIRDMS_CHECK(::fstat(fd_, &st) == 0, "cannot stat ", path_);
  file_size_ = static_cast<std::size_t>(st.st_size);

  if (file_size_ < kHeaderBytes) {
    // Empty, or a writer died inside the initial header write — either
    // way there cannot be any committed record; start the segment fresh.
    if (file_size_ != 0) {
      util::log_info("log segment ", path_, ": discarding ", file_size_,
                     " torn header byte(s)");
      FAIRDMS_CHECK(::ftruncate(fd_, 0) == 0, "cannot truncate torn header of ",
                    path_);
    }
    std::uint8_t header[kHeaderBytes] = {};
    put_le(header, kSegmentMagic, 4);
    put_le(header + 4, kSegmentVersion, 4);
    put_le(header + 8, 0, 8);  // reserved
    FAIRDMS_CHECK(write_all(fd_, header, kHeaderBytes),
                  "cannot initialize log segment ", path_);
    file_size_ = kHeaderBytes;
    ensure_mapped(file_size_);
    return;
  }

  ensure_mapped(file_size_);
  FAIRDMS_CHECK(read_le(map_, 4) == kSegmentMagic, "bad magic in ", path_,
                " (not a log segment)");
  FAIRDMS_CHECK(read_le(map_ + 4, 4) == kSegmentVersion,
                "unsupported log segment version in ", path_);

  // Replay. Stop at the first incomplete or checksum-failing record: with
  // sequential appends that is the torn tail of a crashed writer, and
  // everything before it is intact by construction.
  std::size_t pos = kHeaderBytes;
  while (true) {
    if (file_size_ - pos < kRecordOverhead) break;
    const auto len =
        static_cast<std::uint32_t>(read_le(map_ + pos, 4));
    if (file_size_ - pos < kRecordOverhead + len) break;
    const auto kind = static_cast<std::uint8_t>(map_[pos + 4]);
    const DocId id = read_le(map_ + pos + 5, 8);
    const std::span<const std::uint8_t> payload(
        map_ + pos + kPayloadOffsetInRecord, len);
    const auto stored_sum = static_cast<std::uint32_t>(
        read_le(map_ + pos + kPayloadOffsetInRecord + len, 4));
    if (stored_sum != record_checksum(kind, id, payload) ||
        (kind != kPut && kind != kTombstone)) {
      break;
    }
    auto it = entries_.find(id);
    if (kind == kPut) {
      if (it != entries_.end()) payload_bytes_ -= it->second.length;
      entries_[id] =
          Entry{pos + kPayloadOffsetInRecord, len};
      payload_bytes_ += len;
    } else if (it != entries_.end()) {
      payload_bytes_ -= it->second.length;
      entries_.erase(it);
    }
    pos += kRecordOverhead + len;
  }

  if (pos != file_size_) {
    util::log_info("log segment ", path_, ": recovered ", entries_.size(),
                   " document(s), truncating ", file_size_ - pos,
                   " torn tail byte(s) at offset ", pos);
    FAIRDMS_CHECK(::ftruncate(fd_, static_cast<off_t>(pos)) == 0,
                  "cannot truncate torn tail of ", path_);
    file_size_ = pos;
  }
}

std::uint64_t LogEngine::append_record(std::uint8_t kind, DocId id,
                                       std::span<const std::uint8_t> payload) {
  FAIRDMS_CHECK(payload.size() <= UINT32_MAX, "log record payload too large (",
                payload.size(), " bytes)");
  Binary record(kRecordOverhead + payload.size());
  put_le(record.data(), payload.size(), 4);
  record[4] = kind;
  put_le(record.data() + 5, id, 8);
  if (!payload.empty()) {
    std::memcpy(record.data() + kPayloadOffsetInRecord, payload.data(),
                payload.size());
  }
  put_le(record.data() + kPayloadOffsetInRecord + payload.size(),
         record_checksum(kind, id, payload), 4);
  FAIRDMS_CHECK(write_all(fd_, record.data(), record.size()),
                "append failed for ", path_, ": ", std::strerror(errno));
  const std::uint64_t payload_offset = file_size_ + kPayloadOffsetInRecord;
  file_size_ += record.size();
  if (fsync_appends_) {
    FAIRDMS_CHECK(::fdatasync(fd_) == 0, "fdatasync failed for ", path_);
  }
  ensure_mapped(file_size_);
  return payload_offset;
}

Value LogEngine::load_doc(const Entry& entry) const {
  Binary buf(map_ + entry.offset, map_ + entry.offset + entry.length);
  return Value::decode(buf);
}

void LogEngine::insert(DocId id, Value doc, std::size_t bytes) {
  Binary payload;
  payload.reserve(bytes);
  doc.encode(payload);
  const std::uint64_t offset = append_record(kPut, id, payload);
  entries_[id] = Entry{offset, static_cast<std::uint32_t>(payload.size())};
  payload_bytes_ += payload.size();
  indexes_.insert(id, doc);
}

std::optional<Value> LogEngine::fetch(DocId id,
                                      std::span<const std::string> fields,
                                      std::size_t& charged_bytes) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  Value doc = load_doc(it->second);
  if (fields.empty()) {
    charged_bytes += it->second.length;
    return doc;
  }
  return project_fields(doc, fields, charged_bytes);
}

bool LogEngine::replace(DocId id, Value doc, std::size_t& stored_bytes) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const Value old = load_doc(it->second);
  indexes_.remove(id, old);
  payload_bytes_ -= it->second.length;
  Binary payload;
  doc.encode(payload);
  const std::uint64_t offset = append_record(kPut, id, payload);
  it->second = Entry{offset, static_cast<std::uint32_t>(payload.size())};
  payload_bytes_ += payload.size();
  indexes_.insert(id, doc);
  stored_bytes = payload.size();
  return true;
}

bool LogEngine::update(DocId id, Object fields) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  Value doc = load_doc(it->second);
  indexes_.remove(id, doc);
  payload_bytes_ -= it->second.length;
  Object& obj = doc.as_object();
  for (auto& [field, value] : fields) {
    obj[field] = std::move(value);
  }
  Binary payload;
  doc.encode(payload);
  const std::uint64_t offset = append_record(kPut, id, payload);
  it->second = Entry{offset, static_cast<std::uint32_t>(payload.size())};
  payload_bytes_ += payload.size();
  indexes_.insert(id, doc);
  return true;
}

bool LogEngine::erase(DocId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const Value old = load_doc(it->second);
  append_record(kTombstone, id, {});
  indexes_.remove(id, old);
  payload_bytes_ -= it->second.length;
  entries_.erase(it);
  return true;
}

void LogEngine::create_index(const std::string& field) {
  if (!indexes_.create(field)) return;
  for (const auto& [id, entry] : entries_) {
    indexes_.insert_into(field, id, load_doc(entry));
  }
}

bool LogEngine::has_index(const std::string& field) const {
  return indexes_.contains(field);
}

std::vector<std::string> LogEngine::index_fields() const {
  return indexes_.fields();
}

void LogEngine::find_eq(const std::string& field, const Value& value,
                        std::vector<DocId>& out) const {
  if (indexes_.find_eq(field, value, out)) return;
  for (const auto& [id, entry] : entries_) {
    const Value doc = load_doc(entry);
    if (doc.contains(field) && doc.at(field) == value) out.push_back(id);
  }
}

void LogEngine::find_range(const std::string& field, const Value& lo,
                           const Value& hi, std::vector<DocId>& out) const {
  if (indexes_.find_range(field, lo, hi, out)) return;
  for (const auto& [id, entry] : entries_) {
    const Value doc = load_doc(entry);
    if (!doc.contains(field)) continue;
    const Value& v = doc.at(field);
    if (!(v < lo) && v < hi) out.push_back(id);
  }
}

void LogEngine::scan(
    const std::function<void(DocId, const Value&)>& fn) const {
  for (const auto& [id, entry] : entries_) {
    const Value doc = load_doc(entry);
    fn(id, doc);
  }
}

void LogEngine::append_ids(std::vector<DocId>& out) const {
  out.reserve(out.size() + entries_.size());
  for (const auto& [id, _] : entries_) out.push_back(id);
}

void LogEngine::compact() {
  const std::string tmp = path_ + ".tmp";
  const int tfd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  FAIRDMS_CHECK(tfd >= 0, "cannot create ", tmp, ": ", std::strerror(errno));

  std::uint8_t header[kHeaderBytes] = {};
  put_le(header, kSegmentMagic, 4);
  put_le(header + 4, kSegmentVersion, 4);
  bool ok = write_all(tfd, header, kHeaderBytes);
  std::map<DocId, Entry> rewritten;
  std::size_t new_size = kHeaderBytes;
  for (const auto& [id, entry] : entries_) {
    if (!ok) break;
    const std::span<const std::uint8_t> payload(map_ + entry.offset,
                                                entry.length);
    Binary record(kRecordOverhead + payload.size());
    put_le(record.data(), payload.size(), 4);
    record[4] = kPut;
    put_le(record.data() + 5, id, 8);
    std::memcpy(record.data() + kPayloadOffsetInRecord, payload.data(),
                payload.size());
    put_le(record.data() + kPayloadOffsetInRecord + payload.size(),
           record_checksum(kPut, id, payload), 4);
    ok = write_all(tfd, record.data(), record.size());
    rewritten[id] = Entry{new_size + kPayloadOffsetInRecord, entry.length};
    new_size += record.size();
  }
  if (ok) ok = ::fsync(tfd) == 0;
  ::close(tfd);
  FAIRDMS_CHECK(ok, "compaction write failed for ", tmp, ": ",
                std::strerror(errno));
  FAIRDMS_CHECK(std::rename(tmp.c_str(), path_.c_str()) == 0,
                "compaction rename failed for ", path_, ": ",
                std::strerror(errno));
  std::string error;
  FAIRDMS_CHECK(util::fsync_parent_dir(path_, &error),
                "compaction dir fsync failed: ", error);

  // Swap to the rotated segment: the old fd/mapping still reference the
  // unlinked inode until closed.
  close_files();
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  FAIRDMS_CHECK(fd_ >= 0, "cannot reopen compacted segment ", path_);
  file_size_ = new_size;
  ensure_mapped(file_size_);
  entries_ = std::move(rewritten);
}

}  // namespace fairdms::store
