#include "models/models.hpp"

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/reshape.hpp"
#include "nn/upsample.hpp"
#include "util/check.hpp"

namespace fairdms::models {

TaskModel make_braggnn(std::uint64_t seed, std::size_t patch_size) {
  FAIRDMS_CHECK(patch_size >= 7, "BraggNN needs patches >= 7px");
  TaskModel model;
  model.architecture = "braggnn";
  model.rng = std::make_unique<util::Rng>(seed);
  util::Rng& rng = *model.rng;

  // Two valid (unpadded) 3x3 conv stages, then an MLP head with dropout —
  // the BraggNN shape at reduced width for CPU training.
  const std::size_t s1 = patch_size - 2;
  const std::size_t s2 = s1 - 2;
  model.net.emplace<nn::Conv2d>(1, 8, 3, rng);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Conv2d>(8, 16, 3, rng);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Flatten>();
  model.net.emplace<nn::Linear>(16 * s2 * s2, 64, rng);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Dropout>(0.1f, rng);
  model.net.emplace<nn::Linear>(64, 16, rng);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Linear>(16, 2, rng);
  return model;
}

TaskModel make_cookienetae(std::uint64_t seed, std::size_t image_size) {
  FAIRDMS_CHECK(image_size % 2 == 0, "CookieNetAE needs an even image size");
  TaskModel model;
  model.architecture = "cookienetae";
  model.rng = std::make_unique<util::Rng>(seed);
  util::Rng& rng = *model.rng;

  // Autoencoder with a dense bottleneck (the "AE" in CookieNetAE): the
  // bottleneck forces a dataset-specific prior over spectra, which is what
  // makes foundation choice matter when fine-tuning (Figs. 11, 13).
  const std::size_t half = image_size / 2;
  const std::size_t latent_in = 6 * half * half;
  model.net.emplace<nn::Conv2d>(1, 6, 3, rng, /*stride=*/1, /*padding=*/1);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::MaxPool2d>(2);
  model.net.emplace<nn::Flatten>();
  model.net.emplace<nn::Linear>(latent_in, 48, rng);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Dropout>(0.05f, rng);
  model.net.emplace<nn::Linear>(48, latent_in, rng);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Unflatten>(6, half, half);
  model.net.emplace<nn::Upsample2d>(2);
  model.net.emplace<nn::Conv2d>(6, 1, 3, rng, 1, 1);
  return model;
}

TaskModel make_tomonet(std::uint64_t seed) {
  TaskModel model;
  model.architecture = "tomonet";
  model.rng = std::make_unique<util::Rng>(seed);
  util::Rng& rng = *model.rng;

  model.net.emplace<nn::Conv2d>(1, 8, 3, rng, 1, 1);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Conv2d>(8, 8, 3, rng, 1, 1);
  model.net.emplace<nn::ReLU>();
  model.net.emplace<nn::Conv2d>(8, 1, 3, rng, 1, 1);
  return model;
}

TaskModel make_model(const std::string& architecture, std::uint64_t seed,
                     std::size_t patch_size) {
  if (architecture == "braggnn") return make_braggnn(seed, patch_size);
  if (architecture == "cookienetae") return make_cookienetae(seed, patch_size);
  if (architecture == "tomonet") return make_tomonet(seed);
  FAIRDMS_CHECK(false, "unknown architecture: ", architecture);
  return TaskModel{};
}

}  // namespace fairdms::models
