// Task-model factories for the paper's benchmark applications.
//
//  * BraggNN (Liu et al., IUCrJ 2022): small conv net regressing the
//    sub-pixel center of mass of a Bragg peak from a 15x15 patch — the fast
//    surrogate for pseudo-Voigt fitting.
//  * CookieNetAE: conv encoder-decoder estimating the smooth energy-angle
//    probability density from a noisy CookieBox histogram image.
//  * TomoNet (TomoGAN-style): conv denoiser for low-dose tomography frames.
//
// Each model owns its RNG (dropout needs one at inference for MC sampling),
// so the factory returns a TaskModel wrapper whose RNG outlives the layers.
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fairdms::models {

struct TaskModel {
  std::string architecture;
  std::unique_ptr<util::Rng> rng;  ///< owned; referenced by Dropout layers
  nn::Sequential net;
};

/// BraggNN analog: [N,1,S,S] -> [N,2] normalized peak center.
TaskModel make_braggnn(std::uint64_t seed, std::size_t patch_size = 15);

/// CookieNetAE analog: [N,1,S,S] -> [N,1,S,S] energy-density estimate
/// (autoencoder with a dense bottleneck; S must be even).
TaskModel make_cookienetae(std::uint64_t seed, std::size_t image_size = 32);

/// TomoNet analog: [N,1,S,S] -> [N,1,S,S] denoised frame.
TaskModel make_tomonet(std::uint64_t seed);

/// Factory by architecture name ("braggnn" | "cookienetae" | "tomonet") —
/// the key the model Zoo stores records under.
TaskModel make_model(const std::string& architecture, std::uint64_t seed,
                     std::size_t patch_size = 15);

}  // namespace fairdms::models
