#include "fairms/jsd.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace fairdms::fairms {

namespace {
std::vector<double> normalized(std::span<const double> p) {
  double total = 0.0;
  for (double v : p) {
    FAIRDMS_CHECK(v >= 0.0, "distribution has negative mass");
    total += v;
  }
  FAIRDMS_CHECK(total > 0.0, "distribution has zero mass");
  std::vector<double> out(p.begin(), p.end());
  for (double& v : out) v /= total;
  return out;
}
}  // namespace

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  FAIRDMS_CHECK(p.size() == q.size(), "KL: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    FAIRDMS_CHECK(q[i] > 0.0, "KL: q does not dominate p at bin ", i);
    sum += p[i] * std::log2(p[i] / q[i]);
  }
  return sum;
}

double jensen_shannon_divergence(std::span<const double> p,
                                 std::span<const double> q) {
  FAIRDMS_CHECK(p.size() == q.size(), "JSD: size mismatch (", p.size(),
                " vs ", q.size(), ")");
  const std::vector<double> pn = normalized(p);
  const std::vector<double> qn = normalized(q);
  double sum = 0.0;
  for (std::size_t i = 0; i < pn.size(); ++i) {
    const double m = 0.5 * (pn[i] + qn[i]);
    if (pn[i] > 0.0) sum += 0.5 * pn[i] * std::log2(pn[i] / m);
    if (qn[i] > 0.0) sum += 0.5 * qn[i] * std::log2(qn[i] / m);
  }
  // Clamp tiny negative rounding residue.
  return sum < 0.0 ? 0.0 : sum;
}

}  // namespace fairdms::fairms
