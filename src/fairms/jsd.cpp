#include "fairms/jsd.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace fairdms::fairms {

namespace {

/// Total mass of `p`, or nullopt when `p` is not a valid distribution —
/// the single definition of validity that is_valid_pdf and try_normalized
/// both gate on (they must never disagree about the same record).
std::optional<double> checked_total(std::span<const double> p) noexcept {
  if (p.empty()) return std::nullopt;
  double total = 0.0;
  for (double v : p) {
    if (!std::isfinite(v) || v < 0.0) return std::nullopt;
    total += v;
  }
  if (!(total > 0.0) || !std::isfinite(total)) return std::nullopt;
  return total;
}

/// Aborting wrapper over try_normalized for the callers whose contract is
/// "a malformed distribution is a caller bug".
std::vector<double> normalized(std::span<const double> p) {
  auto out = try_normalized(p);
  FAIRDMS_CHECK(out.has_value(),
                "distribution is not normalizable (empty, negative or "
                "non-finite mass, or zero total)");
  return std::move(*out);
}

}  // namespace

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  FAIRDMS_CHECK(p.size() == q.size(), "KL: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    FAIRDMS_CHECK(q[i] > 0.0, "KL: q does not dominate p at bin ", i);
    sum += p[i] * std::log2(p[i] / q[i]);
  }
  return sum;
}

double jensen_shannon_divergence(std::span<const double> p,
                                 std::span<const double> q) {
  const std::vector<double> pn = normalized(p);
  const std::vector<double> qn = normalized(q);
  return jsd_normalized(pn, qn);
}

bool is_valid_pdf(std::span<const double> p) noexcept {
  return checked_total(p).has_value();
}

std::optional<std::vector<double>> try_normalized(std::span<const double> p) {
  const auto total = checked_total(p);
  if (!total.has_value()) return std::nullopt;
  std::vector<double> out(p.begin(), p.end());
  for (double& v : out) v /= *total;
  return out;
}

double jsd_normalized(std::span<const double> p, std::span<const double> q) {
  FAIRDMS_CHECK(p.size() == q.size(), "JSD: size mismatch (", p.size(),
                " vs ", q.size(), ")");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double m = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0) sum += 0.5 * p[i] * std::log2(p[i] / m);
    if (q[i] > 0.0) sum += 0.5 * q[i] * std::log2(q[i] / m);
  }
  // Clamp tiny negative rounding residue.
  return sum < 0.0 ? 0.0 : sum;
}

}  // namespace fairdms::fairms
