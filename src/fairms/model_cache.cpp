#include "fairms/model_cache.hpp"

#include <utility>

namespace fairdms::fairms {

namespace {
/// Per-entry bookkeeping overhead (map node, LRU node, control blocks) so a
/// budget of N small entries doesn't admit an unbounded count of tiny PDFs.
constexpr std::size_t kEntryOverhead = 64;
}  // namespace

ModelCache::ModelCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::size_t ModelCache::record_bytes(std::size_t blob_bytes,
                                     std::size_t pdf_len,
                                     std::size_t arch_len,
                                     std::size_t dataset_len) {
  return kEntryOverhead + blob_bytes + pdf_len * sizeof(double) + arch_len +
         dataset_len;
}

std::size_t ModelCache::record_bytes(const CachedModel& record) {
  return record_bytes(
      record.parameters != nullptr ? record.parameters->size() : 0,
      record.train_pdf.size(), record.architecture.size(),
      record.dataset_id.size());
}

bool ModelCache::admits_record(std::size_t blob_bytes, std::size_t pdf_len,
                               std::size_t arch_len,
                               std::size_t dataset_len) const {
  util::MutexLock lock(mutex_);
  return record_bytes(blob_bytes, pdf_len, arch_len, dataset_len) <=
         budget_bytes_;
}

std::size_t ModelCache::pdf_bytes(const std::vector<double>& pdf) {
  return kEntryOverhead + pdf.size() * sizeof(double);
}

void ModelCache::touch_locked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void ModelCache::erase_locked(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ModelCache::insert_locked(const Key& key, Entry&& entry) {
  erase_locked(key);
  if (entry.bytes > budget_bytes_) return;  // would evict the whole cache
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  resident_bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  evict_to_budget_locked();
}

void ModelCache::evict_to_budget_locked() {
  while (resident_bytes_ > budget_bytes_ && !lru_.empty()) {
    erase_locked(lru_.back());
    ++evictions_;
  }
}

ModelCache::RecordPtr ModelCache::get_record(store::DocId id) {
  util::MutexLock lock(mutex_);
  const auto it = entries_.find(Key{id, /*is_pdf=*/false});
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch_locked(it->second);
  return it->second.record;
}

void ModelCache::put_record(RecordPtr record) {
  if (record == nullptr) return;
  util::MutexLock lock(mutex_);
  const auto floor = floors_.find(record->id);
  if (floor != floors_.end() && record->revision < floor->second) {
    return;  // raced a mutation: this read is already stale
  }
  Entry entry;
  entry.revision = record->revision;
  entry.bytes = record_bytes(*record);
  entry.record = std::move(record);
  insert_locked(Key{entry.record->id, /*is_pdf=*/false}, std::move(entry));
}

ModelCache::PdfPtr ModelCache::get_pdf(store::DocId id,
                                       std::uint64_t revision) {
  util::MutexLock lock(mutex_);
  const Key key{id, /*is_pdf=*/true};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.revision != revision) {
    // Only evict a *stale* entry. A newer cached revision means the
    // caller's store read raced a mutation — dropping the writer's fresh
    // pre-warm would force the next reader to refetch for nothing.
    if (it->second.revision < revision) {
      erase_locked(key);
      ++invalidations_;
    }
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch_locked(it->second);
  return it->second.pdf;
}

void ModelCache::put_pdf(store::DocId id, std::uint64_t revision,
                         PdfPtr pdf) {
  if (pdf == nullptr) return;
  util::MutexLock lock(mutex_);
  const auto floor = floors_.find(id);
  if (floor != floors_.end() && revision < floor->second) return;
  Entry entry;
  entry.revision = revision;
  entry.bytes = pdf_bytes(*pdf);
  entry.pdf = std::move(pdf);
  insert_locked(Key{id, /*is_pdf=*/true}, std::move(entry));
}

void ModelCache::invalidate_below(store::DocId id, std::uint64_t revision) {
  util::MutexLock lock(mutex_);
  auto& floor = floors_[id];
  if (revision > floor) floor = revision;
  for (const bool is_pdf : {false, true}) {
    const Key key{id, is_pdf};
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.revision < revision) {
      erase_locked(key);
      ++invalidations_;
    }
  }
}

void ModelCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  floors_.clear();
  resident_bytes_ = 0;
}

void ModelCache::set_budget(std::size_t budget_bytes) {
  util::MutexLock lock(mutex_);
  budget_bytes_ = budget_bytes;
  evict_to_budget_locked();
}

std::size_t ModelCache::budget() const {
  util::MutexLock lock(mutex_);
  return budget_bytes_;
}

ModelCacheStats ModelCache::stats() const {
  util::MutexLock lock(mutex_);
  ModelCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.invalidations = invalidations_;
  out.entries = entries_.size();
  out.resident_bytes = resident_bytes_;
  out.budget_bytes = budget_bytes_;
  return out;
}

}  // namespace fairdms::fairms
