// fairMS model Zoo (paper §II-B, Fig. 4): every trained model is stored with
// the *cluster-PDF of its training dataset* as its index key, so the best
// foundation for fine-tuning can be found without running any inference —
// just a JSD comparison of distributions.
//
// The zoo is a *versioned* registry (the FAIR-models framing of
// arXiv:2207.00611): every record carries a revision assigned from the
// zoo's monotonic counter, bumped by publish / attach_parameters / reindex.
// Revisions key the ModelCache, so repeat foundation loads and repeat
// rankings are served from memory — zero RemoteLink traffic — until the
// record actually changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fairms/model_cache.hpp"
#include "store/docstore.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::fairms {

struct ModelRecord {
  store::DocId id = 0;
  std::uint64_t revision = 0;  ///< bumps on every mutation of this record
  std::string architecture;   ///< model family key (e.g. "braggnn")
  std::string dataset_id;     ///< provenance of the training data
  std::vector<double> train_pdf;  ///< cluster PDF of the training dataset
  std::vector<std::uint8_t> parameters;  ///< nn::save_parameters blob
};

/// Everything rank/recommend needs — no parameter bytes.
struct ModelMeta {
  store::DocId id = 0;
  std::uint64_t revision = 0;
  std::string architecture;
  std::string dataset_id;
  std::vector<double> train_pdf;
  /// Size of the stored parameter blob. 0 => metadata-first record whose
  /// weights have not arrived; rank/recommend skip those (they cannot
  /// serve as fine-tuning foundations).
  std::size_t param_bytes = 0;
};

/// One rank-ready candidate: a weight-bearing record's id and its
/// *pre-normalized* training PDF (shared with the cache — never copied per
/// request).
struct RankCandidate {
  store::DocId id = 0;
  ModelCache::PdfPtr pdf;
};

/// Thread-safety: every store access maps to one synchronized collection
/// operation and the cache is internally locked, so concurrent
/// publish/fetch/reindex/rank from multiple threads is safe. Cache
/// coherence is per-ModelZoo instance: mutations through *this* zoo
/// invalidate its cache (revision floors make that race-proof); a second
/// writer zoo over the same store requires cache().clear() here.
class ModelZoo {
 public:
  /// Default parameter-blob/PDF cache budget (see ModelCache).
  static constexpr std::size_t kDefaultCacheBytes = 64ull << 20;

  /// Models live in the "model_zoo" collection of `db`, indexed by
  /// architecture. `cache_bytes == 0` disables the cache (every read goes
  /// to the store — the reference path of the parity tests).
  explicit ModelZoo(store::DocStore& db,
                    std::size_t cache_bytes = kDefaultCacheBytes);

  /// Publishes a trained model; returns its zoo id. The training PDF must
  /// carry positive finite mass (aborts otherwise — a zero-mass PDF would
  /// poison every later rank). An empty parameter blob is allowed
  /// (metadata-first publish — e.g. registering a model trained elsewhere
  /// before its weights arrive); such records are fetchable but excluded
  /// from rank/recommend until attach_parameters supplies their weights.
  /// The new record is inserted into the cache, so the first foundation
  /// load after a publish is already warm.
  store::DocId publish(const std::string& architecture,
                       const std::string& dataset_id,
                       const std::vector<double>& train_pdf,
                       std::vector<std::uint8_t> parameters);

  /// Stores (or replaces) the parameter blob of an existing record — the
  /// second half of a metadata-first publish. A non-empty blob makes the
  /// record rankable. Returns false (and changes nothing) when `id` is
  /// absent OR `parameters` is empty: attaching an empty blob would demote
  /// a rankable record to weightless, which is never what "attach" means —
  /// there is deliberately no detach operation.
  bool attach_parameters(store::DocId id,
                         std::vector<std::uint8_t> parameters);

  /// Uncached read: always one full store fetch.
  [[nodiscard]] std::optional<ModelRecord> fetch(store::DocId id) const;

  /// Cached read: a hit costs zero store traffic (zero RemoteLink bytes
  /// and requests) — the repeat-foundation-load fast path. A miss fetches,
  /// caches, and returns the record; nullptr when `id` is absent.
  [[nodiscard]] ModelCache::RecordPtr fetch_cached(store::DocId id) const;

  /// All models of one architecture (metadata + parameters) via one index
  /// lookup plus one batched read — a single round trip however many
  /// models the architecture has.
  [[nodiscard]] std::vector<ModelRecord> models_of(
      const std::string& architecture) const;

  /// Metadata of all models of one architecture via one index lookup plus
  /// one batched, field-projected read — parameter blobs (the dominant
  /// payload) are never touched, decoded, or charged.
  [[nodiscard]] std::vector<ModelMeta> metadata_of(
      const std::string& architecture) const;

  /// Rank-ready candidates of one architecture: weight-bearing records
  /// with their pre-normalized training PDFs, served from the cache where
  /// the stored revision matches and fetched (then cached) otherwise.
  /// Malformed stored PDFs — possible in snapshots restored from before
  /// mass validation existed — are skipped and logged once, never aborted
  /// on. This is the read path ModelManager::rank runs on: a warm call
  /// transfers only ids and revision scalars, no PDF payloads.
  [[nodiscard]] std::vector<RankCandidate> rank_candidates(
      const std::string& architecture) const;

  /// Replaces the stored training-data distribution of a model (the system
  /// plane re-indexes the zoo after the clustering model is retrained).
  /// Returns false (and changes nothing) when `id` is absent or the PDF is
  /// malformed (empty, negative/non-finite entries, or zero mass) — the
  /// same validation publish applies, so a bad re-index can never poison
  /// later rank/recommend calls.
  bool reindex(store::DocId id, const std::vector<double>& train_pdf);

  [[nodiscard]] std::size_t size() const;

  /// Monotonic mutation counter: increases on every successful
  /// publish/attach_parameters/reindex (failed mutations may consume a
  /// value — revisions are monotonic, not dense). Survives restarts: on
  /// construction the counter resumes past every stored revision.
  [[nodiscard]] std::uint64_t revision() const {
    return revision_.load(std::memory_order_acquire);
  }

  /// The parameter-blob/PDF cache (internally synchronized; mutable
  /// through a const zoo the way any cache is).
  [[nodiscard]] ModelCache& cache() const { return *cache_; }

 private:
  /// Allocates the next revision and raises `id`'s cache floor to it — the
  /// first half of every record mutation. The REQUIRES contract makes the
  /// ordering invariant below compiler-checked: a mutator cannot allocate
  /// a revision outside the mutation critical section, and the lock rank
  /// (kZooMutation < kModelCache, kStoreShard) machine-checks that the
  /// cache invalidate and the store commit both nest inside it.
  std::uint64_t allocate_revision_locked(store::DocId id)
      REQUIRES(mutation_mutex_);

  store::Collection* collection_;
  std::atomic<std::uint64_t> revision_{0};
  /// Orders record mutations: revision allocation and the store commit
  /// happen atomically with respect to other mutators, so a record's
  /// stored revision can never fall behind a concurrent mutation's cache
  /// floor (which would silently pin the record uncacheable). Reads never
  /// take this lock; mutations are the rare path.
  util::Mutex mutation_mutex_{util::LockRank::kZooMutation};
  std::unique_ptr<ModelCache> cache_;
};

/// Ranks zoo models by JSD between their training-data PDF and an input
/// dataset's PDF. The paper's Model Manager.
struct Ranked {
  store::DocId model_id = 0;
  double distance = 0.0;  ///< JSD in [0, 1]
};

class ModelManager {
 public:
  /// Candidate count at or above which rank() fans the JSD evaluation out
  /// over util::ThreadPool::global(). Results are byte-identical to the
  /// sequential path (independent per-candidate arithmetic, deterministic
  /// sort), so the threshold is purely a latency knob.
  static constexpr std::size_t kParallelRankThreshold = 128;

  /// `distance_threshold`: if even the closest model is farther than this,
  /// recommend() declines and the caller trains from scratch (paper §II-C).
  /// `parallel_rank_threshold` overrides kParallelRankThreshold (tests pin
  /// parallel-vs-sequential parity by forcing each path).
  explicit ModelManager(
      const ModelZoo& zoo, double distance_threshold = 0.5,
      std::size_t parallel_rank_threshold = kParallelRankThreshold);

  /// All models of `architecture` whose PDF length matches, ascending by
  /// (distance, id) — the id tie-break makes the order deterministic for
  /// equal distances. Models indexed under a different clustering (stale
  /// PDF width), weightless records, and malformed stored PDFs are
  /// skipped. The input PDF is normalized once; stored PDFs come
  /// pre-normalized from the zoo's cache. A malformed input PDF (e.g. the
  /// all-zero distribution of an empty query batch) yields an empty
  /// ranking (logged) — never an abort: this runs on serving workers.
  [[nodiscard]] std::vector<Ranked> rank(
      const std::string& architecture,
      std::span<const double> input_pdf) const;

  /// Closest model if within threshold; nullopt => train from scratch.
  [[nodiscard]] std::optional<Ranked> recommend(
      const std::string& architecture,
      std::span<const double> input_pdf) const;

  [[nodiscard]] double distance_threshold() const { return threshold_; }
  [[nodiscard]] const ModelZoo& zoo() const { return *zoo_; }

 private:
  const ModelZoo* zoo_;
  double threshold_;
  std::size_t parallel_threshold_;
};

}  // namespace fairdms::fairms
