// fairMS model Zoo (paper §II-B, Fig. 4): every trained model is stored with
// the *cluster-PDF of its training dataset* as its index key, so the best
// foundation for fine-tuning can be found without running any inference —
// just a JSD comparison of distributions.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/docstore.hpp"

namespace fairdms::fairms {

struct ModelRecord {
  store::DocId id = 0;
  std::string architecture;   ///< model family key (e.g. "braggnn")
  std::string dataset_id;     ///< provenance of the training data
  std::vector<double> train_pdf;  ///< cluster PDF of the training dataset
  std::vector<std::uint8_t> parameters;  ///< nn::save_parameters blob
};

/// Everything rank/recommend needs — no parameter bytes.
struct ModelMeta {
  store::DocId id = 0;
  std::string architecture;
  std::string dataset_id;
  std::vector<double> train_pdf;
  /// Size of the stored parameter blob. 0 => metadata-first record whose
  /// weights have not arrived; rank/recommend skip those (they cannot
  /// serve as fine-tuning foundations).
  std::size_t param_bytes = 0;
};

/// Thread-safety: every ModelZoo method maps to one synchronized operation
/// on the underlying collection, so concurrent publish/fetch/reindex/rank
/// from multiple threads is safe (the store serializes writers and lets
/// readers share).
class ModelZoo {
 public:
  /// Models live in the "model_zoo" collection of `db`, indexed by
  /// architecture.
  explicit ModelZoo(store::DocStore& db);

  /// Publishes a trained model; returns its zoo id. An empty parameter
  /// blob is allowed (metadata-first publish — e.g. registering a model
  /// trained elsewhere before its weights arrive); such records are
  /// fetchable but excluded from rank/recommend until attach_parameters
  /// supplies their weights.
  store::DocId publish(const std::string& architecture,
                       const std::string& dataset_id,
                       const std::vector<double>& train_pdf,
                       std::vector<std::uint8_t> parameters);

  /// Stores (or replaces) the parameter blob of an existing record — the
  /// second half of a metadata-first publish. Returns false if `id` is
  /// absent. A non-empty blob makes the record rankable again.
  bool attach_parameters(store::DocId id,
                         std::vector<std::uint8_t> parameters);

  [[nodiscard]] std::optional<ModelRecord> fetch(store::DocId id) const;

  /// All models of one architecture (metadata + parameters).
  [[nodiscard]] std::vector<ModelRecord> models_of(
      const std::string& architecture) const;

  /// Metadata of all models of one architecture via one index lookup plus
  /// one batched, field-projected read — parameter blobs (the dominant
  /// payload) are never touched, decoded, or charged. This is the read
  /// path ModelManager::rank runs on.
  [[nodiscard]] std::vector<ModelMeta> metadata_of(
      const std::string& architecture) const;

  /// Replaces the stored training-data distribution of a model (the system
  /// plane re-indexes the zoo after the clustering model is retrained).
  bool reindex(store::DocId id, const std::vector<double>& train_pdf);

  [[nodiscard]] std::size_t size() const;

 private:
  store::Collection* collection_;
};

/// Ranks zoo models by JSD between their training-data PDF and an input
/// dataset's PDF. The paper's Model Manager.
struct Ranked {
  store::DocId model_id = 0;
  double distance = 0.0;  ///< JSD in [0, 1]
};

class ModelManager {
 public:
  /// `distance_threshold`: if even the closest model is farther than this,
  /// recommend() declines and the caller trains from scratch (paper §II-C).
  ModelManager(const ModelZoo& zoo, double distance_threshold = 0.5);

  /// All models of `architecture` whose PDF length matches, ascending by
  /// distance. Models indexed under a different clustering are skipped.
  [[nodiscard]] std::vector<Ranked> rank(
      const std::string& architecture,
      std::span<const double> input_pdf) const;

  /// Closest model if within threshold; nullopt => train from scratch.
  [[nodiscard]] std::optional<Ranked> recommend(
      const std::string& architecture,
      std::span<const double> input_pdf) const;

  [[nodiscard]] double distance_threshold() const { return threshold_; }

 private:
  const ModelZoo* zoo_;
  double threshold_;
};

}  // namespace fairdms::fairms
