// Jensen–Shannon divergence between discrete distributions (paper §II-B).
// Base-2 logarithm, so JSD(p, q) is bounded in [0, 1]: 0 for identical
// distributions, 1 for distributions with disjoint support.
#pragma once

#include <span>

namespace fairdms::fairms {

/// KL(p || q) in bits; q must dominate p (q_i == 0 => p_i == 0). Terms with
/// p_i == 0 contribute zero.
double kl_divergence(std::span<const double> p, std::span<const double> q);

/// JSD(p, q) = (KL(p||m) + KL(q||m)) / 2 with m = (p+q)/2, in bits.
/// Inputs are normalized internally (all-zero inputs abort).
double jensen_shannon_divergence(std::span<const double> p,
                                 std::span<const double> q);

}  // namespace fairdms::fairms
