// Jensen–Shannon divergence between discrete distributions (paper §II-B).
// Base-2 logarithm, so JSD(p, q) is bounded in [0, 1]: 0 for identical
// distributions, 1 for distributions with disjoint support.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace fairdms::fairms {

/// KL(p || q) in bits; q must dominate p (q_i == 0 => p_i == 0). Terms with
/// p_i == 0 contribute zero.
double kl_divergence(std::span<const double> p, std::span<const double> q);

/// JSD(p, q) = (KL(p||m) + KL(q||m)) / 2 with m = (p+q)/2, in bits.
/// Inputs are normalized internally (all-zero inputs abort).
double jensen_shannon_divergence(std::span<const double> p,
                                 std::span<const double> q);

/// True when `p` is a usable (unnormalized) distribution: non-empty, every
/// entry finite and non-negative, total mass positive and finite. The
/// validation gate the ModelZoo applies at publish/reindex time.
[[nodiscard]] bool is_valid_pdf(std::span<const double> p) noexcept;

/// Normalized copy of `p`, or nullopt when !is_valid_pdf(p). The
/// non-aborting sibling of the internal normalizer: serving paths use it to
/// skip malformed stored distributions instead of crashing the worker.
[[nodiscard]] std::optional<std::vector<double>> try_normalized(
    std::span<const double> p);

/// JSD of two *already normalized* distributions — no validation, no
/// normalization pass, no allocation. The hot ranking kernel: callers
/// normalize the query once and stored PDFs once per revision (cached).
double jsd_normalized(std::span<const double> p, std::span<const double> q);

}  // namespace fairdms::fairms
