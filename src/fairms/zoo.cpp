#include "fairms/zoo.hpp"

#include <algorithm>
#include <utility>

#include "fairms/jsd.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::fairms {

namespace {

store::Value pdf_to_value(const std::vector<double>& pdf) {
  store::Array arr;
  arr.reserve(pdf.size());
  for (double v : pdf) arr.emplace_back(v);
  return store::Value(std::move(arr));
}

std::vector<double> value_to_pdf(const store::Value& v) {
  std::vector<double> pdf;
  pdf.reserve(v.as_array().size());
  for (const store::Value& e : v.as_array()) pdf.push_back(e.as_double());
  return pdf;
}

/// Scalar field lookup tolerating records written before the field existed
/// (restored store snapshots).
std::uint64_t uint_field_or(const store::Value& doc, const std::string& field,
                            std::uint64_t fallback) {
  const store::Object& obj = doc.as_object();
  const auto it = obj.find(field);
  if (it == obj.end()) return fallback;
  return static_cast<std::uint64_t>(it->second.as_int());
}

ModelRecord record_from_doc(store::DocId id, const store::Value& doc) {
  ModelRecord r;
  r.id = id;
  // Pre-versioning records (restored snapshots) default to revision 0.
  r.revision = uint_field_or(doc, "revision", 0);
  r.architecture = doc.at("architecture").as_string();
  r.dataset_id = doc.at("dataset_id").as_string();
  r.train_pdf = value_to_pdf(doc.at("train_pdf"));
  r.parameters = doc.at("parameters").as_binary();
  return r;
}

}  // namespace

ModelZoo::ModelZoo(store::DocStore& db, std::size_t cache_bytes)
    : collection_(&db.collection("model_zoo")),
      cache_(std::make_unique<ModelCache>(cache_bytes)) {
  collection_->create_index("architecture");
  // Resume the revision counter past every stored revision so (id, revision)
  // cache keys stay unique across restarts. One batched scalar-projected
  // read; skipped entirely for a fresh (empty) zoo.
  const std::vector<store::DocId> ids = collection_->all_ids();
  if (!ids.empty()) {
    static const std::vector<std::string> kRevisionField = {"revision"};
    std::uint64_t max_revision = 0;
    for (const auto& doc : collection_->find_many(ids, kRevisionField)) {
      if (!doc.has_value()) continue;
      max_revision = std::max(max_revision, uint_field_or(*doc, "revision", 0));
    }
    revision_.store(max_revision, std::memory_order_release);
  }
}

store::DocId ModelZoo::publish(const std::string& architecture,
                               const std::string& dataset_id,
                               const std::vector<double>& train_pdf,
                               std::vector<std::uint8_t> parameters) {
  // A zero-mass / negative / non-finite PDF would make every later
  // rank/recommend against this architecture abort inside the JSD kernel;
  // reject it at the door instead.
  FAIRDMS_CHECK(is_valid_pdf(train_pdf),
                "publish: train_pdf is not a valid distribution (empty, "
                "negative/non-finite entries, or zero mass)");
  const std::uint64_t revision =
      revision_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Pre-warming needs a second owner of the blob (cache + store), which
  // costs one copy — skip it when the cache would refuse the record anyway
  // (disabled, or the entry over budget) and keep the old move-only path.
  const std::size_t param_count = parameters.size();
  const bool warm =
      cache_->admits_record(param_count, train_pdf.size(),
                            architecture.size(), dataset_id.size());
  std::shared_ptr<const std::vector<std::uint8_t>> blob;
  store::Object doc;
  doc["architecture"] = store::Value(architecture);
  doc["dataset_id"] = store::Value(dataset_id);
  doc["train_pdf"] = pdf_to_value(train_pdf);
  doc["revision"] = store::Value(static_cast<std::int64_t>(revision));
  // Blob size is duplicated as a scalar so the metadata projection can tell
  // weightless (metadata-first) records apart without touching the blob.
  doc["param_bytes"] =
      store::Value(static_cast<std::int64_t>(parameters.size()));
  if (warm) {
    blob = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(parameters));
    doc["parameters"] = store::Value(store::Binary(*blob));
  } else {
    doc["parameters"] = store::Value(store::Binary(std::move(parameters)));
  }
  const store::DocId id = collection_->insert_one(store::Value(std::move(doc)));

  // Warm the cache with what was just written: the first foundation load
  // and the first ranking of this record cost zero link traffic.
  if (warm) {
    auto record = std::make_shared<CachedModel>();
    record->id = id;
    record->revision = revision;
    record->architecture = architecture;
    record->dataset_id = dataset_id;
    record->train_pdf = train_pdf;
    record->parameters = std::move(blob);
    cache_->put_record(std::move(record));
    // Ranking never reads a weightless record's PDF (and the completing
    // attach_parameters bumps the revision anyway), so only weight-bearing
    // publishes pre-warm the PDF entry.
    if (param_count != 0) {
      if (auto normalized = try_normalized(train_pdf)) {
        cache_->put_pdf(id, revision,
                        std::make_shared<const std::vector<double>>(
                            std::move(*normalized)));
      }
    }
  }
  return id;
}

bool ModelZoo::attach_parameters(store::DocId id,
                                 std::vector<std::uint8_t> parameters) {
  if (parameters.empty()) {
    // An empty blob would silently demote the record to weightless —
    // contradicting what "attach" promises. Refuse it.
    util::log_warn("model_zoo: attach_parameters(", id,
                   ") rejected an empty blob");
    return false;
  }
  store::Object fields;
  fields["param_bytes"] =
      store::Value(static_cast<std::int64_t>(parameters.size()));
  fields["parameters"] = store::Value(store::Binary(std::move(parameters)));
  // Revision allocation and the store commit are one critical section:
  // were they separate, two mutators of the same record could commit in
  // the opposite order of their revisions, stranding the stored revision
  // below the other's cache floor (permanently uncacheable record).
  util::MutexLock lock(mutation_mutex_);
  const std::uint64_t revision = allocate_revision_locked(id);
  fields["revision"] = store::Value(static_cast<std::int64_t>(revision));
  // One store lock, one charge: blob, size scalar, and revision stay
  // consistent.
  return collection_->update_fields(id, std::move(fields));
}

std::uint64_t ModelZoo::allocate_revision_locked(store::DocId id) {
  const std::uint64_t revision =
      revision_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Invalidate BEFORE the commit: a reader that observes the post-commit
  // store state must never hit the pre-mutation cache entry (it would
  // serve outdated — possibly empty — weights). Readers inside the window
  // simply miss and refetch. Raising the floor for an absent id is
  // harmless: nothing can be cached for it.
  cache_->invalidate_below(id, revision);
  return revision;
}

std::optional<ModelRecord> ModelZoo::fetch(store::DocId id) const {
  const auto doc = collection_->find_by_id(id);
  if (!doc.has_value()) return std::nullopt;
  return record_from_doc(id, *doc);
}

ModelCache::RecordPtr ModelZoo::fetch_cached(store::DocId id) const {
  if (auto hit = cache_->get_record(id)) return hit;
  const auto doc = collection_->find_by_id(id);
  if (!doc.has_value()) return nullptr;
  ModelRecord fetched = record_from_doc(id, *doc);
  auto record = std::make_shared<CachedModel>();
  record->id = fetched.id;
  record->revision = fetched.revision;
  record->architecture = std::move(fetched.architecture);
  record->dataset_id = std::move(fetched.dataset_id);
  record->train_pdf = std::move(fetched.train_pdf);
  record->parameters = std::make_shared<const std::vector<std::uint8_t>>(
      std::move(fetched.parameters));
  cache_->put_record(record);
  return record;
}

std::vector<ModelRecord> ModelZoo::models_of(
    const std::string& architecture) const {
  // One index lookup + one batched full read: a single round trip (and one
  // shared-lock pass per touched shard) however many models match, where
  // this used to issue one find_by_id per id.
  const std::vector<store::DocId> ids =
      collection_->find_eq("architecture", store::Value(architecture));
  std::vector<ModelRecord> out;
  if (ids.empty()) return out;
  const auto docs = collection_->find_many(ids);
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!docs[i].has_value()) continue;  // removed between lookup and fetch
    out.push_back(record_from_doc(ids[i], *docs[i]));
  }
  return out;
}

std::vector<ModelMeta> ModelZoo::metadata_of(
    const std::string& architecture) const {
  static const std::vector<std::string> kMetaFields = {
      "architecture", "dataset_id", "train_pdf", "param_bytes", "revision"};
  const std::vector<store::DocId> ids =
      collection_->find_eq("architecture", store::Value(architecture));
  std::vector<ModelMeta> out;
  if (ids.empty()) return out;
  const auto docs = collection_->find_many(ids, kMetaFields);
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!docs[i].has_value()) continue;  // removed between lookup and fetch
    ModelMeta meta;
    meta.id = ids[i];
    meta.revision = uint_field_or(*docs[i], "revision", 0);
    meta.architecture = docs[i]->at("architecture").as_string();
    meta.dataset_id = docs[i]->at("dataset_id").as_string();
    meta.train_pdf = value_to_pdf(docs[i]->at("train_pdf"));
    // Records written before param_bytes existed (restored store snapshots)
    // all carried non-empty blobs — publish used to reject empty ones — so
    // a missing field means "weights present", not "weightless".
    meta.param_bytes =
        static_cast<std::size_t>(uint_field_or(*docs[i], "param_bytes", 1));
    out.push_back(std::move(meta));
  }
  return out;
}

std::vector<RankCandidate> ModelZoo::rank_candidates(
    const std::string& architecture) const {
  // Phase 1 — who's rankable and at what revision: scalar projection only,
  // no PDF payloads. On a warm cache this is all the traffic a rank costs.
  static const std::vector<std::string> kScalarFields = {"param_bytes",
                                                         "revision"};
  const std::vector<store::DocId> ids =
      collection_->find_eq("architecture", store::Value(architecture));
  std::vector<RankCandidate> out;
  if (ids.empty()) return out;
  const auto scalars = collection_->find_many(ids, kScalarFields);

  struct Pending {
    store::DocId id;
    std::uint64_t revision;
  };
  std::vector<Pending> misses;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!scalars[i].has_value()) continue;  // removed mid-flight
    if (uint_field_or(*scalars[i], "param_bytes", 1) == 0) {
      continue;  // weightless: never a fine-tuning foundation
    }
    const std::uint64_t revision = uint_field_or(*scalars[i], "revision", 0);
    if (auto pdf = cache_->get_pdf(ids[i], revision)) {
      // Empty = the known-malformed sentinel: skip without re-fetching.
      if (!pdf->empty()) out.push_back(RankCandidate{ids[i], std::move(pdf)});
      continue;
    }
    misses.push_back(Pending{ids[i], revision});
  }

  // Phase 2 — fetch only the missing PDFs, normalize once, cache.
  if (!misses.empty()) {
    static const std::vector<std::string> kPdfField = {"train_pdf"};
    std::vector<store::DocId> miss_ids;
    miss_ids.reserve(misses.size());
    for (const Pending& m : misses) miss_ids.push_back(m.id);
    const auto docs = collection_->find_many(miss_ids, kPdfField);
    for (std::size_t i = 0; i < misses.size(); ++i) {
      if (!docs[i].has_value()) continue;
      const std::vector<double> raw = value_to_pdf(docs[i]->at("train_pdf"));
      auto normalized = try_normalized(raw);
      if (!normalized.has_value()) {
        // Possible in snapshots restored from before publish/reindex
        // validated mass. Skip the record — crashing the serving worker
        // over one bad row is the bug this path fixes — and remember the
        // verdict so it is logged once, not once per rank.
        util::log_warn("model_zoo: record ", misses[i].id,
                       " has a malformed train_pdf (", raw.size(),
                       " bins); excluded from ranking");
        cache_->put_pdf(misses[i].id, misses[i].revision,
                        std::make_shared<const std::vector<double>>());
        continue;
      }
      auto pdf = std::make_shared<const std::vector<double>>(
          std::move(*normalized));
      cache_->put_pdf(misses[i].id, misses[i].revision, pdf);
      out.push_back(RankCandidate{misses[i].id, std::move(pdf)});
    }
  }
  return out;
}

bool ModelZoo::reindex(store::DocId id, const std::vector<double>& train_pdf) {
  if (!is_valid_pdf(train_pdf)) {
    // Historically this accepted anything publish would reject, letting a
    // zero-mass PDF poison every later rank. Same gate as publish now.
    util::log_warn("model_zoo: reindex(", id,
                   ") rejected a malformed train_pdf (", train_pdf.size(),
                   " bins)");
    return false;
  }
  store::Object fields;
  fields["train_pdf"] = pdf_to_value(train_pdf);
  // Same commit-order critical section as attach_parameters.
  util::MutexLock lock(mutation_mutex_);
  const std::uint64_t revision = allocate_revision_locked(id);
  fields["revision"] = store::Value(static_cast<std::int64_t>(revision));
  const bool found = collection_->update_fields(id, std::move(fields));
  if (found) {
    // The new PDF is known-valid; keep ranking warm across the re-index.
    if (auto normalized = try_normalized(train_pdf)) {
      cache_->put_pdf(id, revision,
                      std::make_shared<const std::vector<double>>(
                          std::move(*normalized)));
    }
  }
  return found;
}

std::size_t ModelZoo::size() const { return collection_->size(); }

ModelManager::ModelManager(const ModelZoo& zoo, double distance_threshold,
                           std::size_t parallel_rank_threshold)
    : zoo_(&zoo),
      threshold_(distance_threshold),
      parallel_threshold_(std::max<std::size_t>(1, parallel_rank_threshold)) {
  FAIRDMS_CHECK(distance_threshold > 0.0 && distance_threshold <= 1.0,
                "distance threshold must be in (0, 1]");
}

std::vector<Ranked> ModelManager::rank(
    const std::string& architecture,
    std::span<const double> input_pdf) const {
  const auto input = try_normalized(input_pdf);
  if (!input.has_value()) {
    // Client-reachable (an empty query batch yields an all-zero cluster
    // PDF): answer "no candidates" instead of aborting the serving worker
    // — the same survival rule rank_candidates applies to stored PDFs.
    util::log_warn("model_manager: rank(", architecture,
                   ") received a malformed input PDF (", input_pdf.size(),
                   " bins); returning no candidates");
    return {};
  }
  std::vector<RankCandidate> candidates = zoo_->rank_candidates(architecture);
  // Models indexed under a different clustering width are stale — skip.
  std::erase_if(candidates, [&](const RankCandidate& c) {
    return c.pdf->size() != input->size();
  });

  std::vector<Ranked> out(candidates.size());
  const auto score = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = Ranked{candidates[i].id,
                      jsd_normalized(*input, *candidates[i].pdf)};
    }
  };
  if (candidates.size() >= parallel_threshold_) {
    // Each slot is written by exactly one chunk with chunk-independent
    // arithmetic, so the fan-out is race-free and byte-identical to the
    // sequential loop.
    util::ThreadPool::global().parallel_for(candidates.size(), score,
                                            /*min_grain=*/32);
  } else {
    score(0, candidates.size());
  }
  std::sort(out.begin(), out.end(), [](const Ranked& a, const Ranked& b) {
    // The id tie-break pins a total order: equal distances (common with
    // duplicate training sets) sort the same way on every path.
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.model_id < b.model_id;
  });
  return out;
}

std::optional<Ranked> ModelManager::recommend(
    const std::string& architecture,
    std::span<const double> input_pdf) const {
  const auto ranked = rank(architecture, input_pdf);
  if (ranked.empty() || ranked.front().distance > threshold_) {
    return std::nullopt;
  }
  return ranked.front();
}

}  // namespace fairdms::fairms
