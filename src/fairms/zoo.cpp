#include "fairms/zoo.hpp"

#include <algorithm>

#include "fairms/jsd.hpp"
#include "util/check.hpp"

namespace fairdms::fairms {

namespace {

store::Value pdf_to_value(const std::vector<double>& pdf) {
  store::Array arr;
  arr.reserve(pdf.size());
  for (double v : pdf) arr.emplace_back(v);
  return store::Value(std::move(arr));
}

std::vector<double> value_to_pdf(const store::Value& v) {
  std::vector<double> pdf;
  pdf.reserve(v.as_array().size());
  for (const store::Value& e : v.as_array()) pdf.push_back(e.as_double());
  return pdf;
}

ModelRecord record_from_doc(store::DocId id, const store::Value& doc) {
  ModelRecord r;
  r.id = id;
  r.architecture = doc.at("architecture").as_string();
  r.dataset_id = doc.at("dataset_id").as_string();
  r.train_pdf = value_to_pdf(doc.at("train_pdf"));
  r.parameters = doc.at("parameters").as_binary();
  return r;
}

}  // namespace

ModelZoo::ModelZoo(store::DocStore& db)
    : collection_(&db.collection("model_zoo")) {
  collection_->create_index("architecture");
}

store::DocId ModelZoo::publish(const std::string& architecture,
                               const std::string& dataset_id,
                               const std::vector<double>& train_pdf,
                               std::vector<std::uint8_t> parameters) {
  FAIRDMS_CHECK(!train_pdf.empty(), "publish: empty training PDF");
  store::Object doc;
  doc["architecture"] = store::Value(architecture);
  doc["dataset_id"] = store::Value(dataset_id);
  doc["train_pdf"] = pdf_to_value(train_pdf);
  // Blob size is duplicated as a scalar so the metadata projection can tell
  // weightless (metadata-first) records apart without touching the blob.
  doc["param_bytes"] =
      store::Value(static_cast<std::int64_t>(parameters.size()));
  doc["parameters"] = store::Value(store::Binary(std::move(parameters)));
  return collection_->insert_one(store::Value(std::move(doc)));
}

bool ModelZoo::attach_parameters(store::DocId id,
                                 std::vector<std::uint8_t> parameters) {
  store::Object fields;
  fields["param_bytes"] =
      store::Value(static_cast<std::int64_t>(parameters.size()));
  fields["parameters"] = store::Value(store::Binary(std::move(parameters)));
  // One lock, one charge: blob and its size scalar stay consistent.
  return collection_->update_fields(id, std::move(fields));
}

std::optional<ModelRecord> ModelZoo::fetch(store::DocId id) const {
  const auto doc = collection_->find_by_id(id);
  if (!doc.has_value()) return std::nullopt;
  return record_from_doc(id, *doc);
}

std::vector<ModelRecord> ModelZoo::models_of(
    const std::string& architecture) const {
  std::vector<ModelRecord> out;
  for (store::DocId id :
       collection_->find_eq("architecture", store::Value(architecture))) {
    const auto doc = collection_->find_by_id(id);
    if (doc.has_value()) out.push_back(record_from_doc(id, *doc));
  }
  return out;
}

std::vector<ModelMeta> ModelZoo::metadata_of(
    const std::string& architecture) const {
  static const std::vector<std::string> kMetaFields = {
      "architecture", "dataset_id", "train_pdf", "param_bytes"};
  const std::vector<store::DocId> ids =
      collection_->find_eq("architecture", store::Value(architecture));
  std::vector<ModelMeta> out;
  if (ids.empty()) return out;
  const auto docs = collection_->find_many(ids, kMetaFields);
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!docs[i].has_value()) continue;  // removed between lookup and fetch
    ModelMeta meta;
    meta.id = ids[i];
    meta.architecture = docs[i]->at("architecture").as_string();
    meta.dataset_id = docs[i]->at("dataset_id").as_string();
    meta.train_pdf = value_to_pdf(docs[i]->at("train_pdf"));
    // Records written before param_bytes existed (restored store snapshots)
    // all carried non-empty blobs — publish used to reject empty ones — so
    // a missing field means "weights present", not "weightless".
    const store::Object& obj = docs[i]->as_object();
    const auto it = obj.find("param_bytes");
    meta.param_bytes = it != obj.end()
                           ? static_cast<std::size_t>(it->second.as_int())
                           : 1;
    out.push_back(std::move(meta));
  }
  return out;
}

bool ModelZoo::reindex(store::DocId id, const std::vector<double>& train_pdf) {
  return collection_->update_field(id, "train_pdf", pdf_to_value(train_pdf));
}

std::size_t ModelZoo::size() const { return collection_->size(); }

ModelManager::ModelManager(const ModelZoo& zoo, double distance_threshold)
    : zoo_(&zoo), threshold_(distance_threshold) {
  FAIRDMS_CHECK(distance_threshold > 0.0 && distance_threshold <= 1.0,
                "distance threshold must be in (0, 1]");
}

std::vector<Ranked> ModelManager::rank(
    const std::string& architecture,
    std::span<const double> input_pdf) const {
  std::vector<Ranked> out;
  // Metadata-only read: ranking compares PDFs, so the parameter blobs (the
  // overwhelming majority of each record's bytes) are never deserialized.
  for (const ModelMeta& meta : zoo_->metadata_of(architecture)) {
    if (meta.train_pdf.size() != input_pdf.size()) continue;  // stale index
    if (meta.param_bytes == 0) continue;  // weightless: not a foundation
    out.push_back(Ranked{
        meta.id, jensen_shannon_divergence(input_pdf, meta.train_pdf)});
  }
  std::sort(out.begin(), out.end(), [](const Ranked& a, const Ranked& b) {
    return a.distance < b.distance;
  });
  return out;
}

std::optional<Ranked> ModelManager::recommend(
    const std::string& architecture,
    std::span<const double> input_pdf) const {
  const auto ranked = rank(architecture, input_pdf);
  if (ranked.empty() || ranked.front().distance > threshold_) {
    return std::nullopt;
  }
  return ranked.front();
}

}  // namespace fairdms::fairms
