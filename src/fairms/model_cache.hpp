// Parameter-blob and PDF cache of the fairMS model plane.
//
// The paper's workload re-loads the same foundation models over and over
// (every update fine-tunes the closest zoo model), yet each load used to
// re-fetch the full parameter blob across the RemoteLink and each rank()
// re-normalized every candidate PDF. ModelCache keeps both hot:
//
//  * record entries — fully materialized zoo records (metadata + shared
//    parameter blob), so a repeat foundation load costs zero link bytes;
//  * PDF entries — *pre-normalized* training distributions keyed by
//    (DocId, revision), so ranking normalizes each stored PDF once per
//    revision instead of once per request. An empty PDF entry is the
//    "known malformed" sentinel: ranking skips the record without
//    re-fetching (and re-logging) it every call.
//
// Consistency model: entries are keyed by the record's revision (assigned by
// the owning ModelZoo's monotonic counter). Mutations call
// invalidate_below(id, new_revision), which both drops older entries and
// *pins a floor*: a reader that raced the mutation (read the old document,
// then tried to cache it after the invalidation) has its stale put rejected.
// Coherence therefore holds for any interleaving of readers and writers that
// share one ModelZoo; writers bypassing the zoo (a second ModelZoo over the
// same store) require an explicit invalidate_below/clear.
//
// Thread-safety: every method takes one internal mutex; returned shared_ptr
// handles outlive eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/docstore.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::fairms {

/// A fully materialized zoo record as the cache holds it. The parameter
/// blob is shared (never copied per reader); `train_pdf` is the *stored*
/// (unnormalized) distribution, exactly what ModelZoo::fetch returns.
struct CachedModel {
  store::DocId id = 0;
  std::uint64_t revision = 0;
  std::string architecture;
  std::string dataset_id;
  std::vector<double> train_pdf;
  std::shared_ptr<const std::vector<std::uint8_t>> parameters;
};

/// Counter snapshot (see ModelCache::stats).
struct ModelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< entries dropped to meet the budget
  std::uint64_t invalidations = 0;  ///< entries dropped by revision bumps
  std::size_t entries = 0;
  std::size_t resident_bytes = 0;
  std::size_t budget_bytes = 0;
};

class ModelCache {
 public:
  using RecordPtr = std::shared_ptr<const CachedModel>;
  using PdfPtr = std::shared_ptr<const std::vector<double>>;

  /// `budget_bytes == 0` disables caching: every get misses, every put is a
  /// no-op (the uncached reference path the parity tests compare against).
  explicit ModelCache(std::size_t budget_bytes);

  /// Record lookup by id alone — a hit is trusted without consulting the
  /// store (the zero-link-bytes fast path). Entries can only exist at or
  /// above the id's invalidation floor, so same-zoo writers can never leave
  /// a stale record behind.
  [[nodiscard]] RecordPtr get_record(store::DocId id);
  /// Inserts/replaces the record entry of record->id. Rejected (dropped)
  /// when record->revision is below the id's invalidation floor or the
  /// record alone exceeds the whole budget.
  void put_record(RecordPtr record);

  /// Pre-normalized-PDF lookup; hits only when the cached revision equals
  /// `revision` (the caller just read the current revision from the store).
  /// An *older* cached entry is erased on the spot; a newer one (the
  /// caller's read raced a mutation) is left alone and reported as a miss.
  /// May return the empty malformed-PDF sentinel — callers must check
  /// ->empty().
  [[nodiscard]] PdfPtr get_pdf(store::DocId id, std::uint64_t revision);
  void put_pdf(store::DocId id, std::uint64_t revision, PdfPtr pdf);

  /// Whether a record entry with these components would fit the budget —
  /// the exact admission arithmetic put_record applies, for callers
  /// deciding whether pre-warming is worth a blob copy.
  [[nodiscard]] bool admits_record(std::size_t blob_bytes,
                                   std::size_t pdf_len, std::size_t arch_len,
                                   std::size_t dataset_len) const;

  /// Drops every entry of `id` with revision < `revision` and refuses
  /// future puts below it. Called by the zoo on attach_parameters/reindex
  /// with the freshly assigned revision.
  void invalidate_below(store::DocId id, std::uint64_t revision);

  /// Drops every entry (floors included). For external-writer recovery and
  /// cold-start measurements.
  void clear();

  /// Re-budgets the cache, evicting LRU entries down to the new limit.
  /// 0 disables caching and drops everything.
  void set_budget(std::size_t budget_bytes);
  [[nodiscard]] std::size_t budget() const;

  [[nodiscard]] ModelCacheStats stats() const;

 private:
  struct Key {
    store::DocId id = 0;
    bool is_pdf = false;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>()((k.id << 1) | (k.is_pdf ? 1u : 0u));
    }
  };
  struct Entry {
    std::uint64_t revision = 0;
    std::size_t bytes = 0;
    RecordPtr record;  ///< set for record entries
    PdfPtr pdf;        ///< set for PDF entries
    std::list<Key>::iterator lru_it;
  };

  static std::size_t record_bytes(std::size_t blob_bytes, std::size_t pdf_len,
                                  std::size_t arch_len,
                                  std::size_t dataset_len);
  static std::size_t record_bytes(const CachedModel& record);
  static std::size_t pdf_bytes(const std::vector<double>& pdf);

  // The "assume mutex_ is held" convention, compiler-checked: calling any
  // helper without the lock is a thread-safety build error.
  void touch_locked(Entry& entry) REQUIRES(mutex_);
  void erase_locked(const Key& key) REQUIRES(mutex_);
  void insert_locked(const Key& key, Entry&& entry) REQUIRES(mutex_);
  void evict_to_budget_locked() REQUIRES(mutex_);

  mutable util::Mutex mutex_{util::LockRank::kModelCache};
  std::size_t budget_bytes_ GUARDED_BY(mutex_);
  std::size_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  /// front = most recently used
  std::list<Key> lru_ GUARDED_BY(mutex_);
  std::unordered_map<Key, Entry, KeyHash> entries_ GUARDED_BY(mutex_);
  /// id -> lowest admissible revision (see invalidate_below).
  std::unordered_map<store::DocId, std::uint64_t> floors_ GUARDED_BY(mutex_);
  std::uint64_t hits_ GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ GUARDED_BY(mutex_) = 0;
  std::uint64_t invalidations_ GUARDED_BY(mutex_) = 0;
};

}  // namespace fairdms::fairms
