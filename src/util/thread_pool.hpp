// Fixed-size thread pool with chunked parallel_for.
//
// This is the single parallel substrate for fairDMS: matmul/conv kernels,
// k-means assignment, Voigt labeling, and embedding inference all decompose
// into parallel_for over index ranges (the OpenMP "parallel for" idiom,
// expressed with std::thread so thread count and chunking stay under library
// control and results stay deterministic).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace fairdms::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  /// `max_queue` bounds the number of *waiting* tasks admitted through
  /// try_submit/try_async (tasks already executing don't count); 0 means
  /// unbounded. submit()/async()/parallel_for ignore the bound — they are
  /// the internal data-parallel substrate and must never fail — so the
  /// bound only governs callers that opt into admission control.
  explicit ThreadPool(std::size_t threads = 0, std::size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task. Prefer parallel_for for data parallelism.
  void submit(std::function<void()> task);

  /// Bounded enqueue: admits `task` only while fewer than max_queue tasks
  /// are waiting (always admits when max_queue == 0). Returns false — and
  /// does not take ownership of any work — when the queue is full. Never
  /// blocks: this is the admission-control edge, and a submitter stalled
  /// on a saturated queue would just move the unbounded backlog into the
  /// callers.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Enqueue a task and get a std::future for its result (exceptions
  /// propagate through the future). The request-submission substrate of
  /// the service layer.
  template <typename F>
  [[nodiscard]] auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr wrapper because std::function requires copyable targets
    // and packaged_task is move-only.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  /// Bounded async: like async() but through try_submit. nullopt means the
  /// queue was full and the callable was not (and will never be) invoked.
  template <typename F>
  [[nodiscard]] auto try_async(F&& fn)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (!try_submit([task] { (*task)(); })) return std::nullopt;
    return result;
  }

  /// Tasks admitted but not yet picked up by a worker (the backlog the
  /// max_queue bound applies to). A point-in-time gauge: concurrent
  /// submits/completions may change it immediately after the read.
  [[nodiscard]] std::size_t queue_depth() const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t max_queue() const noexcept { return max_queue_; }

  /// Block until every submitted task has finished.
  void wait_idle() EXCLUDES(mutex_);

  /// Run body(begin, end) over [0, n) split into ~3x-oversubscribed chunks,
  /// blocking until complete. body is invoked concurrently; it must handle
  /// its own synchronization for shared state. Runs inline when n is small
  /// or the pool has a single worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_grain = 1);

  /// Like parallel_for but body also receives a dense chunk index, so callers
  /// can maintain per-chunk scratch (e.g. forked RNG streams, partial sums).
  void parallel_for_chunked(
      std::size_t n,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& body,
      std::size_t min_grain = 1);

  /// Process-wide pool (lazily constructed, sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop() EXCLUDES(mutex_);
  /// Pop and execute one queued task if available. Returns false when the
  /// queue was empty. Used by parallel_for waiters to help instead of block.
  bool try_run_one() EXCLUDES(mutex_);

  // Written in the constructor, joined in the destructor, size() in
  // between: immutable while any other thread can see the pool.
  std::vector<std::thread> workers_;
  std::size_t max_queue_ = 0;  // const after construction
  mutable Mutex mutex_{LockRank::kThreadPool};
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// Convenience wrapper over the global pool.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t min_grain = 1) {
  ThreadPool::global().parallel_for(n, body, min_grain);
}

}  // namespace fairdms::util
