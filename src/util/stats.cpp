#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fairdms::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double mean(std::span<const float> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (float x : xs) sum += static_cast<double>(x);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  FAIRDMS_CHECK(!xs.empty(), "percentile of empty span");
  FAIRDMS_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range: ", p);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  FAIRDMS_CHECK(xs.size() == ys.size(), "pearson size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> histogram_pdf(std::span<const double> xs, double lo,
                                  double hi, std::size_t bins) {
  FAIRDMS_CHECK(bins > 0, "histogram with zero bins");
  FAIRDMS_CHECK(hi > lo, "histogram range must be non-empty");
  std::vector<double> pdf(bins, 0.0);
  if (xs.empty()) return pdf;
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double x : xs) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo) * scale);
    bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    pdf[static_cast<std::size_t>(bin)] += 1.0;
  }
  for (double& v : pdf) v /= static_cast<double>(xs.size());
  return pdf;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace fairdms::util
