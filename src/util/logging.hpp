// Minimal leveled logger. Benches print structured tables themselves; the
// logger is for progress/diagnostic lines from library internals.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace fairdms::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; defaults to kWarn so library internals stay
/// quiet under tests and benches unless explicitly raised.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view message);
}

template <typename... Parts>
void log(LogLevel level, const Parts&... parts) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << parts);
  detail::log_emit(level, oss.str());
}

template <typename... Parts>
void log_debug(const Parts&... parts) {
  log(LogLevel::kDebug, parts...);
}
template <typename... Parts>
void log_info(const Parts&... parts) {
  log(LogLevel::kInfo, parts...);
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  log(LogLevel::kWarn, parts...);
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  log(LogLevel::kError, parts...);
}

}  // namespace fairdms::util
