// Small statistics helpers shared by the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fairdms::util {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);
double mean(std::span<const float> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Normalized histogram over [lo, hi) with `bins` buckets (sums to 1 when any
/// sample falls inside the range; out-of-range samples are clamped).
std::vector<double> histogram_pdf(std::span<const double> xs, double lo,
                                  double hi, std::size_t bins);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace fairdms::util
