#include "util/mutex.hpp"

#ifndef NDEBUG

#include <cstdio>
#include <cstdlib>

namespace fairdms::util::lock_rank_detail {

namespace {

/// Per-thread stack of ranks currently held, in acquisition order.
///
/// Deliberately a trivially-destructible POD (fixed array + depth), not a
/// std::vector: the global ThreadPool is torn down by an atexit handler,
/// which on the main thread runs *after* TLS destructors — a vector here
/// would already be freed when the pool's shutdown lock() records its rank
/// (a heap-use-after-free TSan catches). Trivial TLS objects have no
/// destructor and their storage stays valid until the thread truly ends.
constexpr int kMaxHeld = 64;
struct HeldStack {
  int ranks[kMaxHeld];
  int depth;
};

HeldStack& held_stack() {
  thread_local HeldStack stack{};
  return stack;
}

}  // namespace

void check_acquire(int rank, const char* what) {
  if (rank == 0) return;  // kUnranked opts out
  const HeldStack& stack = held_stack();
  for (int i = 0; i < stack.depth; ++i) {
    if (stack.ranks[i] >= rank) {
      std::fprintf(stderr,
                   "FAIRDMS LOCK-RANK VIOLATION in %s: acquiring rank %d "
                   "while holding rank %d (locks must be acquired in "
                   "strictly increasing rank; see util::LockRank)\n",
                   what, rank, stack.ranks[i]);
      std::abort();
    }
  }
}

void note_acquired(int rank) {
  if (rank == 0) return;
  HeldStack& stack = held_stack();
  if (stack.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "FAIRDMS LOCK-RANK OVERFLOW: thread holds more than %d "
                 "ranked locks\n",
                 kMaxHeld);
    std::abort();
  }
  stack.ranks[stack.depth++] = rank;
}

void note_released(int rank) {
  if (rank == 0) return;
  HeldStack& stack = held_stack();
  // Locks normally release LIFO, but unique_lock-style early unlocks may
  // interleave: drop the most recent occurrence of this rank.
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.ranks[i] == rank) {
      for (int j = i; j + 1 < stack.depth; ++j) {
        stack.ranks[j] = stack.ranks[j + 1];
      }
      --stack.depth;
      return;
    }
  }
}

std::size_t held_ranks() {
  return static_cast<std::size_t>(held_stack().depth);
}

}  // namespace fairdms::util::lock_rank_detail

#endif  // NDEBUG
