#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace fairdms::util {

namespace {

void set_error(std::string* error, const std::string& what,
               const std::string& path) {
  if (error == nullptr) return;
  *error = what + " " + path + ": " + std::strerror(errno);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool fsync_path(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, "cannot open for fsync", path);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok) set_error(error, "fsync failed for", path);
  ::close(fd);
  return ok;
}

bool fsync_parent_dir(const std::string& path, std::string* error) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, "cannot open directory for fsync", dir);
    return false;
  }
  // Some filesystems (and some container overlays) reject fsync on a
  // directory fd with EINVAL; the rename is still ordered after the file
  // fsync there, so treat that one errno as best-effort success.
  const bool ok = ::fsync(fd) == 0 || errno == EINVAL;
  if (!ok) set_error(error, "directory fsync failed for", dir);
  ::close(fd);
  return ok;
}

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create", tmp);
    return false;
  }
  bool ok = write_all(fd, bytes.data(), bytes.size());
  if (!ok) set_error(error, "write failed for", tmp);
  if (ok && ::fsync(fd) != 0) {
    set_error(error, "fsync failed for", tmp);
    ok = false;
  }
  ::close(fd);
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename failed for", tmp);
    ok = false;
  }
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return fsync_parent_dir(path, error);
}

}  // namespace fairdms::util
