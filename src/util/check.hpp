// Invariant checking for fairDMS.
//
// FAIRDMS_CHECK(cond, msg...) aborts with file:line context when `cond` is
// false. Checks stay enabled in release builds: this library backs long
// unattended experiment campaigns where a silent bad state is far more
// expensive than the branch.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fairdms::util {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& message) {
  std::fprintf(stderr, "[fairdms] CHECK failed at %s:%d: (%s) %s\n", file,
               line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Builds the failure message lazily so the happy path pays only for the branch.
template <typename... Parts>
std::string format_parts(const Parts&... parts) {
  std::ostringstream oss;
  (oss << ... << parts);
  return oss.str();
}

}  // namespace fairdms::util

#define FAIRDMS_CHECK(cond, ...)                                       \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::fairdms::util::check_failed(__FILE__, __LINE__, #cond,         \
                                    ::fairdms::util::format_parts(     \
                                        "" __VA_OPT__(, ) __VA_ARGS__)); \
    }                                                                  \
  } while (0)
