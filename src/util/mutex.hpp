#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/annotations.hpp"
#include "util/check.hpp"

namespace fairdms::util {

/// Global lock-acquisition order, machine-checked in Debug builds.
///
/// Every `util::Mutex` / `util::SharedMutex` carries a rank; acquiring a
/// ranked lock while holding another ranked lock of an equal or higher rank
/// aborts (Debug/!NDEBUG only — the checker compiles away in Release, so
/// the wrappers cost exactly a `std::mutex` there). Lower rank = acquired
/// earlier / outermost. `kUnranked` opts a mutex out of order checking.
///
/// The hierarchy encodes every nesting that actually occurs today:
///   - FairDS's system plane wraps store fan-out, pool help-loops, and
///     logging (train/ingest hold `system_mutex_` across all of them).
///   - The zoo mutation mutex wraps the cache invalidate and the store
///     commit — the ordering invariant PR 5 argued in prose.
///   - `DataService::stats()` holds the stats mutex while reading the
///     model-cache gauges, so the cache ranks above the stats mutex.
///   - Logging is innermost: any subsystem may emit while holding its own
///     lock (e.g. `DocStore::collection` logs under the map lock).
enum class LockRank : int {
  kUnranked = 0,       ///< not order-checked (ad-hoc/test mutexes)
  kSystemPlane = 10,   ///< fairds::FairDS::system_mutex_
  kZooMutation = 20,   ///< fairms::ModelZoo::mutation_mutex_
  kStoreMap = 30,      ///< store::DocStore::mutex_ (collection map)
  kStoreShard = 40,    ///< store::Collection::Shard::mutex
  kThreadPool = 50,    ///< util::ThreadPool::mutex_
  kStreamRegistry = 55,  ///< service::StreamRegistry::mutation_mutex_
  kServiceStats = 60,  ///< service per-stream stats mutexes
  kModelCache = 70,    ///< fairms::ModelCache::mutex_
  kWorkflow = 80,      ///< workflow::FuncXRegistry / TransferService
  kDataLoader = 82,    ///< store::DataLoader::mutex_
  kNfsMeta = 84,       ///< store::NfsStore::meta_mutex_
  kNetServer = 85,     ///< net::Server state (drain bookkeeping)
  kNetConnection = 86, ///< net::Server per-connection write buffer
  kTaskLocal = 88,     ///< function-local mutexes inside pool tasks
  kLogging = 90,       ///< util/logging emit mutex (innermost)
};

namespace lock_rank_detail {
#ifndef NDEBUG
/// Abort if acquiring `rank` would violate the global order given the
/// ranked locks this thread already holds. No-op for kUnranked (rank 0).
void check_acquire(int rank, const char* what);
/// Record `rank` as held by this thread (after a successful acquisition).
void note_acquired(int rank);
/// Remove the most recent occurrence of `rank` from this thread's stack.
void note_released(int rank);
/// Ranked locks currently held by this thread (test/introspection hook).
std::size_t held_ranks();
#else
inline void check_acquire(int, const char*) {}
inline void note_acquired(int) {}
inline void note_released(int) {}
inline std::size_t held_ranks() { return 0; }
#endif
}  // namespace lock_rank_detail

class MutexLock;

/// Annotated drop-in for `std::mutex`: a Clang TSA capability plus the
/// Debug-only rank checker. Lock it through `util::MutexLock` (RAII) or
/// balanced lock()/unlock() pairs in one function — TSA rejects anything
/// else. Condition-variable interop goes through `MutexLock::native()`.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(static_cast<int>(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank_detail::check_acquire(rank_, "Mutex::lock");
    mu_.lock();
    lock_rank_detail::note_acquired(rank_);
  }
  void unlock() RELEASE() {
    lock_rank_detail::note_released(rank_);
    mu_.unlock();
  }
  /// No rank check: a failed try cannot deadlock, and try-then-back-off is
  /// a legitimate way to acquire against the grain of the order.
  bool try_lock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) lock_rank_detail::note_acquired(rank_);
    return ok;
  }

  int rank() const { return rank_; }

 private:
  friend class MutexLock;
  std::mutex mu_;
  int rank_ = 0;
};

/// Annotated drop-in for `std::shared_mutex`. Exclusive via
/// `util::MutexLock`, shared via `util::ReaderLock`. Shared acquisitions
/// participate in rank checking exactly like exclusive ones.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank) : rank_(static_cast<int>(rank)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank_detail::check_acquire(rank_, "SharedMutex::lock");
    mu_.lock();
    lock_rank_detail::note_acquired(rank_);
  }
  void unlock() RELEASE() {
    lock_rank_detail::note_released(rank_);
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) lock_rank_detail::note_acquired(rank_);
    return ok;
  }

  void lock_shared() ACQUIRE_SHARED() {
    lock_rank_detail::check_acquire(rank_, "SharedMutex::lock_shared");
    mu_.lock_shared();
    lock_rank_detail::note_acquired(rank_);
  }
  void unlock_shared() RELEASE_SHARED() {
    lock_rank_detail::note_released(rank_);
    mu_.unlock_shared();
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    const bool ok = mu_.try_lock_shared();
    if (ok) lock_rank_detail::note_acquired(rank_);
    return ok;
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  int rank_ = 0;
};

/// RAII exclusive lock — the drop-in for `std::scoped_lock` /
/// `std::lock_guard` / `std::unique_lock` over either wrapper type.
///
/// When constructed over a `Mutex`, `native()` exposes a
/// `std::unique_lock<std::mutex>` bound to the underlying mutex for
/// `std::condition_variable::wait`. The capability (and the rank-stack
/// entry) stays nominally held across a wait, matching both TSA's model
/// and the contract of `cv.wait` — do not release `native()` by hand.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu.lock();
    native_ = std::unique_lock<std::mutex>(mu.mu_, std::adopt_lock);
  }
  explicit MutexLock(SharedMutex& mu) ACQUIRE(mu) : shared_(&mu) {
    mu.lock();
  }
  ~MutexLock() RELEASE_GENERIC() {
    if (mu_ != nullptr) {
      native_.release();  // disassociate only; unlock() below releases
      mu_->unlock();
    } else {
      shared_->unlock();
    }
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() {
    FAIRDMS_CHECK(mu_ != nullptr,
                  "MutexLock::native() is only available over util::Mutex "
                  "(condition variables need the underlying std::mutex)");
    return native_;
  }

 private:
  Mutex* mu_ = nullptr;
  SharedMutex* shared_ = nullptr;
  std::unique_lock<std::mutex> native_;
};

/// RAII shared (reader) lock — the drop-in for `std::shared_lock`.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu.lock_shared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_->unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace fairdms::util
