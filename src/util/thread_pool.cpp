#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "util/check.hpp"

namespace fairdms::util {

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    FAIRDMS_CHECK(!stop_, "submit() on stopped pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    FAIRDMS_CHECK(!stop_, "try_submit() on stopped pool");
    if (max_queue_ != 0 && tasks_.size() >= max_queue_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
  return true;
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return tasks_.size();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit loop (not a wait-with-predicate): TSA analyzes a predicate
  // lambda as a separate function, where the capability is not visibly
  // held, so `in_flight_` must be read in this scope.
  while (in_flight_ != 0) cv_idle_.wait(lock.native());
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  {
    MutexLock lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) cv_idle_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(lock.native());
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  parallel_for_chunked(
      n,
      [&body](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        body(begin, end);
      },
      min_grain);
}

void ThreadPool::parallel_for_chunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (n == 0) return;
  min_grain = std::max<std::size_t>(1, min_grain);
  // ~3x oversubscription balances load without excessive task overhead.
  const std::size_t target_chunks =
      std::max<std::size_t>(1, std::min(n / min_grain, size() * 3));
  if (target_chunks <= 1 || size() <= 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t chunk_size = (n + target_chunks - 1) / target_chunks;
  const std::size_t chunks = (n + chunk_size - 1) / chunk_size;

  std::atomic<std::size_t> remaining{chunks};
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    submit([&, c, begin, end] {
      body(c, begin, end);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  // Help-while-waiting: the calling thread drains queued tasks instead of
  // blocking, so nested parallel_for from inside a worker cannot deadlock
  // (every blocked waiter is also an executor).
  while (remaining.load(std::memory_order_acquire) != 0) {
    if (!try_run_one()) std::this_thread::yield();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fairdms::util
