// Crash-consistent file I/O primitives.
//
// Durability on POSIX requires more than ofstream: a file's bytes must be
// fsync'd before its directory entry is swapped, and the rename itself must
// be flushed by fsync'ing the parent directory, or a crash can leave a torn
// file (or no file) where the previous good one used to be. These helpers
// centralize the write-tmp + fsync + rename + dir-fsync dance used by the
// snapshot path (store/persist.cpp), the NFS metadata path (store/nfs.cpp
// pioneered the rename half), and the log engine's segment rotation.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace fairdms::util {

/// fsync(2) the file at `path`. Returns false (with `error` set when given)
/// when the file cannot be opened or synced.
bool fsync_path(const std::string& path, std::string* error = nullptr);

/// fsync(2) the directory containing `path`, making a completed rename of
/// `path` durable. Best effort on filesystems that reject directory fsync;
/// real open/IO failures return false.
bool fsync_parent_dir(const std::string& path, std::string* error = nullptr);

/// Writes `bytes` to `path` atomically and durably: the data lands in
/// `<path>.tmp`, is fsync'd, and is renamed over `path`, then the parent
/// directory is fsync'd. A crash at any byte offset leaves either the old
/// complete file or the new complete file — never a truncated mix, and
/// never a destroyed previous version. Returns false with `error` set on
/// any I/O failure (the tmp file is removed on failure when possible).
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::span<const std::uint8_t> bytes,
                                     std::string* error = nullptr);

}  // namespace fairdms::util
