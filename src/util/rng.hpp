// Deterministic random number generation.
//
// Every stochastic component in fairDMS takes an explicit seed and derives an
// independent stream via Rng::fork(), so experiments are reproducible bit-for-
// bit regardless of thread count (each parallel work item forks its own
// stream from a stable key).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace fairdms::util {

/// xoshiro256** engine seeded through SplitMix64. Satisfies
/// UniformRandomBitGenerator so it also works with <random> adaptors.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion: decorrelates nearby seeds.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Independent child stream for work item `key`. Deterministic in (parent
  /// state at fork time is NOT consumed): forking N children with distinct
  /// keys yields N decorrelated streams regardless of fork order.
  [[nodiscard]] Rng fork(std::uint64_t key) const {
    Rng child(state_[0] ^ (key * 0xD1342543DE82EF95ull) ^ state_[3]);
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double k = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * k;
    has_gauss_ = true;
    return u * k;
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Poisson sample; inversion for small lambda, normal approx for large.
  std::uint64_t poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      const double limit = std::exp(-lambda);
      double prod = uniform();
      std::uint64_t n = 0;
      while (prod > limit) {
        prod *= uniform();
        ++n;
      }
      return n;
    }
    const double x = gaussian(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const auto j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double gauss_ = 0.0;
  bool has_gauss_ = false;
};

}  // namespace fairdms::util
