// Wall-clock timing helpers used throughout the benchmark harness.
#pragma once

#include <chrono>

namespace fairdms::util {

/// Monotonic stopwatch. Construction starts it.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time into a double, RAII-style. Useful for attributing
/// time to phases (e.g. DataLoader I/O-stall accounting).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace fairdms::util
