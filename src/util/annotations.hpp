#pragma once

// Clang Thread Safety Analysis annotation macros.
//
// These wrap the `capability`-family attributes so that lock contracts —
// which fields a mutex guards, which functions require a lock to be held,
// which RAII types acquire and release — are stated in code and checked at
// compile time by `-Wthread-safety -Wthread-safety-beta` (the
// `clang-analysis` CI job builds with both as errors). Under GCC, or under
// a Clang too old to know an attribute, every macro expands to nothing, so
// the annotations are zero-cost on every other toolchain.
//
// Spellings follow the reference mutex.h from the Clang Thread Safety
// Analysis documentation (also the scheme Abseil uses). The one deliberate
// deviation: RELEASE_GENERIC maps to the legacy `unlock_function`
// attribute, which releases a capability whether it was acquired exclusive
// or shared — the right annotation for a scoped-lock destructor that may
// wrap either mode.
//
// Usage map for this codebase:
//   CAPABILITY("mutex")   util::Mutex / util::SharedMutex (util/mutex.hpp)
//   SCOPED_CAPABILITY     util::MutexLock / util::ReaderLock
//   GUARDED_BY(mu)        on fields: writes need `mu` exclusive, reads
//                         need it at least shared
//   REQUIRES(mu)          on functions: caller must already hold `mu`
//                         (the `*_locked` helper convention, now checked)
//   EXCLUDES(mu)          on functions: caller must NOT hold `mu`
//                         (self-deadlock guard on public entry points)

#if defined(__clang__) && defined(__has_attribute)
#define FAIRDMS_TSA_HAS(x) __has_attribute(x)
#else
#define FAIRDMS_TSA_HAS(x) 0
#endif

#if FAIRDMS_TSA_HAS(capability)
#define FAIRDMS_TSA(x) __attribute__((x))
#else
#define FAIRDMS_TSA(x)  // no-op off Clang
#endif

#define CAPABILITY(x) FAIRDMS_TSA(capability(x))
#define SCOPED_CAPABILITY FAIRDMS_TSA(scoped_lockable)

#define GUARDED_BY(x) FAIRDMS_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) FAIRDMS_TSA(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) FAIRDMS_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FAIRDMS_TSA(acquired_after(__VA_ARGS__))

#define REQUIRES(...) FAIRDMS_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FAIRDMS_TSA(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) FAIRDMS_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FAIRDMS_TSA(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) FAIRDMS_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FAIRDMS_TSA(release_shared_capability(__VA_ARGS__))
#if FAIRDMS_TSA_HAS(release_generic_capability)
#define RELEASE_GENERIC(...) FAIRDMS_TSA(release_generic_capability(__VA_ARGS__))
#else
#define RELEASE_GENERIC(...) FAIRDMS_TSA(unlock_function(__VA_ARGS__))
#endif

#define TRY_ACQUIRE(...) FAIRDMS_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  FAIRDMS_TSA(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) FAIRDMS_TSA(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) FAIRDMS_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FAIRDMS_TSA(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) FAIRDMS_TSA(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS FAIRDMS_TSA(no_thread_safety_analysis)
