#include "util/logging.hpp"

#include <atomic>

#include "util/mutex.hpp"

namespace fairdms::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes the interleaving of whole lines on std::cerr. Innermost rank:
// any subsystem may log while holding its own lock (e.g. DocStore logs
// collection creation under the map lock).
Mutex g_emit_mutex{LockRank::kLogging};

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
  MutexLock lock(g_emit_mutex);
  std::cerr << "[fairdms " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace fairdms::util
