// MC-dropout uncertainty quantification (Gal & Ghahramani 2016), as the paper
// uses in Fig. 2 to detect model degradation: run N stochastic forward passes
// with dropout active and read the predictive spread.
#pragma once

#include "nn/sequential.hpp"

namespace fairdms::nn {

struct McDropoutResult {
  Tensor mean;  ///< predictive mean, same shape as a single forward output
  Tensor std;   ///< per-element predictive standard deviation
};

/// Runs `samples` forward passes in kMcSample mode (dropout active,
/// everything else deterministic) and aggregates mean and std.
McDropoutResult mc_dropout_predict(Sequential& model, const Tensor& x,
                                   std::size_t samples);

/// Scalar uncertainty summary: mean per-element std across the batch —
/// a single number comparable across datasets (Fig. 2's right axis).
double mc_dropout_uncertainty(Sequential& model, const Tensor& x,
                              std::size_t samples);

}  // namespace fairdms::nn
