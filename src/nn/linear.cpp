#include "nn/linear.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fairdms::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features));  // Kaiming-uniform
  weight_ = Tensor::rand_uniform({out_, in_}, rng, -bound, bound);
}

Tensor Linear::forward(const Tensor& x, Mode mode) {
  FAIRDMS_CHECK(x.rank() == 2 && x.dim(1) == in_, "Linear: expected [N, ",
                in_, "], got ", x.shape_str());
  if (mode == Mode::kTrain) cached_input_ = x;
  Tensor y = tensor::matmul(x, weight_, /*trans_a=*/false, /*trans_b=*/true);
  const std::size_t n = y.dim(0);
  float* py = y.data();
  const float* pb = bias_.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) py[i * out_ + j] += pb[j];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!cached_input_.empty(), "Linear::backward before forward");
  FAIRDMS_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
                "Linear: bad grad shape ", grad_out.shape_str());
  // dW += dY^T X ; db += column-sum(dY) ; dX = dY W
  grad_weight_.add_(
      tensor::matmul(grad_out, cached_input_, /*trans_a=*/true));
  const std::size_t n = grad_out.dim(0);
  const float* pg = grad_out.data();
  float* pb = grad_bias_.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) pb[j] += pg[i * out_ + j];
  }
  return tensor::matmul(grad_out, weight_);
}

}  // namespace fairdms::nn
