// Layer abstraction for the fairDMS neural-network stack.
//
// The stack is a deliberately small PyTorch analog: layers cache what they
// need in forward() and return input gradients from backward(). There is no
// autograd graph; Sequential composes layers in order, which covers every
// model in the paper (BraggNN, CookieNetAE, autoencoder/BYOL/contrastive
// embedding networks, TomoNet).
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fairdms::nn {

using tensor::Tensor;

/// Forward-pass mode.
///  kTrain:    stochastic layers active, caches retained for backward.
///  kEval:     deterministic inference.
///  kMcSample: deterministic layers behave as in kEval, but dropout stays
///             active — one stochastic forward pass for MC-dropout
///             uncertainty quantification (Gal & Ghahramani).
enum class Mode { kTrain, kEval, kMcSample };

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, Mode mode) = 0;

  /// Gradient of the loss w.r.t. this layer's input, given the gradient
  /// w.r.t. its output. Must be called after a kTrain forward pass.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameters and their gradient buffers (parallel vectors).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  virtual void zero_grad() {
    for (Tensor* g : grads()) g->fill_(0.0f);
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace fairdms::nn
